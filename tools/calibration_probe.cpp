// Developer tool: prints the raw physical magnitudes of the default chip
// (couplings, emf levels, SNRs, per-Trojan distances) so the noise/charge
// calibration constants in DESIGN.md §4 can be audited or re-derived.
#include <cstdio>

#include "core/euclidean.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"
#include "sim/silicon.hpp"
#include "stats/descriptive.hpp"

using namespace emts;

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  sim::Chip chip{sim::make_default_config()};
  const auto& engine = sim::CaptureEngine::shared();

  std::printf("== couplings (nH) ==\n");
  for (const auto& m : chip.floorplan().modules()) {
    std::printf("%-28s onchip %9.4f   external %9.4f\n", m.name.c_str(),
                1e9 * chip.coupling(m.name, sim::Pickup::kOnChipSensor),
                1e9 * chip.coupling(m.name, sim::Pickup::kExternalProbe));
  }

  const auto emf_on = chip.raw_emf(sim::Pickup::kOnChipSensor, true, 0);
  const auto emf_ex = chip.raw_emf(sim::Pickup::kExternalProbe, true, 0);
  std::printf("\nraw emf rms: onchip %.3e V, external %.3e V\n", stats::rms(emf_on),
              stats::rms(emf_ex));

  // SNR per the paper's recipe (8 encrypting + 8 idle windows, shared pool).
  std::printf("SNR onchip   %.3f dB\n",
              engine.snr_batch(chip, sim::Pickup::kOnChipSensor, 8, 100));
  std::printf("SNR external %.3f dB\n",
              engine.snr_batch(chip, sim::Pickup::kExternalProbe, 8, 100));

  // Euclidean distances per Trojan (on-chip sensor, sim conditions).
  const auto golden =
      engine.capture_batch(chip, sim::Pickup::kOnChipSensor, 60, 1000);
  const auto det = core::EuclideanDetector::calibrate(golden);
  std::printf("\nEDth (eq.1) = %.4f\n", det.threshold());
  for (auto kind : trojan::kAllTrojanKinds) {
    chip.arm(kind);
    const auto suspect =
        engine.capture_batch(chip, sim::Pickup::kOnChipSensor, 40, 2000);
    std::printf("distance %-3s = %.4f\n", trojan::kind_label(kind),
                det.population_distance(suspect));
    chip.disarm_all();
  }
  return 0;
}
