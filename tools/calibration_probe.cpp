// Developer tool: prints the raw physical magnitudes of the default chip
// (couplings, emf levels, SNRs, per-Trojan distances) so the noise/charge
// calibration constants in DESIGN.md §4 can be audited or re-derived.
#include <cstdio>

#include "core/euclidean.hpp"
#include "sim/chip.hpp"
#include "sim/silicon.hpp"
#include "stats/descriptive.hpp"
#include "stats/snr.hpp"

using namespace emts;

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  sim::Chip chip{sim::make_default_config()};

  std::printf("== couplings (nH) ==\n");
  for (const auto& m : chip.floorplan().modules()) {
    std::printf("%-28s onchip %9.4f   external %9.4f\n", m.name.c_str(),
                1e9 * chip.coupling(m.name, sim::Pickup::kOnChipSensor),
                1e9 * chip.coupling(m.name, sim::Pickup::kExternalProbe));
  }

  const auto emf_on = chip.raw_emf(sim::Pickup::kOnChipSensor, true, 0);
  const auto emf_ex = chip.raw_emf(sim::Pickup::kExternalProbe, true, 0);
  std::printf("\nraw emf rms: onchip %.3e V, external %.3e V\n", stats::rms(emf_on),
              stats::rms(emf_ex));

  // SNR per the paper's recipe.
  auto collect = [&](bool enc, std::uint64_t base, sim::Pickup p) {
    std::vector<double> all;
    for (std::uint64_t t = 0; t < 8; ++t) {
      const auto acq = chip.capture(enc, base + t);
      const auto& v = acq.of(p);
      all.insert(all.end(), v.begin(), v.end());
    }
    return all;
  };
  const auto sig_on = collect(true, 100, sim::Pickup::kOnChipSensor);
  const auto noi_on = collect(false, 200, sim::Pickup::kOnChipSensor);
  const auto sig_ex = collect(true, 100, sim::Pickup::kExternalProbe);
  const auto noi_ex = collect(false, 200, sim::Pickup::kExternalProbe);
  std::printf("SNR onchip   %.3f dB\n", stats::snr_db(sig_on, noi_on));
  std::printf("SNR external %.3f dB\n", stats::snr_db(sig_ex, noi_ex));

  // Euclidean distances per Trojan (on-chip sensor, sim conditions).
  core::TraceSet golden;
  golden.sample_rate = chip.sample_rate();
  for (std::uint64_t t = 0; t < 60; ++t) golden.add(chip.capture(true, 1000 + t).onchip_v);
  const auto det = core::EuclideanDetector::calibrate(golden);
  std::printf("\nEDth (eq.1) = %.4f\n", det.threshold());
  for (auto kind : trojan::kAllTrojanKinds) {
    chip.arm(kind);
    core::TraceSet suspect;
    suspect.sample_rate = chip.sample_rate();
    for (std::uint64_t t = 0; t < 40; ++t) suspect.add(chip.capture(true, 2000 + t).onchip_v);
    std::printf("distance %-3s = %.4f\n", trojan::kind_label(kind),
                det.population_distance(suspect));
    chip.disarm_all();
  }
  return 0;
}
