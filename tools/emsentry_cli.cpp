// emsentry_cli — campaign driver for the trust-evaluation workflow.
//
// On real silicon the capture step is an oscilloscope; here it is the chip
// simulator. Everything downstream (archives, calibration artifacts,
// evaluation, monitoring) is exactly what a deployment would run:
//
//   emsentry_cli capture golden.emta --windows 64
//   emsentry_cli capture suspect.emta --windows 16 --trojan T2 --first 5000
//   emsentry_cli evaluate golden.emta suspect.emta
//   emsentry_cli calibrate golden.emta model.emca
//   emsentry_cli monitor --model model.emca --windows 40 --trojan T2
//   emsentry_cli snr signal.emta noise.emta
//   emsentry_cli info golden.emta
//
// Exit codes: 0 success / trusted, 1 verdict not trusted or alarm raised,
// 2 malformed arguments (usage on stderr), 3 runtime error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/ron.hpp"
#include "core/evaluator.hpp"
#include "core/monitor.hpp"
#include "io/calibration.hpp"
#include "io/trace_archive.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"
#include "sim/silicon.hpp"
#include "stats/snr.hpp"
#include "util/assert.hpp"
#include "util/latency.hpp"

#ifndef EMSENTRY_VERSION
#define EMSENTRY_VERSION "unknown"
#endif

using namespace emts;

namespace {

void print_usage(std::FILE* stream) {
  std::fprintf(stream,
               "usage:\n"
               "  emsentry_cli capture <out.emta> [--windows N] [--trojan T1|T2|T3|T4|A2]\n"
               "                [--pickup sensor|probe] [--silicon] [--idle] [--first N]\n"
               "                [--threads N]\n"
               "  emsentry_cli evaluate <golden.emta> <suspect.emta>\n"
               "  emsentry_cli calibrate <golden.emta> <out.emca> [--detectors a,b,...]\n"
               "  emsentry_cli monitor --model <model.emca> [--windows N]\n"
               "                [--trojan T1|T2|T3|T4|A2] [--silicon] [--stats]\n"
               "  emsentry_cli snr <signal.emta> <noise.emta>\n"
               "  emsentry_cli info <archive.emta>\n"
               "  emsentry_cli help | --help | -h\n"
               "  emsentry_cli --version\n"
               "\n"
               "detectors: euclidean, spectral, ron (default: euclidean,spectral)\n");
}

int usage_error() {
  print_usage(stderr);
  return 2;
}

bool parse_trojan(const std::string& label, trojan::TrojanKind* kind) {
  for (trojan::TrojanKind k : trojan::kAllTrojanKinds) {
    if (label == trojan::kind_label(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void print_latency_line(const char* label, const util::LatencyHistogram& h) {
  std::printf("  %-9s count %-6llu p50 %8.1f us  p99 %8.1f us  max %8.1f us\n", label,
              static_cast<unsigned long long>(h.count()), h.p50_ns() / 1e3, h.p99_ns() / 1e3,
              static_cast<double>(h.max_ns()) / 1e3);
}

void print_monitor_stats(core::RuntimeMonitor& monitor) {
  const core::MonitorStats& stats = monitor.stats();
  std::printf("monitor stats:\n");
  std::printf("  ingested %llu (calibration %llu, scored %llu)\n",
              static_cast<unsigned long long>(stats.traces_ingested),
              static_cast<unsigned long long>(stats.calibration_captures),
              static_cast<unsigned long long>(stats.scored_captures));
  std::printf("  anomalies: per-trace %llu, windowed %llu (of %llu spectral passes)\n",
              static_cast<unsigned long long>(stats.per_trace_anomalies),
              static_cast<unsigned long long>(stats.windowed_anomalies),
              static_cast<unsigned long long>(stats.spectral_passes));
  std::printf("  alarms: latched %llu, acknowledged %llu\n",
              static_cast<unsigned long long>(stats.alarms_latched),
              static_cast<unsigned long long>(stats.alarms_acknowledged));
  print_latency_line("push", stats.push_latency);
  print_latency_line("spectral", stats.spectral_latency);

  const auto events = monitor.drain_events();
  std::printf("  events (%zu buffered, %llu dropped):\n", events.size(),
              static_cast<unsigned long long>(stats.events_dropped));
  for (const auto& event : events) {
    std::printf("    #%-6llu %-18s %.6g\n",
                static_cast<unsigned long long>(event.trace_index),
                core::monitor_event_label(event.kind), event.value);
  }
}

void print_stage_lines(const core::TrustReport& report) {
  for (const auto& stage : report.stages) {
    std::printf("  [%s] %-10s %s\n", stage.alarm ? "!" : " ", stage.name.c_str(),
                stage.detail.c_str());
  }
  for (const auto& anomaly : report.spectral.anomalies) {
    std::printf("        spectral %s at %.3f MHz (x%.1f)\n",
                anomaly.kind == core::SpectralAnomalyKind::kNewSpot ? "new spot" : "amplified",
                anomaly.frequency_hz / 1e6, anomaly.ratio);
  }
}

int cmd_capture(const std::vector<std::string>& args) {
  if (args.empty()) return usage_error();
  const std::string out_path = args[0];

  std::size_t windows = 32;
  std::uint64_t first = 0;
  bool silicon = false;
  bool encrypting = true;
  sim::Pickup pickup = sim::Pickup::kOnChipSensor;
  bool has_trojan = false;
  trojan::TrojanKind kind{};
  sim::EngineOptions engine_options;  // threads = 0: EMTS_THREADS or hardware

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string& {
      EMTS_REQUIRE(i + 1 < args.size(), a + " needs a value");
      return args[++i];
    };
    if (a == "--windows") {
      windows = std::stoul(next());
    } else if (a == "--threads") {
      engine_options.threads = std::stoul(next());
    } else if (a == "--first") {
      first = std::stoull(next());
    } else if (a == "--silicon") {
      silicon = true;
    } else if (a == "--idle") {
      encrypting = false;
    } else if (a == "--pickup") {
      const std::string& p = next();
      EMTS_REQUIRE(p == "sensor" || p == "probe", "--pickup takes sensor|probe");
      pickup = p == "sensor" ? sim::Pickup::kOnChipSensor : sim::Pickup::kExternalProbe;
    } else if (a == "--trojan") {
      EMTS_REQUIRE(parse_trojan(next(), &kind), "unknown trojan label");
      has_trojan = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return usage_error();
    }
  }

  sim::Chip chip{silicon ? sim::make_silicon_config(sim::SiliconOptions{})
                         : sim::make_default_config()};
  if (has_trojan) chip.arm(kind);

  const sim::CaptureEngine engine{engine_options};
  const auto set = engine.capture_batch(chip, pickup, windows, first, encrypting);
  io::save_trace_archive(out_path, set);
  std::printf("captured %zu %s windows (%s, %s%s) -> %s\n", windows,
              encrypting ? "encrypting" : "idle",
              pickup == sim::Pickup::kOnChipSensor ? "on-chip sensor" : "external probe",
              silicon ? "silicon mode" : "simulation mode",
              has_trojan ? (std::string(", trojan ") + trojan::kind_label(kind)).c_str() : "",
              out_path.c_str());
  return 0;
}

int cmd_evaluate(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage_error();
  const auto golden = io::load_trace_archive(args[0]);
  const auto suspect = io::load_trace_archive(args[1]);

  const auto evaluator = core::TrustEvaluator::calibrate(golden);
  const auto report = evaluator.evaluate(suspect);

  std::printf("golden : %zu traces x %zu samples @ %.3f MS/s\n", golden.size(),
              golden.trace_length(), golden.sample_rate / 1e6);
  std::printf("suspect: %zu traces\n\n", suspect.size());
  std::printf("%s\n", report.summary().c_str());
  print_stage_lines(report);
  return report.verdict == core::Verdict::kTrusted ? 0 : 1;
}

int cmd_calibrate(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage_error();
  const std::string golden_path = args[0];
  const std::string model_path = args[1];

  core::TrustEvaluator::Options options;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--detectors") {
      EMTS_REQUIRE(i + 1 < args.size(), "--detectors needs a value");
      options.detectors = split_csv(args[++i]);
      EMTS_REQUIRE(!options.detectors.empty(), "--detectors needs at least one name");
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return usage_error();
    }
  }

  const auto golden = io::load_trace_archive(golden_path);
  const auto evaluator = core::TrustEvaluator::calibrate(golden, options);
  io::save_calibration(model_path, evaluator);

  std::printf("calibrated %zu-stage detector stack on %zu golden traces -> %s\n",
              evaluator.detectors().size(), golden.size(), model_path.c_str());
  for (const auto& detector : evaluator.detectors()) {
    std::printf("  %s\n", detector->describe().c_str());
  }
  return 0;
}

int cmd_monitor(const std::vector<std::string>& args) {
  std::string model_path;
  std::size_t windows = 32;
  bool silicon = false;
  bool show_stats = false;
  bool has_trojan = false;
  trojan::TrojanKind kind{};

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string& {
      EMTS_REQUIRE(i + 1 < args.size(), a + " needs a value");
      return args[++i];
    };
    if (a == "--model") {
      model_path = next();
    } else if (a == "--windows") {
      windows = std::stoul(next());
    } else if (a == "--silicon") {
      silicon = true;
    } else if (a == "--stats") {
      show_stats = true;
    } else if (a == "--trojan") {
      EMTS_REQUIRE(parse_trojan(next(), &kind), "unknown trojan label");
      has_trojan = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return usage_error();
    }
  }
  if (model_path.empty()) {
    std::fprintf(stderr, "monitor needs --model <model.emca>\n");
    return usage_error();
  }

  auto evaluator = io::load_calibration(model_path);
  core::RuntimeMonitor monitor{evaluator.sample_rate(), std::move(evaluator)};
  std::printf("cold start from %s: state %s, %zu calibration captures\n", model_path.c_str(),
              core::monitor_state_label(monitor.state()), monitor.traces_seen());

  sim::Chip chip{silicon ? sim::make_silicon_config(sim::SiliconOptions{})
                         : sim::make_default_config()};
  if (has_trojan) chip.arm(kind);

  const auto& engine = sim::CaptureEngine::shared();
  const auto stream = engine.capture_batch(chip, sim::Pickup::kOnChipSensor, windows, 0);
  std::size_t pushed = 0;
  for (const auto& trace : stream.traces) {
    const auto state = monitor.push(trace);
    ++pushed;
    if (state == core::MonitorState::kAlarm) break;
  }

  std::printf("monitored %zu captures%s: final state %s\n", pushed,
              has_trojan ? (std::string(" (trojan ") + trojan::kind_label(kind) + " armed)").c_str()
                         : "",
              core::monitor_state_label(monitor.state()));
  if (show_stats) print_monitor_stats(monitor);
  return monitor.state() == core::MonitorState::kAlarm ? 1 : 0;
}

int cmd_snr(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage_error();
  const auto signal = io::load_trace_archive(args[0]);
  const auto noise = io::load_trace_archive(args[1]);
  std::vector<double> s;
  std::vector<double> n;
  for (const auto& t : signal.traces) s.insert(s.end(), t.begin(), t.end());
  for (const auto& t : noise.traces) n.insert(n.end(), t.begin(), t.end());
  std::printf("SNR = %.4f dB\n", stats::snr_db(s, n));
  return 0;
}

int cmd_info(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage_error();
  const auto set = io::load_trace_archive(args[0]);
  std::printf("%s: %zu traces x %zu samples @ %.3f MS/s (%.2f us per trace)\n",
              args[0].c_str(), set.size(), set.trace_length(), set.sample_rate / 1e6,
              1e6 * static_cast<double>(set.trace_length()) / set.sample_rate);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  baseline::register_ron_detector();

  if (argc < 2) return usage_error();
  const std::string command = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);

  if (command == "help" || command == "--help" || command == "-h") {
    print_usage(stdout);
    return 0;
  }
  if (command == "--version" || command == "version") {
    std::printf("emsentry_cli %s\n", EMSENTRY_VERSION);
    return 0;
  }

  try {
    if (command == "capture") return cmd_capture(args);
    if (command == "evaluate") return cmd_evaluate(args);
    if (command == "calibrate") return cmd_calibrate(args);
    if (command == "monitor") return cmd_monitor(args);
    if (command == "snr") return cmd_snr(args);
    if (command == "info") return cmd_info(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
  std::fprintf(stderr, "unknown command %s\n", command.c_str());
  return usage_error();
}
