// emsentry_cli — campaign driver for the trust-evaluation workflow.
//
// On real silicon the capture step is an oscilloscope; here it is the chip
// simulator. Everything downstream (archives, calibration, evaluation) is
// exactly what a deployment would run:
//
//   emsentry_cli capture golden.emta --windows 64
//   emsentry_cli capture suspect.emta --windows 16 --trojan T2 --first 5000
//   emsentry_cli evaluate golden.emta suspect.emta
//   emsentry_cli snr signal.emta noise.emta
//   emsentry_cli info golden.emta
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "io/trace_archive.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"
#include "sim/silicon.hpp"
#include "stats/snr.hpp"
#include "util/assert.hpp"

using namespace emts;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  emsentry_cli capture <out.emta> [--windows N] [--trojan T1|T2|T3|T4|A2]\n"
               "                [--pickup sensor|probe] [--silicon] [--idle] [--first N]\n"
               "                [--threads N]\n"
               "  emsentry_cli evaluate <golden.emta> <suspect.emta>\n"
               "  emsentry_cli snr <signal.emta> <noise.emta>\n"
               "  emsentry_cli info <archive.emta>\n");
  return 2;
}

bool parse_trojan(const std::string& label, trojan::TrojanKind* kind) {
  for (trojan::TrojanKind k : trojan::kAllTrojanKinds) {
    if (label == trojan::kind_label(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

int cmd_capture(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string out_path = args[0];

  std::size_t windows = 32;
  std::uint64_t first = 0;
  bool silicon = false;
  bool encrypting = true;
  sim::Pickup pickup = sim::Pickup::kOnChipSensor;
  bool has_trojan = false;
  trojan::TrojanKind kind{};
  sim::EngineOptions engine_options;  // threads = 0: EMTS_THREADS or hardware

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string& {
      EMTS_REQUIRE(i + 1 < args.size(), a + " needs a value");
      return args[++i];
    };
    if (a == "--windows") {
      windows = std::stoul(next());
    } else if (a == "--threads") {
      engine_options.threads = std::stoul(next());
    } else if (a == "--first") {
      first = std::stoull(next());
    } else if (a == "--silicon") {
      silicon = true;
    } else if (a == "--idle") {
      encrypting = false;
    } else if (a == "--pickup") {
      const std::string& p = next();
      EMTS_REQUIRE(p == "sensor" || p == "probe", "--pickup takes sensor|probe");
      pickup = p == "sensor" ? sim::Pickup::kOnChipSensor : sim::Pickup::kExternalProbe;
    } else if (a == "--trojan") {
      EMTS_REQUIRE(parse_trojan(next(), &kind), "unknown trojan label");
      has_trojan = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return usage();
    }
  }

  sim::Chip chip{silicon ? sim::make_silicon_config(sim::SiliconOptions{})
                         : sim::make_default_config()};
  if (has_trojan) chip.arm(kind);

  const sim::CaptureEngine engine{engine_options};
  const auto set = engine.capture_batch(chip, pickup, windows, first, encrypting);
  io::save_trace_archive(out_path, set);
  std::printf("captured %zu %s windows (%s, %s%s) -> %s\n", windows,
              encrypting ? "encrypting" : "idle",
              pickup == sim::Pickup::kOnChipSensor ? "on-chip sensor" : "external probe",
              silicon ? "silicon mode" : "simulation mode",
              has_trojan ? (std::string(", trojan ") + trojan::kind_label(kind)).c_str() : "",
              out_path.c_str());
  return 0;
}

int cmd_evaluate(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const auto golden = io::load_trace_archive(args[0]);
  const auto suspect = io::load_trace_archive(args[1]);

  const auto evaluator = core::TrustEvaluator::calibrate(golden);
  const auto report = evaluator.evaluate(suspect);

  std::printf("golden : %zu traces x %zu samples @ %.3f MS/s\n", golden.size(),
              golden.trace_length(), golden.sample_rate / 1e6);
  std::printf("suspect: %zu traces\n\n", suspect.size());
  std::printf("%s\n", report.summary().c_str());
  for (const auto& anomaly : report.spectral.anomalies) {
    std::printf("  spectral %s at %.3f MHz (x%.1f)\n",
                anomaly.kind == core::SpectralAnomalyKind::kNewSpot ? "new spot" : "amplified",
                anomaly.frequency_hz / 1e6, anomaly.ratio);
  }
  return report.verdict == core::Verdict::kTrusted ? 0 : 1;
}

int cmd_snr(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const auto signal = io::load_trace_archive(args[0]);
  const auto noise = io::load_trace_archive(args[1]);
  std::vector<double> s;
  std::vector<double> n;
  for (const auto& t : signal.traces) s.insert(s.end(), t.begin(), t.end());
  for (const auto& t : noise.traces) n.insert(n.end(), t.begin(), t.end());
  std::printf("SNR = %.4f dB\n", stats::snr_db(s, n));
  return 0;
}

int cmd_info(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  const auto set = io::load_trace_archive(args[0]);
  std::printf("%s: %zu traces x %zu samples @ %.3f MS/s (%.2f us per trace)\n",
              args[0].c_str(), set.size(), set.trace_length(), set.sample_rate / 1e6,
              1e6 * static_cast<double>(set.trace_length()) / set.sample_rate);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);

  try {
    if (command == "capture") return cmd_capture(args);
    if (command == "evaluate") return cmd_evaluate(args);
    if (command == "snr") return cmd_snr(args);
    if (command == "info") return cmd_info(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
  return usage();
}
