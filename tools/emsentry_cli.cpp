// emsentry_cli — campaign driver for the trust-evaluation workflow.
//
// On real silicon the capture step is an oscilloscope; here it is the chip
// simulator. Everything downstream (archives, calibration artifacts,
// evaluation, monitoring) is exactly what a deployment would run:
//
//   emsentry_cli capture golden.emta --windows 64
//   emsentry_cli capture suspect.emta --windows 16 --trojan T2 --first 5000
//   emsentry_cli evaluate golden.emta suspect.emta
//   emsentry_cli calibrate golden.emta model.emca
//   emsentry_cli monitor --model model.emca --windows 40 --trojan T2
//   emsentry_cli fleet fleet.manifest --model model.emca --shards 4
//   emsentry_cli snr signal.emta noise.emta
//   emsentry_cli info golden.emta
//
// Exit codes: 0 success / trusted, 1 verdict not trusted or alarm raised,
// 2 malformed arguments (usage on stderr), 3 runtime error.
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include "array/artifact.hpp"
#include "array/calibration.hpp"
#include "array/capture.hpp"
#include "array/grid.hpp"
#include "array/localizer.hpp"
#include "array/monitor.hpp"
#include "baseline/ron.hpp"
#include "core/evaluator.hpp"
#include "core/monitor.hpp"
#include "fleet/fleet.hpp"
#include "fleet/manifest.hpp"
#include "fleet/server.hpp"
#include "fleet/stats_json.hpp"
#include "io/calibration.hpp"
#include "io/mmap_archive.hpp"
#include "io/snapshot.hpp"
#include "io/trace_archive.hpp"
#include "io/wire.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"
#include "sim/silicon.hpp"
#include "stats/snr.hpp"
#include "util/assert.hpp"
#include "util/latency.hpp"

#ifndef EMSENTRY_VERSION
#define EMSENTRY_VERSION "unknown"
#endif

using namespace emts;

namespace {

void print_usage(std::FILE* stream) {
  std::fprintf(stream,
               "usage:\n"
               "  emsentry_cli capture <out.emta> [--windows N] [--trojan T1|T2|T3|T4|A2]\n"
               "                [--pickup sensor|probe] [--silicon] [--idle] [--first N]\n"
               "                [--threads N]\n"
               "  emsentry_cli evaluate <golden.emta> <suspect.emta>\n"
               "  emsentry_cli calibrate <golden.emta> <out.emca> [--detectors a,b,...]\n"
               "  emsentry_cli monitor --model <model.emca> [--windows N]\n"
               "                [--trojan T1|T2|T3|T4|A2] [--silicon] [--stats] [--json]\n"
               "  emsentry_cli fleet <fleet.manifest> [--model <model.emca>] [--shards N]\n"
               "                [--queue N] [--policy block|drop-oldest|reject] [--pin]\n"
               "                [--stats] [--json]\n"
               "  emsentry_cli serve <fleet.manifest> [--socket <path>]\n"
               "                [--listen <host:port>] [--allow <cidr>]...\n"
               "                [--auth-secret <token>] [--model <model.emca>]\n"
               "                [--shards N] [--queue N] [--policy block|drop-oldest|reject]\n"
               "                [--pin] [--restore <snap.emfs>] [--snapshot-path <snap.emfs>]\n"
               "                [--snapshot-every N[s|ms]] [--incremental-snapshots]\n"
               "                [--full-snapshot-every N] [--stats-path <stats.json>]\n"
               "                [--stats-every N]\n"
               "  emsentry_cli replay-client <archive.emta> --socket <path> --device <id>\n"
               "                [--connect <host:port>] [--auth-secret <token>]\n"
               "                [--rate TRACES_PER_SEC] [--first N] [--count N]\n"
               "  emsentry_cli array calibrate <out.emaa> [--grid NxM] [--turns N]\n"
               "                [--windows N] [--first N] [--threads N]\n"
               "  emsentry_cli array monitor --model <model.emaa> [--windows N]\n"
               "                [--first N] [--trojan T1|T2|T3|T4|A2] [--json]\n"
               "  emsentry_cli array localize --model <model.emaa> [--windows N]\n"
               "                [--first N] [--trojan T1|T2|T3|T4|A2] [--json]\n"
               "  emsentry_cli snr <signal.emta> <noise.emta>\n"
               "  emsentry_cli info <archive.emta>\n"
               "  emsentry_cli help | --help | -h\n"
               "  emsentry_cli --version\n"
               "\n"
               "detectors: euclidean, spectral, ron (default: euclidean,spectral)\n"
               "\n"
               "fleet manifest: one device per line, `<device_id> <archive.emta>\n"
               "[<model.emca>]`; the per-device model overrides --model. Blank lines\n"
               "and #-comments are skipped. `serve` reads the same manifest but only\n"
               "registers devices (id + model); the archive column is what a\n"
               "`replay-client` streams at the daemon.\n"
               "\n"
               "serve runs until SIGINT/SIGTERM (clean shutdown: drain, flush, final\n"
               "snapshot + stats) and needs --socket, --listen, or both. SIGUSR1\n"
               "writes a snapshot. --snapshot-every takes a frame count (bare N) or\n"
               "wall-clock cadence (Ns / Nms, zero is a usage error), honored on idle\n"
               "ingest rounds or forced after one poll interval of overshoot.\n"
               "--listen accepts EMWF over TCP (TCP_NODELAY). Both --listen and\n"
               "--allow take numeric IPv4 only — no hostnames (no DNS lookups) and\n"
               "no IPv6. --allow (repeatable) restricts TCP peers to dotted-quad\n"
               "hosts/CIDR blocks, --auth-secret makes\n"
               "every TCP client lead with a matching HELLO frame (replay-client\n"
               "--connect/--auth-secret speaks both). --incremental-snapshots rewrites\n"
               "only devices whose state moved since the last cut (full rewrite every\n"
               "--full-snapshot-every cuts, default 16).\n"
               "--restore starts from an EMFS snapshot instead of the manifest models;\n"
               "shard/queue/policy default to the snapshot's layout unless overridden.\n"
               "--pin pins each shard worker to a core (Linux, best-effort; only\n"
               "useful while shards <= hardware cores).\n"
               "\n"
               "--json emits stats schema_version 3 — field-by-field reference in\n"
               "docs/STATS_SCHEMA.md; binary container layouts in docs/FORMATS.md.\n"
               "\n"
               "array drives the on-die N x M sensor grid: `calibrate` fits one\n"
               "detector stack per coil on a golden campaign and writes an EMAA\n"
               "artifact; `monitor` replays suspect windows through every coil;\n"
               "`localize` additionally names the floorplan module whose coupling\n"
               "pattern best matches the per-coil anomaly energy. With --trojan the\n"
               "ground-truth host module is compared and --json reports hit/miss\n"
               "plus the grid-cell distance to it.\n"
               "\n"
               "exit codes:\n"
               "  0  success; verdict trusted / no device alarmed\n"
               "  1  verdict not trusted, or a monitor (any fleet device) alarmed\n"
               "  2  malformed arguments (usage printed on stderr)\n"
               "  3  runtime error (I/O failure, corrupt artifact, ...)\n");
}

int usage_error() {
  print_usage(stderr);
  return 2;
}

bool parse_trojan(const std::string& label, trojan::TrojanKind* kind) {
  for (trojan::TrojanKind k : trojan::kAllTrojanKinds) {
    if (label == trojan::kind_label(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void print_latency_line(const char* label, const util::LatencyHistogram& h) {
  std::printf("  %-9s count %-6llu p50 %8.1f us  p99 %8.1f us  max %8.1f us\n", label,
              static_cast<unsigned long long>(h.count()), h.p50_ns() / 1e3, h.p99_ns() / 1e3,
              static_cast<double>(h.max_ns()) / 1e3);
}

void print_monitor_stats(const core::MonitorStats& stats,
                         const std::vector<core::MonitorEvent>& events) {
  std::printf("  ingested %llu (calibration %llu, scored %llu, rejected %llu)\n",
              static_cast<unsigned long long>(stats.traces_ingested),
              static_cast<unsigned long long>(stats.calibration_captures),
              static_cast<unsigned long long>(stats.scored_captures),
              static_cast<unsigned long long>(stats.traces_rejected));
  std::printf("  anomalies: per-trace %llu, windowed %llu (of %llu spectral passes)\n",
              static_cast<unsigned long long>(stats.per_trace_anomalies),
              static_cast<unsigned long long>(stats.windowed_anomalies),
              static_cast<unsigned long long>(stats.spectral_passes));
  std::printf("  spectral path: %llu incremental updates, %llu recomputes\n",
              static_cast<unsigned long long>(stats.spectral_incremental_updates),
              static_cast<unsigned long long>(stats.spectral_recomputes));
  std::printf("  alarms: latched %llu, acknowledged %llu\n",
              static_cast<unsigned long long>(stats.alarms_latched),
              static_cast<unsigned long long>(stats.alarms_acknowledged));
  print_latency_line("push", stats.push_latency);
  print_latency_line("spectral", stats.spectral_latency);

  std::printf("  events (%zu buffered, %llu dropped):\n", events.size(),
              static_cast<unsigned long long>(stats.events_dropped));
  for (const auto& event : events) {
    std::printf("    #%-6llu %-18s %.6g\n",
                static_cast<unsigned long long>(event.trace_index),
                core::monitor_event_label(event.kind), event.value);
  }
}

// JSON rendering lives in fleet/stats_json.{hpp,cpp} — one schema, shared by
// `monitor --json`, `fleet --json` and the serve daemon's stats export.

void print_stage_lines(const core::TrustReport& report) {
  for (const auto& stage : report.stages) {
    std::printf("  [%s] %-10s %s\n", stage.alarm ? "!" : " ", stage.name.c_str(),
                stage.detail.c_str());
  }
  for (const auto& anomaly : report.spectral.anomalies) {
    std::printf("        spectral %s at %.3f MHz (x%.1f)\n",
                anomaly.kind == core::SpectralAnomalyKind::kNewSpot ? "new spot" : "amplified",
                anomaly.frequency_hz / 1e6, anomaly.ratio);
  }
}

int cmd_capture(const std::vector<std::string>& args) {
  if (args.empty()) return usage_error();
  const std::string out_path = args[0];

  std::size_t windows = 32;
  std::uint64_t first = 0;
  bool silicon = false;
  bool encrypting = true;
  sim::Pickup pickup = sim::Pickup::kOnChipSensor;
  bool has_trojan = false;
  trojan::TrojanKind kind{};
  sim::EngineOptions engine_options;  // threads = 0: EMTS_THREADS or hardware

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string& {
      EMTS_REQUIRE(i + 1 < args.size(), a + " needs a value");
      return args[++i];
    };
    if (a == "--windows") {
      windows = std::stoul(next());
    } else if (a == "--threads") {
      engine_options.threads = std::stoul(next());
    } else if (a == "--first") {
      first = std::stoull(next());
    } else if (a == "--silicon") {
      silicon = true;
    } else if (a == "--idle") {
      encrypting = false;
    } else if (a == "--pickup") {
      const std::string& p = next();
      EMTS_REQUIRE(p == "sensor" || p == "probe", "--pickup takes sensor|probe");
      pickup = p == "sensor" ? sim::Pickup::kOnChipSensor : sim::Pickup::kExternalProbe;
    } else if (a == "--trojan") {
      EMTS_REQUIRE(parse_trojan(next(), &kind), "unknown trojan label");
      has_trojan = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return usage_error();
    }
  }

  sim::Chip chip{silicon ? sim::make_silicon_config(sim::SiliconOptions{})
                         : sim::make_default_config()};
  if (has_trojan) chip.arm(kind);

  const sim::CaptureEngine engine{engine_options};
  const auto set = engine.capture_batch(chip, pickup, windows, first, encrypting);
  io::save_trace_archive(out_path, set);
  std::printf("captured %zu %s windows (%s, %s%s) -> %s\n", windows,
              encrypting ? "encrypting" : "idle",
              pickup == sim::Pickup::kOnChipSensor ? "on-chip sensor" : "external probe",
              silicon ? "silicon mode" : "simulation mode",
              has_trojan ? (std::string(", trojan ") + trojan::kind_label(kind)).c_str() : "",
              out_path.c_str());
  return 0;
}

int cmd_evaluate(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage_error();
  const auto golden = io::load_trace_archive(args[0]);
  const auto suspect = io::load_trace_archive(args[1]);

  const auto evaluator = core::TrustEvaluator::calibrate(golden);
  const auto report = evaluator.evaluate(suspect);

  std::printf("golden : %zu traces x %zu samples @ %.3f MS/s\n", golden.size(),
              golden.trace_length(), golden.sample_rate / 1e6);
  std::printf("suspect: %zu traces\n\n", suspect.size());
  std::printf("%s\n", report.summary().c_str());
  print_stage_lines(report);
  return report.verdict == core::Verdict::kTrusted ? 0 : 1;
}

int cmd_calibrate(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage_error();
  const std::string golden_path = args[0];
  const std::string model_path = args[1];

  core::TrustEvaluator::Options options;
  for (std::size_t i = 2; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--detectors") {
      EMTS_REQUIRE(i + 1 < args.size(), "--detectors needs a value");
      options.detectors = split_csv(args[++i]);
      EMTS_REQUIRE(!options.detectors.empty(), "--detectors needs at least one name");
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return usage_error();
    }
  }

  const auto golden = io::load_trace_archive(golden_path);
  const auto evaluator = core::TrustEvaluator::calibrate(golden, options);
  io::save_calibration(model_path, evaluator);

  std::printf("calibrated %zu-stage detector stack on %zu golden traces -> %s\n",
              evaluator.detectors().size(), golden.size(), model_path.c_str());
  for (const auto& detector : evaluator.detectors()) {
    std::printf("  %s\n", detector->describe().c_str());
  }
  return 0;
}

int cmd_monitor(const std::vector<std::string>& args) {
  std::string model_path;
  std::size_t windows = 32;
  bool silicon = false;
  bool show_stats = false;
  bool json = false;
  bool has_trojan = false;
  trojan::TrojanKind kind{};

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string& {
      EMTS_REQUIRE(i + 1 < args.size(), a + " needs a value");
      return args[++i];
    };
    if (a == "--model") {
      model_path = next();
    } else if (a == "--windows") {
      windows = std::stoul(next());
    } else if (a == "--silicon") {
      silicon = true;
    } else if (a == "--stats") {
      show_stats = true;
    } else if (a == "--json") {
      json = true;  // implies --stats; the object on stdout is the output
      show_stats = true;
    } else if (a == "--trojan") {
      EMTS_REQUIRE(parse_trojan(next(), &kind), "unknown trojan label");
      has_trojan = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return usage_error();
    }
  }
  if (model_path.empty()) {
    std::fprintf(stderr, "monitor needs --model <model.emca>\n");
    return usage_error();
  }

  auto evaluator = io::load_calibration(model_path);
  core::RuntimeMonitor monitor{evaluator.sample_rate(), std::move(evaluator)};
  if (!json) {
    std::printf("cold start from %s: state %s, %zu calibration captures\n", model_path.c_str(),
                core::monitor_state_label(monitor.state()), monitor.traces_seen());
  }

  sim::Chip chip{silicon ? sim::make_silicon_config(sim::SiliconOptions{})
                         : sim::make_default_config()};
  if (has_trojan) chip.arm(kind);

  const auto& engine = sim::CaptureEngine::shared();
  const auto stream = engine.capture_batch(chip, sim::Pickup::kOnChipSensor, windows, 0);
  std::size_t pushed = 0;
  for (const auto& trace : stream.traces) {
    const auto state = monitor.push(trace);
    ++pushed;
    if (state == core::MonitorState::kAlarm) break;
  }

  if (json) {
    // A single JSON object on stdout — the same schema fleet --json embeds
    // per device.
    std::printf("%s\n", fleet::monitor_stats_json(monitor.state(), monitor.last_score(),
                                                  monitor.stats(), monitor.drain_events())
                            .c_str());
    return monitor.state() == core::MonitorState::kAlarm ? 1 : 0;
  }
  std::printf("monitored %zu captures%s: final state %s\n", pushed,
              has_trojan ? (std::string(" (trojan ") + trojan::kind_label(kind) + " armed)").c_str()
                         : "",
              core::monitor_state_label(monitor.state()));
  if (show_stats) {
    std::printf("monitor stats:\n");
    print_monitor_stats(monitor.stats(), monitor.drain_events());
  }
  return monitor.state() == core::MonitorState::kAlarm ? 1 : 0;
}

// ---------- fleet ----------

// A bad manifest (unreadable, malformed line, duplicate device_id) is an
// argument error — exit 2 with the parser's `path:line` message, not the
// generic runtime-error exit.
bool load_manifest(const std::string& path, std::vector<fleet::ManifestEntry>* entries) {
  try {
    *entries = fleet::parse_manifest(path);
    return true;
  } catch (const precondition_error& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return false;
  }
}

int cmd_fleet(const std::vector<std::string>& args) {
  std::string manifest_path;
  std::string model_path;
  fleet::FleetOptions options;
  bool show_stats = false;
  bool json = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string& {
      EMTS_REQUIRE(i + 1 < args.size(), a + " needs a value");
      return args[++i];
    };
    if (a == "--model") {
      model_path = next();
    } else if (a == "--shards") {
      options.shards = std::stoul(next());
    } else if (a == "--queue") {
      options.queue_capacity = std::stoul(next());
    } else if (a == "--policy") {
      const std::string& p = next();
      if (p == "block") {
        options.backpressure = fleet::BackpressurePolicy::kBlock;
      } else if (p == "drop-oldest") {
        options.backpressure = fleet::BackpressurePolicy::kDropOldest;
      } else if (p == "reject") {
        options.backpressure = fleet::BackpressurePolicy::kReject;
      } else {
        EMTS_REQUIRE(false, "--policy takes block|drop-oldest|reject");
      }
    } else if (a == "--pin") {
      options.pin_workers = true;
    } else if (a == "--stats") {
      show_stats = true;
    } else if (a == "--json") {
      json = true;
      show_stats = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return usage_error();
    } else if (manifest_path.empty()) {
      manifest_path = a;
    } else {
      std::fprintf(stderr, "unexpected argument %s\n", a.c_str());
      return usage_error();
    }
  }
  if (manifest_path.empty()) {
    std::fprintf(stderr, "fleet needs a <fleet.manifest>\n");
    return usage_error();
  }

  std::vector<fleet::ManifestEntry> entries;
  if (!load_manifest(manifest_path, &entries)) return 2;
  fleet::FleetMonitor fleet_monitor{options};

  std::vector<core::TraceSet> streams;
  streams.reserve(entries.size());
  std::size_t longest = 0;
  for (const fleet::ManifestEntry& entry : entries) {
    const std::string& model = entry.model_path.empty() ? model_path : entry.model_path;
    EMTS_REQUIRE(!model.empty(),
                 "device " + entry.device_id + " has no model (give one in the manifest"
                 " or via --model)");
    fleet_monitor.add_device(entry.device_id, io::load_calibration(model));
    streams.push_back(io::load_trace_archive(entry.archive_path));
    longest = std::max(longest, streams.back().size());
  }

  // Deterministic replay: round-robin across the manifest order, one capture
  // per device per round — the interleaving a shared capture front-end
  // produces, and the same schedule on every run.
  std::size_t refused = 0;
  for (std::size_t t = 0; t < longest; ++t) {
    for (std::size_t d = 0; d < entries.size(); ++d) {
      if (t >= streams[d].size()) continue;
      if (fleet_monitor.submit(entries[d].device_id, core::Trace{streams[d].traces[t]}) ==
          fleet::SubmitResult::kRejected) {
        ++refused;
      }
    }
  }
  fleet_monitor.flush();

  const fleet::FleetStats stats = fleet_monitor.stats();
  std::vector<fleet::FleetEvent> events = fleet_monitor.drain_events();

  if (json) {
    std::printf("%s\n", fleet::fleet_stats_json(stats, options.backpressure,
                                                options.queue_capacity, events)
                            .c_str());
    return stats.devices_alarm > 0 ? 1 : 0;
  }

  std::printf("fleet: %zu devices over %zu shards (policy %s, queue %zu)\n", stats.devices,
              stats.shards.size(), fleet::backpressure_label(options.backpressure),
              options.queue_capacity);
  std::printf("replayed %llu captures (%llu scored, %llu dropped, %zu refused)\n",
              static_cast<unsigned long long>(stats.traces_submitted),
              static_cast<unsigned long long>(stats.traces_processed),
              static_cast<unsigned long long>(stats.backpressure_dropped), refused);
  for (const fleet::SessionStats& session : stats.sessions) {
    std::printf("  %-16s shard %zu  %-10s scored %-6llu rejected %-4llu alarms %llu\n",
                session.device_id.c_str(), session.shard,
                core::monitor_state_label(session.state),
                static_cast<unsigned long long>(session.monitor.scored_captures),
                static_cast<unsigned long long>(session.monitor.traces_rejected),
                static_cast<unsigned long long>(session.monitor.alarms_latched));
  }
  std::printf("verdict: %zu alarmed, %zu monitoring, %zu calibrating\n", stats.devices_alarm,
              stats.devices_monitoring, stats.devices_calibrating);

  if (show_stats) {
    for (std::size_t s = 0; s < stats.shards.size(); ++s) {
      const fleet::ShardStats& shard = stats.shards[s];
      std::printf("shard %zu: submitted %llu processed %llu dropped %llu rejected %llu"
                  " blocked %llu high-water %zu\n",
                  s, static_cast<unsigned long long>(shard.submitted),
                  static_cast<unsigned long long>(shard.processed),
                  static_cast<unsigned long long>(shard.dropped_oldest),
                  static_cast<unsigned long long>(shard.rejected_full),
                  static_cast<unsigned long long>(shard.blocked), shard.queue_high_water);
    }
    for (const fleet::SessionStats& session : stats.sessions) {
      std::vector<core::MonitorEvent> session_events;
      for (const fleet::FleetEvent& event : events) {
        if (event.device_id == session.device_id) session_events.push_back(event.event);
      }
      std::printf("device %s (shard %zu, %s):\n", session.device_id.c_str(), session.shard,
                  core::monitor_state_label(session.state));
      print_monitor_stats(session.monitor, session_events);
    }
  }
  return stats.devices_alarm > 0 ? 1 : 0;
}

// ---------- serve / replay-client ----------

std::atomic<bool> g_stop{false};
std::atomic<bool> g_snapshot_request{false};

void handle_stop_signal(int) { g_stop.store(true); }
void handle_snapshot_signal(int) { g_snapshot_request.store(true); }

void install_serve_signal_handlers() {
  struct sigaction stop_action {};
  stop_action.sa_handler = handle_stop_signal;
  sigemptyset(&stop_action.sa_mask);
  // No SA_RESTART: the signal must interrupt poll() so the loop reacts now.
  sigaction(SIGINT, &stop_action, nullptr);
  sigaction(SIGTERM, &stop_action, nullptr);

  struct sigaction snapshot_action {};
  snapshot_action.sa_handler = handle_snapshot_signal;
  sigemptyset(&snapshot_action.sa_mask);
  sigaction(SIGUSR1, &snapshot_action, nullptr);
}

int cmd_serve(const std::vector<std::string>& args) {
  std::string manifest_path;
  std::string model_path;
  std::string restore_path;
  fleet::ServerOptions server_options;
  fleet::FleetOptions fleet_options;
  bool shards_given = false;
  bool queue_given = false;
  bool policy_given = false;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string& {
      EMTS_REQUIRE(i + 1 < args.size(), a + " needs a value");
      return args[++i];
    };
    if (a == "--socket") {
      server_options.socket_path = next();
    } else if (a == "--listen") {
      server_options.listen_address = next();
      // Malformed endpoints are argument errors (exit 2), caught here rather
      // than as a runtime throw out of the server constructor.
      try {
        fleet::parse_tcp_endpoint(server_options.listen_address);
      } catch (const precondition_error& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return usage_error();
      }
    } else if (a == "--allow") {
      const std::string& rule = next();
      try {
        fleet::parse_cidr(rule);
      } catch (const precondition_error& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return usage_error();
      }
      server_options.allow.push_back(rule);
    } else if (a == "--auth-secret") {
      server_options.auth_secret = next();
    } else if (a == "--incremental-snapshots") {
      server_options.incremental_snapshots = true;
    } else if (a == "--full-snapshot-every") {
      server_options.full_snapshot_every = std::stoull(next());
      if (server_options.full_snapshot_every == 0) {
        std::fprintf(stderr, "--full-snapshot-every must be >= 1\n");
        return usage_error();
      }
    } else if (a == "--model") {
      model_path = next();
    } else if (a == "--restore") {
      restore_path = next();
    } else if (a == "--snapshot-path") {
      server_options.snapshot_path = next();
    } else if (a == "--snapshot-every") {
      // Bad cadence syntax is an argument error (exit 2), not a runtime one.
      try {
        const fleet::SnapshotCadence cadence = fleet::parse_snapshot_cadence(next());
        server_options.snapshot_every_frames = cadence.every_frames;
        server_options.snapshot_every_ms = cadence.every_ms;
      } catch (const precondition_error& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return usage_error();
      }
    } else if (a == "--stats-path") {
      server_options.stats_path = next();
    } else if (a == "--stats-every") {
      server_options.stats_every_frames = std::stoull(next());
    } else if (a == "--shards") {
      fleet_options.shards = std::stoul(next());
      shards_given = true;
    } else if (a == "--queue") {
      fleet_options.queue_capacity = std::stoul(next());
      queue_given = true;
    } else if (a == "--policy") {
      const std::string& p = next();
      if (p == "block") {
        fleet_options.backpressure = fleet::BackpressurePolicy::kBlock;
      } else if (p == "drop-oldest") {
        fleet_options.backpressure = fleet::BackpressurePolicy::kDropOldest;
      } else if (p == "reject") {
        fleet_options.backpressure = fleet::BackpressurePolicy::kReject;
      } else {
        EMTS_REQUIRE(false, "--policy takes block|drop-oldest|reject");
      }
      policy_given = true;
    } else if (a == "--pin") {
      fleet_options.pin_workers = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return usage_error();
    } else if (manifest_path.empty()) {
      manifest_path = a;
    } else {
      std::fprintf(stderr, "unexpected argument %s\n", a.c_str());
      return usage_error();
    }
  }
  if (server_options.socket_path.empty() && server_options.listen_address.empty()) {
    std::fprintf(stderr, "serve needs --socket <path>, --listen <host:port>, or both\n");
    return usage_error();
  }
  if (manifest_path.empty() && restore_path.empty()) {
    std::fprintf(stderr, "serve needs a <fleet.manifest> or --restore <snap.emfs>\n");
    return usage_error();
  }
  if (!manifest_path.empty() && !restore_path.empty()) {
    std::fprintf(stderr, "serve takes a manifest or --restore, not both\n");
    return usage_error();
  }

  std::optional<io::FleetSnapshot> restored;
  if (!restore_path.empty()) {
    restored = io::load_fleet_snapshot(restore_path);
    // The snapshot's layout is the default; explicit flags win.
    if (!shards_given) fleet_options.shards = restored->shards;
    if (!queue_given) fleet_options.queue_capacity = restored->queue_capacity;
    if (!policy_given) {
      EMTS_REQUIRE(restored->backpressure <=
                       static_cast<std::uint8_t>(fleet::BackpressurePolicy::kReject),
                   "snapshot carries an unknown backpressure policy");
      fleet_options.backpressure =
          static_cast<fleet::BackpressurePolicy>(restored->backpressure);
    }
  }

  fleet::FleetMonitor fleet_monitor{fleet_options};
  if (restored.has_value()) {
    fleet_monitor.restore(*restored);
    std::printf("restored %zu devices from %s\n", restored->devices.size(),
                restore_path.c_str());
  } else {
    std::vector<fleet::ManifestEntry> entries;
    if (!load_manifest(manifest_path, &entries)) return 2;
    for (const fleet::ManifestEntry& entry : entries) {
      const std::string& model = entry.model_path.empty() ? model_path : entry.model_path;
      EMTS_REQUIRE(!model.empty(),
                   "device " + entry.device_id + " has no model (give one in the manifest"
                   " or via --model)");
      fleet_monitor.add_device(entry.device_id, io::load_calibration(model));
    }
  }

  install_serve_signal_handlers();
  fleet::IngestServer server{fleet_monitor, server_options};
  const unsigned hardware_threads = std::thread::hardware_concurrency();
  if (hardware_threads > 0 && fleet_monitor.shard_count() > hardware_threads) {
    std::fprintf(stderr,
                 "warning: %zu shards exceed %u hardware threads — shard workers will"
                 " contend for cores instead of scaling\n",
                 fleet_monitor.shard_count(), hardware_threads);
  }
  std::string endpoints;
  if (!server_options.socket_path.empty()) endpoints = server_options.socket_path;
  if (!server_options.listen_address.empty()) {
    if (!endpoints.empty()) endpoints += " + ";
    endpoints += "tcp:" + server_options.listen_address;
  }
  std::printf("serving %zu devices over %zu shards on %s (policy %s, queue %zu)\n",
              fleet_monitor.device_count(), fleet_monitor.shard_count(),
              endpoints.c_str(),
              fleet::backpressure_label(fleet_options.backpressure),
              fleet_options.queue_capacity);
  std::fflush(stdout);

  server.run(g_stop, g_snapshot_request);

  const fleet::ServerCounters& counters = server.counters();
  const fleet::FleetStats stats = fleet_monitor.stats();
  std::printf("ingested %llu frames (%llu rejected) over %llu connections;"
              " %llu snapshots, %llu stats exports\n",
              static_cast<unsigned long long>(counters.frames_accepted),
              static_cast<unsigned long long>(counters.frames_rejected),
              static_cast<unsigned long long>(counters.connections_accepted),
              static_cast<unsigned long long>(counters.snapshots_written),
              static_cast<unsigned long long>(counters.stats_exports));
  std::printf("verdict: %zu alarmed, %zu monitoring, %zu calibrating\n", stats.devices_alarm,
              stats.devices_monitoring, stats.devices_calibrating);
  return stats.devices_alarm > 0 ? 1 : 0;
}

int cmd_replay_client(const std::vector<std::string>& args) {
  std::string archive_path;
  std::string socket_path;
  std::string connect_address;
  std::string auth_secret;
  std::string device_id;
  double rate = 0.0;  // traces/sec; 0 = as fast as the socket takes them
  std::uint64_t first = 0;
  std::uint64_t count = UINT64_MAX;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string& {
      EMTS_REQUIRE(i + 1 < args.size(), a + " needs a value");
      return args[++i];
    };
    if (a == "--socket") {
      socket_path = next();
    } else if (a == "--connect") {
      connect_address = next();
      try {
        fleet::parse_tcp_endpoint(connect_address);
      } catch (const precondition_error& error) {
        std::fprintf(stderr, "%s\n", error.what());
        return usage_error();
      }
    } else if (a == "--auth-secret") {
      auth_secret = next();
    } else if (a == "--device") {
      device_id = next();
    } else if (a == "--rate") {
      rate = std::stod(next());
      EMTS_REQUIRE(rate >= 0.0, "--rate must be >= 0");
    } else if (a == "--first") {
      first = std::stoull(next());
    } else if (a == "--count") {
      count = std::stoull(next());
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return usage_error();
    } else if (archive_path.empty()) {
      archive_path = a;
    } else {
      std::fprintf(stderr, "unexpected argument %s\n", a.c_str());
      return usage_error();
    }
  }
  if (archive_path.empty() || device_id.empty() ||
      (socket_path.empty() == connect_address.empty())) {
    std::fprintf(stderr, "replay-client needs <archive.emta>, --device, and exactly one"
                         " of --socket or --connect\n");
    return usage_error();
  }

  // The archive stays on disk: frames are encoded straight out of the
  // mapping, so a multi-gigabyte replay costs one trace of heap.
  const io::MappedTraceArchive archive{archive_path};
  EMTS_REQUIRE(first <= archive.size(),
               "--first beyond the archive (" + std::to_string(archive.size()) + " traces)");
  const std::uint64_t available = archive.size() - first;
  const std::uint64_t to_send = count < available ? count : available;

  // A writer must not die by SIGPIPE when the daemon goes away mid-stream;
  // the write error below reports it instead.
  std::signal(SIGPIPE, SIG_IGN);

  const bool tcp = !connect_address.empty();
  const std::string& endpoint_label = tcp ? connect_address : socket_path;
  sockaddr_un unix_addr{};
  sockaddr_in tcp_addr{};
  const sockaddr* addr = nullptr;
  socklen_t addr_len = 0;
  int fd = -1;
  if (tcp) {
    const fleet::TcpEndpoint endpoint = fleet::parse_tcp_endpoint(connect_address);
    tcp_addr.sin_family = AF_INET;
    tcp_addr.sin_addr.s_addr = htonl(endpoint.addr);
    tcp_addr.sin_port = htons(endpoint.port);
    addr = reinterpret_cast<const sockaddr*>(&tcp_addr);
    addr_len = sizeof tcp_addr;
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EMTS_REQUIRE(fd >= 0, "replay-client: socket() failed");
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  } else {
    unix_addr.sun_family = AF_UNIX;
    EMTS_REQUIRE(socket_path.size() < sizeof unix_addr.sun_path,
                 "socket path too long: " + socket_path);
    std::strncpy(unix_addr.sun_path, socket_path.c_str(), sizeof unix_addr.sun_path - 1);
    addr = reinterpret_cast<const sockaddr*>(&unix_addr);
    addr_len = sizeof unix_addr;
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EMTS_REQUIRE(fd >= 0, "replay-client: socket() failed");
  }
  // Retry the connect briefly: the natural sequencing is `serve &` then
  // replay-client, and the daemon may still be binding.
  bool connected = false;
  for (int attempt = 0; attempt < 50; ++attempt) {
    if (::connect(fd, addr, addr_len) == 0) {
      connected = true;
      break;
    }
    struct timespec backoff {0, 100 * 1000 * 1000};
    ::nanosleep(&backoff, nullptr);
  }
  if (!connected) {
    ::close(fd);
    EMTS_REQUIRE(false, "replay-client: cannot connect to " + endpoint_label);
  }

  std::string frame;
  if (!auth_secret.empty()) {
    // Authenticate before the first trace: the daemon closes unauthenticated
    // TCP connections at their first trace frame.
    io::wire::encode_hello_frame(auth_secret, frame);
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t put = ::write(fd, frame.data() + off, frame.size() - off);
      if (put < 0 && errno == EINTR) continue;
      if (put <= 0) {
        ::close(fd);
        EMTS_REQUIRE(false, "replay-client: HELLO write failed (daemon gone?)");
      }
      off += static_cast<std::size_t>(put);
    }
  }
  std::uint64_t bytes_sent = 0;
  const std::uint64_t t0 = util::monotonic_ns();
  const double ns_per_trace = rate > 0.0 ? 1e9 / rate : 0.0;
  for (std::uint64_t t = 0; t < to_send; ++t) {
    frame.clear();
    io::wire::encode_trace_frame(device_id, archive.sample_rate(),
                                 archive.trace(static_cast<std::size_t>(first + t)),
                                 archive.trace_length(), frame);
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t put = ::write(fd, frame.data() + off, frame.size() - off);
      if (put < 0 && errno == EINTR) continue;
      if (put <= 0) {
        ::close(fd);
        EMTS_REQUIRE(false, "replay-client: write failed (daemon gone?)");
      }
      off += static_cast<std::size_t>(put);
    }
    bytes_sent += frame.size();

    if (ns_per_trace > 0.0) {
      // Pace against the absolute schedule, not per-frame sleeps, so encode
      // and write time do not drag the achieved rate below the target.
      const std::uint64_t deadline =
          t0 + static_cast<std::uint64_t>(ns_per_trace * static_cast<double>(t + 1));
      const std::uint64_t now = util::monotonic_ns();
      if (now < deadline) {
        const std::uint64_t wait = deadline - now;
        struct timespec pause {static_cast<time_t>(wait / 1000000000ull),
                               static_cast<long>(wait % 1000000000ull)};
        ::nanosleep(&pause, nullptr);
      }
    }
  }
  ::close(fd);

  const double elapsed_s =
      static_cast<double>(util::monotonic_ns() - t0) / 1e9;
  std::printf("streamed %llu traces (%llu bytes) from %s[%llu..%llu) to %s in %.3f s"
              " (%.0f traces/s)\n",
              static_cast<unsigned long long>(to_send),
              static_cast<unsigned long long>(bytes_sent), archive_path.c_str(),
              static_cast<unsigned long long>(first),
              static_cast<unsigned long long>(first + to_send), endpoint_label.c_str(),
              elapsed_s,
              elapsed_s > 0.0 ? static_cast<double>(to_send) / elapsed_s : 0.0);
  return 0;
}

// ---------- array ----------

bool parse_grid_spec(const std::string& text, array::GridSpec* spec) {
  const std::size_t x = text.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= text.size()) return false;
  try {
    spec->nx = std::stoul(text.substr(0, x));
    spec->ny = std::stoul(text.substr(x + 1));
  } catch (const std::exception&) {
    return false;
  }
  return spec->nx >= 2 && spec->ny >= 2;
}

int cmd_array_calibrate(const std::vector<std::string>& args) {
  if (args.empty()) return usage_error();
  const std::string out_path = args[0];

  array::GridSpec grid_spec;
  array::ArrayCalibrationOptions options;
  sim::EngineOptions engine_options;

  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string& {
      EMTS_REQUIRE(i + 1 < args.size(), a + " needs a value");
      return args[++i];
    };
    if (a == "--grid") {
      const std::string& g = next();
      if (!parse_grid_spec(g, &grid_spec)) {
        std::fprintf(stderr, "--grid takes NxM with N, M >= 2 (got %s)\n", g.c_str());
        return usage_error();
      }
    } else if (a == "--turns") {
      grid_spec.turns = std::stoul(next());
    } else if (a == "--windows") {
      options.windows = std::stoul(next());
    } else if (a == "--first") {
      options.first_index = std::stoull(next());
    } else if (a == "--threads") {
      engine_options.threads = std::stoul(next());
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return usage_error();
    }
  }

  const sim::Chip chip{sim::make_default_config()};
  const array::SensorGrid grid{chip.floorplan(), grid_spec};
  const array::ArrayCapture capture{grid};
  const sim::CaptureEngine engine{engine_options};
  const array::ArrayCalibration calibration = array::calibrate_array(capture, engine, chip, options);
  array::save_array_calibration(out_path, calibration);

  std::printf("calibrated %zux%zu sensor grid (%zu coils x %zu modules) on %zu golden"
              " windows -> %s\n",
              grid.nx(), grid.ny(), grid.sensor_count(), grid.module_count(), options.windows,
              out_path.c_str());
  return 0;
}

// Shared monitor/localize driver: replay `windows` captures (optionally with
// an armed Trojan) through the artifact's per-coil sessions.
struct ArrayRun {
  array::ArrayCalibration calibration;
  std::optional<trojan::TrojanKind> armed;
  std::size_t windows = 0;
  std::unique_ptr<sim::Chip> chip;
  std::unique_ptr<array::SensorGrid> grid;
  std::unique_ptr<array::ArrayMonitor> monitor;
};

int run_array_monitor(const std::vector<std::string>& args, ArrayRun* run) {
  std::string model_path;
  std::size_t windows = 64;
  // Default replay range sits past the calibration campaign, so a fresh
  // monitor scores out-of-sample windows.
  std::uint64_t first = 4096;
  bool has_trojan = false;
  trojan::TrojanKind kind{};

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string& {
      EMTS_REQUIRE(i + 1 < args.size(), a + " needs a value");
      return args[++i];
    };
    if (a == "--model") {
      model_path = next();
    } else if (a == "--windows") {
      windows = std::stoul(next());
    } else if (a == "--first") {
      first = std::stoull(next());
    } else if (a == "--json") {
      // handled by the caller; accepted here so both subcommands share flags
    } else if (a == "--trojan") {
      EMTS_REQUIRE(parse_trojan(next(), &kind), "unknown trojan label");
      has_trojan = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return usage_error();
    }
  }
  if (model_path.empty()) {
    std::fprintf(stderr, "array monitor/localize needs --model <model.emaa>\n");
    return usage_error();
  }
  EMTS_REQUIRE(windows >= 1, "--windows must be >= 1");

  run->calibration = array::load_array_calibration(model_path);
  run->windows = windows;
  run->chip = std::make_unique<sim::Chip>(sim::make_default_config());
  EMTS_REQUIRE(run->calibration.sample_rate == run->chip->sample_rate(),
               "artifact sample rate does not match the chip configuration");
  if (has_trojan) {
    run->chip->arm(kind);
    run->armed = kind;
  }
  run->grid =
      std::make_unique<array::SensorGrid>(run->chip->floorplan(), run->calibration.grid);

  const array::ArrayCapture capture{*run->grid};
  const array::BundleSet bundles =
      capture.capture_batch(sim::CaptureEngine::shared(), *run->chip, windows, first);
  run->monitor = std::make_unique<array::ArrayMonitor>(*run->grid, run->calibration);
  run->monitor->push_bundles(bundles);
  return -1;  // no exit yet: the subcommand renders the result
}

bool array_json_requested(const std::vector<std::string>& args) {
  for (const std::string& a : args) {
    if (a == "--json") return true;
  }
  return false;
}

int cmd_array_monitor(const std::vector<std::string>& args) {
  ArrayRun run;
  const int early_exit = run_array_monitor(args, &run);
  if (early_exit >= 0) return early_exit;
  const bool json = array_json_requested(args);

  const auto states = run.monitor->states();
  std::size_t session_alarms = 0;
  std::size_t spectral_alarms = 0;
  for (std::size_t s = 0; s < states.size(); ++s) {
    if (states[s] == core::MonitorState::kAlarm) ++session_alarms;
    if (run.monitor->spectral_alarmed(s)) ++spectral_alarms;
  }
  const bool alarm = run.monitor->any_alarm();

  if (json) {
    std::printf("{\"schema\":\"array-monitor/1\",\"grid\":\"%zux%zu\",\"windows\":%zu,"
                "\"alarm\":%s,\"session_alarms\":%zu,\"spectral_alarms\":%zu}\n",
                run.grid->nx(), run.grid->ny(), run.windows, alarm ? "true" : "false",
                session_alarms, spectral_alarms);
    return alarm ? 1 : 0;
  }
  std::printf("array monitor: %zux%zu grid, %zu windows%s\n", run.grid->nx(), run.grid->ny(),
              run.windows,
              run.armed ? (std::string(", trojan ") + trojan::kind_label(*run.armed) +
                           " armed")
                              .c_str()
                        : "");
  std::printf("  coils alarmed: %zu per-trace sessions, %zu spectral latches\n",
              session_alarms, spectral_alarms);
  std::printf("  verdict: %s\n", alarm ? "ALARM" : "trusted");
  return alarm ? 1 : 0;
}

int cmd_array_localize(const std::vector<std::string>& args) {
  ArrayRun run;
  const int early_exit = run_array_monitor(args, &run);
  if (early_exit >= 0) return early_exit;
  const bool json = array_json_requested(args);

  const bool alarm = run.monitor->any_alarm();
  // Localization is the on-alarm follow-up: a trusted stream names no region
  // (the residual noise floor is not an anomaly pattern worth matching).
  array::LocalizationReport report;
  if (alarm) {
    const array::Localizer localizer{*run.grid};
    report = localizer.localize(run.monitor->anomaly_energy());
  }

  std::string expected;
  bool hit = false;
  std::size_t cells = 0;
  if (run.armed) {
    expected = sim::trojan_host_module(*run.armed);
    if (report.localized) {
      hit = report.module_name == expected;
      cells = array::cell_distance(*run.grid, report.module_name, expected);
    }
  }

  if (json) {
    std::printf("{\"schema\":\"array-localize/1\",\"grid\":\"%zux%zu\",\"windows\":%zu,"
                "\"alarm\":%s,\"localized\":%s",
                run.grid->nx(), run.grid->ny(), run.windows, alarm ? "true" : "false",
                report.localized ? "true" : "false");
    if (report.localized) {
      std::printf(",\"module\":\"%s\",\"score\":%.6f,\"cell\":{\"ix\":%zu,\"iy\":%zu}",
                  report.module_name.c_str(), report.score, report.cell.ix, report.cell.iy);
    }
    if (run.armed) {
      std::printf(",\"expected\":\"%s\"", expected.c_str());
      if (report.localized) {
        std::printf(",\"hit\":%s,\"cell_distance\":%zu", hit ? "true" : "false", cells);
      }
    }
    std::printf("}\n");
    return alarm ? 1 : 0;
  }

  std::printf("array localize: %zux%zu grid, %zu windows%s\n", run.grid->nx(), run.grid->ny(),
              run.windows,
              run.armed ? (std::string(", trojan ") + trojan::kind_label(*run.armed) +
                           " armed")
                              .c_str()
                        : "");
  std::printf("  verdict: %s\n", alarm ? "ALARM" : "trusted");
  if (!alarm) {
    std::printf("  localization: skipped (no alarm to localize)\n");
  } else if (!report.localized) {
    std::printf("  localization: no anomaly energy above the golden baseline\n");
  } else {
    std::printf("  localization: %s (score %.3f) at cell (%zu, %zu)\n",
                report.module_name.c_str(), report.score, report.cell.ix, report.cell.iy);
    if (run.armed) {
      std::printf("  ground truth : %s — %s (%zu cell%s away)\n", expected.c_str(),
                  hit ? "hit" : "miss", cells, cells == 1 ? "" : "s");
    }
  }
  return alarm ? 1 : 0;
}

int cmd_array(const std::vector<std::string>& args) {
  if (args.empty()) return usage_error();
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (args[0] == "calibrate") return cmd_array_calibrate(rest);
  if (args[0] == "monitor") return cmd_array_monitor(rest);
  if (args[0] == "localize") return cmd_array_localize(rest);
  std::fprintf(stderr, "unknown array subcommand %s\n", args[0].c_str());
  return usage_error();
}

int cmd_snr(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage_error();
  const auto signal = io::load_trace_archive(args[0]);
  const auto noise = io::load_trace_archive(args[1]);
  std::vector<double> s;
  std::vector<double> n;
  for (const auto& t : signal.traces) s.insert(s.end(), t.begin(), t.end());
  for (const auto& t : noise.traces) n.insert(n.end(), t.begin(), t.end());
  std::printf("SNR = %.4f dB\n", stats::snr_db(s, n));
  return 0;
}

int cmd_info(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage_error();
  const auto set = io::load_trace_archive(args[0]);
  std::printf("%s: %zu traces x %zu samples @ %.3f MS/s (%.2f us per trace)\n",
              args[0].c_str(), set.size(), set.trace_length(), set.sample_rate / 1e6,
              1e6 * static_cast<double>(set.trace_length()) / set.sample_rate);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  baseline::register_ron_detector();

  if (argc < 2) return usage_error();
  const std::string command = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);

  if (command == "help" || command == "--help" || command == "-h") {
    print_usage(stdout);
    return 0;
  }
  if (command == "--version" || command == "version") {
    std::printf("emsentry_cli %s\n", EMSENTRY_VERSION);
    return 0;
  }

  try {
    if (command == "capture") return cmd_capture(args);
    if (command == "evaluate") return cmd_evaluate(args);
    if (command == "calibrate") return cmd_calibrate(args);
    if (command == "monitor") return cmd_monitor(args);
    if (command == "array") return cmd_array(args);
    if (command == "fleet") return cmd_fleet(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "replay-client") return cmd_replay_client(args);
    if (command == "snr") return cmd_snr(args);
    if (command == "info") return cmd_info(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  }
  std::fprintf(stderr, "unknown command %s\n", command.c_str());
  return usage_error();
}
