// Small dense linear algebra: just what PCA and the EM solver need.
// Row-major storage, value semantics, bounds-checked element access in terms
// of library invariants (EMTS_ASSERT).
#pragma once

#include <cstddef>
#include <vector>

namespace emts::linalg {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Creates from nested initializer-style data; all rows must be equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  /// Raw row access for tight loops.
  double* row_data(std::size_t r);
  const double* row_data(std::size_t r) const;

  Matrix transposed() const;

  /// Matrix product; requires cols() == rhs.rows().
  Matrix operator*(const Matrix& rhs) const;

  /// Matrix-vector product; requires cols() == v.size().
  std::vector<double> operator*(const std::vector<double>& v) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double scale);

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Maximum absolute off-diagonal element (square matrices only).
  double max_off_diagonal() const;

  /// True if this is numerically symmetric to within `tol`.
  bool is_symmetric(double tol = 1e-12) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix lhs, double scale);

// -------- vector helpers (free functions over std::vector<double>) ---------

double dot(const std::vector<double>& a, const std::vector<double>& b);
double norm2(const std::vector<double>& v);

/// Euclidean distance ||a - b||_2; requires equal sizes.
double euclidean_distance(const std::vector<double>& a, const std::vector<double>& b);

std::vector<double> scaled(std::vector<double> v, double s);
std::vector<double> add(const std::vector<double>& a, const std::vector<double>& b);
std::vector<double> subtract(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace emts::linalg
