// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
// Sizes here are small (covariance/Gram matrices of a few hundred), where
// Jacobi is simple, robust, and gives orthonormal eigenvectors to machine
// precision — exactly what the PCA stage needs.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace emts::linalg {

/// Result of a symmetric eigendecomposition, sorted by descending eigenvalue.
struct EigenDecomposition {
  std::vector<double> eigenvalues;  // descending
  Matrix eigenvectors;              // column j pairs with eigenvalues[j]
};

struct JacobiOptions {
  int max_sweeps = 64;       // hard iteration cap
  double tolerance = 1e-12;  // stop when max |off-diagonal| <= tol * ||A||_F
};

/// Eigendecomposition of a symmetric matrix. Requires a.is_symmetric() within
/// a loose tolerance (1e-9 relative); throws precondition_error otherwise.
EigenDecomposition symmetric_eigen(const Matrix& a, const JacobiOptions& options = {});

}  // namespace emts::linalg
