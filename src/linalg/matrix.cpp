#include "linalg/matrix.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace emts::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_{rows}, cols_{cols}, data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  const std::size_t cols = rows.front().size();
  Matrix m{rows.size(), cols};
  for (std::size_t r = 0; r < rows.size(); ++r) {
    EMTS_REQUIRE(rows[r].size() == cols, "from_rows: ragged input");
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m{n, n};
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  EMTS_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  EMTS_ASSERT(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double* Matrix::row_data(std::size_t r) {
  EMTS_ASSERT(r < rows_);
  return data_.data() + r * cols_;
}

const double* Matrix::row_data(std::size_t r) const {
  EMTS_ASSERT(r < rows_);
  return data_.data() + r * cols_;
}

Matrix Matrix::transposed() const {
  Matrix t{cols_, rows_};
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  EMTS_REQUIRE(cols_ == rhs.rows_, "matrix product: inner dimensions differ");
  Matrix out{rows_, rhs.cols_};
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* rrow = rhs.row_data(k);
      double* orow = out.row_data(i);
      for (std::size_t j = 0; j < rhs.cols_; ++j) orow[j] += a * rrow[j];
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(const std::vector<double>& v) const {
  EMTS_REQUIRE(cols_ == v.size(), "matrix-vector product: dimension mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* row = row_data(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += row[j] * v[j];
    out[i] = acc;
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  EMTS_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix +=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  EMTS_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_, "matrix -=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scale) {
  for (double& v : data_) v *= scale;
  return *this;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_off_diagonal() const {
  EMTS_REQUIRE(rows_ == cols_, "max_off_diagonal requires a square matrix");
  double best = 0.0;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c)
      if (r != c) best = std::max(best, std::abs((*this)(r, c)));
  return best;
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix lhs, double scale) { return lhs *= scale; }

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  EMTS_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const std::vector<double>& v) { return std::sqrt(dot(v, v)); }

double euclidean_distance(const std::vector<double>& a, const std::vector<double>& b) {
  EMTS_REQUIRE(a.size() == b.size(), "euclidean_distance: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

std::vector<double> scaled(std::vector<double> v, double s) {
  for (double& x : v) x *= s;
  return v;
}

std::vector<double> add(const std::vector<double>& a, const std::vector<double>& b) {
  EMTS_REQUIRE(a.size() == b.size(), "add: size mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

std::vector<double> subtract(const std::vector<double>& a, const std::vector<double>& b) {
  EMTS_REQUIRE(a.size() == b.size(), "subtract: size mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

}  // namespace emts::linalg
