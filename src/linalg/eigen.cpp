#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace emts::linalg {

namespace {

// One Jacobi rotation zeroing element (p, q) of `a`, accumulating into `v`.
void rotate(Matrix& a, Matrix& v, std::size_t p, std::size_t q) {
  const double apq = a(p, q);
  if (apq == 0.0) return;
  const double app = a(p, p);
  const double aqq = a(q, q);
  const double theta = (aqq - app) / (2.0 * apq);
  // Stable tangent of the rotation angle.
  const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
  const double c = 1.0 / std::sqrt(t * t + 1.0);
  const double s = t * c;
  const std::size_t n = a.rows();

  for (std::size_t k = 0; k < n; ++k) {
    const double akp = a(k, p);
    const double akq = a(k, q);
    a(k, p) = c * akp - s * akq;
    a(k, q) = s * akp + c * akq;
  }
  for (std::size_t k = 0; k < n; ++k) {
    const double apk = a(p, k);
    const double aqk = a(q, k);
    a(p, k) = c * apk - s * aqk;
    a(q, k) = s * apk + c * aqk;
  }
  for (std::size_t k = 0; k < n; ++k) {
    const double vkp = v(k, p);
    const double vkq = v(k, q);
    v(k, p) = c * vkp - s * vkq;
    v(k, q) = s * vkp + c * vkq;
  }
}

}  // namespace

EigenDecomposition symmetric_eigen(const Matrix& a, const JacobiOptions& options) {
  EMTS_REQUIRE(a.rows() == a.cols(), "symmetric_eigen requires a square matrix");
  const double fro = a.frobenius_norm();
  EMTS_REQUIRE(a.is_symmetric(std::max(1e-9 * fro, 1e-12)),
               "symmetric_eigen requires a symmetric matrix");

  const std::size_t n = a.rows();
  Matrix work = a;
  Matrix vectors = Matrix::identity(n);

  // Symmetrize exactly so rotations stay consistent.
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = r + 1; c < n; ++c) {
      const double avg = 0.5 * (work(r, c) + work(c, r));
      work(r, c) = avg;
      work(c, r) = avg;
    }

  const double stop = options.tolerance * std::max(fro, 1e-300);
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    if (work.max_off_diagonal() <= stop) break;
    for (std::size_t p = 0; p + 1 < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q)
        if (std::abs(work(p, q)) > stop) rotate(work, vectors, p, q);
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return work(i, i) > work(j, j); });

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix{n, n};
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = work(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) out.eigenvectors(i, j) = vectors(i, order[j]);
  }
  return out;
}

}  // namespace emts::linalg
