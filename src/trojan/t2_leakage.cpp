#include "trojan/t2_leakage.hpp"

#include "netlist/builders.hpp"
#include "trojan/detail.hpp"
#include "util/assert.hpp"

namespace emts::trojan {

namespace {

constexpr std::size_t kTableOneCells = 2793;  // Table I
constexpr std::size_t kHistoryBits = 1280;    // 10 captured keys
// Crowbar leakage while the observed bit is 0 (amperes). A static rail-to-
// rail path, not switching charge — this is what makes T2 nearly invisible
// to edge-sensitive probes but shifts the sensor's low-frequency content.
constexpr double kLeakAmps = 0.45e-3;
// Shift-event switching: ~half the history flops flip per shift.
constexpr double kShiftChargeFc = 640.0 * 30.0;
// Clock loading of the armed 1,280-flop history register: burns charge every
// cycle even without data flips. This clock-synchronous component is what
// lifts the clock-harmonic spots in Fig. 6(j) ("significant amplitude
// increase in a number of frequency spots").
constexpr double kClockLoadChargeFc = 19000.0;
constexpr double kDormantChargeFc = 10.0;

}  // namespace

T2Leakage::T2Leakage() : netlist_{"t2_leakage"} {
  using namespace netlist;
  Netlist& nl = netlist_;

  enable_ = nl.add_net("arm");
  nl.mark_primary_input(enable_);

  // 24-bit pre-set timer; a comparator on its low 6 bits paces the shift to
  // one bit every kCyclesPerBit (= 64) cycles.
  const auto timer = build_counter(nl, 24, enable_);
  std::vector<NetId> low_bits(timer.bits.begin(), timer.bits.begin() + 6);
  const NetId shift_now = build_equals_const(nl, low_bits, 0x3f);
  nl.mark_primary_output(shift_now);

  // Key-history shift register with parallel-load muxes on the first 128
  // stages (each new key capture pushes the previous ones deeper).
  NetId serial_prev = nl.add_net("ser_gnd");
  nl.add_cell(CellType::kTieLo, {}, serial_prev);
  const NetId load = nl.add_net("key_load");
  nl.mark_primary_input(load);
  for (std::size_t b = 0; b < kHistoryBits; ++b) {
    const NetId q = nl.add_net("hist_q" + std::to_string(b));
    if (b < 128) {
      const NetId key_bit = nl.add_net("key_in" + std::to_string(b));
      nl.mark_primary_input(key_bit);
      const NetId d = nl.add_net("hist_d" + std::to_string(b));
      nl.add_cell(CellType::kMux2, {serial_prev, key_bit, load}, d);
      nl.add_cell(CellType::kDff, {d}, q);
    } else {
      const NetId d = nl.add_net("hist_d" + std::to_string(b));
      nl.add_cell(CellType::kMux2, {q, serial_prev, shift_now}, d);
      nl.add_cell(CellType::kDff, {d}, q);
    }
    serial_prev = q;
  }

  // The crowbar pair: the observed stage drives inverter 1, whose output
  // drives inverter 2; the leak flows between them when the bit is 0.
  const NetId inv1 = nl.add_net("crowbar_mid");
  const NetId inv2 = nl.add_net("crowbar_out");
  nl.add_cell(CellType::kInv, {serial_prev}, inv1);
  nl.add_cell(CellType::kInv, {inv1}, inv2);
  nl.mark_primary_output(inv2);

  detail::pad_with_driver_chain(nl, inv2, kTableOneCells);
  EMTS_ASSERT(nl.cell_count() == kTableOneCells);
}

double T2Leakage::area_um2() const { return netlist_.gate_count().area_um2; }

std::size_t T2Leakage::key_bit_index(std::uint64_t trace_index, std::size_t cycle,
                                     std::size_t cycles_per_trace) {
  const std::uint64_t absolute_cycle =
      trace_index * cycles_per_trace + static_cast<std::uint64_t>(cycle);
  return static_cast<std::size_t>((absolute_cycle / kCyclesPerBit) % 128);
}

void T2Leakage::contribute(const TraceContext& context, power::CurrentTrace& trace) const {
  if (!active()) {
    for (std::size_t c = 0; c < context.num_cycles; ++c) {
      trace.add_pulse({c, 1.0, 150.0, 400.0}, kDormantChargeFc);
    }
    return;
  }

  const double cycle_s = context.clock.period_s();
  for (std::size_t c = 0; c < context.num_cycles; ++c) {
    const std::uint64_t absolute_cycle =
        context.trace_index * context.num_cycles + static_cast<std::uint64_t>(c);

    // Clock tree serves the armed register bank every cycle.
    trace.add_pulse({c, 1.0, 100.0, 1400.0}, kClockLoadChargeFc);

    // Shift event: the history register advances (spread across the cycle —
    // the 1,280-stage chain settles slowly through its mux network).
    if (absolute_cycle % kCyclesPerBit == 0) {
      trace.add_pulse({c, 1.0, 250.0, 19000.0}, kShiftChargeFc);
    }

    // Crowbar leak while the observed key bit is 0 (the whole cycle).
    const std::size_t bit_index = key_bit_index(context.trace_index, c, context.num_cycles);
    const bool bit = ((context.key[bit_index / 8] >> (bit_index % 8)) & 1u) != 0;
    if (!bit) {
      // Model the static leak as charge spread across the full cycle.
      const double leak_charge_fc = kLeakAmps * cycle_s * 1e15;
      trace.add_pulse({c, 1.0, 0.0, 1e12 * cycle_s}, leak_charge_fc);
    }
  }
}

}  // namespace emts::trojan
