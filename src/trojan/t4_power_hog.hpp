// Trojan 4 — performance/power degradation (paper Sec. IV-A): "causes
// performance degradation of the circuit. It increases the power consumption
// by introducing more flipping registers after activation."
//
// Structure: a 1,380-flop toggle bank (every flop flips every cycle while
// armed) plus trigger decode — 2,793 cells total, matching T2 in Table I.
#pragma once

#include "trojan/trojan.hpp"

namespace emts::trojan {

class T4PowerHog final : public Trojan {
 public:
  T4PowerHog();

  TrojanKind kind() const override { return TrojanKind::kT4PowerHog; }
  std::string name() const override { return "T4 power-degradation register bank"; }
  const netlist::Netlist* gate_netlist() const override { return &netlist_; }
  double area_um2() const override;
  void contribute(const TraceContext& context, power::CurrentTrace& trace) const override;

  static constexpr std::size_t kBankWidth = 1380;

  netlist::NetId enable_net() const { return enable_; }
  const std::vector<netlist::NetId>& bank_outputs() const { return bank_q_; }

 private:
  netlist::Netlist netlist_;
  netlist::NetId enable_ = 0;
  std::vector<netlist::NetId> bank_q_;
};

}  // namespace emts::trojan
