#include "trojan/t4_power_hog.hpp"

#include "netlist/builders.hpp"
#include "trojan/detail.hpp"
#include "util/assert.hpp"

namespace emts::trojan {

namespace {

constexpr std::size_t kTableOneCells = 2793;  // Table I (same as T2)
// The bank's flops are minimum-drive cells with no load beyond their own
// feedback XOR, so the per-flip charge is well below the AES datapath's
// heavily loaded registers.
constexpr double kBankChargePerCycleFc = 38500.0;
constexpr double kDormantChargeFc = 10.0;

}  // namespace

T4PowerHog::T4PowerHog() : netlist_{"t4_power_hog"} {
  using namespace netlist;
  Netlist& nl = netlist_;

  enable_ = nl.add_net("arm");
  nl.mark_primary_input(enable_);

  const auto bank = build_toggle_bank(nl, kBankWidth, enable_);
  bank_q_ = bank.q;
  nl.mark_primary_output(bank_q_.front());

  detail::pad_with_driver_chain(nl, bank_q_.back(), kTableOneCells);
  EMTS_ASSERT(nl.cell_count() == kTableOneCells);
}

double T4PowerHog::area_um2() const { return netlist_.gate_count().area_um2; }

void T4PowerHog::contribute(const TraceContext& context, power::CurrentTrace& trace) const {
  if (!active()) {
    for (std::size_t c = 0; c < context.num_cycles; ++c) {
      trace.add_pulse({c, 1.0, 150.0, 400.0}, kDormantChargeFc);
    }
    return;
  }

  // Every armed cycle the whole bank flips right after the clock edge — a
  // clock-synchronous amplitude increase, which is why T4's spectral
  // signature lifts the clock spots themselves (Fig. 6(l)).
  for (std::size_t c = 0; c < context.num_cycles; ++c) {
    trace.add_pulse({c, 1.0, 200.0, 1200.0}, kBankChargePerCycleFc);
  }
}

}  // namespace emts::trojan
