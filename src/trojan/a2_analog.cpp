#include "trojan/a2_analog.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace emts::trojan {

A2ChargePump::A2ChargePump() : A2ChargePump(Params{}) {}

A2ChargePump::A2ChargePump(const Params& params) : params_{params} {
  EMTS_REQUIRE(params.charge_per_pulse_v > 0.0, "pump step must be positive");
  EMTS_REQUIRE(params.leak_tau_s > 0.0, "leak tau must be positive");
  EMTS_REQUIRE(params.threshold_v > 0.0 && params.threshold_v < params.vdd,
               "threshold must lie between 0 and vdd");
}

void A2ChargePump::step(bool pulse, double dt_s) {
  EMTS_REQUIRE(dt_s > 0.0, "dt must be positive");
  // Exponential self-discharge ...
  voltage_ *= std::exp(-dt_s / params_.leak_tau_s);
  // ... plus one charge injection per victim pulse, saturating at vdd.
  if (pulse) {
    voltage_ = std::min(voltage_ + params_.charge_per_pulse_v, params_.vdd);
  }
  if (voltage_ >= params_.threshold_v) fired_ = true;
}

void A2ChargePump::reset() {
  voltage_ = 0.0;
  fired_ = false;
}

A2Analog::A2Analog() = default;

void A2Analog::contribute(const TraceContext& context, power::CurrentTrace& trace) const {
  if (!active()) return;  // dormant: femtoamp-level pump bias, below everything

  // Triggering state: the victim pulse train drives the pump, whose charge /
  // dump cycle draws an oscillatory current at kOscillationRatio x clock.
  const double f = kOscillationRatio * context.clock.frequency;
  const double fs = context.clock.sample_rate();
  std::vector<double> osc(trace.samples().size());
  const std::uint64_t phase_origin =
      context.trace_index * context.num_cycles * context.clock.samples_per_cycle;
  for (std::size_t i = 0; i < osc.size(); ++i) {
    const double t = static_cast<double>(phase_origin + i) / fs;
    osc[i] = kOscAmps * std::sin(2.0 * units::pi * f * t);
  }
  trace.add_samples(osc);
}

}  // namespace emts::trojan
