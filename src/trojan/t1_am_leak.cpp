#include "trojan/t1_am_leak.hpp"

#include <cmath>
#include <vector>

#include "netlist/builders.hpp"
#include "trojan/detail.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace emts::trojan {

namespace {

constexpr std::size_t kTableOneCells = 1657;  // Table I
constexpr std::size_t kCarrierHalfPeriodCycles = 32;  // clock/64 carrier
// Antenna drive: the buffer bank rings the antenna load through its output
// tank, so the supply draws a quasi-sinusoidal current at the carrier. This
// is what a radio receiver demodulates — and what concentrates the Trojan's
// EM signature at 750 kHz (Fig. 6(i)).
constexpr double kCarrierAmps = 12.0e-3;
// Carrier divider + serializer housekeeping, every cycle while armed.
constexpr double kHousekeepingChargeFc = 140.0;
// Dormant trigger-sampling activity (a couple of gates watching the arm pin).
constexpr double kDormantChargeFc = 10.0;

}  // namespace

T1AmLeak::T1AmLeak() : netlist_{"t1_am_leak"} {
  using namespace netlist;
  Netlist& nl = netlist_;

  enable_ = nl.add_net("arm");
  nl.mark_primary_input(enable_);

  // 128-bit key shadow register with parallel-load muxes.
  const NetId load = nl.add_net("key_load");
  nl.mark_primary_input(load);
  NetId serial_prev = nl.add_net("ser_gnd");
  nl.add_cell(CellType::kTieLo, {}, serial_prev);
  std::vector<NetId> shadow;
  for (std::size_t b = 0; b < 128; ++b) {
    const NetId key_bit = nl.add_net("key_in" + std::to_string(b));
    nl.mark_primary_input(key_bit);
    const NetId d = nl.add_net("shadow_d" + std::to_string(b));
    const NetId q = nl.add_net("shadow_q" + std::to_string(b));
    nl.add_cell(CellType::kMux2, {serial_prev, key_bit, load}, d);
    nl.add_cell(CellType::kDff, {d}, q);
    shadow.push_back(q);
    serial_prev = q;
  }

  // Divide-by-64 carrier: 6-bit counter, carrier = msb.
  const auto counter = build_counter(nl, 6, enable_);
  carrier_ = counter.bits[5];

  // OOK modulator: carrier AND serialized key bit.
  modulated_ = nl.add_net("modulated");
  nl.add_cell(CellType::kAnd2, {carrier_, shadow.back()}, modulated_);
  nl.mark_primary_output(modulated_);

  // Antenna driver bank fills the Trojan to its fabricated size.
  detail::pad_with_driver_chain(nl, modulated_, kTableOneCells);
  EMTS_ASSERT(nl.cell_count() == kTableOneCells);
}

double T1AmLeak::area_um2() const { return netlist_.gate_count().area_um2; }

std::size_t T1AmLeak::key_bit_index(std::uint64_t trace_index, std::size_t cycle,
                                    std::size_t cycles_per_trace) {
  const std::size_t cycles_per_bit = kCarrierPeriodsPerBit * 2 * kCarrierHalfPeriodCycles;
  const std::uint64_t absolute_cycle =
      trace_index * cycles_per_trace + static_cast<std::uint64_t>(cycle);
  return static_cast<std::size_t>((absolute_cycle / cycles_per_bit) % 128);
}

void T1AmLeak::contribute(const TraceContext& context, power::CurrentTrace& trace) const {
  if (!active()) {
    for (std::size_t c = 0; c < context.num_cycles; ++c) {
      trace.add_pulse({c, 1.0, 150.0, 400.0}, kDormantChargeFc);
    }
    return;
  }

  // Divider + serializer tick every cycle.
  for (std::size_t c = 0; c < context.num_cycles; ++c) {
    trace.add_pulse({c, 1.0, 150.0, 600.0}, kHousekeepingChargeFc);
  }

  // OOK carrier: a 750 kHz sinusoidal antenna current while the broadcast
  // key bit is 1, silence while it is 0. Phase is continuous across windows
  // (the divider never stops), so tones stay bin-aligned.
  const double carrier_hz_now = carrier_hz(context.clock);
  const double fs = context.clock.sample_rate();
  const std::uint64_t sample_origin =
      context.trace_index * context.num_cycles * context.clock.samples_per_cycle;
  std::vector<double> carrier(trace.samples().size(), 0.0);
  for (std::size_t i = 0; i < carrier.size(); ++i) {
    const std::size_t cycle = i / context.clock.samples_per_cycle;
    const std::size_t bit_index = key_bit_index(context.trace_index, cycle, context.num_cycles);
    const bool bit = ((context.key[bit_index / 8] >> (bit_index % 8)) & 1u) != 0;
    if (!bit) continue;
    const double t = static_cast<double>(sample_origin + i) / fs;
    carrier[i] = kCarrierAmps * std::sin(2.0 * units::pi * carrier_hz_now * t);
  }
  trace.add_samples(carrier);
}

}  // namespace emts::trojan
