// Hardware Trojan model library (paper Sec. IV-A): the four digital Trojans
// fabricated alongside the AES, plus the A2-style analog Trojan.
//
// Every digital Trojan carries a real gate-level netlist (trigger + payload,
// buildable and simulatable with netlist::Simulator) whose cell count matches
// Table I, and a current-signature generator that adds the Trojan's switching
// current to a module transient when the Trojan is activated. The signatures
// are what the paper detects:
//   T1 — key bits on-off-key a 750 kHz carrier (AM radio leak);
//   T2 — crowbar leakage current gated by shifted key bits;
//   T3 — CDMA-spread single-bit leak (near-noise, hardest to catch);
//   T4 — register bank toggling every cycle (power degradation);
//   A2 — fast-toggling analog trigger, visible only in the spectrum.
#pragma once

#include <memory>
#include <string>

#include "aes/aes128.hpp"
#include "netlist/netlist.hpp"
#include "power/current_trace.hpp"

namespace emts::trojan {

enum class TrojanKind { kT1AmLeak, kT2Leakage, kT3Cdma, kT4PowerHog, kA2Analog };

/// Per-trace information a Trojan needs to synthesize its current signature.
struct TraceContext {
  power::ClockSpec clock;
  std::size_t num_cycles = 512;
  aes::Key key{};              // the secret the leak Trojans exfiltrate
  std::uint64_t trace_index = 0;  // position in the acquisition stream
};

class Trojan {
 public:
  virtual ~Trojan() = default;

  Trojan(const Trojan&) = delete;
  Trojan& operator=(const Trojan&) = delete;

  virtual TrojanKind kind() const = 0;
  virtual std::string name() const = 0;

  /// Gate-level netlist (trigger + payload). Null for the analog A2 Trojan,
  /// which has no standard-cell realization.
  virtual const netlist::Netlist* gate_netlist() const { return nullptr; }

  /// Silicon footprint. Digital Trojans derive this from their netlist; A2
  /// reports its analog-block area.
  virtual double area_um2() const = 0;

  /// Cell count for Table I (0 for A2, which Table I reports by area only).
  virtual std::size_t cell_count() const;

  /// Arms / disarms the payload (the paper adds an explicit trigger pin per
  /// Trojan to "activate the payload in a more manageable way").
  void set_active(bool active) { active_ = active; }
  bool active() const { return active_; }

  /// Adds this Trojan's supply-current contribution over one trace window.
  /// Dormant Trojans contribute only their (tiny) trigger-sampling activity.
  virtual void contribute(const TraceContext& context, power::CurrentTrace& trace) const = 0;

 protected:
  Trojan() = default;

 private:
  bool active_ = false;
};

/// Factory over all five paper Trojans.
std::unique_ptr<Trojan> make_trojan(TrojanKind kind);

/// Display name ("T1", ..., "A2").
const char* kind_label(TrojanKind kind);

/// All five kinds in paper order.
inline constexpr TrojanKind kAllTrojanKinds[] = {
    TrojanKind::kT1AmLeak, TrojanKind::kT2Leakage, TrojanKind::kT3Cdma,
    TrojanKind::kT4PowerHog, TrojanKind::kA2Analog};

}  // namespace emts::trojan
