// A2-style analog Trojan (paper Sec. IV-A, after Yang et al., S&P 2016):
// six transistors and a capacitor. A charge pump integrates pulses of a
// fast-toggling victim wire (here, an on-chip clock-division signal); when
// the capacitor crosses its threshold the payload fires. Digital and
// standard side-channel methods miss it; the paper detects the *triggering*
// state in the frequency domain (Fig. 4) because the fast toggling adds a
// non-harmonic spectral spot.
//
// Two pieces:
//  * A2ChargePump  — the continuous capacitor dynamics (trigger physics),
//    unit-testable on its own;
//  * A2Analog      — the Trojan model: in the triggering state it draws a
//    small oscillatory supply current at kOscillationRatio x clock.
#pragma once

#include "trojan/trojan.hpp"

namespace emts::trojan {

/// Capacitor/charge-pump dynamics of the A2 trigger.
class A2ChargePump {
 public:
  struct Params {
    double charge_per_pulse_v = 0.09;  // voltage step per victim-wire pulse
    double leak_tau_s = 0.8e-6;        // self-discharge time constant
    double threshold_v = 0.75;         // payload-fire threshold
    double vdd = 1.8;                  // saturation ceiling
  };

  A2ChargePump();  // default Params
  explicit A2ChargePump(const Params& params);

  /// Advances by dt seconds; `pulse` = whether the victim wire toggled high
  /// during this step.
  void step(bool pulse, double dt_s);

  double voltage() const { return voltage_; }
  bool fired() const { return fired_; }
  void reset();

  const Params& params() const { return params_; }

 private:
  Params params_;
  double voltage_ = 0.0;
  bool fired_ = false;
};

class A2Analog final : public Trojan {
 public:
  A2Analog();

  TrojanKind kind() const override { return TrojanKind::kA2Analog; }
  std::string name() const override { return "A2-style analog Trojan"; }
  double area_um2() const override { return kAreaUm2; }
  std::size_t cell_count() const override { return 0; }  // analog, no std cells
  void contribute(const TraceContext& context, power::CurrentTrace& trace) const override;

  /// Triggering-state oscillation frequency as a multiple of the clock.
  /// The paper feeds the pump from a clock-division pulse train; the pump's
  /// retrigger dynamics put the resulting spot *between* the clock and its
  /// 2nd harmonic (Fig. 4) — we model that as a 1.5x tone (substitution
  /// documented in DESIGN.md).
  static constexpr double kOscillationRatio = 1.5;

  /// Analog block footprint: six transistors plus the MOS cap (0.087% of the
  /// AES by area, Table I).
  static constexpr double kAreaUm2 = 518.0;

  /// Supply-current amplitude of the triggering oscillation.
  static constexpr double kOscAmps = 0.35e-3;

 private:
  // no state beyond Trojan::active()
};

}  // namespace emts::trojan
