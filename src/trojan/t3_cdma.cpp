#include "trojan/t3_cdma.hpp"

#include "netlist/builders.hpp"
#include "trojan/detail.hpp"
#include "util/assert.hpp"

namespace emts::trojan {

namespace {

constexpr std::size_t kTableOneCells = 250;  // Table I
// Taps of the 16-bit XNOR LFSR (mirrors build_lfsr's feedback convention:
// XNOR reduction over the tapped state bits, shifted into stage 0).
constexpr std::size_t kTaps[] = {10, 12, 13, 15};
// One chip driver firing: a handful of cells — deliberately tiny.
constexpr double kChipChargeFc = 10000.0;
// LFSR + counter housekeeping per cycle.
constexpr double kHousekeepingChargeFc = 55.0;
constexpr double kDormantChargeFc = 6.0;

}  // namespace

T3Cdma::T3Cdma() : netlist_{"t3_cdma"} {
  using namespace netlist;
  Netlist& nl = netlist_;

  enable_ = nl.add_net("arm");
  nl.mark_primary_input(enable_);

  // Key capture register (serial shift at bit-period boundaries).
  NetId serial_prev = nl.add_net("ser_gnd");
  nl.add_cell(CellType::kTieLo, {}, serial_prev);
  std::vector<NetId> capture;
  for (std::size_t b = 0; b < 128; ++b) {
    const NetId q = nl.add_net("cap_q" + std::to_string(b));
    nl.add_cell(CellType::kDff, {serial_prev}, q);
    capture.push_back(q);
    serial_prev = q;
  }

  // Spreading-sequence generator and bit-period counter.
  const auto lfsr = build_lfsr(nl, 16, {kTaps[0], kTaps[1], kTaps[2]});
  const auto bit_counter = build_counter(nl, 7, enable_);

  // Spreader: chip = lfsr_out XOR key_bit; gated by the arm pin.
  const NetId chip = nl.add_net("chip");
  nl.add_cell(CellType::kXor2, {lfsr.state[15], capture.back()}, chip);
  const NetId gated = nl.add_net("chip_gated");
  nl.add_cell(CellType::kAnd2, {chip, enable_}, gated);
  nl.mark_primary_output(gated);
  (void)bit_counter;

  detail::pad_with_driver_chain(nl, gated, kTableOneCells);
  EMTS_ASSERT(nl.cell_count() == kTableOneCells);
}

double T3Cdma::area_um2() const { return netlist_.gate_count().area_um2; }

std::uint16_t T3Cdma::lfsr_step(std::uint16_t state) {
  // XNOR parity over taps {10, 12, 13, 15} (bit 15 always included).
  int parity = 0;
  for (std::size_t t : kTaps) parity ^= (state >> t) & 1u;
  const std::uint16_t feedback = static_cast<std::uint16_t>(parity ^ 1u);  // XNOR
  return static_cast<std::uint16_t>((state << 1) | feedback);
}

namespace {

// The XNOR LFSR is affine over GF(2): s' = M s + e0. Augmenting the state
// with a constant-1 bit (bit 16) makes it linear in 17 dimensions, so
// `steps` applications collapse to one 17x17 bit-matrix power.
using BitMatrix = std::array<std::uint32_t, 17>;  // row i = mask of inputs

BitMatrix multiply(const BitMatrix& a, const BitMatrix& b) {
  BitMatrix out{};
  for (std::size_t i = 0; i < 17; ++i) {
    std::uint32_t row = 0;
    std::uint32_t bits = a[i];
    while (bits != 0) {
      const unsigned j = static_cast<unsigned>(__builtin_ctz(bits));
      row ^= b[j];
      bits &= bits - 1;
    }
    out[i] = row;
  }
  return out;
}

BitMatrix lfsr_transition() {
  BitMatrix m{};
  // Row 0 (new bit 0) = XNOR parity: taps plus the constant-1 bit.
  std::uint32_t row0 = 1u << 16;
  for (std::size_t t : kTaps) row0 |= 1u << t;
  m[0] = row0;
  for (std::size_t i = 1; i < 16; ++i) m[i] = 1u << (i - 1);  // shift
  m[16] = 1u << 16;                                           // constant stays 1
  return m;
}

std::uint32_t apply_matrix(const BitMatrix& m, std::uint32_t v) {
  std::uint32_t out = 0;
  for (std::size_t i = 0; i < 17; ++i) {
    out |= static_cast<std::uint32_t>(__builtin_popcount(m[i] & v) & 1) << i;
  }
  return out;
}

}  // namespace

std::uint16_t T3Cdma::lfsr_state_after(std::uint64_t steps) {
  BitMatrix power = lfsr_transition();
  std::uint32_t v = 1u << 16;  // zero state + constant 1
  std::uint64_t remaining = steps;
  while (remaining != 0) {
    if (remaining & 1u) v = apply_matrix(power, v);
    remaining >>= 1;
    if (remaining != 0) power = multiply(power, power);
  }
  return static_cast<std::uint16_t>(v & 0xffffu);
}

void T3Cdma::contribute(const TraceContext& context, power::CurrentTrace& trace) const {
  if (!active()) {
    for (std::size_t c = 0; c < context.num_cycles; ++c) {
      trace.add_pulse({c, 1.0, 150.0, 400.0}, kDormantChargeFc);
    }
    return;
  }

  const std::uint64_t trace_start = context.trace_index * context.num_cycles;
  std::uint16_t lfsr = lfsr_state_after(trace_start);
  for (std::size_t c = 0; c < context.num_cycles; ++c) {
    trace.add_pulse({c, 1.0, 150.0, 500.0}, kHousekeepingChargeFc);

    const std::uint64_t absolute_cycle = trace_start + static_cast<std::uint64_t>(c);
    const std::size_t bit_index =
        static_cast<std::size_t>((absolute_cycle / kChipsPerBit) % 128);
    const bool key_bit = ((context.key[bit_index / 8] >> (bit_index % 8)) & 1u) != 0;
    lfsr = lfsr_step(lfsr);
    const bool chip = ((lfsr >> 15) & 1u) != 0;

    // Spread output: the driver holds the chip XOR key value for the whole
    // cycle (NRZ). A random NRZ stream's spectrum has sinc nulls at the chip
    // rate (= the clock) and its multiples, so the leak adds almost no
    // energy at the clock spots — the physics behind the paper's Fig. 6(k)
    // finding that the spectral method misses T3.
    if (chip != key_bit) {
      trace.add_pulse({c, 1.0, 0.0, 20700.0}, kChipChargeFc);
    }
  }
}

}  // namespace emts::trojan
