// Trojan 1 — AM radio key leak (paper Sec. IV-A): "leaks the secret
// information through the AM radio carrier at a 750 KHz frequency and the
// leaked information can be demodulated with a wireless radio receiver."
//
// Structure: a divide-by-64 carrier generator off the 48 MHz core clock
// (64 x 750 kHz = 48 MHz exactly), a 128-bit shadow register that captures
// the AES key, a serializer, an on-off-keying modulator, and a large
// antenna-driver buffer bank — 1,657 cells total (Table I).
#pragma once

#include <memory>

#include "netlist/builders.hpp"
#include "trojan/trojan.hpp"

namespace emts::trojan {

class T1AmLeak final : public Trojan {
 public:
  T1AmLeak();

  TrojanKind kind() const override { return TrojanKind::kT1AmLeak; }
  std::string name() const override { return "T1 AM-radio key leak"; }
  const netlist::Netlist* gate_netlist() const override { return &netlist_; }
  double area_um2() const override;
  void contribute(const TraceContext& context, power::CurrentTrace& trace) const override;

  /// Carrier frequency given a clock (clock/64).
  static double carrier_hz(const power::ClockSpec& clock) { return clock.frequency / 64.0; }

  /// One leaked key bit spans this many carrier periods.
  static constexpr std::size_t kCarrierPeriodsPerBit = 2;

  /// The key bit broadcast during absolute cycle `cycle` of trace
  /// `trace_index` (bits stream continuously across traces).
  static std::size_t key_bit_index(std::uint64_t trace_index, std::size_t cycle,
                                   std::size_t cycles_per_trace);

  // Netlist probe points (for logic-level tests).
  netlist::NetId carrier_net() const { return carrier_; }
  netlist::NetId enable_net() const { return enable_; }

 private:
  netlist::Netlist netlist_;
  netlist::NetId enable_ = 0;
  netlist::NetId carrier_ = 0;
  netlist::NetId modulated_ = 0;
};

}  // namespace emts::trojan
