// Trojan 3 — CDMA covert-channel key leak (paper Sec. IV-A): "leaks the
// secret information through a Code Division Multiple Access (CDMA) channel
// which utilizes multiple clock cycles to leak a single bit. A pseudo-random
// number generator is used to provide a CDMA sequence for the exclusive OR
// operation on the secret information."
//
// Smallest of the four (250 cells, 0.76% — Table I): a 16-bit XNOR LFSR
// spreading-sequence generator, a 128-bit key capture register, the XOR
// spreader, a bit-period counter, and a small output driver. Its spread-
// spectrum signature is the hardest to detect — the paper's spectral method
// misses it (Fig. 6(k)) and only the on-chip sensor's distance test sees it.
#pragma once

#include <cstdint>

#include "trojan/trojan.hpp"

namespace emts::trojan {

class T3Cdma final : public Trojan {
 public:
  T3Cdma();

  TrojanKind kind() const override { return TrojanKind::kT3Cdma; }
  std::string name() const override { return "T3 CDMA covert-channel key leak"; }
  const netlist::Netlist* gate_netlist() const override { return &netlist_; }
  double area_um2() const override;
  void contribute(const TraceContext& context, power::CurrentTrace& trace) const override;

  /// Chips (LFSR steps) per leaked key bit.
  static constexpr std::size_t kChipsPerBit = 64;

  /// Mirror of the gate-level 16-bit XNOR LFSR: state after `steps` steps
  /// from the all-zero reset state. Bit 15 is the chip output. O(log steps)
  /// via GF(2) affine matrix exponentiation, so trace generation deep into an
  /// acquisition stream stays cheap.
  static std::uint16_t lfsr_state_after(std::uint64_t steps);

  /// One LFSR step (the cheap incremental form used inside contribute()).
  static std::uint16_t lfsr_step(std::uint16_t state);

  netlist::NetId enable_net() const { return enable_; }

 private:
  netlist::Netlist netlist_;
  netlist::NetId enable_ = 0;
};

}  // namespace emts::trojan
