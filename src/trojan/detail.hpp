// Shared helpers for the Trojan netlist builders.
#pragma once

#include <cstddef>

#include "netlist/netlist.hpp"

namespace emts::trojan::detail {

/// Appends a chain of BUF cells driven by `source` until the netlist reaches
/// exactly `target_cells` cells (drive/antenna buffering — how the fabricated
/// Trojans reach the drive strength their payloads need). Requires the
/// current count not to exceed the target.
void pad_with_driver_chain(netlist::Netlist& nl, netlist::NetId source,
                           std::size_t target_cells);

}  // namespace emts::trojan::detail
