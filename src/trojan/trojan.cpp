#include "trojan/trojan.hpp"

#include "trojan/a2_analog.hpp"
#include "trojan/detail.hpp"
#include "trojan/t1_am_leak.hpp"
#include "trojan/t2_leakage.hpp"
#include "trojan/t3_cdma.hpp"
#include "trojan/t4_power_hog.hpp"
#include "util/assert.hpp"

namespace emts::trojan {

std::size_t Trojan::cell_count() const {
  const netlist::Netlist* nl = gate_netlist();
  return nl != nullptr ? nl->cell_count() : 0;
}

std::unique_ptr<Trojan> make_trojan(TrojanKind kind) {
  switch (kind) {
    case TrojanKind::kT1AmLeak:
      return std::make_unique<T1AmLeak>();
    case TrojanKind::kT2Leakage:
      return std::make_unique<T2Leakage>();
    case TrojanKind::kT3Cdma:
      return std::make_unique<T3Cdma>();
    case TrojanKind::kT4PowerHog:
      return std::make_unique<T4PowerHog>();
    case TrojanKind::kA2Analog:
      return std::make_unique<A2Analog>();
  }
  EMTS_ASSERT(false);
  return nullptr;
}

const char* kind_label(TrojanKind kind) {
  switch (kind) {
    case TrojanKind::kT1AmLeak:
      return "T1";
    case TrojanKind::kT2Leakage:
      return "T2";
    case TrojanKind::kT3Cdma:
      return "T3";
    case TrojanKind::kT4PowerHog:
      return "T4";
    case TrojanKind::kA2Analog:
      return "A2";
  }
  return "?";
}

namespace detail {

void pad_with_driver_chain(netlist::Netlist& nl, netlist::NetId source,
                           std::size_t target_cells) {
  EMTS_REQUIRE(nl.cell_count() <= target_cells,
               "netlist already exceeds its Table I cell target");
  netlist::NetId prev = source;
  std::size_t i = 0;
  while (nl.cell_count() < target_cells) {
    const netlist::NetId out = nl.add_net("drv" + std::to_string(i++));
    nl.add_cell(netlist::CellType::kBuf, {prev}, out);
    prev = out;
  }
}

}  // namespace detail

}  // namespace emts::trojan
