// FIPS-197 AES-128, implemented from first principles (GF(2^8) inversion plus
// the affine map generate the S-box at startup; no copied lookup tables).
//
// Two interfaces:
//  * encrypt()            — plain block encryption, verified against the FIPS
//                           and NIST-SP800-38A vectors in the tests;
//  * encrypt_traced()     — additionally returns every intermediate round
//                           state and round key. The activity model derives
//                           data-dependent switching (Hamming distances) from
//                           these intermediates, which is what makes the EM
//                           traces plaintext-dependent like the real chip's.
#pragma once

#include <array>
#include <cstdint>

namespace emts::aes {

using Block = std::array<std::uint8_t, 16>;
using Key = std::array<std::uint8_t, 16>;

inline constexpr int kNumRounds = 10;

/// All intermediates of one encryption, indexed by round.
struct RoundTrace {
  // state[0] = plaintext ^ k0 (after initial AddRoundKey);
  // state[r] = state after round r (1..10); state[10] is the ciphertext.
  std::array<Block, kNumRounds + 1> state;
  // Per-round values *inside* round r (1-based; index 0 unused for these).
  std::array<Block, kNumRounds + 1> after_subbytes;
  std::array<Block, kNumRounds + 1> after_shiftrows;
  std::array<Block, kNumRounds + 1> after_mixcolumns;  // round 10 has none; equals after_shiftrows
  std::array<Block, kNumRounds + 1> round_key;         // k0..k10
};

/// GF(2^8) multiply with the AES polynomial x^8+x^4+x^3+x+1.
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b);

/// The AES S-box (computed once from inversion + affine transform).
std::uint8_t sbox(std::uint8_t x);

/// Inverse S-box.
std::uint8_t inv_sbox(std::uint8_t x);

/// Expands a 128-bit key into the 11 round keys.
std::array<Block, kNumRounds + 1> expand_key(const Key& key);

/// Recovers the master key from the last round key (the AES-128 key schedule
/// is invertible). This is what makes a last-round side-channel attack a
/// full key recovery.
Key invert_key_schedule(const Block& round10_key);

/// One-shot block encryption.
Block encrypt(const Key& key, const Block& plaintext);

/// Block encryption with full intermediate capture.
RoundTrace encrypt_traced(const Key& key, const Block& plaintext);

/// Block decryption (used in tests to prove the cipher is a bijection).
Block decrypt(const Key& key, const Block& ciphertext);

/// Hamming distance between two blocks (bit flips between states: the core
/// quantity of the switching-activity model).
int hamming_distance(const Block& a, const Block& b);

/// Population count of a block.
int hamming_weight(const Block& a);

}  // namespace emts::aes
