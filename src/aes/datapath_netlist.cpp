#include "aes/datapath_netlist.hpp"

#include <array>

#include "aes/aes128.hpp"
#include "netlist/builders.hpp"
#include "util/assert.hpp"

namespace emts::aes {

using netlist::NetId;
using netlist::Netlist;
using netlist::TruthTable;

std::vector<NetId> build_sbox_netlist(Netlist& nl, const std::vector<NetId>& in8) {
  EMTS_REQUIRE(in8.size() == 8, "S-box needs exactly 8 input nets");
  std::vector<TruthTable> outputs(8, TruthTable(256));
  for (int x = 0; x < 256; ++x) {
    const std::uint8_t s = sbox(static_cast<std::uint8_t>(x));
    for (int b = 0; b < 8; ++b) {
      outputs[static_cast<std::size_t>(b)][static_cast<std::size_t>(x)] = ((s >> b) & 1u) != 0;
    }
  }
  return synthesize_lut(nl, in8, outputs);
}

std::vector<NetId> build_mix_column_netlist(Netlist& nl, const std::vector<NetId>& in32) {
  EMTS_REQUIRE(in32.size() == 32, "MixColumns column needs exactly 32 input nets");

  // Derive the 32x32 GF(2) matrix by pushing unit vectors through the
  // reference arithmetic: out = M * in over GF(2), since xtime (and hence
  // gf_mul by 2 and 3) is linear.
  std::array<std::array<bool, 32>, 32> matrix{};
  for (int j = 0; j < 32; ++j) {
    std::array<std::uint8_t, 4> column{};
    column[static_cast<std::size_t>(j / 8)] = static_cast<std::uint8_t>(1u << (j % 8));
    const std::uint8_t a0 = column[0], a1 = column[1], a2 = column[2], a3 = column[3];
    const std::array<std::uint8_t, 4> out{
        static_cast<std::uint8_t>(gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3),
        static_cast<std::uint8_t>(a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3),
        static_cast<std::uint8_t>(a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3)),
        static_cast<std::uint8_t>(gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2)),
    };
    for (int i = 0; i < 32; ++i) {
      matrix[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          ((out[static_cast<std::size_t>(i / 8)] >> (i % 8)) & 1u) != 0;
    }
  }

  std::vector<NetId> result;
  result.reserve(32);
  for (int i = 0; i < 32; ++i) {
    std::vector<NetId> terms;
    for (int j = 0; j < 32; ++j) {
      if (matrix[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) {
        terms.push_back(in32[static_cast<std::size_t>(j)]);
      }
    }
    EMTS_ASSERT(!terms.empty());  // MixColumns has no constant-zero output
    result.push_back(netlist::build_xor_tree(nl, std::move(terms)));
  }
  return result;
}

AesCoreNetlist build_aes_core_netlist() {
  AesCoreNetlist core;
  Netlist& nl = core.netlist;

  core.load = nl.add_net("load");
  core.final_round = nl.add_net("final_round");
  nl.mark_primary_input(core.load);
  nl.mark_primary_input(core.final_round);
  for (int i = 0; i < 128; ++i) {
    core.plaintext.push_back(nl.add_net("pt" + std::to_string(i)));
    nl.mark_primary_input(core.plaintext.back());
  }
  for (int i = 0; i < 128; ++i) {
    core.round_key.push_back(nl.add_net("rk" + std::to_string(i)));
    nl.mark_primary_input(core.round_key.back());
  }
  for (int i = 0; i < 128; ++i) {
    core.state_q.push_back(nl.add_net("sq" + std::to_string(i)));
    nl.mark_primary_output(core.state_q.back());
  }

  // SubBytes: one synthesized S-box per state byte.
  std::vector<NetId> after_sub(128);
  for (int byte = 0; byte < 16; ++byte) {
    std::vector<NetId> in8(core.state_q.begin() + 8 * byte,
                           core.state_q.begin() + 8 * (byte + 1));
    const auto out8 = build_sbox_netlist(nl, in8);
    for (int b = 0; b < 8; ++b) after_sub[static_cast<std::size_t>(8 * byte + b)] = out8[static_cast<std::size_t>(b)];
  }

  // ShiftRows: pure wiring. Destination byte j = r + 4c takes the S-box
  // output of byte r + 4((c + r) % 4).
  std::vector<NetId> after_shift(128);
  for (int j = 0; j < 16; ++j) {
    const int r = j % 4;
    const int c = j / 4;
    const int src = r + 4 * ((c + r) % 4);
    for (int b = 0; b < 8; ++b) {
      after_shift[static_cast<std::size_t>(8 * j + b)] =
          after_sub[static_cast<std::size_t>(8 * src + b)];
    }
  }

  // MixColumns per column, with the final-round bypass mux.
  std::vector<NetId> selected(128);
  for (int col = 0; col < 4; ++col) {
    std::vector<NetId> in32(after_shift.begin() + 32 * col,
                            after_shift.begin() + 32 * (col + 1));
    const auto mixed = build_mix_column_netlist(nl, in32);
    for (int b = 0; b < 32; ++b) {
      const auto idx = static_cast<std::size_t>(32 * col + b);
      const NetId sel = nl.add_net("rsel" + std::to_string(idx));
      // final_round ? shifted (bypass) : mixed.
      nl.add_cell(netlist::CellType::kMux2,
                  {mixed[static_cast<std::size_t>(b)], after_shift[idx], core.final_round}, sel);
      selected[idx] = sel;
    }
  }

  // Load mux + AddRoundKey + state register. With load=1 and k0 applied the
  // register captures pt ^ k0 — the initial AddRoundKey for free.
  for (int i = 0; i < 128; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const NetId data = nl.add_net("data" + std::to_string(i));
    nl.add_cell(netlist::CellType::kMux2, {selected[idx], core.plaintext[idx], core.load}, data);
    const NetId d = nl.add_net("d" + std::to_string(i));
    nl.add_cell(netlist::CellType::kXor2, {data, core.round_key[idx]}, d);
    nl.add_cell(netlist::CellType::kDff, {d}, core.state_q[idx]);
  }

  return core;
}

std::vector<NetId> build_add_round_key_netlist(Netlist& nl, const std::vector<NetId>& state,
                                               const std::vector<NetId>& key) {
  EMTS_REQUIRE(state.size() == key.size() && !state.empty(),
               "AddRoundKey needs equal non-empty buses");
  std::vector<NetId> out;
  out.reserve(state.size());
  for (std::size_t i = 0; i < state.size(); ++i) {
    const NetId net = nl.add_net("ark" + std::to_string(i));
    nl.add_cell(netlist::CellType::kXor2, {state[i], key[i]}, net);
    out.push_back(net);
  }
  return out;
}

}  // namespace emts::aes
