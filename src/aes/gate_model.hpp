// Synthesis gate-count model of the AES core.
//
// The paper's Table I reports the fabricated AES at 33,083 gates (180 nm,
// LUT-style S-boxes). We cannot re-run their commercial synthesis flow, so
// this model allocates cells to functional units using standard structural
// arithmetic (16+4 S-boxes, 128-bit datapath, key schedule, control, clock
// tree) with the S-box size as the single calibrated parameter. The bench for
// Table I prints these numbers next to the paper's.
#pragma once

#include <array>
#include <cstddef>

#include "aes/activity.hpp"

namespace emts::aes {

/// Cell count and area for one functional unit.
struct UnitBudget {
  std::size_t cells = 0;
  double area_um2 = 0.0;
};

/// Full synthesis budget of the AES core.
struct AesGateModel {
  std::array<UnitBudget, kAesUnitCount> units{};
  std::size_t total_cells = 0;
  double total_area_um2 = 0.0;

  const UnitBudget& unit(AesUnit u) const { return units[static_cast<std::size_t>(u)]; }
};

/// Builds the calibrated budget (~33k cells, matching the paper's AES).
AesGateModel default_aes_gate_model();

}  // namespace emts::aes
