// Cycle-accurate switching-activity model of a round-per-cycle AES-128 core.
//
// The fabricated chip's EM emission comes from switching currents; at the
// architectural level the dominant, data-dependent component is proportional
// to the Hamming distances between consecutive values on each functional
// unit (registers, S-box array, MixColumns network, key schedule). This model
// computes those distances from the *real* cipher intermediates so traces
// carry the same plaintext/key dependence as silicon, which the paper's
// fingerprinting step relies on.
//
// Units carry distinct logic depths: register toggles cluster right after the
// clock edge, deep combinational clouds (S-boxes) spread later into the
// cycle. The power model turns this into within-cycle current shape.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "aes/aes128.hpp"

namespace emts::aes {

/// Functional units of the AES core, each a separately placed module with its
/// own share of gates and its own activity stream.
enum class AesUnit {
  kStateRegisters,
  kKeyRegisters,
  kSboxArray,
  kMixColumns,
  kKeySchedule,
  kControl,  // FSM, round counter, clock distribution within the core
};
inline constexpr std::size_t kAesUnitCount = 6;

/// Weighted toggle counts per unit for one clock cycle, plus the within-cycle
/// timing of the unit's activity centroid.
struct UnitActivity {
  double toggles = 0.0;      // equivalent single-gate output toggles
  double onset_ps = 0.0;     // earliest switching relative to the clock edge
  double spread_ps = 500.0;  // duration over which switching is distributed
};

using CycleActivity = std::array<UnitActivity, kAesUnitCount>;

/// Number of clock cycles one encryption occupies: load + 10 rounds + output
/// drive. The paper's chip runs encryptions back to back with short idle gaps.
inline constexpr std::size_t kCyclesPerEncryption = 12;

class AesActivityModel {
 public:
  explicit AesActivityModel(const Key& key);

  /// Per-cycle activity of one encryption of `plaintext`. `ciphertext` (if
  /// non-null) receives the result so callers can verify functionality.
  std::vector<CycleActivity> encrypt_activity(const Block& plaintext,
                                              Block* ciphertext = nullptr) const;

  /// Activity of an idle cycle: only the control unit (clock tree) switches.
  /// This is what the chip looks like during the paper's noise-capture step.
  static CycleActivity idle_cycle();

  const Key& key() const { return key_; }

 private:
  Key key_;
  std::array<Block, kNumRounds + 1> round_keys_;
};

/// Human-readable unit name.
const char* unit_name(AesUnit unit);

}  // namespace emts::aes
