#include "aes/aes128.hpp"

#include <bit>

#include "util/assert.hpp"

namespace emts::aes {

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1u) p ^= a;
    const bool hi = (a & 0x80u) != 0;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1bu;  // reduce by x^8+x^4+x^3+x+1
    b >>= 1;
  }
  return p;
}

namespace {

std::uint8_t gf_inverse(std::uint8_t a) {
  if (a == 0) return 0;  // AES maps 0 -> 0 before the affine step
  // a^(2^8 - 2) = a^254 by square-and-multiply.
  std::uint8_t result = 1;
  std::uint8_t base = a;
  int exp = 254;
  while (exp > 0) {
    if (exp & 1) result = gf_mul(result, base);
    base = gf_mul(base, base);
    exp >>= 1;
  }
  return result;
}

struct SboxTables {
  std::array<std::uint8_t, 256> fwd{};
  std::array<std::uint8_t, 256> inv{};

  SboxTables() {
    for (int x = 0; x < 256; ++x) {
      const std::uint8_t b = gf_inverse(static_cast<std::uint8_t>(x));
      // Affine transform: s = b ^ rotl(b,1) ^ rotl(b,2) ^ rotl(b,3) ^ rotl(b,4) ^ 0x63.
      const auto rotl8 = [](std::uint8_t v, int r) {
        return static_cast<std::uint8_t>((v << r) | (v >> (8 - r)));
      };
      const std::uint8_t s = static_cast<std::uint8_t>(b ^ rotl8(b, 1) ^ rotl8(b, 2) ^
                                                       rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63u);
      fwd[static_cast<std::size_t>(x)] = s;
      inv[s] = static_cast<std::uint8_t>(x);
    }
  }
};

const SboxTables& tables() {
  static const SboxTables t;
  return t;
}

void sub_bytes(Block& s) {
  for (auto& b : s) b = sbox(b);
}

void inv_sub_bytes(Block& s) {
  for (auto& b : s) b = inv_sbox(b);
}

// State layout: s[r + 4c] is row r, column c (FIPS column-major order).
void shift_rows(Block& s) {
  Block t = s;
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      s[static_cast<std::size_t>(r + 4 * c)] = t[static_cast<std::size_t>(r + 4 * ((c + r) % 4))];
    }
  }
}

void inv_shift_rows(Block& s) {
  Block t = s;
  for (int r = 1; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      s[static_cast<std::size_t>(r + 4 * ((c + r) % 4))] = t[static_cast<std::size_t>(r + 4 * c)];
    }
  }
}

void mix_columns(Block& s) {
  for (int c = 0; c < 4; ++c) {
    const std::size_t o = static_cast<std::size_t>(4 * c);
    const std::uint8_t a0 = s[o], a1 = s[o + 1], a2 = s[o + 2], a3 = s[o + 3];
    s[o] = static_cast<std::uint8_t>(gf_mul(a0, 2) ^ gf_mul(a1, 3) ^ a2 ^ a3);
    s[o + 1] = static_cast<std::uint8_t>(a0 ^ gf_mul(a1, 2) ^ gf_mul(a2, 3) ^ a3);
    s[o + 2] = static_cast<std::uint8_t>(a0 ^ a1 ^ gf_mul(a2, 2) ^ gf_mul(a3, 3));
    s[o + 3] = static_cast<std::uint8_t>(gf_mul(a0, 3) ^ a1 ^ a2 ^ gf_mul(a3, 2));
  }
}

void inv_mix_columns(Block& s) {
  for (int c = 0; c < 4; ++c) {
    const std::size_t o = static_cast<std::size_t>(4 * c);
    const std::uint8_t a0 = s[o], a1 = s[o + 1], a2 = s[o + 2], a3 = s[o + 3];
    s[o] = static_cast<std::uint8_t>(gf_mul(a0, 14) ^ gf_mul(a1, 11) ^ gf_mul(a2, 13) ^
                                     gf_mul(a3, 9));
    s[o + 1] = static_cast<std::uint8_t>(gf_mul(a0, 9) ^ gf_mul(a1, 14) ^ gf_mul(a2, 11) ^
                                         gf_mul(a3, 13));
    s[o + 2] = static_cast<std::uint8_t>(gf_mul(a0, 13) ^ gf_mul(a1, 9) ^ gf_mul(a2, 14) ^
                                         gf_mul(a3, 11));
    s[o + 3] = static_cast<std::uint8_t>(gf_mul(a0, 11) ^ gf_mul(a1, 13) ^ gf_mul(a2, 9) ^
                                         gf_mul(a3, 14));
  }
}

void add_round_key(Block& s, const Block& k) {
  for (std::size_t i = 0; i < 16; ++i) s[i] ^= k[i];
}

}  // namespace

std::uint8_t sbox(std::uint8_t x) { return tables().fwd[x]; }

std::uint8_t inv_sbox(std::uint8_t x) { return tables().inv[x]; }

std::array<Block, kNumRounds + 1> expand_key(const Key& key) {
  // Work in 4-byte words; 44 words total.
  std::array<std::array<std::uint8_t, 4>, 44> w{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          key[static_cast<std::size_t>(4 * i + j)];
    }
  }
  std::uint8_t rcon = 0x01;
  for (int i = 4; i < 44; ++i) {
    auto temp = w[static_cast<std::size_t>(i - 1)];
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(sbox(temp[1]) ^ rcon);
      temp[1] = sbox(temp[2]);
      temp[2] = sbox(temp[3]);
      temp[3] = sbox(t0);
      rcon = gf_mul(rcon, 2);
    }
    for (int j = 0; j < 4; ++j) {
      w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          static_cast<std::uint8_t>(w[static_cast<std::size_t>(i - 4)][static_cast<std::size_t>(j)] ^
                                    temp[static_cast<std::size_t>(j)]);
    }
  }

  std::array<Block, kNumRounds + 1> round_keys{};
  for (int r = 0; r <= kNumRounds; ++r) {
    for (int i = 0; i < 4; ++i) {
      for (int j = 0; j < 4; ++j) {
        round_keys[static_cast<std::size_t>(r)][static_cast<std::size_t>(4 * i + j)] =
            w[static_cast<std::size_t>(4 * r + i)][static_cast<std::size_t>(j)];
      }
    }
  }
  return round_keys;
}

Key invert_key_schedule(const Block& round10_key) {
  // Reconstruct words w[40..43] from the round key, then walk backwards:
  // w[i-4] = w[i] ^ g(w[i-1]).
  std::array<std::array<std::uint8_t, 4>, 44> w{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      w[static_cast<std::size_t>(40 + i)][static_cast<std::size_t>(j)] =
          round10_key[static_cast<std::size_t>(4 * i + j)];
    }
  }

  // Rcon for round r is 2^(r-1) in GF(2^8); word i uses round i/4.
  const auto rcon_for = [](int word_index) {
    std::uint8_t rcon = 0x01;
    for (int r = 1; r < word_index / 4; ++r) rcon = gf_mul(rcon, 2);
    return rcon;
  };

  for (int i = 43; i >= 4; --i) {
    auto temp = w[static_cast<std::size_t>(i - 1)];
    if (i % 4 == 0) {
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(sbox(temp[1]) ^ rcon_for(i));
      temp[1] = sbox(temp[2]);
      temp[2] = sbox(temp[3]);
      temp[3] = sbox(t0);
    }
    for (int j = 0; j < 4; ++j) {
      w[static_cast<std::size_t>(i - 4)][static_cast<std::size_t>(j)] = static_cast<std::uint8_t>(
          w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] ^
          temp[static_cast<std::size_t>(j)]);
    }
  }

  Key key{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      key[static_cast<std::size_t>(4 * i + j)] =
          w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
  }
  return key;
}

Block encrypt(const Key& key, const Block& plaintext) {
  return encrypt_traced(key, plaintext).state[kNumRounds];
}

RoundTrace encrypt_traced(const Key& key, const Block& plaintext) {
  RoundTrace trace{};
  const auto keys = expand_key(key);
  trace.round_key = keys;

  Block s = plaintext;
  add_round_key(s, keys[0]);
  trace.state[0] = s;

  for (int r = 1; r <= kNumRounds; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    sub_bytes(s);
    trace.after_subbytes[ri] = s;
    shift_rows(s);
    trace.after_shiftrows[ri] = s;
    if (r < kNumRounds) {
      mix_columns(s);
    }
    trace.after_mixcolumns[ri] = s;
    add_round_key(s, keys[ri]);
    trace.state[ri] = s;
  }
  return trace;
}

Block decrypt(const Key& key, const Block& ciphertext) {
  const auto keys = expand_key(key);
  Block s = ciphertext;
  add_round_key(s, keys[kNumRounds]);
  for (int r = kNumRounds - 1; r >= 0; --r) {
    inv_shift_rows(s);
    inv_sub_bytes(s);
    add_round_key(s, keys[static_cast<std::size_t>(r)]);
    if (r > 0) inv_mix_columns(s);
  }
  return s;
}

int hamming_distance(const Block& a, const Block& b) {
  int total = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    total += std::popcount(static_cast<unsigned>(a[i] ^ b[i]));
  }
  return total;
}

int hamming_weight(const Block& a) {
  int total = 0;
  for (std::uint8_t b : a) total += std::popcount(static_cast<unsigned>(b));
  return total;
}

}  // namespace emts::aes
