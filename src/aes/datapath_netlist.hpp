// Gate-level AES datapath blocks — real netlists, not activity proxies.
// These back the synthesis gate-count model with buildable logic and let the
// event-driven simulator execute actual AES operations:
//   * the S-box, synthesized from its truth table (LUT-style, like the
//     paper's 33k-cell AES) and verified against the reference cipher over
//     all 256 inputs;
//   * one MixColumns column, a pure XOR network derived from the GF(2^8)
//     constants (xtime is linear over GF(2), so no AND gates appear);
//   * AddRoundKey, a rank of XORs.
// Bit convention: bus[i] is bit i (lsb first) of the byte/word.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "netlist/synth.hpp"

namespace emts::aes {

/// Synthesizes one S-box over the 8 input nets; returns the 8 output nets.
std::vector<netlist::NetId> build_sbox_netlist(netlist::Netlist& nl,
                                               const std::vector<netlist::NetId>& in8);

/// Builds one MixColumns column: 32 input bits (byte 0 = bits 0..7, lsb
/// first) -> 32 output bits.
std::vector<netlist::NetId> build_mix_column_netlist(netlist::Netlist& nl,
                                                     const std::vector<netlist::NetId>& in32);

/// Builds AddRoundKey over equal-width state/key buses.
std::vector<netlist::NetId> build_add_round_key_netlist(
    netlist::Netlist& nl, const std::vector<netlist::NetId>& state,
    const std::vector<netlist::NetId>& key);

/// A complete round-per-cycle AES-128 encryption core at gate level: 128
/// state flops, 16 synthesized S-boxes, ShiftRows wiring, 4 MixColumns
/// networks with the final-round bypass, and AddRoundKey. Round keys arrive
/// on primary inputs (the key schedule runs off-core), so the testbench
/// clocks: load+k0, then k1..k10 — after which state_q holds the ciphertext.
/// The integration test runs full FIPS-verified encryptions through the
/// event-driven simulator, gate by gate.
struct AesCoreNetlist {
  netlist::Netlist netlist{"aes_core"};
  std::vector<netlist::NetId> plaintext;  // 128 primary inputs
  std::vector<netlist::NetId> round_key;  // 128 primary inputs
  netlist::NetId load = 0;                // 1 = capture plaintext ^ round_key
  netlist::NetId final_round = 0;         // 1 = bypass MixColumns
  std::vector<netlist::NetId> state_q;    // 128 register outputs
};
AesCoreNetlist build_aes_core_netlist();

}  // namespace emts::aes
