#include "aes/gate_model.hpp"

namespace emts::aes {

namespace {

constexpr std::size_t idx(AesUnit unit) { return static_cast<std::size_t>(unit); }

// Average standard-cell footprint in this 180 nm library (area-weighted mix
// of combinational cells and flops).
constexpr double kAvgCellArea = 18.0;  // um^2

}  // namespace

AesGateModel default_aes_gate_model() {
  AesGateModel model;

  // 16 datapath S-boxes + 4 key-schedule S-boxes, LUT-style synthesis at
  // ~1,290 cells each (the calibrated parameter; composite-field S-boxes
  // would be ~4x smaller but the paper's count implies LUT synthesis).
  constexpr std::size_t kSboxCells = 1290;
  constexpr std::size_t kDatapathSboxes = 16;
  constexpr std::size_t kKeySboxes = 4;

  model.units[idx(AesUnit::kSboxArray)].cells = kDatapathSboxes * kSboxCells;  // 20640
  model.units[idx(AesUnit::kKeySchedule)].cells =
      kKeySboxes * kSboxCells + 128 /*xor*/ + 40 /*rcon+rot*/;                 // 5328
  model.units[idx(AesUnit::kStateRegisters)].cells =
      128 /*state DFF*/ + 128 /*input mux*/ + 128 /*AddRoundKey xor*/;         // 384
  model.units[idx(AesUnit::kKeyRegisters)].cells = 128 /*key DFF*/ + 128 /*mux*/;  // 256
  model.units[idx(AesUnit::kMixColumns)].cells = 4 * 152 + 128 /*bypass mux*/;     // 736
  // Control: FSM, round counter, I/O registers, and the clock/buffer tree
  // that synthesis sprinkles through a 33k-cell design.
  model.units[idx(AesUnit::kControl)].cells =
      33083 - (model.units[idx(AesUnit::kSboxArray)].cells +
               model.units[idx(AesUnit::kKeySchedule)].cells +
               model.units[idx(AesUnit::kStateRegisters)].cells +
               model.units[idx(AesUnit::kKeyRegisters)].cells +
               model.units[idx(AesUnit::kMixColumns)].cells);

  for (auto& unit : model.units) {
    unit.area_um2 = static_cast<double>(unit.cells) * kAvgCellArea;
    model.total_cells += unit.cells;
    model.total_area_um2 += unit.area_um2;
  }
  return model;
}

}  // namespace emts::aes
