#include "aes/activity.hpp"

#include "util/assert.hpp"

namespace emts::aes {

namespace {

constexpr std::size_t idx(AesUnit unit) { return static_cast<std::size_t>(unit); }

// Fan-out multipliers: one register bit flip propagates through a deep
// combinational cloud, so a unit's toggle count is its input Hamming distance
// scaled by the average downstream gate count per bit (synthesis-calibrated).
constexpr double kStateRegWeight = 1.0;   // DFF output toggles
constexpr double kSboxWeightPerBit = 9.5;  // ~1200-cell S-box over 8 input bits
constexpr double kMixColWeightPerBit = 2.2;
constexpr double kKeySchedWeightPerBit = 3.0;
constexpr double kControlBaseToggles = 260.0;  // clock tree + FSM, every active cycle
// Idle chip: the clock tree is gated (the paper's noise capture powers the
// chip "without executing the encryption"); only a residual always-on strip
// keeps ticking.
constexpr double kIdleControlToggles = 4.0;

// Within-cycle timing: registers fire at the edge, combinational clouds
// after their input settles (ps from clock edge).
constexpr UnitActivity timing(AesUnit unit, double toggles) {
  switch (unit) {
    case AesUnit::kStateRegisters:
      return {toggles, 200.0, 400.0};
    case AesUnit::kKeyRegisters:
      return {toggles, 200.0, 400.0};
    case AesUnit::kSboxArray:
      return {toggles, 700.0, 2600.0};
    case AesUnit::kMixColumns:
      return {toggles, 3400.0, 1400.0};
    case AesUnit::kKeySchedule:
      return {toggles, 700.0, 2000.0};
    case AesUnit::kControl:
      return {toggles, 0.0, 300.0};
  }
  return {toggles, 0.0, 500.0};
}

}  // namespace

const char* unit_name(AesUnit unit) {
  switch (unit) {
    case AesUnit::kStateRegisters:
      return "state_registers";
    case AesUnit::kKeyRegisters:
      return "key_registers";
    case AesUnit::kSboxArray:
      return "sbox_array";
    case AesUnit::kMixColumns:
      return "mix_columns";
    case AesUnit::kKeySchedule:
      return "key_schedule";
    case AesUnit::kControl:
      return "control";
  }
  return "?";
}

AesActivityModel::AesActivityModel(const Key& key) : key_{key}, round_keys_{expand_key(key)} {}

CycleActivity AesActivityModel::idle_cycle() {
  CycleActivity cycle{};
  cycle[idx(AesUnit::kControl)] = timing(AesUnit::kControl, kIdleControlToggles);
  return cycle;
}

std::vector<CycleActivity> AesActivityModel::encrypt_activity(const Block& plaintext,
                                                              Block* ciphertext) const {
  const RoundTrace trace = encrypt_traced(key_, plaintext);
  if (ciphertext != nullptr) *ciphertext = trace.state[kNumRounds];

  std::vector<CycleActivity> cycles;
  cycles.reserve(kCyclesPerEncryption);

  // Cycle 0: plaintext loads into the state registers (from the previous
  // residue, modelled as the previous ciphertext — here all-zero by symmetry
  // we use the plaintext weight) and the initial AddRoundKey result latches.
  {
    CycleActivity c{};
    const double load_hd = hamming_weight(trace.state[0]);
    c[idx(AesUnit::kStateRegisters)] = timing(AesUnit::kStateRegisters, load_hd * kStateRegWeight);
    c[idx(AesUnit::kKeyRegisters)] =
        timing(AesUnit::kKeyRegisters, hamming_weight(trace.round_key[0]) * 0.1);
    c[idx(AesUnit::kControl)] = timing(AesUnit::kControl, kControlBaseToggles);
    cycles.push_back(c);
  }

  // Cycles 1..10: one AES round per cycle.
  for (int r = 1; r <= kNumRounds; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    CycleActivity c{};

    // State registers flip between consecutive round outputs.
    const double reg_hd = hamming_distance(trace.state[ri - 1], trace.state[ri]);
    c[idx(AesUnit::kStateRegisters)] = timing(AesUnit::kStateRegisters, reg_hd * kStateRegWeight);

    // S-box array: combinational activity driven by the register transition.
    c[idx(AesUnit::kSboxArray)] = timing(AesUnit::kSboxArray, reg_hd * kSboxWeightPerBit);

    // MixColumns: driven by the change at its input (after ShiftRows).
    if (r < kNumRounds) {
      const double mc_in_hd =
          (r == 1) ? hamming_weight(trace.after_shiftrows[1])
                   : hamming_distance(trace.after_shiftrows[ri - 1], trace.after_shiftrows[ri]);
      c[idx(AesUnit::kMixColumns)] = timing(AesUnit::kMixColumns, mc_in_hd * kMixColWeightPerBit);
    }

    // Key schedule: round key k_{r-1} -> k_r transition plus its S-boxes.
    const double ks_hd = hamming_distance(trace.round_key[ri - 1], trace.round_key[ri]);
    c[idx(AesUnit::kKeySchedule)] = timing(AesUnit::kKeySchedule, ks_hd * kKeySchedWeightPerBit);
    c[idx(AesUnit::kKeyRegisters)] = timing(AesUnit::kKeyRegisters, ks_hd * kStateRegWeight);

    c[idx(AesUnit::kControl)] = timing(AesUnit::kControl, kControlBaseToggles);
    cycles.push_back(c);
  }

  // Cycle 11: ciphertext drives the output port; state holds.
  {
    CycleActivity c{};
    c[idx(AesUnit::kStateRegisters)] = timing(
        AesUnit::kStateRegisters, hamming_weight(trace.state[kNumRounds]) * 0.5);
    c[idx(AesUnit::kControl)] = timing(AesUnit::kControl, kControlBaseToggles);
    cycles.push_back(c);
  }

  EMTS_ASSERT(cycles.size() == kCyclesPerEncryption);
  return cycles;
}

}  // namespace emts::aes
