#include "sim/engine.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>

#include "stats/snr.hpp"
#include "util/assert.hpp"

namespace emts::sim {

namespace {

std::size_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

std::size_t resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("EMTS_THREADS")) {
    // Parse defensively: operators export this in deployment scripts, and a
    // typo ("4x", "", "-2", "1e9") must degrade to the hardware default with
    // a diagnostic instead of silently misconfiguring the worker pool.
    char* end = nullptr;
    errno = 0;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    const bool numeric = end != env && *end == '\0' && errno == 0 && env[0] != '-';
    if (numeric && parsed > 0 && parsed <= 1024) {
      return static_cast<std::size_t>(parsed);
    }
    const std::size_t fallback = hardware_threads();
    std::fprintf(stderr,
                 "emsentry: ignoring invalid EMTS_THREADS=\"%s\" "
                 "(expected an integer in [1, 1024]); using %zu hardware threads\n",
                 env, fallback);
    return fallback;
  }
  return hardware_threads();
}

}  // namespace

// Bookkeeping of one parallel_for invocation. Chunks of different batches
// may interleave in the shared queue; each closure holds a shared_ptr to its
// own batch, so completion and error state never cross invocations.
struct CaptureEngine::Batch {
  std::mutex mutex;
  std::condition_variable done;
  std::size_t pending = 0;   // chunks still running or queued
  std::exception_ptr error;  // first failure; later chunks short-circuit
};

CaptureEngine::CaptureEngine(const EngineOptions& options)
    : threads_{resolve_threads(options.threads)},
      chunk_{options.chunk > 0 ? options.chunk : 1} {
  if (threads_ < 2) return;  // serial inline path: no pool, no locks
  workers_.reserve(threads_);
  for (std::size_t i = 0; i < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

CaptureEngine::~CaptureEngine() {
  {
    std::lock_guard<std::mutex> lock{mutex_};
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void CaptureEngine::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock{mutex_};
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void CaptureEngine::parallel_for(std::size_t count,
                                 const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  auto batch = std::make_shared<Batch>();
  const std::size_t chunks = (count + chunk_ - 1) / chunk_;
  batch->pending = chunks;

  {
    std::lock_guard<std::mutex> lock{mutex_};
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * chunk_;
      const std::size_t end = std::min(begin + chunk_, count);
      // fn is captured by reference: parallel_for blocks until every chunk
      // finished, so the reference outlives all queued closures.
      queue_.push_back([batch, begin, end, &fn] {
        bool skip = false;
        {
          std::lock_guard<std::mutex> guard{batch->mutex};
          skip = batch->error != nullptr;
        }
        if (!skip) {
          try {
            for (std::size_t i = begin; i < end; ++i) fn(i);
          } catch (...) {
            std::lock_guard<std::mutex> guard{batch->mutex};
            if (!batch->error) batch->error = std::current_exception();
          }
        }
        std::lock_guard<std::mutex> guard{batch->mutex};
        if (--batch->pending == 0) batch->done.notify_all();
      });
    }
  }
  work_ready_.notify_all();

  std::unique_lock<std::mutex> lock{batch->mutex};
  batch->done.wait(lock, [&batch] { return batch->pending == 0; });
  if (batch->error) std::rethrow_exception(batch->error);
}

core::TraceSet CaptureEngine::capture_batch(const Chip& chip, Pickup pickup, std::size_t count,
                                            std::uint64_t first_index, bool encrypting) const {
  std::vector<core::Trace> slots(count);
  parallel_for(count, [&](std::size_t i) {
    slots[i] = chip.capture(encrypting, first_index + i).take(pickup);
  });
  core::TraceSet set;
  set.sample_rate = chip.sample_rate();
  set.add_all(std::move(slots));
  return set;
}

PairBatch CaptureEngine::capture_pair_batch(const Chip& chip, std::size_t count,
                                            std::uint64_t first_index, bool encrypting) const {
  std::vector<core::Trace> onchip(count);
  std::vector<core::Trace> external(count);
  parallel_for(count, [&](std::size_t i) {
    Acquisition acq = chip.capture(encrypting, first_index + i);
    onchip[i] = std::move(acq.onchip_v);
    external[i] = std::move(acq.external_v);
  });
  PairBatch pair;
  pair.onchip.sample_rate = chip.sample_rate();
  pair.external.sample_rate = chip.sample_rate();
  pair.onchip.add_all(std::move(onchip));
  pair.external.add_all(std::move(external));
  return pair;
}

double CaptureEngine::snr_batch(const Chip& chip, Pickup pickup, std::size_t windows,
                                std::uint64_t base) const {
  EMTS_REQUIRE(windows > 0, "snr_batch needs at least one window");
  std::vector<core::Trace> sig(windows);
  std::vector<core::Trace> noi(windows);
  // Signal windows at [base, base+windows), idle windows right after — the
  // same indices the serial measured_snr_db helper always used.
  parallel_for(2 * windows, [&](std::size_t i) {
    if (i < windows) {
      sig[i] = chip.capture(true, base + i).take(pickup);
    } else {
      const std::size_t t = i - windows;
      noi[t] = chip.capture(false, base + windows + t).take(pickup);
    }
  });
  std::vector<double> signal;
  std::vector<double> noise;
  signal.reserve(windows * chip.samples_per_trace());
  noise.reserve(windows * chip.samples_per_trace());
  for (const auto& s : sig) signal.insert(signal.end(), s.begin(), s.end());
  for (const auto& n : noi) noise.insert(noise.end(), n.begin(), n.end());
  return stats::snr_db(signal, noise);
}

CaptureEngine& CaptureEngine::shared() {
  static CaptureEngine engine;
  return engine;
}

}  // namespace emts::sim
