#include "sim/chip.hpp"

#include <algorithm>

#include "dsp/filter.hpp"
#include "util/assert.hpp"

namespace emts::sim {

namespace {

// Charge per weighted toggle of the AES activity model (fC). With the
// default activity weights this puts the core at a few tens of mW at 48 MHz
// — a plausible 180 nm AES operating point.
constexpr double kChargePerToggleFc = 10.0;

// Floorplan module names of the AES units, in AesUnit order.
const char* aes_unit_module_name(aes::AesUnit unit) {
  namespace mn = layout::module_names;
  switch (unit) {
    case aes::AesUnit::kStateRegisters:
      return mn::kAesState;
    case aes::AesUnit::kKeyRegisters:
      return mn::kAesKeyRegs;
    case aes::AesUnit::kSboxArray:
      return mn::kAesSbox;
    case aes::AesUnit::kMixColumns:
      return mn::kAesMixColumns;
    case aes::AesUnit::kKeySchedule:
      return mn::kAesKeySchedule;
    case aes::AesUnit::kControl:
      return mn::kAesControl;
  }
  return "?";
}

aes::Key default_key() {
  // The FIPS-197 Appendix B key; any key works, this one keeps examples
  // cross-checkable against the standard.
  return aes::Key{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                  0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};
}

}  // namespace

const char* trojan_host_module(trojan::TrojanKind kind) {
  namespace mn = layout::module_names;
  switch (kind) {
    case trojan::TrojanKind::kT1AmLeak:
      return mn::kTrojan1;
    case trojan::TrojanKind::kT2Leakage:
      return mn::kTrojan2;
    case trojan::TrojanKind::kT3Cdma:
      return mn::kTrojan3;
    case trojan::TrojanKind::kT4PowerHog:
      return mn::kTrojan4;
    case trojan::TrojanKind::kA2Analog:
      return mn::kTrojanA2;
  }
  return "?";
}

ChipConfig make_default_config() {
  ChipConfig config;
  config.key = default_key();

  // Noise calibration (DESIGN.md §4): the ambient broadband level is the one
  // fitted constant — chosen so the golden on-chip capture lands near the
  // paper's ~30 dB — and the on-chip sensor's pickup fraction reflects its
  // shielded, differential on-die wiring versus the probe's open air loop.
  constexpr double kAmbientRms = 115.0e-6;

  config.onchip_chain = sensor::ChainSpec{50.0, 500e6, 1.0, 12};
  config.onchip_noise = sensor::NoiseSpec{};
  config.onchip_noise.thermal_rms_v = 2.0e-6;
  config.onchip_noise.environment_rms_v = kAmbientRms;
  config.onchip_noise.environment_pickup = 0.2;

  config.external_chain = sensor::ChainSpec{40.0, 500e6, 1.0, 12};
  config.external_noise = sensor::NoiseSpec{};
  config.external_noise.thermal_rms_v = 2.0e-6;
  config.external_noise.environment_rms_v = kAmbientRms;
  config.external_noise.environment_pickup = 1.0;

  return config;
}

Chip::Chip(const ChipConfig& config)
    : config_{config},
      floorplan_{layout::reference_floorplan(config.die)},
      onchip_coil_{em::make_onchip_spiral(config.die, config.spiral)},
      external_coil_{em::make_external_probe(config.die, config.probe)},
      aes_model_{config.key},
      onchip_chain_{config.onchip_chain, config.onchip_noise},
      external_chain_{config.external_chain, config.external_noise},
      stream_root_{config.seed} {
  config_.clock.validate();
  EMTS_REQUIRE(config_.trace_cycles >= aes::kCyclesPerEncryption,
               "trace window shorter than one encryption");

  for (std::size_t i = 0; i < 5; ++i) {
    trojans_[i] = trojan::make_trojan(trojan::kAllTrojanKinds[i]);
  }

  // Precompute couplings: one supply loop per placed module, Neumann double
  // integral into each coil. This is the expensive step; captures afterwards
  // are weighted sums.
  const auto pads = layout::PadRing::for_die(config_.die);
  const auto loops = layout::supply_loops(floorplan_, pads);
  const em::FluxOptions flux_options{};
  Rng mismatch_rng = stream_root_.fork(0x7135ULL);
  for (const auto& loop : loops) {
    ModuleSource source;
    source.name = loop.module_name;
    source.m_onchip = em::loop_coil_coupling(loop, onchip_coil_, flux_options);
    source.m_external = em::loop_coil_coupling(loop, external_coil_, flux_options);
    if (config_.coupling_mismatch_sigma > 0.0) {
      // Independent per-module, per-coil inductance mismatch for this die.
      source.m_onchip *= 1.0 + mismatch_rng.gaussian(0.0, config_.coupling_mismatch_sigma);
      source.m_external *= 1.0 + mismatch_rng.gaussian(0.0, config_.coupling_mismatch_sigma);
    }
    sources_.push_back(source);
  }
}

void Chip::arm(trojan::TrojanKind kind) {
  for (auto& t : trojans_) t->set_active(t->kind() == kind);
}

void Chip::disarm_all() {
  for (auto& t : trojans_) t->set_active(false);
}

bool Chip::is_armed(trojan::TrojanKind kind) const {
  for (const auto& t : trojans_) {
    if (t->kind() == kind) return t->active();
  }
  return false;
}

std::optional<trojan::TrojanKind> Chip::armed_kind() const {
  for (const auto& t : trojans_) {
    if (t->active()) return t->kind();
  }
  return std::nullopt;
}

const trojan::Trojan& Chip::trojan_model(trojan::TrojanKind kind) const {
  for (const auto& t : trojans_) {
    if (t->kind() == kind) return *t;
  }
  EMTS_ASSERT(false);
  return *trojans_[0];
}

double Chip::coupling(const std::string& module_name, Pickup pickup) const {
  for (const ModuleSource& s : sources_) {
    if (s.name == module_name) {
      return pickup == Pickup::kOnChipSensor ? s.m_onchip : s.m_external;
    }
  }
  EMTS_REQUIRE(false, "no module named " + module_name);
  return 0.0;
}

std::vector<aes::Block> Chip::window_plaintexts(std::uint64_t trace_index) const {
  // Mirrors the generation inside module_currents exactly.
  const std::uint64_t workload_label =
      config_.fixed_challenge_workload ? 0xae5ULL : (mix64(trace_index) ^ 0xae5ULL);
  Rng plaintext_rng = stream_root_.fork(workload_label);
  std::vector<aes::Block> plaintexts;
  for (std::size_t cycle = 0; cycle + aes::kCyclesPerEncryption <= config_.trace_cycles;
       cycle += aes::kCyclesPerEncryption) {
    aes::Block plaintext{};
    for (auto& b : plaintext) b = static_cast<std::uint8_t>(plaintext_rng.next_u32());
    plaintexts.push_back(plaintext);
  }
  return plaintexts;
}

std::vector<power::CurrentTrace> Chip::module_currents(bool encrypting,
                                                       std::uint64_t trace_index) const {
  std::vector<power::CurrentTrace> currents;
  currents.reserve(sources_.size());
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    currents.emplace_back(config_.clock, config_.trace_cycles);
  }

  auto trace_of = [&](const char* name) -> power::CurrentTrace& {
    for (std::size_t i = 0; i < sources_.size(); ++i) {
      if (sources_[i].name == name) return currents[i];
    }
    EMTS_ASSERT(false);
    return currents[0];
  };

  // ---- AES units ----
  const std::uint64_t workload_label =
      config_.fixed_challenge_workload ? 0xae5ULL : (mix64(trace_index) ^ 0xae5ULL);
  Rng plaintext_rng = stream_root_.fork(workload_label);
  std::size_t cycle = 0;
  while (cycle < config_.trace_cycles) {
    std::vector<aes::CycleActivity> activity;
    if (encrypting && cycle + aes::kCyclesPerEncryption <= config_.trace_cycles) {
      aes::Block plaintext{};
      for (auto& b : plaintext) b = static_cast<std::uint8_t>(plaintext_rng.next_u32());
      activity = aes_model_.encrypt_activity(plaintext);
    } else {
      activity.assign(1, aes::AesActivityModel::idle_cycle());
    }

    for (std::size_t k = 0; k < activity.size(); ++k) {
      for (std::size_t u = 0; u < aes::kAesUnitCount; ++u) {
        const aes::UnitActivity& ua = activity[k][u];
        if (ua.toggles <= 0.0) continue;
        trace_of(aes_unit_module_name(static_cast<aes::AesUnit>(u)))
            .add_pulse({cycle + k, ua.toggles, ua.onset_ps, ua.spread_ps}, kChargePerToggleFc);
      }
    }
    cycle += activity.size();
  }

  // ---- Trojans ----
  trojan::TraceContext context;
  context.clock = config_.clock;
  context.num_cycles = config_.trace_cycles;
  context.key = config_.key;
  context.trace_index = trace_index;
  for (const auto& t : trojans_) {
    t->contribute(context, trace_of(trojan_host_module(t->kind())));
  }

  return currents;
}

std::vector<double> Chip::raw_emf(Pickup pickup, bool encrypting,
                                  std::uint64_t trace_index) const {
  const auto currents = module_currents(encrypting, trace_index);
  std::vector<double> emf(samples_per_trace(), 0.0);
  for (std::size_t m = 0; m < sources_.size(); ++m) {
    const double coupling_h =
        pickup == Pickup::kOnChipSensor ? sources_[m].m_onchip : sources_[m].m_external;
    if (coupling_h == 0.0) continue;
    const auto didt = currents[m].derivative();
    for (std::size_t i = 0; i < emf.size(); ++i) {
      emf[i] -= coupling_h * didt[i];  // Faraday: v = -M dI/dt
    }
  }
  return emf;
}

std::uint64_t Chip::capture_stream_label(bool encrypting, std::uint64_t trace_index) const {
  // Splittable per-capture stream derivation: a pure function of
  // (seed via stream_root_, trace_index, encrypting, armed Trojan). Folding
  // the capture conditions in decorrelates the noise realizations of signal
  // vs. idle windows and golden vs. infected populations at the same index.
  // The golden encrypting case deliberately reduces to the historical
  // mix64(trace_index) so calibration sets stay bit-identical across PRs.
  std::uint64_t label = mix64(trace_index);
  if (!encrypting) label = mix64(label ^ 0x1d1eULL);
  if (const auto armed = armed_kind()) {
    label = mix64(label ^ (0xa63edULL + static_cast<std::uint64_t>(*armed)));
  }
  return label;
}

Acquisition Chip::capture(bool encrypting, std::uint64_t trace_index) const {
  // Both pickups observe the same physical currents; compute them once.
  const auto currents = module_currents(encrypting, trace_index);
  std::vector<std::vector<double>> didt;
  didt.reserve(currents.size());
  for (const auto& c : currents) didt.push_back(c.derivative());

  const std::size_t n = samples_per_trace();
  std::vector<double> emf_onchip(n, 0.0);
  std::vector<double> emf_external(n, 0.0);
  for (std::size_t m = 0; m < sources_.size(); ++m) {
    for (std::size_t i = 0; i < n; ++i) {
      emf_onchip[i] -= sources_[m].m_onchip * didt[m][i];
      emf_external[i] -= sources_[m].m_external * didt[m][i];
    }
  }

  Acquisition acq;
  const std::uint64_t label = capture_stream_label(encrypting, trace_index);
  Rng onchip_rng = stream_root_.fork(label ^ 0x0c1ULL);
  Rng external_rng = stream_root_.fork(label ^ 0xe72ULL);
  acq.onchip_v = onchip_chain_.measure(emf_onchip, sample_rate(), onchip_rng);
  acq.external_v = external_chain_.measure(emf_external, sample_rate(), external_rng);
  return acq;
}

}  // namespace emts::sim
