// Near-field scanning and Trojan localization — an extension built on the
// paper's observation that EM, unlike global power, is *location aware*
// (Sec. III-A: "non-contact detection, location awareness, and rich in
// information"). A small virtual scan coil is swept over the die; the RMS
// emf map of a suspect chip minus the golden map peaks over the region whose
// current changed, pointing at the Trojan's placement.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "layout/floorplan.hpp"
#include "sim/chip.hpp"

namespace emts::sim {

struct ScanSpec {
  std::size_t nx = 20;
  std::size_t ny = 20;
  double coil_radius = 60e-6;   // scan micro-coil radius, m
  double z_clearance = 2e-6;    // scan plane height above the sensor metal, m
  std::size_t traces = 2;       // capture windows averaged per scan
};

/// RMS emf observed by the scan coil at each grid position (row-major,
/// noise-free: a bench scanner integrates long enough to average noise out).
struct ScanMap {
  std::size_t nx = 0;
  std::size_t ny = 0;
  double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;  // scanned extent, m
  double z = 0.0;
  double coil_radius = 0.0;
  std::vector<double> rms;

  double at(std::size_t ix, std::size_t iy) const;
  double x_of(std::size_t ix) const;
  double y_of(std::size_t iy) const;
  double max_value() const;
};

/// Sweeps the micro-coil over the die and measures the RMS emf per position,
/// averaged over `spec.traces` capture windows starting at `first_trace`.
ScanMap near_field_scan(const Chip& chip, const ScanSpec& spec, bool encrypting,
                        std::uint64_t first_trace);

/// Result of comparing a suspect scan against a golden scan.
struct LocalizationResult {
  std::string module_name;  // best-matching floorplan module (matched filter)
  double match_score = 0.0;     // normalized correlation of the winner
  double runner_up_score = 0.0; // second best (margin = score gap)
  double peak_x = 0.0;          // raw anomaly peak position, m
  double peak_y = 0.0;
  double peak_delta = 0.0;      // |suspect - golden| at the peak
  double contrast = 0.0;        // peak delta / mean delta
};

/// Identifies the module whose supply-loop field pattern best explains the
/// |suspect - golden| anomaly map (matched filter over the floorplan's
/// loops). The raw peak is reported too; the matched filter is what makes
/// localization robust to the shared pad-edge and strap runs every loop
/// contains. Requires matching scan grids; `die` must be the scanned die.
LocalizationResult localize_anomaly(const ScanMap& golden, const ScanMap& suspect,
                                    const layout::Floorplan& floorplan,
                                    const layout::DieSpec& die);

}  // namespace emts::sim
