#include "sim/silicon.hpp"

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace emts::sim {

ChipConfig make_silicon_config(const SiliconOptions& options) {
  EMTS_REQUIRE(options.process_sigma >= 0.0 && options.process_sigma < 0.2,
               "process sigma out of plausible range");
  EMTS_REQUIRE(options.lab_ambient_factor >= 1.0, "the lab is never quieter than the ideal sim");

  ChipConfig config = make_default_config();
  config.seed ^= mix64(options.chip_serial);

  // Per-chip process corner: geometry and drive-strength variation shows up
  // as small reproducible deviations of the die stack the couplings are
  // computed from.
  Rng corner{mix64(options.chip_serial) ^ 0x51c0ULL};
  const auto vary = [&](double nominal) {
    return nominal * (1.0 + corner.gaussian(0.0, options.process_sigma));
  };
  config.die.cell_z = vary(config.die.cell_z);
  config.die.grid_z = vary(config.die.grid_z);
  config.die.sensor_z = config.die.grid_z + vary(config.die.sensor_z - config.die.grid_z);
  config.die.package_top = vary(config.die.package_top);
  // Local metal/ILD variation: each module's loop inductance moves on its
  // own, so different dies have differently *shaped* fingerprints.
  config.coupling_mismatch_sigma = options.process_sigma;

  // Lab ambient is louder than the simulated white-noise floor, but only
  // the probe's open-air loop collects it — the on-chip sensor sits inside
  // the package and keeps its simulated noise floor (the paper's measured
  // on-chip SNR even slightly *exceeds* its simulation).
  config.external_noise.environment_rms_v *= options.lab_ambient_factor;

  // Probe-only lab effects. Gain jitter is the dominant one: a manually
  // positioned probe's pickup varies by several percent capture to capture,
  // which smears its distance distributions (Fig. 6 top row) while leaving
  // the RMS-ratio SNR almost untouched.
  config.external_noise.drift_rms_v = options.external_drift_rms_v;
  config.external_noise.gain_jitter_rel = options.gain_jitter_rel;
  config.onchip_noise.gain_jitter_rel = options.gain_jitter_rel * 0.05;
  if (options.add_lab_interferers) {
    config.external_noise.tones = {
        {27.12e6, 18e-6},   // ISM-band pickup
        {98.3e6, 26e-6},    // FM broadcast
        {145.8e6, 12e-6},   // VHF
    };
  }

  return config;
}

}  // namespace emts::sim
