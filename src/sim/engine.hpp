// CaptureEngine: the batch acquisition layer between the simulated chip and
// every experiment. The paper's setting — runtime trust evaluation over
// thousands of capture windows — and the reproduction's own campaigns
// (Fig. 6 histograms, ROC sweeps, ablations) all reduce to "record N windows
// under one condition"; the engine runs those N windows across a persistent
// worker pool.
//
// Guarantees:
//   * Determinism — Chip::capture() is a pure function of (seed, trace_index,
//     encrypting, armed Trojan), so the engine's output is byte-identical to
//     the serial loop for every thread count. Workers write into
//     slot-indexed buffers; no output reordering is possible.
//   * Exception propagation — the first exception thrown inside a worker is
//     rethrown on the calling thread after the batch drains.
//   * One fixed condition per batch — arm()/disarm_all() mutate the chip and
//     must happen between batches, never during one (the const Chip&
//     signatures enforce this at compile time).
//
// Thread count resolution: explicit EngineOptions::threads, else the
// EMTS_THREADS environment variable, else std::thread::hardware_concurrency.
// One thread means "run inline on the caller" — no pool is spawned and the
// code path is the plain serial loop.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/trace.hpp"
#include "sim/chip.hpp"

namespace emts::sim {

struct EngineOptions {
  /// Worker threads. 0 = auto: EMTS_THREADS env var if set, else the
  /// hardware concurrency (at least 1).
  std::size_t threads = 0;
  /// Trace indices dispatched per work item. Small enough to balance load
  /// across workers, large enough to amortize queue traffic.
  std::size_t chunk = 4;
};

/// Both pickups of a batch, recorded simultaneously (each window's physics
/// is computed once and feeds both measurement chains, exactly like the
/// paper's scope sampling probe and sensor in one shot).
struct PairBatch {
  core::TraceSet onchip;
  core::TraceSet external;
};

class CaptureEngine {
 public:
  explicit CaptureEngine(const EngineOptions& options = {});
  ~CaptureEngine();

  CaptureEngine(const CaptureEngine&) = delete;
  CaptureEngine& operator=(const CaptureEngine&) = delete;

  /// Resolved worker count (>= 1); 1 means the serial inline path.
  std::size_t thread_count() const { return threads_; }

  /// Records `count` windows from one pickup, indices
  /// [first_index, first_index + count). Output order matches index order
  /// regardless of scheduling.
  core::TraceSet capture_batch(const Chip& chip, Pickup pickup, std::size_t count,
                               std::uint64_t first_index, bool encrypting = true) const;

  /// Records `count` windows keeping both pickups, for experiments that
  /// compare the on-chip sensor against the external probe on the very same
  /// physical windows (Fig. 6's rows; ROC sensor-vs-probe sweeps).
  PairBatch capture_pair_batch(const Chip& chip, std::size_t count,
                               std::uint64_t first_index, bool encrypting = true) const;

  /// SNR per the paper's recipe (Sec. V-A): `windows` signal captures while
  /// encrypting at [base, base+windows), `windows` idle captures at
  /// [base+windows, base+2*windows), RMS ratio in dB.
  double snr_batch(const Chip& chip, Pickup pickup, std::size_t windows = 8,
                   std::uint64_t base = 100) const;

  /// Runs fn(0..count-1) across the pool in deterministic-slot style: the
  /// callable must write its result into a slot owned by index `i`. Used by
  /// the batch APIs and available for custom campaigns (e.g. near-field
  /// scan grids). Rethrows the first worker exception.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn) const;

  /// Process-wide engine shared by benches, examples, and tools; sized from
  /// EMTS_THREADS / hardware concurrency on first use.
  static CaptureEngine& shared();

 private:
  struct Batch;  // one parallel_for invocation's bookkeeping

  void worker_loop();

  std::size_t threads_ = 1;
  std::size_t chunk_ = 4;

  // Work queue: each item is one chunk of some active batch. Mutable so the
  // logically-const batch APIs (they do not change engine configuration) can
  // dispatch work.
  mutable std::mutex mutex_;
  mutable std::condition_variable work_ready_;
  mutable std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace emts::sim
