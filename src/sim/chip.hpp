// The simulated security-enhanced AES chip — our stand-in for the paper's
// fabricated 180 nm die (Sec. V). It assembles every substrate:
//
//   floorplan (Fig. 3)  ->  supply current loops      (layout)
//   AES activity model  ->  per-module currents       (aes, power)
//   Trojan library      ->  extra currents when armed (trojan)
//   spiral + probe      ->  mutual-inductance couplings (em)
//   Faraday's law       ->  induced emf per coil
//   measurement chain   ->  recorded voltage traces   (sensor)
//
// capture() produces exactly what the paper's oscilloscope produced: one
// trace from the on-chip sensor pads and one from the external probe, for an
// encrypting or idle chip, with or without a Trojan activated.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "aes/activity.hpp"
#include "em/coil.hpp"
#include "em/mutual.hpp"
#include "layout/power_grid.hpp"
#include "power/current_trace.hpp"
#include "sensor/measurement.hpp"
#include "trojan/trojan.hpp"
#include "util/rng.hpp"

namespace emts::sim {

struct ChipConfig {
  layout::DieSpec die{};
  power::ClockSpec clock{};                 // 48 MHz x 8 samples by default
  std::size_t trace_cycles = 512;           // 4096 samples per capture
  aes::Key key{};                           // device key
  std::uint64_t seed = 0x5eed5eedULL;       // master seed for all randomness
  // Trust evaluation replays a known challenge workload each window ("the
  // users know how the circuit will operate", Sec. III-B): every capture
  // encrypts the same plaintext sequence, so golden captures differ only by
  // noise. Set false for fully random traffic (harder, ablation bench).
  bool fixed_challenge_workload = true;
  // Per-module coupling mismatch (relative sigma): local metal thickness and
  // dielectric variation perturb each supply loop's inductance independently
  // from die to die. 0 = ideal geometry; silicon mode sets a few percent.
  // Reproducible per seed — this is what makes two dies' fingerprints differ
  // in *shape*, not just scale (the golden-chip problem).
  double coupling_mismatch_sigma = 0.0;
  em::OnChipSpiralSpec spiral{};            // Fig. 2(b) sensor
  em::ExternalProbeSpec probe{};            // Fig. 2(a) baseline probe
  sensor::ChainSpec onchip_chain{};         // set by make_default_config()
  sensor::NoiseSpec onchip_noise{};
  sensor::ChainSpec external_chain{};
  sensor::NoiseSpec external_noise{};
};

/// Baseline configuration used by every experiment: calibrated so the golden
/// on-chip capture lands near the paper's ~30 dB SNR; everything else follows
/// from the physics. See DESIGN.md §4.
ChipConfig make_default_config();

/// Floorplan module hosting a Trojan's payload (layout::module_names entry)
/// — the ground truth localization is judged against.
const char* trojan_host_module(trojan::TrojanKind kind);

/// Which pickup recorded a trace.
enum class Pickup { kOnChipSensor, kExternalProbe };

/// One capture: both pickups record the same window simultaneously (the
/// paper collects "the signals from the external probe and on-chip sensor
/// ... simultaneously").
struct Acquisition {
  std::vector<double> onchip_v;
  std::vector<double> external_v;

  const std::vector<double>& of(Pickup pickup) const {
    return pickup == Pickup::kOnChipSensor ? onchip_v : external_v;
  }
  std::vector<double>& of(Pickup pickup) {
    return pickup == Pickup::kOnChipSensor ? onchip_v : external_v;
  }
  /// Moves one pickup's trace out of the acquisition.
  std::vector<double> take(Pickup pickup) { return std::move(of(pickup)); }
};

class Chip {
 public:
  explicit Chip(const ChipConfig& config);

  /// Arms one Trojan's payload (at most one active at a time mirrors the
  /// paper's "Trojans are activated in sequence"). Arming mutates the chip:
  /// it must not race with concurrent capture() calls — batch APIs capture
  /// under one fixed armed state (see sim::CaptureEngine).
  void arm(trojan::TrojanKind kind);
  void disarm_all();
  bool is_armed(trojan::TrojanKind kind) const;
  /// The Trojan whose payload is currently armed, if any.
  std::optional<trojan::TrojanKind> armed_kind() const;

  /// Records one window. `encrypting` = the AES core runs back-to-back
  /// encryptions of random plaintexts (signal capture); false = the chip is
  /// powered but idle (the paper's noise capture).
  ///
  /// capture() is const and a pure function of (config.seed, trace_index,
  /// encrypting, armed Trojan): every random stream (plaintexts, noise,
  /// interferer phases) is split off those labels, so identical inputs give
  /// bit-identical traces — across repeated calls, across independent Chip
  /// instances, and across threads. Any number of captures may run
  /// concurrently on one chip as long as no arm()/disarm_all() races them.
  Acquisition capture(bool encrypting, std::uint64_t trace_index) const;

  /// Induced emf at the coil terminals before the measurement chain — used
  /// by physics-level tests and the coupling benches.
  std::vector<double> raw_emf(Pickup pickup, bool encrypting, std::uint64_t trace_index) const;

  const ChipConfig& config() const { return config_; }
  const em::Coil& onchip_coil() const { return onchip_coil_; }
  const em::Coil& external_coil() const { return external_coil_; }

  /// Coupling (henries) between a floorplan module's supply loop and a coil.
  double coupling(const std::string& module_name, Pickup pickup) const;

  const layout::Floorplan& floorplan() const { return floorplan_; }
  const trojan::Trojan& trojan_model(trojan::TrojanKind kind) const;

  double sample_rate() const { return config_.clock.sample_rate(); }
  std::size_t samples_per_trace() const {
    return config_.trace_cycles * config_.clock.samples_per_cycle;
  }

  /// Per-module transient supply currents of one window, in floorplan order
  /// (the raw physical quantity everything else derives from; used by the
  /// near-field scanner and available for power-analysis research).
  std::vector<power::CurrentTrace> module_transients(bool encrypting,
                                                     std::uint64_t trace_index) const {
    return module_currents(encrypting, trace_index);
  }

  /// The plaintexts the AES core encrypts during window `trace_index`, in
  /// execution order (one per kCyclesPerEncryption slot; the window tail
  /// idles). With the fixed challenge workload this list is identical for
  /// every window. An attacker observing the bus gets exactly this view —
  /// used by the CPA attack module.
  std::vector<aes::Block> window_plaintexts(std::uint64_t trace_index) const;

 private:
  struct ModuleSource {
    std::string name;
    double m_onchip = 0.0;    // coupling into the spiral, H
    double m_external = 0.0;  // coupling into the probe, H
  };

  /// Builds the per-module current waveforms for one window.
  std::vector<power::CurrentTrace> module_currents(bool encrypting,
                                                   std::uint64_t trace_index) const;

  /// Label of the per-capture random stream: a splittable pure function of
  /// (trace_index, encrypting, armed Trojan). The golden encrypting case
  /// reduces to mix64(trace_index), keeping calibrated figures stable.
  std::uint64_t capture_stream_label(bool encrypting, std::uint64_t trace_index) const;

  // The physics model below is immutable after construction; the only
  // mutable state is the Trojans' armed flag (arm()/disarm_all()). All
  // per-capture state — RNG streams, filter state, waveform buffers — lives
  // on the capture's own stack, which is what makes capture() const and
  // safe to call from many threads at once.
  ChipConfig config_;
  layout::Floorplan floorplan_;
  em::Coil onchip_coil_;
  em::Coil external_coil_;
  std::vector<ModuleSource> sources_;  // AES units then Trojans, floorplan order
  aes::AesActivityModel aes_model_;
  std::array<std::unique_ptr<trojan::Trojan>, 5> trojans_;
  sensor::MeasurementChain onchip_chain_;
  sensor::MeasurementChain external_chain_;
  // Root of all derived random streams, fixed at construction from
  // config.seed; only its const fork() is ever called afterwards.
  const Rng stream_root_;
};

}  // namespace emts::sim
