#include "sim/scan.hpp"

#include <algorithm>
#include <cmath>

#include "em/mutual.hpp"
#include "layout/power_grid.hpp"
#include "util/assert.hpp"

namespace emts::sim {

double ScanMap::at(std::size_t ix, std::size_t iy) const {
  EMTS_ASSERT(ix < nx && iy < ny);
  return rms[iy * nx + ix];
}

double ScanMap::x_of(std::size_t ix) const {
  return x0 + (x1 - x0) * (static_cast<double>(ix) + 0.5) / static_cast<double>(nx);
}

double ScanMap::y_of(std::size_t iy) const {
  return y0 + (y1 - y0) * (static_cast<double>(iy) + 0.5) / static_cast<double>(ny);
}

double ScanMap::max_value() const {
  double best = 0.0;
  for (double v : rms) best = std::max(best, v);
  return best;
}

ScanMap near_field_scan(const Chip& chip, const ScanSpec& spec, bool encrypting,
                        std::uint64_t first_trace) {
  EMTS_REQUIRE(spec.nx >= 2 && spec.ny >= 2, "scan grid needs at least 2x2 points");
  EMTS_REQUIRE(spec.coil_radius > 0.0, "scan coil radius must be positive");
  EMTS_REQUIRE(spec.traces >= 1, "scan needs at least one capture window");

  const auto& die = chip.config().die;
  const auto& floorplan = chip.floorplan();
  const auto loops = layout::supply_loops(floorplan, layout::PadRing::for_die(die));
  const std::size_t modules = loops.size();

  ScanMap map;
  map.nx = spec.nx;
  map.ny = spec.ny;
  map.x0 = 0.0;
  map.y0 = 0.0;
  map.x1 = die.core_width;
  map.y1 = die.core_height;
  map.z = die.sensor_z + spec.z_clearance;
  map.coil_radius = spec.coil_radius;
  map.rms.assign(spec.nx * spec.ny, 0.0);

  // Couplings of every module loop into the scan coil at every position.
  std::vector<double> coupling(spec.nx * spec.ny * modules, 0.0);
  const em::FluxOptions flux_options{spec.coil_radius / 2.0};
  for (std::size_t iy = 0; iy < spec.ny; ++iy) {
    for (std::size_t ix = 0; ix < spec.nx; ++ix) {
      const em::TurnSurface disk{em::TurnSurface::Shape::kDisk, map.z, map.x_of(ix),
                                 map.y_of(iy), spec.coil_radius, 0.0};
      for (std::size_t m = 0; m < modules; ++m) {
        coupling[(iy * spec.nx + ix) * modules + m] =
            em::flux_through_surface(loops[m].segments, 1.0, disk, flux_options);
      }
    }
  }

  // Average the emf energy over the requested capture windows.
  for (std::uint64_t t = 0; t < spec.traces; ++t) {
    const auto currents = chip.module_transients(encrypting, first_trace + t);
    std::vector<std::vector<double>> didt;
    didt.reserve(modules);
    for (const auto& c : currents) didt.push_back(c.derivative());
    const std::size_t samples = didt.front().size();

    for (std::size_t p = 0; p < spec.nx * spec.ny; ++p) {
      const double* m_of = &coupling[p * modules];
      double energy = 0.0;
      for (std::size_t i = 0; i < samples; ++i) {
        double emf = 0.0;
        for (std::size_t m = 0; m < modules; ++m) emf -= m_of[m] * didt[m][i];
        energy += emf * emf;
      }
      map.rms[p] += energy / static_cast<double>(samples);
    }
  }
  for (double& v : map.rms) v = std::sqrt(v / static_cast<double>(spec.traces));
  return map;
}

LocalizationResult localize_anomaly(const ScanMap& golden, const ScanMap& suspect,
                                    const layout::Floorplan& floorplan,
                                    const layout::DieSpec& die) {
  EMTS_REQUIRE(golden.nx == suspect.nx && golden.ny == suspect.ny,
               "scan maps must share one grid");
  EMTS_REQUIRE(golden.nx >= 2, "empty scan maps");
  EMTS_REQUIRE(golden.coil_radius > 0.0, "scan maps carry no coil radius");

  LocalizationResult result;

  // Raw anomaly map and its peak (for reporting).
  const std::size_t points = golden.nx * golden.ny;
  std::vector<double> delta(points, 0.0);
  double delta_sum = 0.0;
  std::size_t best_ix = 0;
  std::size_t best_iy = 0;
  for (std::size_t iy = 0; iy < golden.ny; ++iy) {
    for (std::size_t ix = 0; ix < golden.nx; ++ix) {
      const double d = std::abs(suspect.at(ix, iy) - golden.at(ix, iy));
      delta[iy * golden.nx + ix] = d;
      delta_sum += d;
      if (d > result.peak_delta) {
        result.peak_delta = d;
        best_ix = ix;
        best_iy = iy;
      }
    }
  }
  result.peak_x = golden.x_of(best_ix);
  result.peak_y = golden.y_of(best_iy);
  const double mean_delta = delta_sum / static_cast<double>(points);
  result.contrast = mean_delta > 0.0 ? result.peak_delta / mean_delta : 0.0;
  if (result.peak_delta == 0.0) {
    result.module_name.clear();
    return result;
  }

  // Matched filter: every module's loop produces a characteristic |coupling|
  // pattern over the scan plane; the anomaly is (approximately) a scaled
  // copy of the offending module's pattern. Normalized correlation picks it
  // out even though all loops share the pad edge and strap geometry.
  const auto loops = layout::supply_loops(floorplan, layout::PadRing::for_die(die));
  const em::FluxOptions flux_options{golden.coil_radius / 2.0};
  double best = -1.0;
  double runner_up = -1.0;
  for (const auto& loop : loops) {
    double dot = 0.0;
    double norm2 = 0.0;
    for (std::size_t iy = 0; iy < golden.ny; ++iy) {
      for (std::size_t ix = 0; ix < golden.nx; ++ix) {
        const em::TurnSurface disk{em::TurnSurface::Shape::kDisk, golden.z, golden.x_of(ix),
                                   golden.y_of(iy), golden.coil_radius, 0.0};
        const double pattern = std::abs(em::flux_through_surface(loop.segments, 1.0, disk,
                                                                 flux_options));
        dot += delta[iy * golden.nx + ix] * pattern;
        norm2 += pattern * pattern;
      }
    }
    const double score = norm2 > 0.0 ? dot / std::sqrt(norm2) : 0.0;
    if (score > best) {
      runner_up = best;
      best = score;
      result.module_name = loop.module_name;
    } else if (score > runner_up) {
      runner_up = score;
    }
  }
  result.match_score = best;
  result.runner_up_score = std::max(runner_up, 0.0);
  return result;
}

}  // namespace emts::sim
