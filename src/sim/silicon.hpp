// "Silicon mode" — the measurement conditions of the paper's Sec. V chip
// experiments, as opposed to the clean Sec. IV simulation conditions.
//
// The paper's measured numbers differ from its simulated ones in one
// systematic way: the on-chip sensor behaves as simulated (30.55 dB vs
// 29.98 dB) while the external probe degrades (13.87 dB vs 17.48 dB) because
// the lab adds "more unintended influences". Silicon mode models exactly
// those influences: narrowband interferers picked up by the probe loop,
// baseline drift from probe positioning, per-capture gain jitter, a higher
// broadband ambient level, and per-chip process variation applied to the
// die geometry.
#pragma once

#include <cstdint>

#include "sim/chip.hpp"

namespace emts::sim {

struct SiliconOptions {
  std::uint64_t chip_serial = 1;       // which die from the lot
  double process_sigma = 0.03;         // relative geometry/drive variation
  double lab_ambient_factor = 1.6;     // lab vs simulation broadband noise
  double external_drift_rms_v = 40e-6; // probe positioning / cable wander
  double gain_jitter_rel = 0.08;       // probe positioning repeatability
  bool add_lab_interferers = true;     // FM / VHF pickup on the probe loop
};

/// Builds a chip configuration with silicon-mode non-idealities applied on
/// top of make_default_config(). Different chip serials produce different
/// (but reproducible) process corners.
ChipConfig make_silicon_config(const SiliconOptions& options = {});

}  // namespace emts::sim
