// Deterministic pseudo-random number generation.
//
// Every stochastic element of the reproduction (plaintexts, noise, process
// variation, placement jitter) draws from an explicitly seeded Rng so that
// experiments are bit-reproducible run to run. The generator is PCG32
// (O'Neill, 2014): small state, excellent statistical quality, trivially
// seedable from a 64-bit stream id, and much faster than std::mt19937.
#pragma once

#include <cstdint>
#include <vector>

namespace emts {

/// PCG32 pseudo-random generator with Gaussian and utility draws.
class Rng {
 public:
  /// Seeds from a 64-bit seed and an independent stream selector; two Rng
  /// instances with the same seed but different streams are uncorrelated.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL, std::uint64_t stream = 1);

  /// Next raw 32-bit draw.
  std::uint32_t next_u32();

  /// Next raw 64-bit draw (two 32-bit draws).
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint32_t uniform_below(std::uint32_t n);

  /// Standard normal draw (Box–Muller with caching).
  double gaussian();

  /// Normal draw with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Bernoulli draw.
  bool coin(double p_true = 0.5);

  /// Fills a vector with n i.i.d. N(0, stddev^2) samples.
  std::vector<double> gaussian_vector(std::size_t n, double stddev);

  /// Derives an independent child generator; `label` selects the stream.
  /// Useful to give each noise source / trace its own uncorrelated stream.
  Rng fork(std::uint64_t label) const;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// Stable 64-bit mix (SplitMix64 finalizer); used to derive seeds from labels.
std::uint64_t mix64(std::uint64_t x);

}  // namespace emts
