// FNV-1a 64-bit hash, shared by the fleet's device router and the wire /
// snapshot persistence layers (frame and record checksums). Chosen over
// std::hash because the result is pinned by the algorithm — stable across
// platforms, toolchains and runs — which is exactly what a device-to-shard
// assignment and an on-disk checksum both require.
#pragma once

#include <cstddef>
#include <cstdint>

namespace emts::util {

inline constexpr std::uint64_t kFnv1aOffset = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

inline std::uint64_t fnv1a64(const void* data, std::size_t size,
                             std::uint64_t seed = kFnv1aOffset) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= static_cast<std::uint64_t>(bytes[i]);
    hash *= kFnv1aPrime;
  }
  return hash;
}

}  // namespace emts::util
