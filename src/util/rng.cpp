#include "util/rng.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace emts {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng::Rng(std::uint64_t seed, std::uint64_t stream) : state_{0}, inc_{(stream << 1u) | 1u} {
  next_u32();
  state_ += mix64(seed);
  next_u32();
}

std::uint32_t Rng::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint64_t Rng::next_u64() {
  return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
}

double Rng::uniform() {
  // 53 random bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  EMTS_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint32_t Rng::uniform_below(std::uint32_t n) {
  EMTS_REQUIRE(n > 0, "uniform_below requires n > 0");
  const std::uint32_t threshold = (0u - n) % n;  // 2^32 mod n
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % n;
  }
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; u1 in (0,1] to keep log finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::gaussian(double mean, double stddev) {
  EMTS_REQUIRE(stddev >= 0.0, "gaussian stddev must be non-negative");
  return mean + stddev * gaussian();
}

bool Rng::coin(double p_true) { return uniform() < p_true; }

std::vector<double> Rng::gaussian_vector(std::size_t n, double stddev) {
  std::vector<double> out(n);
  for (double& v : out) v = gaussian(0.0, stddev);
  return out;
}

Rng Rng::fork(std::uint64_t label) const {
  return Rng{mix64(state_ ^ mix64(label)), mix64(inc_ ^ label) | 1u};
}

}  // namespace emts
