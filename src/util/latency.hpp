// Fixed-footprint latency histogram for hot-path observability. The
// streaming monitor records one sample per push and per spectral pass, so
// record() must be allocation-free and O(1): samples land in power-of-two
// nanosecond buckets held in a flat array. Quantiles are reconstructed from
// the bucket counts with linear interpolation inside the winning bucket —
// coarse by design, but plenty to tell an operator whether p99 push latency
// is 2 us or 2 ms.
#pragma once

#include <array>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "util/assert.hpp"

namespace emts::util {

class LatencyHistogram {
 public:
  /// Bucket b holds samples in [2^(b-1), 2^b) ns; bucket 0 holds zeros.
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t nanos) {
    const std::size_t bucket = static_cast<std::size_t>(std::bit_width(nanos));
    ++buckets_[bucket < kBuckets ? bucket : kBuckets - 1];
    ++count_;
    total_ += nanos;
    if (nanos < min_) min_ = nanos;
    if (nanos > max_) max_ = nanos;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t total_ns() const { return total_; }
  std::uint64_t min_ns() const { return count_ > 0 ? min_ : 0; }
  std::uint64_t max_ns() const { return max_; }

  double mean_ns() const {
    return count_ > 0 ? static_cast<double>(total_) / static_cast<double>(count_) : 0.0;
  }

  /// p-quantile estimate in nanoseconds, p in [0, 1]. Exact at the extremes
  /// (p=0 -> min, p=1 -> max), linearly interpolated inside the bucket that
  /// contains the requested rank otherwise.
  double quantile_ns(double p) const {
    EMTS_REQUIRE(p >= 0.0 && p <= 1.0, "quantile p must be in [0, 1]");
    if (count_ == 0) return 0.0;
    if (p <= 0.0) return static_cast<double>(min_ns());
    if (p >= 1.0) return static_cast<double>(max_);

    const double rank = p * static_cast<double>(count_);
    double cumulative = 0.0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (buckets_[b] == 0) continue;
      const double next = cumulative + static_cast<double>(buckets_[b]);
      if (rank <= next) {
        const double lower = b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
        const double upper = b == 0 ? 1.0 : lower * 2.0;
        const double frac = (rank - cumulative) / static_cast<double>(buckets_[b]);
        double value = lower + frac * (upper - lower);
        // Clamp into the observed range so tail estimates never exceed the
        // true extremes.
        if (value < static_cast<double>(min_ns())) value = static_cast<double>(min_ns());
        if (value > static_cast<double>(max_)) value = static_cast<double>(max_);
        return value;
      }
      cumulative = next;
    }
    return static_cast<double>(max_);
  }

  double p50_ns() const { return quantile_ns(0.50); }
  double p90_ns() const { return quantile_ns(0.90); }
  double p99_ns() const { return quantile_ns(0.99); }

  const std::array<std::uint64_t, kBuckets>& buckets() const { return buckets_; }

  /// Raw minimum as stored (UINT64_MAX while empty) — the value restore()
  /// needs for an exact round-trip; min_ns() folds the empty sentinel to 0.
  std::uint64_t raw_min_ns() const { return min_; }

  /// Reinstates a histogram captured by a snapshot: the exact counterpart of
  /// reading buckets()/count()/total_ns()/raw_min_ns()/max_ns(). Validates
  /// internal consistency so a corrupt snapshot cannot fabricate impossible
  /// quantiles.
  void restore(const std::array<std::uint64_t, kBuckets>& buckets, std::uint64_t count,
               std::uint64_t total, std::uint64_t raw_min, std::uint64_t max) {
    std::uint64_t bucket_sum = 0;
    for (const std::uint64_t b : buckets) bucket_sum += b;
    EMTS_REQUIRE(bucket_sum == count, "latency restore: bucket counts disagree with count");
    EMTS_REQUIRE(count > 0 ? raw_min <= max : (raw_min == UINT64_MAX && max == 0),
                 "latency restore: inconsistent min/max");
    buckets_ = buckets;
    count_ = count;
    total_ = total;
    min_ = raw_min;
    max_ = max;
  }

  void reset() { *this = LatencyHistogram{}; }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t min_ = UINT64_MAX;
  std::uint64_t max_ = 0;
};

/// Nanoseconds on the monotonic clock — the timebase every histogram uses.
inline std::uint64_t monotonic_ns() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

}  // namespace emts::util
