#include "util/alloc_counter.hpp"

#include <cstdlib>
#include <new>

// Sanitizer runtimes intercept malloc themselves; replacing operator new
// underneath them forfeits their checks, so the hooks compile out there.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define EMTS_ALLOC_HOOKS 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define EMTS_ALLOC_HOOKS 0
#else
#define EMTS_ALLOC_HOOKS 1
#endif
#else
#define EMTS_ALLOC_HOOKS 1
#endif

namespace emts::util::alloc {

namespace {

thread_local Counts t_counts;

}  // namespace

Counts thread_counts() { return t_counts; }

void reset_thread_counts() { t_counts = Counts{}; }

bool counting_active() { return EMTS_ALLOC_HOOKS != 0; }

namespace detail {

inline void note_alloc(std::size_t size) {
  ++t_counts.allocations;
  t_counts.bytes += size;
}

inline void note_free() { ++t_counts.deallocations; }

inline void* counted_alloc(std::size_t size) {
  note_alloc(size);
  return std::malloc(size != 0 ? size : 1);
}

inline void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  note_alloc(size);
  void* ptr = nullptr;
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  if (posix_memalign(&ptr, alignment, size != 0 ? size : 1) != 0) return nullptr;
  return ptr;
}

}  // namespace detail

}  // namespace emts::util::alloc

#if EMTS_ALLOC_HOOKS

namespace ea = emts::util::alloc::detail;

void* operator new(std::size_t size) {
  void* ptr = ea::counted_alloc(size);
  if (ptr == nullptr) throw std::bad_alloc{};
  return ptr;
}

void* operator new[](std::size_t size) {
  void* ptr = ea::counted_alloc(size);
  if (ptr == nullptr) throw std::bad_alloc{};
  return ptr;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return ea::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ea::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  void* ptr = ea::counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
  if (ptr == nullptr) throw std::bad_alloc{};
  return ptr;
}

void* operator new[](std::size_t size, std::align_val_t alignment) {
  void* ptr = ea::counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
  if (ptr == nullptr) throw std::bad_alloc{};
  return ptr;
}

void operator delete(void* ptr) noexcept {
  ea::note_free();
  std::free(ptr);
}

void operator delete[](void* ptr) noexcept {
  ea::note_free();
  std::free(ptr);
}

void operator delete(void* ptr, std::size_t) noexcept {
  ea::note_free();
  std::free(ptr);
}

void operator delete[](void* ptr, std::size_t) noexcept {
  ea::note_free();
  std::free(ptr);
}

void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  ea::note_free();
  std::free(ptr);
}

void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  ea::note_free();
  std::free(ptr);
}

void operator delete(void* ptr, std::align_val_t) noexcept {
  ea::note_free();
  std::free(ptr);
}

void operator delete[](void* ptr, std::align_val_t) noexcept {
  ea::note_free();
  std::free(ptr);
}

void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept {
  ea::note_free();
  std::free(ptr);
}

void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {
  ea::note_free();
  std::free(ptr);
}

#endif  // EMTS_ALLOC_HOOKS
