// Heap-allocation observability for the zero-allocation contract on the
// monitoring hot path. Any binary that references these functions pulls in
// the counting replacements of the global operator new/delete (static-lib
// link semantics: the translation unit is only linked where it is used), so
// ordinary tests and tools pay nothing. Counters are thread-local: a bench
// or test brackets the code under scrutiny with thread_counts() deltas and
// is immune to allocator traffic on other threads.
//
// Under AddressSanitizer or ThreadSanitizer the replacements are compiled
// out (the sanitizer runtimes own malloc); counting_active() reports whether
// the hooks are live so callers can skip the assertion instead of failing.
#pragma once

#include <cstdint>

namespace emts::util::alloc {

struct Counts {
  std::uint64_t allocations = 0;    // operator new / new[] calls
  std::uint64_t deallocations = 0;  // operator delete / delete[] calls
  std::uint64_t bytes = 0;          // total bytes requested
};

/// Counters for the calling thread since thread start or the last reset.
Counts thread_counts();

/// Zeroes the calling thread's counters.
void reset_thread_counts();

/// True when the counting operator new/delete are linked into this binary
/// and not disabled by a sanitizer build.
bool counting_active();

}  // namespace emts::util::alloc
