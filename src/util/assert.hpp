// Lightweight contract checks. EMTS_ASSERT guards internal invariants and is
// active in all build types (the library is simulation code, not a hot inner
// loop for users); EMTS_REQUIRE reports precondition violations on the public
// API surface by throwing std::invalid_argument so callers can recover.
#pragma once

#include <stdexcept>
#include <string>

namespace emts {

[[noreturn]] void assertion_failure(const char* expr, const char* file, int line);

/// Thrown by EMTS_REQUIRE on public-API precondition violations.
class precondition_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

[[noreturn]] void precondition_failure(const char* expr, const std::string& message);

}  // namespace emts

#define EMTS_ASSERT(expr)                                       \
  do {                                                          \
    if (!(expr)) {                                              \
      ::emts::assertion_failure(#expr, __FILE__, __LINE__);     \
    }                                                           \
  } while (false)

#define EMTS_REQUIRE(expr, message)                             \
  do {                                                          \
    if (!(expr)) {                                              \
      ::emts::precondition_failure(#expr, (message));           \
    }                                                           \
  } while (false)
