// Unit constants. The library works in SI base units throughout (meters,
// seconds, amperes, volts, hertz); these constants make call sites read like
// the datasheet values they come from: `100 * units::um`, `48 * units::MHz`.
#pragma once

namespace emts::units {

// Length (meters).
inline constexpr double m = 1.0;
inline constexpr double mm = 1e-3;
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;

// Time (seconds).
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;

// Frequency (hertz).
inline constexpr double Hz = 1.0;
inline constexpr double kHz = 1e3;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

// Current (amperes).
inline constexpr double A = 1.0;
inline constexpr double mA = 1e-3;
inline constexpr double uA = 1e-6;
inline constexpr double nA = 1e-9;

// Voltage (volts).
inline constexpr double V = 1.0;
inline constexpr double mV = 1e-3;
inline constexpr double uV = 1e-6;
inline constexpr double nV = 1e-9;

// Physical constants.
inline constexpr double mu0 = 1.25663706212e-6;  // vacuum permeability, H/m
inline constexpr double pi = 3.14159265358979323846;

}  // namespace emts::units
