// Little-endian binary stream primitives shared by the persistence layers
// (EMTA trace archives, EMCA calibration artifacts). Fixed-width writes of
// scalars, vectors and length-prefixed strings with hard caps on read sizes
// so a corrupt header cannot trigger a pathological allocation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace emts::util {

void write_u8(std::ostream& out, std::uint8_t v);
void write_u32(std::ostream& out, std::uint32_t v);
void write_u64(std::ostream& out, std::uint64_t v);
void write_f64(std::ostream& out, double v);

/// u64 element count followed by raw float64 payload.
void write_f64_vec(std::ostream& out, const std::vector<double>& v);

/// u32 byte count followed by raw bytes.
void write_string(std::ostream& out, const std::string& s);

/// All readers throw precondition_error on a truncated or implausible stream.
std::uint8_t read_u8(std::istream& in);
std::uint32_t read_u32(std::istream& in);
std::uint64_t read_u64(std::istream& in);
double read_f64(std::istream& in);
std::vector<double> read_f64_vec(std::istream& in);
std::string read_string(std::istream& in);

/// Bytes left between the stream's current read position and its end, or
/// SIZE_MAX when the stream is not seekable. Length-prefixed loaders compare
/// a declared size against this *before* allocating, so a corrupt header
/// that claims a multi-gigabyte payload is rejected instead of honored.
std::size_t stream_remaining(std::istream& in);

/// a*b into *out without wrapping; returns false when the product overflows
/// u64. Shape checks that multiply attacker-controlled header fields must go
/// through this — a wrapped product can make a crafted header "agree" with a
/// tiny file and hand out out-of-bounds payload pointers.
inline bool checked_mul_u64(std::uint64_t a, std::uint64_t b, std::uint64_t* out) {
  if (a != 0 && b > UINT64_MAX / a) return false;
  *out = a * b;
  return true;
}

}  // namespace emts::util
