#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

#include "util/assert.hpp"

namespace emts::util {

// Bounded multi-producer / multi-consumer FIFO ring in the classic DPDK
// style: producers CAS-reserve a contiguous index range on `prod_head_`,
// move their payloads into the reserved slots, then publish by advancing
// `prod_tail_` in reservation order. Consumers mirror the same protocol on
// `cons_head_` / `cons_tail_`. All storage is preallocated in the
// constructor; enqueue/dequeue move elements and never allocate, which
// preserves the fleet's zero-steady-state-allocation discipline.
//
// Ordering guarantees:
//  - Global FIFO per ring: elements dequeue in publish order.
//  - A single producer's enqueues (including one bulk enqueue) occupy
//    consecutive slots, so its elements never reorder relative to each
//    other. This is what keeps per-device trace ordering intact when the
//    fleet batches submissions.
//
// Memory ordering: the publishing store on `prod_tail_` is a release, and
// consumers read it with acquire before touching slots, so payload writes
// happen-before payload reads. The in-order publish spin loads the tail
// with acquire as well; that chains earlier producers' payload writes into
// the later producer's release store (and symmetrically for consumers), so
// one acquire on the tail covers every slot up to it.
//
// `capacity` may be any positive value; physical storage is rounded up to
// a power of two and occupancy is capped at the logical capacity.
template <typename T>
class BoundedMpmcRing {
 public:
  explicit BoundedMpmcRing(std::size_t capacity) : capacity_(capacity) {
    EMTS_REQUIRE(capacity > 0, "BoundedMpmcRing: capacity must be positive");
    std::size_t physical = 1;
    while (physical < capacity) physical <<= 1;
    mask_ = physical - 1;
    slots_.resize(physical);
  }

  BoundedMpmcRing(const BoundedMpmcRing&) = delete;
  BoundedMpmcRing& operator=(const BoundedMpmcRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  // Occupancy snapshot; exact when quiescent, approximate under
  // concurrency (reservations in flight are not counted).
  std::size_t size() const {
    std::uint64_t tail = prod_tail_.load(std::memory_order_acquire);
    std::uint64_t head = cons_tail_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

  bool empty() const { return size() == 0; }

  // Moves up to `n` elements from `items` into the ring. Returns how many
  // were accepted (0 when full); accepts a partial prefix when fewer than
  // `n` slots are free. Never blocks, never allocates.
  std::size_t try_enqueue(T* items, std::size_t n) {
    std::uint64_t head;
    std::size_t take;
    for (;;) {
      head = prod_head_.load(std::memory_order_relaxed);
      const std::uint64_t consumed = cons_tail_.load(std::memory_order_acquire);
      const std::size_t free_slots =
          capacity_ - static_cast<std::size_t>(head - consumed);
      take = n < free_slots ? n : free_slots;
      if (take == 0) return 0;
      if (prod_head_.compare_exchange_weak(head, head + take,
                                           std::memory_order_relaxed,
                                           std::memory_order_relaxed)) {
        break;
      }
    }
    for (std::size_t i = 0; i < take; ++i) {
      slots_[static_cast<std::size_t>((head + i) & mask_)] =
          std::move(items[i]);
    }
    // Publish in reservation order: wait for earlier producers to land.
    while (prod_tail_.load(std::memory_order_acquire) != head) {
      cpu_relax();
    }
    prod_tail_.store(head + take, std::memory_order_release);
    return take;
  }

  std::size_t try_enqueue(T&& item) { return try_enqueue(&item, 1); }

  // Moves up to `n` elements from the ring into `out`. Returns how many
  // were taken (0 when empty). Never blocks, never allocates.
  std::size_t try_dequeue(T* out, std::size_t n) {
    std::uint64_t head;
    std::size_t take;
    for (;;) {
      head = cons_head_.load(std::memory_order_relaxed);
      const std::uint64_t produced = prod_tail_.load(std::memory_order_acquire);
      const std::size_t available =
          static_cast<std::size_t>(produced - head);
      take = n < available ? n : available;
      if (take == 0) return 0;
      if (cons_head_.compare_exchange_weak(head, head + take,
                                           std::memory_order_relaxed,
                                           std::memory_order_relaxed)) {
        break;
      }
    }
    for (std::size_t i = 0; i < take; ++i) {
      out[i] = std::move(slots_[static_cast<std::size_t>((head + i) & mask_)]);
    }
    while (cons_tail_.load(std::memory_order_acquire) != head) {
      cpu_relax();
    }
    cons_tail_.store(head + take, std::memory_order_release);
    return take;
  }

 private:
  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
  }

  // Fixed 64 rather than std::hardware_destructive_interference_size: the
  // latter varies with compiler tuning flags (and warns when it leaks into
  // an ABI); 64 is the destructive-interference line on every target we
  // build for.
  static constexpr std::size_t kCacheLine = 64;

  std::size_t capacity_ = 0;
  std::uint64_t mask_ = 0;
  std::vector<T> slots_;

  alignas(kCacheLine) std::atomic<std::uint64_t> prod_head_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> prod_tail_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> cons_head_{0};
  alignas(kCacheLine) std::atomic<std::uint64_t> cons_tail_{0};
};

}  // namespace emts::util
