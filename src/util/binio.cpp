#include "util/binio.hpp"

#include <istream>
#include <ostream>

#include "util/assert.hpp"

namespace emts::util {

namespace {

// Caps on deserialized container sizes: a flipped header bit must fail the
// precondition check, not attempt a 2^60-element allocation.
constexpr std::uint64_t kMaxVecElements = 1ull << 26;  // 512 MiB of doubles
constexpr std::uint32_t kMaxStringBytes = 1u << 20;

template <typename T>
void write_raw(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
  EMTS_REQUIRE(out.good(), "binio: write failed");
}

template <typename T>
T read_raw(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  EMTS_REQUIRE(in.gcount() == static_cast<std::streamsize>(sizeof v),
               "binio: truncated stream");
  return v;
}

}  // namespace

void write_u8(std::ostream& out, std::uint8_t v) { write_raw(out, v); }
void write_u32(std::ostream& out, std::uint32_t v) { write_raw(out, v); }
void write_u64(std::ostream& out, std::uint64_t v) { write_raw(out, v); }
void write_f64(std::ostream& out, double v) { write_raw(out, v); }

void write_f64_vec(std::ostream& out, const std::vector<double>& v) {
  write_u64(out, v.size());
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
  EMTS_REQUIRE(out.good(), "binio: write failed");
}

void write_string(std::ostream& out, const std::string& s) {
  EMTS_REQUIRE(s.size() < kMaxStringBytes, "binio: string too long");
  write_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
  EMTS_REQUIRE(out.good(), "binio: write failed");
}

std::uint8_t read_u8(std::istream& in) { return read_raw<std::uint8_t>(in); }
std::uint32_t read_u32(std::istream& in) { return read_raw<std::uint32_t>(in); }
std::uint64_t read_u64(std::istream& in) { return read_raw<std::uint64_t>(in); }
double read_f64(std::istream& in) { return read_raw<double>(in); }

std::size_t stream_remaining(std::istream& in) {
  const std::istream::pos_type here = in.tellg();
  if (here == std::istream::pos_type(-1)) return SIZE_MAX;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(here);
  if (end == std::istream::pos_type(-1) || end < here) return SIZE_MAX;
  return static_cast<std::size_t>(end - here);
}

std::vector<double> read_f64_vec(std::istream& in) {
  const std::uint64_t n = read_u64(in);
  EMTS_REQUIRE(n < kMaxVecElements, "binio: implausible vector size");
  // A declared length beyond what the stream still holds is a lie; refuse it
  // before the allocation, not after a short read.
  EMTS_REQUIRE(n * sizeof(double) <= stream_remaining(in),
               "binio: vector size exceeds remaining stream bytes");
  std::vector<double> v(n);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  EMTS_REQUIRE(in.gcount() == static_cast<std::streamsize>(n * sizeof(double)),
               "binio: truncated stream");
  return v;
}

std::string read_string(std::istream& in) {
  const std::uint32_t n = read_u32(in);
  EMTS_REQUIRE(n < kMaxStringBytes, "binio: implausible string size");
  EMTS_REQUIRE(n <= stream_remaining(in),
               "binio: string size exceeds remaining stream bytes");
  std::string s(n, '\0');
  in.read(s.data(), static_cast<std::streamsize>(n));
  EMTS_REQUIRE(in.gcount() == static_cast<std::streamsize>(n), "binio: truncated stream");
  return s;
}

}  // namespace emts::util
