#include "util/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace emts {

void assertion_failure(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "EMSentry invariant violated: %s (%s:%d)\n", expr, file, line);
  std::abort();
}

void precondition_failure(const char* expr, const std::string& message) {
  throw precondition_error(message + " [violated: " + expr + "]");
}

}  // namespace emts
