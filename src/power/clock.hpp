// Clock and sampling parameters shared by the whole transient pipeline.
// Defaults follow DESIGN.md: 48 MHz core clock (so Trojan T1's divide-by-64
// carrier lands exactly on 750 kHz, paper Sec. IV-A) sampled at 8 points per
// cycle, and 4096-sample traces that put the clock at FFT bin 512.
#pragma once

#include <cstddef>

namespace emts::power {

struct ClockSpec {
  double frequency = 48e6;             // Hz
  std::size_t samples_per_cycle = 8;   // oscilloscope oversampling

  double period_s() const { return 1.0 / frequency; }
  double sample_rate() const { return frequency * static_cast<double>(samples_per_cycle); }
  double sample_interval_s() const { return 1.0 / sample_rate(); }

  /// Sample index of the start of `cycle`.
  std::size_t cycle_start_sample(std::size_t cycle) const { return cycle * samples_per_cycle; }

  /// Validates the spec (positive frequency, >= 2 samples/cycle).
  void validate() const;
};

}  // namespace emts::power
