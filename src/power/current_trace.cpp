#include "power/current_trace.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/filter.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace emts::power {

CurrentTrace::CurrentTrace(const ClockSpec& clock, std::size_t num_cycles)
    : clock_{clock}, num_cycles_{num_cycles} {
  clock_.validate();
  EMTS_REQUIRE(num_cycles >= 1, "need at least one cycle");
  samples_.assign(num_cycles * clock_.samples_per_cycle, 0.0);
}

void CurrentTrace::add_pulse(const ActivityPulse& pulse, double charge_per_toggle_fc) {
  if (pulse.toggles <= 0.0 || charge_per_toggle_fc == 0.0) return;
  EMTS_REQUIRE(pulse.spread_ps > 0.0, "pulse spread must be positive");

  const double charge = pulse.toggles * charge_per_toggle_fc * 1e-15;  // coulombs
  const double dt = clock_.sample_interval_s();
  const double t0 =
      static_cast<double>(clock_.cycle_start_sample(pulse.cycle)) * dt + pulse.onset_ps * 1e-12;
  const double dur = pulse.spread_ps * 1e-12;
  const double t1 = t0 + dur;
  const double amps = charge / dur;  // rectangular burst amplitude

  // Area-conserving deposition: each sample receives current proportional to
  // its dwell overlap with [t0, t1).
  const auto n = static_cast<double>(samples_.size());
  const double s_begin = std::max(t0 / dt, 0.0);
  const double s_end = std::min(t1 / dt, n);
  if (s_end <= s_begin) return;

  for (auto s = static_cast<std::size_t>(s_begin); s < static_cast<std::size_t>(std::ceil(s_end));
       ++s) {
    const double lo = std::max(static_cast<double>(s), s_begin);
    const double hi = std::min(static_cast<double>(s + 1), s_end);
    if (hi <= lo) continue;
    samples_[s] += amps * (hi - lo);  // fraction of the burst in this sample
  }
}

void CurrentTrace::add_dc(double amps) {
  for (double& v : samples_) v += amps;
}

void CurrentTrace::add_samples(const std::vector<double>& samples) {
  EMTS_REQUIRE(samples.size() == samples_.size(), "add_samples: length mismatch");
  for (std::size_t i = 0; i < samples_.size(); ++i) samples_[i] += samples[i];
}

double CurrentTrace::total_charge() const {
  double acc = 0.0;
  for (double v : samples_) acc += v;
  return acc * clock_.sample_interval_s();
}

std::vector<double> CurrentTrace::derivative() const {
  return dsp::differentiate(samples_, sample_rate());
}

}  // namespace emts::power
