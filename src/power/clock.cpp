#include "power/clock.hpp"

#include "util/assert.hpp"

namespace emts::power {

void ClockSpec::validate() const {
  EMTS_REQUIRE(frequency > 0.0, "clock frequency must be positive");
  EMTS_REQUIRE(samples_per_cycle >= 2, "need at least 2 samples per cycle");
}

}  // namespace emts::power
