// Transient supply-current synthesis. Switching activity (toggle counts with
// within-cycle timing) turns into a sampled current waveform by depositing
// each cycle's switched charge as a finite-duration pulse; Faraday's law then
// needs dI/dt, provided here as the finite-difference derivative.
//
// This reproduces the role of the Hspice transient current sets in the
// paper's simulation flow (Sec. IV-A): "transistor-level circuit simulations
// to obtain transient current sets ... appended to corresponding resistive
// elements".
#pragma once

#include <cstddef>
#include <vector>

#include "power/clock.hpp"

namespace emts::power {

/// One burst of switching inside one clock cycle.
struct ActivityPulse {
  std::size_t cycle = 0;     // which clock cycle
  double toggles = 0.0;      // equivalent gate-output toggles
  double onset_ps = 0.0;     // burst start, ps after the cycle's clock edge
  double spread_ps = 500.0;  // burst duration, ps
};

/// Sampled supply-current waveform of one module.
class CurrentTrace {
 public:
  /// Allocates a waveform covering `num_cycles` cycles of `clock`, all zero.
  CurrentTrace(const ClockSpec& clock, std::size_t num_cycles);

  /// Deposits one switching burst. The burst's total charge is
  /// toggles * charge_per_toggle; current is spread as a rectangular burst
  /// over [onset, onset+spread] using area-conserving deposition, so
  /// integral(i dt) == deposited charge exactly. Out-of-window bursts are
  /// clipped (their in-window charge is kept). Negative charge models the
  /// discharge half of a drive cycle (loop current reverses direction).
  void add_pulse(const ActivityPulse& pulse, double charge_per_toggle_fc);

  /// Adds a constant (leakage / bias) current over the whole window.
  void add_dc(double amps);

  /// Adds a raw per-sample current contribution (e.g. an analog Trojan's
  /// oscillation); `samples` is resampled by index (must match length).
  void add_samples(const std::vector<double>& samples);

  const std::vector<double>& samples() const { return samples_; }
  const ClockSpec& clock() const { return clock_; }
  std::size_t num_cycles() const { return num_cycles_; }
  double sample_rate() const { return clock_.sample_rate(); }

  /// Total charge in the window (integral of current).
  double total_charge() const;

  /// dI/dt by first differences (amperes/second), same length as samples().
  std::vector<double> derivative() const;

 private:
  ClockSpec clock_;
  std::size_t num_cycles_;
  std::vector<double> samples_;
};

}  // namespace emts::power
