#include "baseline/ron.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "stats/descriptive.hpp"
#include "util/assert.hpp"
#include "util/binio.hpp"

namespace emts::baseline {

RonNetwork::RonNetwork(const RonSpec& spec, const layout::DieSpec& die) : spec_{spec} {
  EMTS_REQUIRE(spec.rows >= 1 && spec.cols >= 1, "RON needs at least one oscillator");
  EMTS_REQUIRE(spec.nominal_hz > 0.0 && spec.window_s > 0.0, "RON rates must be positive");
  EMTS_REQUIRE(spec.kernel_radius > 0.0, "kernel radius must be positive");
  for (std::size_t r = 0; r < spec.rows; ++r) {
    for (std::size_t c = 0; c < spec.cols; ++c) {
      positions_.push_back(layout::Vec3{
          die.core_width * (static_cast<double>(c) + 0.5) / static_cast<double>(spec.cols),
          die.core_height * (static_cast<double>(r) + 0.5) / static_cast<double>(spec.rows),
          die.cell_z});
    }
  }
}

RonReading RonNetwork::measure(sim::Chip& chip, bool encrypting, std::uint64_t trace_index,
                               Rng& rng) const {
  // Average current per module over the window — an RO integrates over many
  // thousands of cycles, so only the mean load matters (this is exactly why
  // RON misses burst- and tone-shaped signatures).
  const auto currents = chip.module_transients(encrypting, trace_index);
  const auto& modules = chip.floorplan().modules();
  EMTS_ASSERT(currents.size() == modules.size());

  std::vector<double> mean_current(currents.size(), 0.0);
  for (std::size_t m = 0; m < currents.size(); ++m) {
    double acc = 0.0;
    for (double v : currents[m].samples()) acc += v;
    mean_current[m] = acc / static_cast<double>(currents[m].samples().size());
  }

  RonReading reading;
  reading.reserve(positions_.size());
  for (const auto& pos : positions_) {
    // IR droop: module currents weighted by a 1/(1 + (d/r0)^2) kernel.
    double local_load = 0.0;
    for (std::size_t m = 0; m < modules.size(); ++m) {
      const double dx = modules[m].region.cx() - pos.x;
      const double dy = modules[m].region.cy() - pos.y;
      const double d2 = dx * dx + dy * dy;
      const double r0 = spec_.kernel_radius;
      local_load += mean_current[m] / (1.0 + d2 / (r0 * r0));
    }
    const double freq = spec_.nominal_hz - spec_.droop_hz_per_amp * local_load;
    const double cycles = freq * spec_.window_s + rng.gaussian(0.0, spec_.jitter_cycles);
    reading.push_back(std::floor(cycles));  // counter quantization
  }
  return reading;
}

RonDetector::RonDetector(std::vector<RonReading> golden, double sigma_threshold)
    : sigma_threshold_{sigma_threshold} {
  EMTS_REQUIRE(golden.size() >= 3, "RON calibration needs >= 3 readings");
  EMTS_REQUIRE(sigma_threshold > 0.0, "sigma threshold must be positive");
  const std::size_t n = golden.front().size();
  for (const RonReading& r : golden) {
    EMTS_REQUIRE(r.size() == n, "ragged RON readings");
  }

  mean_.assign(n, 0.0);
  stddev_.assign(n, 0.0);
  for (std::size_t o = 0; o < n; ++o) {
    std::vector<double> samples;
    samples.reserve(golden.size());
    for (const RonReading& r : golden) samples.push_back(r[o]);
    mean_[o] = stats::mean(samples);
    // Quantized counters can be constant across golden readings; floor the
    // std at one count so z-scores stay finite.
    stddev_[o] = std::max(stats::stddev(samples), 1.0);
  }
}

double RonDetector::max_z(const RonReading& reading) const {
  EMTS_REQUIRE(reading.size() == mean_.size(), "RON reading size mismatch");
  double best = 0.0;
  for (std::size_t o = 0; o < reading.size(); ++o) {
    best = std::max(best, std::abs(reading[o] - mean_[o]) / stddev_[o]);
  }
  return best;
}

bool RonDetector::is_anomalous(const RonReading& reading) const {
  return max_z(reading) > sigma_threshold_;
}

RonTraceDetector::RonTraceDetector(const Options& options, std::vector<double> mean,
                                   std::vector<double> stddev)
    : options_{options}, mean_{std::move(mean)}, stddev_{std::move(stddev)} {}

std::vector<double> RonTraceDetector::feature(const core::Trace& trace) const {
  core::Preprocessor::Options pre;
  pre.remove_mean = false;  // mean level IS the RON observable
  pre.smooth_window = 1;
  pre.normalize_rms = false;
  pre.decimation = options_.decimation;
  return core::Preprocessor{pre}.features(trace);
}

RonTraceDetector RonTraceDetector::calibrate(const core::TraceSet& golden) {
  return calibrate(golden, Options{});
}

RonTraceDetector RonTraceDetector::calibrate(const core::TraceSet& golden,
                                             const Options& options) {
  EMTS_REQUIRE(golden.size() >= 3, "RON calibration needs >= 3 traces");
  EMTS_REQUIRE(options.decimation >= 1, "RON decimation must be >= 1");
  EMTS_REQUIRE(options.sigma_threshold > 0.0, "sigma threshold must be positive");

  RonTraceDetector fitted{options, {}, {}};
  std::vector<std::vector<double>> features;
  features.reserve(golden.size());
  for (const core::Trace& trace : golden.traces) {
    features.push_back(fitted.feature(trace));
    EMTS_REQUIRE(features.back().size() == features.front().size(), "ragged golden traces");
  }

  const std::size_t n = features.front().size();
  fitted.mean_.assign(n, 0.0);
  fitted.stddev_.assign(n, 0.0);
  std::vector<double> samples(features.size());
  for (std::size_t o = 0; o < n; ++o) {
    for (std::size_t t = 0; t < features.size(); ++t) samples[t] = features[t][o];
    fitted.mean_[o] = stats::mean(samples);
    // EM features are continuous (no counter quantization), but golden sets
    // can still be degenerate per coordinate; floor keeps z finite.
    fitted.stddev_[o] = std::max(stats::stddev(samples), 1e-12);
  }
  return fitted;
}

double RonTraceDetector::score(const core::Trace& trace) const {
  const std::vector<double> f = feature(trace);
  EMTS_REQUIRE(f.size() == mean_.size(), "trace length differs from RON calibration");
  double best = 0.0;
  for (std::size_t o = 0; o < f.size(); ++o) {
    best = std::max(best, std::abs(f[o] - mean_[o]) / stddev_[o]);
  }
  return best;
}

std::string RonTraceDetector::describe() const {
  std::ostringstream out;
  out << "ron: z-test over " << mean_.size() << " mean-pooled features (decimation "
      << options_.decimation << "), gate " << options_.sigma_threshold << " sigma";
  return out.str();
}

void RonTraceDetector::save(std::ostream& out) const {
  util::write_u64(out, options_.decimation);
  util::write_f64(out, options_.sigma_threshold);
  util::write_f64_vec(out, mean_);
  util::write_f64_vec(out, stddev_);
}

RonTraceDetector RonTraceDetector::load(std::istream& in) {
  Options options;
  options.decimation = static_cast<std::size_t>(util::read_u64(in));
  options.sigma_threshold = util::read_f64(in);
  EMTS_REQUIRE(options.decimation >= 1 && options.decimation < (1u << 20),
               "ron artifact: bad decimation");
  EMTS_REQUIRE(std::isfinite(options.sigma_threshold) && options.sigma_threshold > 0.0,
               "ron artifact: bad sigma threshold");
  std::vector<double> mean = util::read_f64_vec(in);
  std::vector<double> stddev = util::read_f64_vec(in);
  EMTS_REQUIRE(!mean.empty(), "ron artifact: empty model");
  EMTS_REQUIRE(mean.size() == stddev.size(), "ron artifact: mean/stddev size mismatch");
  for (double s : stddev) {
    EMTS_REQUIRE(std::isfinite(s) && s > 0.0, "ron artifact: non-positive stddev");
  }
  return RonTraceDetector{options, std::move(mean), std::move(stddev)};
}

void register_ron_detector() {
  core::DetectorRegistry::instance().add(
      "ron",
      [](const core::TraceSet& golden) {
        return std::make_shared<const RonTraceDetector>(RonTraceDetector::calibrate(golden));
      },
      [](std::istream& in) {
        return std::make_shared<const RonTraceDetector>(RonTraceDetector::load(in));
      });
}

}  // namespace emts::baseline
