#include "baseline/ron.hpp"

#include <cmath>

#include "stats/descriptive.hpp"
#include "util/assert.hpp"

namespace emts::baseline {

RonNetwork::RonNetwork(const RonSpec& spec, const layout::DieSpec& die) : spec_{spec} {
  EMTS_REQUIRE(spec.rows >= 1 && spec.cols >= 1, "RON needs at least one oscillator");
  EMTS_REQUIRE(spec.nominal_hz > 0.0 && spec.window_s > 0.0, "RON rates must be positive");
  EMTS_REQUIRE(spec.kernel_radius > 0.0, "kernel radius must be positive");
  for (std::size_t r = 0; r < spec.rows; ++r) {
    for (std::size_t c = 0; c < spec.cols; ++c) {
      positions_.push_back(layout::Vec3{
          die.core_width * (static_cast<double>(c) + 0.5) / static_cast<double>(spec.cols),
          die.core_height * (static_cast<double>(r) + 0.5) / static_cast<double>(spec.rows),
          die.cell_z});
    }
  }
}

RonReading RonNetwork::measure(sim::Chip& chip, bool encrypting, std::uint64_t trace_index,
                               Rng& rng) const {
  // Average current per module over the window — an RO integrates over many
  // thousands of cycles, so only the mean load matters (this is exactly why
  // RON misses burst- and tone-shaped signatures).
  const auto currents = chip.module_transients(encrypting, trace_index);
  const auto& modules = chip.floorplan().modules();
  EMTS_ASSERT(currents.size() == modules.size());

  std::vector<double> mean_current(currents.size(), 0.0);
  for (std::size_t m = 0; m < currents.size(); ++m) {
    double acc = 0.0;
    for (double v : currents[m].samples()) acc += v;
    mean_current[m] = acc / static_cast<double>(currents[m].samples().size());
  }

  RonReading reading;
  reading.reserve(positions_.size());
  for (const auto& pos : positions_) {
    // IR droop: module currents weighted by a 1/(1 + (d/r0)^2) kernel.
    double local_load = 0.0;
    for (std::size_t m = 0; m < modules.size(); ++m) {
      const double dx = modules[m].region.cx() - pos.x;
      const double dy = modules[m].region.cy() - pos.y;
      const double d2 = dx * dx + dy * dy;
      const double r0 = spec_.kernel_radius;
      local_load += mean_current[m] / (1.0 + d2 / (r0 * r0));
    }
    const double freq = spec_.nominal_hz - spec_.droop_hz_per_amp * local_load;
    const double cycles = freq * spec_.window_s + rng.gaussian(0.0, spec_.jitter_cycles);
    reading.push_back(std::floor(cycles));  // counter quantization
  }
  return reading;
}

RonDetector::RonDetector(std::vector<RonReading> golden, double sigma_threshold)
    : sigma_threshold_{sigma_threshold} {
  EMTS_REQUIRE(golden.size() >= 3, "RON calibration needs >= 3 readings");
  EMTS_REQUIRE(sigma_threshold > 0.0, "sigma threshold must be positive");
  const std::size_t n = golden.front().size();
  for (const RonReading& r : golden) {
    EMTS_REQUIRE(r.size() == n, "ragged RON readings");
  }

  mean_.assign(n, 0.0);
  stddev_.assign(n, 0.0);
  for (std::size_t o = 0; o < n; ++o) {
    std::vector<double> samples;
    samples.reserve(golden.size());
    for (const RonReading& r : golden) samples.push_back(r[o]);
    mean_[o] = stats::mean(samples);
    // Quantized counters can be constant across golden readings; floor the
    // std at one count so z-scores stay finite.
    stddev_[o] = std::max(stats::stddev(samples), 1.0);
  }
}

double RonDetector::max_z(const RonReading& reading) const {
  EMTS_REQUIRE(reading.size() == mean_.size(), "RON reading size mismatch");
  double best = 0.0;
  for (std::size_t o = 0; o < reading.size(); ++o) {
    best = std::max(best, std::abs(reading[o] - mean_[o]) / stddev_[o]);
  }
  return best;
}

bool RonDetector::is_anomalous(const RonReading& reading) const {
  return max_z(reading) > sigma_threshold_;
}

}  // namespace emts::baseline
