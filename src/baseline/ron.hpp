// Ring-oscillator network (RON) baseline — the on-chip Trojan-detection
// structure the paper positions itself against (its ref. [10], Zhang &
// Tehranipoor, DATE 2011; discussed in Sec. I: such structures "share a
// common problem of low coverage rates").
//
// Mechanism: ring oscillators scattered over the die oscillate at a
// frequency set by their local supply voltage. A Trojan's extra current
// drops the local rail (IR drop), slowing nearby ROs; counting RO cycles
// per measurement window and comparing against golden counts flags the
// shift. Coverage is limited by (a) the 1/d spatial falloff of IR drop
// around each RO, (b) counter quantization, and (c) sensitivity to
// *average* current only — signatures that barely move the mean (T1's
// sparse carrier bursts, A2's tiny oscillation) are invisible.
//
// The model computes each RO's average voltage droop from the per-module
// mean currents and a distance kernel over the floorplan, then quantizes
// to a cycle count — faithful to how a real RON reads out.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/preprocess.hpp"
#include "sim/chip.hpp"

namespace emts::baseline {

struct RonSpec {
  std::size_t rows = 4;            // RO grid over the core
  std::size_t cols = 4;
  double nominal_hz = 420e6;       // free-running RO frequency
  double droop_hz_per_amp = 6e9;   // frequency pushdown per ampere of local load
  double kernel_radius = 0.5e-3;   // IR-drop spatial falloff scale, m
  double window_s = 50e-6;         // count window (RON papers use ~us-ms)
  double jitter_cycles = 3.0;      // counter noise (period jitter accumulation)
};

/// One measurement: cycle counts of every RO over the window.
using RonReading = std::vector<double>;

class RonNetwork {
 public:
  RonNetwork(const RonSpec& spec, const layout::DieSpec& die);

  std::size_t oscillator_count() const { return positions_.size(); }
  const std::vector<layout::Vec3>& positions() const { return positions_; }

  /// Takes one reading from the chip: average module currents over a capture
  /// window -> local droop per RO -> quantized cycle counts (plus jitter).
  RonReading measure(sim::Chip& chip, bool encrypting, std::uint64_t trace_index,
                     Rng& rng) const;

  const RonSpec& spec() const { return spec_; }

 private:
  RonSpec spec_;
  std::vector<layout::Vec3> positions_;
};

/// Golden-calibrated detector over RON readings: per-RO mean/std from golden
/// readings; a suspect reading is anomalous when any RO deviates more than
/// `sigma_threshold` standard deviations (the classic RON statistical test).
class RonDetector {
 public:
  RonDetector(std::vector<RonReading> golden, double sigma_threshold = 4.0);

  /// Largest |z| over the network for this reading.
  double max_z(const RonReading& reading) const;

  bool is_anomalous(const RonReading& reading) const;

  double threshold() const { return sigma_threshold_; }

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
  double sigma_threshold_;
};

/// The classic RON statistical test rehosted onto EM trace features, as a
/// pluggable stage for the trust evaluator (registry name "ron"): golden
/// traces are mean-pooled into coarse feature vectors (the trace-domain
/// analogue of per-RO cycle counts), per-coordinate mean/std are fitted, and
/// a suspect trace scores as its largest |z| over the coordinates. Shares
/// RON's blind spot by construction — signatures that barely move local
/// means (sparse bursts, tiny fast tones) stay invisible — which is exactly
/// why it earns its keep as a low-cost extra vote next to the paper's
/// detectors rather than a replacement for them.
class RonTraceDetector : public core::Detector {
 public:
  struct Options {
    std::size_t decimation = 64;    // samples per pooled feature
    double sigma_threshold = 4.0;   // classic RON z-test gate
  };

  /// Fits per-feature moments on golden traces. Requires >= 3 traces.
  static RonTraceDetector calibrate(const core::TraceSet& golden);
  static RonTraceDetector calibrate(const core::TraceSet& golden, const Options& options);

  std::string name() const override { return "ron"; }
  std::string describe() const override;
  double threshold() const override { return options_.sigma_threshold; }

  /// Largest |z| of the pooled features against the golden moments.
  double score(const core::Trace& trace) const override;

  void save(std::ostream& out) const override;
  static RonTraceDetector load(std::istream& in);

 private:
  RonTraceDetector(const Options& options, std::vector<double> mean,
                   std::vector<double> stddev);

  std::vector<double> feature(const core::Trace& trace) const;

  Options options_;
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

/// Registers "ron" (RonTraceDetector) in the core detector registry so
/// TrustEvaluator::Options::detectors and EMCA artifacts can name it.
/// Idempotent; call before calibrating or loading a stack that uses it.
void register_ron_detector();

}  // namespace emts::baseline
