#include "core/evaluator.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace emts::core {

const char* verdict_label(Verdict verdict) {
  switch (verdict) {
    case Verdict::kTrusted:
      return "TRUSTED";
    case Verdict::kSuspicious:
      return "SUSPICIOUS";
    case Verdict::kCompromised:
      return "COMPROMISED";
  }
  return "?";
}

std::string TrustReport::summary() const {
  std::ostringstream out;
  out << verdict_label(verdict) << ": mean distance " << mean_distance << " (threshold "
      << threshold << "), " << 100.0 * anomalous_fraction << "% traces beyond EDth, "
      << spectral.anomalies.size() << " spectral anomalies";
  return out.str();
}

TrustEvaluator::TrustEvaluator(EuclideanDetector euclidean, SpectralDetector spectral,
                               const Options& options)
    : euclidean_{std::move(euclidean)}, spectral_{std::move(spectral)}, options_{options} {}

TrustEvaluator TrustEvaluator::calibrate(const TraceSet& golden) {
  return calibrate(golden, Options{});
}

TrustEvaluator TrustEvaluator::calibrate(const TraceSet& golden, const Options& options) {
  EMTS_REQUIRE(options.anomalous_fraction_alarm > 0.0 && options.anomalous_fraction_alarm <= 1.0,
               "alarm fraction must be in (0, 1]");
  return TrustEvaluator{EuclideanDetector::calibrate(golden, options.euclidean),
                        SpectralDetector::calibrate(golden, options.spectral), options};
}

TrustReport TrustEvaluator::evaluate(const TraceSet& suspect) const {
  EMTS_REQUIRE(!suspect.empty(), "evaluate needs traces");

  TrustReport report;
  report.threshold = euclidean_.threshold();

  const auto scores = euclidean_.score_all(suspect);
  double sum = 0.0;
  std::size_t beyond = 0;
  for (double s : scores) {
    sum += s;
    report.max_distance = std::max(report.max_distance, s);
    if (s > report.threshold) ++beyond;
  }
  report.mean_distance = sum / static_cast<double>(scores.size());
  report.anomalous_fraction = static_cast<double>(beyond) / static_cast<double>(scores.size());

  report.spectral = spectral_.analyze(suspect);

  const bool distance_alarm = report.anomalous_fraction > options_.anomalous_fraction_alarm;
  const bool spectral_alarm = report.spectral.anomalous();
  if (distance_alarm && spectral_alarm) {
    report.verdict = Verdict::kCompromised;
  } else if (distance_alarm || spectral_alarm) {
    report.verdict = Verdict::kSuspicious;
  } else {
    report.verdict = Verdict::kTrusted;
  }
  return report;
}

}  // namespace emts::core
