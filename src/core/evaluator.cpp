#include "core/evaluator.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace emts::core {

const char* verdict_label(Verdict verdict) {
  switch (verdict) {
    case Verdict::kTrusted:
      return "TRUSTED";
    case Verdict::kSuspicious:
      return "SUSPICIOUS";
    case Verdict::kCompromised:
      return "COMPROMISED";
  }
  return "?";
}

std::size_t TrustReport::alarmed_stages() const {
  std::size_t alarms = 0;
  for (const DetectorReport& stage : stages) alarms += stage.alarm ? 1 : 0;
  return alarms;
}

std::string TrustReport::summary() const {
  std::ostringstream out;
  if (stages.empty()) {
    // Reports assembled without stage detail (e.g. the monitor's alarm
    // snapshot) fall back to the classic two-stage wording.
    out << verdict_label(verdict) << ": mean distance " << mean_distance << " (threshold "
        << threshold << "), " << 100.0 * anomalous_fraction << "% traces beyond EDth, "
        << spectral.anomalies.size() << " spectral anomalies";
    return out.str();
  }
  out << verdict_label(verdict) << ": " << alarmed_stages() << "/" << stages.size()
      << " stages alarmed";
  for (const DetectorReport& stage : stages) {
    out << "; " << stage.name << (stage.alarm ? "[!] " : " ") << stage.detail;
  }
  return out.str();
}

TrustEvaluator::TrustEvaluator(std::vector<std::shared_ptr<const Detector>> detectors,
                               Options options, double sample_rate)
    : detectors_{std::move(detectors)}, options_{std::move(options)}, sample_rate_{sample_rate} {}

TrustEvaluator TrustEvaluator::calibrate(const TraceSet& golden) {
  return calibrate(golden, Options{});
}

TrustEvaluator TrustEvaluator::calibrate(const TraceSet& golden, const Options& options) {
  EMTS_REQUIRE(options.anomalous_fraction_alarm > 0.0 && options.anomalous_fraction_alarm <= 1.0,
               "alarm fraction must be in (0, 1]");
  EMTS_REQUIRE(!options.detectors.empty(), "evaluator needs at least one detector");

  std::vector<std::shared_ptr<const Detector>> detectors;
  detectors.reserve(options.detectors.size());
  for (const std::string& name : options.detectors) {
    for (const auto& existing : detectors) {
      EMTS_REQUIRE(existing->name() != name, "duplicate detector '" + name + "'");
    }
    if (name == "euclidean") {
      detectors.push_back(std::make_shared<const EuclideanDetector>(
          EuclideanDetector::calibrate(golden, options.euclidean)));
    } else if (name == "spectral") {
      detectors.push_back(std::make_shared<const SpectralDetector>(
          SpectralDetector::calibrate(golden, options.spectral)));
    } else {
      detectors.push_back(DetectorRegistry::instance().calibrate(name, golden));
    }
  }
  return TrustEvaluator{std::move(detectors), options, golden.sample_rate};
}

TrustEvaluator TrustEvaluator::assemble(std::vector<std::shared_ptr<const Detector>> detectors,
                                        double anomalous_fraction_alarm, double sample_rate) {
  EMTS_REQUIRE(anomalous_fraction_alarm > 0.0 && anomalous_fraction_alarm <= 1.0,
               "alarm fraction must be in (0, 1]");
  EMTS_REQUIRE(!detectors.empty(), "evaluator needs at least one detector");
  Options options;
  options.detectors.clear();
  for (const auto& detector : detectors) {
    EMTS_REQUIRE(detector != nullptr, "assemble: null detector");
    options.detectors.push_back(detector->name());
  }
  options.anomalous_fraction_alarm = anomalous_fraction_alarm;
  return TrustEvaluator{std::move(detectors), std::move(options), sample_rate};
}

const Detector* TrustEvaluator::find(const std::string& name) const {
  for (const auto& detector : detectors_) {
    if (detector->name() == name) return detector.get();
  }
  return nullptr;
}

const EuclideanDetector* TrustEvaluator::try_euclidean() const {
  for (const auto& detector : detectors_) {
    if (const auto* e = dynamic_cast<const EuclideanDetector*>(detector.get())) return e;
  }
  return nullptr;
}

const SpectralDetector* TrustEvaluator::try_spectral() const {
  for (const auto& detector : detectors_) {
    if (const auto* s = dynamic_cast<const SpectralDetector*>(detector.get())) return s;
  }
  return nullptr;
}

const EuclideanDetector& TrustEvaluator::euclidean() const {
  const EuclideanDetector* detector = try_euclidean();
  EMTS_REQUIRE(detector != nullptr, "evaluator has no euclidean stage");
  return *detector;
}

const SpectralDetector& TrustEvaluator::spectral() const {
  const SpectralDetector* detector = try_spectral();
  EMTS_REQUIRE(detector != nullptr, "evaluator has no spectral stage");
  return *detector;
}

bool TrustEvaluator::accepts_trace_length(std::size_t trace_length) const {
  if (trace_length == 0) return false;
  if (const EuclideanDetector* e = try_euclidean()) {
    if (e->preprocessor().feature_dim(trace_length) != e->pca().input_dim()) return false;
  }
  if (const SpectralDetector* s = try_spectral()) {
    // Golden bins = padded/2 + 1, so the suspect's padded length must land on
    // the same grid or every bin comparison would be against the wrong
    // frequency.
    const std::size_t golden_bins = s->golden_spectrum().size();
    if (golden_bins < 2) return false;
    if (dsp::next_power_of_two(trace_length) != 2 * (golden_bins - 1)) return false;
  }
  return true;
}

void TrustEvaluator::score_batch(const TraceSet& batch, ScoreScratch& scratch,
                                 std::vector<std::vector<double>>& scores) const {
  EMTS_REQUIRE(!batch.empty(), "score_batch needs traces");
  scores.resize(detectors_.size());
  for (std::size_t d = 0; d < detectors_.size(); ++d) {
    scores[d].clear();
    if (detectors_[d]->windowed()) continue;
    scores[d].reserve(batch.size());
    for (const Trace& trace : batch.traces) {
      scores[d].push_back(detectors_[d]->score_buffered(trace, scratch));
    }
  }
}

TrustReport TrustEvaluator::evaluate(const TraceSet& suspect) const {
  EMTS_REQUIRE(!suspect.empty(), "evaluate needs traces");

  TrustReport report;
  std::size_t alarms = 0;
  for (const auto& detector : detectors_) {
    DetectorReport stage;
    if (const auto* sd = dynamic_cast<const SpectralDetector*>(detector.get())) {
      // One mean-spectrum pass feeds both the generic stage and the typed
      // spectral report.
      SpectralReport spectral_report = sd->analyze(suspect);
      stage = sd->to_stage(spectral_report);
      report.spectral = std::move(spectral_report);
    } else {
      stage = detector->evaluate_set(suspect, options_.anomalous_fraction_alarm);
      if (dynamic_cast<const EuclideanDetector*>(detector.get()) != nullptr) {
        report.mean_distance = stage.mean_score;
        report.max_distance = stage.max_score;
        report.threshold = stage.threshold;
        report.anomalous_fraction = stage.anomalous_fraction;
      }
    }
    if (stage.alarm) ++alarms;
    report.stages.push_back(std::move(stage));
  }

  report.verdict = alarms == 0   ? Verdict::kTrusted
                   : alarms == 1 ? Verdict::kSuspicious
                                 : Verdict::kCompromised;
  return report;
}

}  // namespace emts::core
