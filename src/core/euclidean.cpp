#include "core/euclidean.hpp"

#include <algorithm>
#include <sstream>

#include "linalg/matrix.hpp"
#include "util/assert.hpp"
#include "util/binio.hpp"

namespace emts::core {

EuclideanDetector::EuclideanDetector(Preprocessor preprocessor, stats::PcaModel pca,
                                     bool include_residual)
    : preprocessor_{std::move(preprocessor)},
      pca_{std::move(pca)},
      include_residual_{include_residual} {}

std::vector<double> EuclideanDetector::embed(const std::vector<double>& features) const {
  std::vector<double> embedding = pca_.project(features);
  if (include_residual_) {
    // Q-statistic coordinate: how much of the trace lies outside the golden
    // variation subspace.
    const auto back = pca_.reconstruct(embedding);
    embedding.push_back(linalg::euclidean_distance(features, back));
  }
  return embedding;
}

EuclideanDetector EuclideanDetector::calibrate(const TraceSet& golden) {
  return calibrate(golden, Options{});
}

EuclideanDetector EuclideanDetector::calibrate(const TraceSet& golden, const Options& options) {
  EMTS_REQUIRE(golden.size() >= 3, "calibration needs at least 3 golden traces");
  golden.validate();

  Preprocessor preprocessor{options.preprocess};
  const linalg::Matrix features = preprocessor.feature_matrix(golden);
  stats::PcaModel pca = stats::PcaModel::fit(features, options.pca_components);

  EuclideanDetector detector{std::move(preprocessor), std::move(pca),
                             options.include_residual};

  // Embed the calibration set and derive the Eq. 1 threshold.
  detector.golden_projections_.reserve(golden.size());
  std::vector<double> sample(features.cols());
  for (std::size_t r = 0; r < features.rows(); ++r) {
    const double* row = features.row_data(r);
    sample.assign(row, row + features.cols());
    detector.golden_projections_.push_back(detector.embed(sample));
  }

  detector.golden_centroid_.assign(detector.golden_projections_.front().size(), 0.0);
  for (const auto& p : detector.golden_projections_) {
    for (std::size_t c = 0; c < p.size(); ++c) detector.golden_centroid_[c] += p[c];
  }
  for (double& v : detector.golden_centroid_) {
    v /= static_cast<double>(detector.golden_projections_.size());
  }

  double max_pairwise = 0.0;
  for (std::size_t i = 0; i < detector.golden_projections_.size(); ++i) {
    for (std::size_t j = i + 1; j < detector.golden_projections_.size(); ++j) {
      max_pairwise = std::max(max_pairwise,
                              linalg::euclidean_distance(detector.golden_projections_[i],
                                                         detector.golden_projections_[j]));
    }
  }
  detector.threshold_ = max_pairwise;
  return detector;
}

double EuclideanDetector::score(const Trace& trace) const {
  return linalg::euclidean_distance(embed(preprocessor_.features(trace)), golden_centroid_);
}

double EuclideanDetector::score_buffered(const Trace& trace, ScoreScratch& scratch) const {
  preprocessor_.features_into(trace, scratch.work, scratch.aux, scratch.aux2, scratch.features);
  pca_.project_into(scratch.features, scratch.embedding);
  if (include_residual_) {
    pca_.reconstruct_into(scratch.embedding, scratch.recon);
    scratch.embedding.push_back(linalg::euclidean_distance(scratch.features, scratch.recon));
  }
  return linalg::euclidean_distance(scratch.embedding, golden_centroid_);
}

std::string EuclideanDetector::describe() const {
  std::ostringstream out;
  out << "euclidean: PCA " << pca_.components() << " components"
      << (include_residual_ ? " + residual" : "") << ", "
      << golden_projections_.size() << " golden traces, EDth " << threshold_;
  return out.str();
}

void EuclideanDetector::save(std::ostream& out) const {
  save_preprocessor_options(out, preprocessor_.options());
  util::write_u8(out, include_residual_ ? 1 : 0);
  pca_.save(out);
  const std::size_t dim = golden_projections_.empty() ? 0 : golden_projections_.front().size();
  util::write_u64(out, golden_projections_.size());
  util::write_u64(out, dim);
  for (const auto& projection : golden_projections_) {
    EMTS_ASSERT(projection.size() == dim);
    for (double v : projection) util::write_f64(out, v);
  }
  util::write_f64_vec(out, golden_centroid_);
  util::write_f64(out, threshold_);
}

EuclideanDetector EuclideanDetector::load(std::istream& in) {
  const Preprocessor::Options preprocess = load_preprocessor_options(in);
  const bool include_residual = util::read_u8(in) != 0;
  stats::PcaModel pca = stats::PcaModel::load(in);

  EuclideanDetector detector{Preprocessor{preprocess}, std::move(pca), include_residual};
  const std::uint64_t count = util::read_u64(in);
  const std::uint64_t dim = util::read_u64(in);
  EMTS_REQUIRE(count >= 3, "euclidean load: needs >= 3 golden projections");
  EMTS_REQUIRE(count < (1ull << 32) && dim >= 1 && dim < (1ull << 24),
               "euclidean load: implausible projection shape");
  const std::size_t expected_dim =
      detector.pca_.components() + (include_residual ? 1u : 0u);
  EMTS_REQUIRE(dim == expected_dim, "euclidean load: projection dim disagrees with PCA model");

  detector.golden_projections_.reserve(count);
  for (std::uint64_t p = 0; p < count; ++p) {
    std::vector<double> projection(dim);
    for (double& v : projection) v = util::read_f64(in);
    detector.golden_projections_.push_back(std::move(projection));
  }
  detector.golden_centroid_ = util::read_f64_vec(in);
  EMTS_REQUIRE(detector.golden_centroid_.size() == dim,
               "euclidean load: centroid dim mismatch");
  detector.threshold_ = util::read_f64(in);
  EMTS_REQUIRE(detector.threshold_ >= 0.0, "euclidean load: negative threshold");
  return detector;
}

double EuclideanDetector::population_distance(const TraceSet& suspect) const {
  EMTS_REQUIRE(!suspect.empty(), "population_distance needs traces");
  std::vector<double> centroid(golden_centroid_.size(), 0.0);
  for (const Trace& t : suspect.traces) {
    const auto p = embed(preprocessor_.features(t));
    for (std::size_t c = 0; c < p.size(); ++c) centroid[c] += p[c];
  }
  for (double& v : centroid) v /= static_cast<double>(suspect.size());
  return linalg::euclidean_distance(centroid, golden_centroid_);
}

}  // namespace emts::core
