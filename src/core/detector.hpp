// Pluggable detector plug-point of the data-analysis module. The paper wires
// exactly two detectors (PCA/Euclidean, Sec. III-D; spectral, Sec. III-E)
// into its analysis pipeline; follow-up work swaps in golden-model-free and
// reference-free stages, so the evaluator composes an arbitrary list of
// `Detector`s instead. A string-keyed registry maps stable detector names to
// calibrate-from-golden and load-from-artifact factories — the latter is how
// the EMCA calibration format (io/calibration.hpp) rehydrates a fitted stack
// without re-capturing golden traces.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/trace.hpp"

namespace emts::core {

/// Set-level outcome of one detector stage inside a trust report.
struct DetectorReport {
  std::string name;
  double mean_score = 0.0;
  double max_score = 0.0;
  double threshold = 0.0;
  double anomalous_fraction = 0.0;  // traces beyond the threshold
  bool alarm = false;
  std::string detail;  // human-readable stage summary
};

/// Caller-owned working buffers for the allocation-free scoring path. One
/// scratch serves one evaluation stream: the buffers are resized on first
/// use and reused verbatim afterwards, so a steady stream of equal-length
/// traces scores with zero heap allocations. Detectors may use any subset.
struct ScoreScratch {
  std::vector<double> work;       // preprocessing working signal
  std::vector<double> aux;        // smoother prefix sums / generic scratch
  std::vector<double> aux2;       // second preprocessing scratch
  std::vector<double> features;   // preprocessed feature vector
  std::vector<double> embedding;  // model-space embedding
  std::vector<double> recon;      // reconstruction scratch
};

/// A fitted (calibrated) Trojan detector. Implementations are immutable once
/// fitted: score() and friends are const and thread-safe, so one fitted
/// detector can serve concurrent evaluation streams.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Stable registry name ("euclidean", "spectral", "ron", ...).
  virtual std::string name() const = 0;

  /// Human-readable calibration summary (model shape, thresholds).
  virtual std::string describe() const = 0;

  /// Per-trace anomaly score; larger = more suspicious.
  virtual double score(const Trace& trace) const = 0;

  /// score() writing every intermediate into caller-owned buffers. Returns a
  /// value bit-identical to score(trace); overrides must preserve that
  /// equality — the streaming monitor relies on it. The default ignores the
  /// scratch and delegates, so detectors without a buffered path stay
  /// correct (merely not allocation-free).
  virtual double score_buffered(const Trace& trace, ScoreScratch& scratch) const {
    (void)scratch;
    return score(trace);
  }

  /// Score level above which a single trace counts as anomalous.
  virtual double threshold() const = 0;

  /// Verdict for one trace; defaults to the score/threshold rule.
  virtual bool is_anomalous(const Trace& trace) const;

  /// Windowed detectors analyze a whole capture window at once (e.g. a mean
  /// spectrum); per-trace score() still works but is not the natural grain.
  virtual bool windowed() const { return false; }

  /// Set-level verdict. The default scores every trace and alarms when the
  /// over-threshold fraction exceeds `alarm_fraction`; windowed detectors
  /// override with their own population rule.
  virtual DetectorReport evaluate_set(const TraceSet& suspect, double alarm_fraction) const;

  /// Serializes the fitted state (payload only — the EMCA container frames
  /// it with the detector name and payload size).
  virtual void save(std::ostream& out) const = 0;

  /// Scores a whole set, trace by trace.
  std::vector<double> score_all(const TraceSet& set) const;
};

/// String-keyed factory registry. Built-in detectors ("euclidean",
/// "spectral") are registered on first access; extension modules register
/// theirs explicitly (e.g. baseline::register_ron_detector()). Thread-safe;
/// re-registering a name replaces the previous entry, so repeated
/// registration calls are harmless.
class DetectorRegistry {
 public:
  using CalibrateFn =
      std::function<std::shared_ptr<const Detector>(const TraceSet& golden)>;
  using LoadFn = std::function<std::shared_ptr<const Detector>(std::istream& in)>;

  static DetectorRegistry& instance();

  void add(const std::string& name, CalibrateFn calibrate, LoadFn load);
  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;  // sorted

  /// Calibrates the named detector on golden traces with default options.
  std::shared_ptr<const Detector> calibrate(const std::string& name,
                                            const TraceSet& golden) const;

  /// Rehydrates the named detector from a serialized payload.
  std::shared_ptr<const Detector> load(const std::string& name, std::istream& in) const;

 private:
  DetectorRegistry();

  struct Entry {
    CalibrateFn calibrate;
    LoadFn load;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace emts::core
