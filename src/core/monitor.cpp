#include "core/monitor.hpp"

#include "util/assert.hpp"

namespace emts::core {

const char* monitor_state_label(MonitorState state) {
  switch (state) {
    case MonitorState::kCalibrating:
      return "CALIBRATING";
    case MonitorState::kMonitoring:
      return "MONITORING";
    case MonitorState::kAlarm:
      return "ALARM";
  }
  return "?";
}

RuntimeMonitor::RuntimeMonitor(double sample_rate) : RuntimeMonitor(sample_rate, Options{}) {}

RuntimeMonitor::RuntimeMonitor(double sample_rate, const Options& options)
    : options_{options}, sample_rate_{sample_rate} {
  EMTS_REQUIRE(sample_rate > 0.0, "monitor needs a positive sample rate");
  EMTS_REQUIRE(options.calibration_traces >= 3, "monitor needs >= 3 calibration traces");
  EMTS_REQUIRE(options.alarm_debounce >= 1, "alarm debounce must be >= 1");
  EMTS_REQUIRE(options.spectral_window >= 1, "spectral window must be >= 1");
  calibration_.sample_rate = sample_rate;
  spectral_window_.sample_rate = sample_rate;
}

void RuntimeMonitor::on_alarm(std::function<void(const TrustReport&)> callback) {
  alarm_callback_ = std::move(callback);
}

void RuntimeMonitor::finish_calibration() {
  evaluator_ = TrustEvaluator::calibrate(calibration_, options_.evaluator);
  state_ = MonitorState::kMonitoring;
}

MonitorState RuntimeMonitor::push(Trace trace) {
  EMTS_REQUIRE(!trace.empty(), "cannot push an empty trace");
  ++traces_seen_;

  if (state_ == MonitorState::kCalibrating) {
    calibration_.add(std::move(trace));
    if (calibration_.size() >= options_.calibration_traces) finish_calibration();
    return state_;
  }

  EMTS_ASSERT(evaluator_.has_value());
  last_score_ = evaluator_->euclidean().score(trace);
  const bool distance_anomaly = *last_score_ > evaluator_->euclidean().threshold();

  // Spectral check over a rolling window.
  bool spectral_anomaly = false;
  spectral_window_.add(std::move(trace));
  if (spectral_window_.size() >= options_.spectral_window) {
    last_spectral_ = evaluator_->spectral().analyze(spectral_window_);
    spectral_anomaly = last_spectral_->anomalous();
    spectral_window_.traces.clear();
  }

  if (distance_anomaly || spectral_anomaly) {
    ++consecutive_anomalies_;
  } else {
    consecutive_anomalies_ = 0;
  }

  if (state_ == MonitorState::kMonitoring &&
      consecutive_anomalies_ >= options_.alarm_debounce) {
    state_ = MonitorState::kAlarm;
    if (alarm_callback_) {
      TrustReport report;
      report.verdict = Verdict::kCompromised;
      report.threshold = evaluator_->euclidean().threshold();
      report.mean_distance = *last_score_;
      report.max_distance = *last_score_;
      report.anomalous_fraction = 1.0;
      if (last_spectral_.has_value()) report.spectral = *last_spectral_;
      alarm_callback_(report);
    }
  }
  return state_;
}

void RuntimeMonitor::acknowledge_alarm() {
  EMTS_REQUIRE(state_ == MonitorState::kAlarm, "no alarm to acknowledge");
  state_ = MonitorState::kMonitoring;
  consecutive_anomalies_ = 0;
}

}  // namespace emts::core
