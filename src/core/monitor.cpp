#include "core/monitor.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace emts::core {

const char* monitor_state_label(MonitorState state) {
  switch (state) {
    case MonitorState::kCalibrating:
      return "CALIBRATING";
    case MonitorState::kMonitoring:
      return "MONITORING";
    case MonitorState::kAlarm:
      return "ALARM";
  }
  return "?";
}

RuntimeMonitor::RuntimeMonitor(double sample_rate) : RuntimeMonitor(sample_rate, Options{}) {}

RuntimeMonitor::RuntimeMonitor(double sample_rate, const Options& options)
    : options_{options}, sample_rate_{sample_rate} {
  validate_options();
  EMTS_REQUIRE(options.calibration_traces >= 3, "monitor needs >= 3 calibration traces");
  calibration_.sample_rate = sample_rate;
  spectral_window_.sample_rate = sample_rate;
}

RuntimeMonitor::RuntimeMonitor(double sample_rate, TrustEvaluator evaluator)
    : RuntimeMonitor(sample_rate, std::move(evaluator), Options{}) {}

RuntimeMonitor::RuntimeMonitor(double sample_rate, TrustEvaluator evaluator,
                               const Options& options)
    : options_{options}, sample_rate_{sample_rate} {
  validate_options();
  EMTS_REQUIRE(std::abs(evaluator.sample_rate() - sample_rate) < 1e-6 * sample_rate,
               "pre-fitted evaluator was calibrated at a different sample rate");
  spectral_window_.sample_rate = sample_rate;
  evaluator_ = std::move(evaluator);
  state_ = MonitorState::kMonitoring;  // cold start: zero calibration captures
}

void RuntimeMonitor::validate_options() const {
  EMTS_REQUIRE(sample_rate_ > 0.0, "monitor needs a positive sample rate");
  EMTS_REQUIRE(options_.alarm_debounce >= 1, "alarm debounce must be >= 1");
  EMTS_REQUIRE(options_.spectral_window >= 1, "spectral window must be >= 1");
}

void RuntimeMonitor::on_alarm(std::function<void(const TrustReport&)> callback) {
  alarm_callback_ = std::move(callback);
}

void RuntimeMonitor::finish_calibration() {
  evaluator_ = TrustEvaluator::calibrate(calibration_, options_.evaluator);
  state_ = MonitorState::kMonitoring;
}

MonitorState RuntimeMonitor::push(Trace trace) {
  EMTS_REQUIRE(!trace.empty(), "cannot push an empty trace");
  ++traces_seen_;

  if (state_ == MonitorState::kCalibrating) {
    calibration_.add(std::move(trace));
    if (calibration_.size() >= options_.calibration_traces) finish_calibration();
    return state_;
  }

  EMTS_ASSERT(evaluator_.has_value());

  // Per-trace stages score every capture; the first one (the Euclidean stage
  // in the default stack) feeds last_score().
  bool per_trace_anomaly = false;
  bool first_score = true;
  for (const auto& detector : evaluator_->detectors()) {
    if (detector->windowed()) continue;
    const double s = detector->score(trace);
    if (first_score) {
      last_score_ = s;
      first_score = false;
    }
    per_trace_anomaly |= s > detector->threshold();
  }

  // Windowed stages re-run over a rolling window of recent captures.
  bool windowed_anomaly = false;
  spectral_window_.add(std::move(trace));
  if (spectral_window_.size() >= options_.spectral_window) {
    for (const auto& detector : evaluator_->detectors()) {
      if (!detector->windowed()) continue;
      if (const auto* sd = dynamic_cast<const SpectralDetector*>(detector.get())) {
        last_spectral_ = sd->analyze(spectral_window_);
        windowed_anomaly |= last_spectral_->anomalous();
      } else {
        const DetectorReport stage = detector->evaluate_set(
            spectral_window_, evaluator_->options().anomalous_fraction_alarm);
        windowed_anomaly |= stage.alarm;
      }
    }
    spectral_window_.traces.clear();
  }

  if (per_trace_anomaly || windowed_anomaly) {
    ++consecutive_anomalies_;
  } else {
    consecutive_anomalies_ = 0;
  }

  if (state_ == MonitorState::kMonitoring &&
      consecutive_anomalies_ >= options_.alarm_debounce) {
    state_ = MonitorState::kAlarm;
    if (alarm_callback_) {
      TrustReport report;
      report.verdict = Verdict::kCompromised;
      if (const auto* euclid = evaluator_->try_euclidean()) {
        report.threshold = euclid->threshold();
      }
      if (last_score_.has_value()) {
        report.mean_distance = *last_score_;
        report.max_distance = *last_score_;
      }
      report.anomalous_fraction = 1.0;
      if (last_spectral_.has_value()) report.spectral = *last_spectral_;
      alarm_callback_(report);
    }
  }
  return state_;
}

void RuntimeMonitor::acknowledge_alarm() {
  EMTS_REQUIRE(state_ == MonitorState::kAlarm, "no alarm to acknowledge");
  state_ = MonitorState::kMonitoring;
  consecutive_anomalies_ = 0;
}

}  // namespace emts::core
