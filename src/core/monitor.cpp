#include "core/monitor.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace emts::core {

const char* monitor_state_label(MonitorState state) {
  switch (state) {
    case MonitorState::kCalibrating:
      return "CALIBRATING";
    case MonitorState::kMonitoring:
      return "MONITORING";
    case MonitorState::kAlarm:
      return "ALARM";
  }
  return "?";
}

const char* monitor_event_label(MonitorEventKind kind) {
  switch (kind) {
    case MonitorEventKind::kCalibrated:
      return "CALIBRATED";
    case MonitorEventKind::kPerTraceAnomaly:
      return "PER_TRACE_ANOMALY";
    case MonitorEventKind::kSpectralPass:
      return "SPECTRAL_PASS";
    case MonitorEventKind::kWindowedAnomaly:
      return "WINDOWED_ANOMALY";
    case MonitorEventKind::kAlarmLatched:
      return "ALARM_LATCHED";
    case MonitorEventKind::kAlarmAcknowledged:
      return "ALARM_ACKNOWLEDGED";
    case MonitorEventKind::kTraceRejectedShape:
      return "TRACE_REJECTED_SHAPE";
    case MonitorEventKind::kTraceRejectedNonFinite:
      return "TRACE_REJECTED_NON_FINITE";
  }
  return "?";
}

RuntimeMonitor::RuntimeMonitor(double sample_rate) : RuntimeMonitor(sample_rate, Options{}) {}

RuntimeMonitor::RuntimeMonitor(double sample_rate, const Options& options)
    : options_{options},
      sample_rate_{sample_rate},
      window_{std::max<std::size_t>(options.spectral_window, 1)} {
  validate_options();
  EMTS_REQUIRE(options.calibration_traces >= 3, "monitor needs >= 3 calibration traces");
  calibration_.sample_rate = sample_rate;
  events_.resize(options_.event_log_capacity);
}

RuntimeMonitor::RuntimeMonitor(double sample_rate, TrustEvaluator evaluator)
    : RuntimeMonitor(sample_rate, std::move(evaluator), Options{}) {}

RuntimeMonitor::RuntimeMonitor(double sample_rate, TrustEvaluator evaluator,
                               const Options& options)
    : options_{options},
      sample_rate_{sample_rate},
      window_{std::max<std::size_t>(options.spectral_window, 1)} {
  validate_options();
  EMTS_REQUIRE(std::abs(evaluator.sample_rate() - sample_rate) < 1e-6 * sample_rate,
               "pre-fitted evaluator was calibrated at a different sample rate");
  events_.resize(options_.event_log_capacity);
  evaluator_ = std::move(evaluator);
  state_ = MonitorState::kMonitoring;  // cold start: zero calibration captures
  bind_evaluator();
}

void RuntimeMonitor::validate_options() const {
  EMTS_REQUIRE(sample_rate_ > 0.0 && std::isfinite(sample_rate_),
               "monitor needs a positive, finite sample rate");
  EMTS_REQUIRE(options_.alarm_debounce >= 1, "alarm debounce must be >= 1");
  EMTS_REQUIRE(options_.spectral_window >= 1, "spectral window must be >= 1");
  EMTS_REQUIRE(options_.spectral_rebuild_every >= 1, "spectral rebuild cadence must be >= 1");
}

void RuntimeMonitor::on_alarm(std::function<void(const TrustReport&)> callback) {
  alarm_callback_ = std::move(callback);
}

void RuntimeMonitor::finish_calibration() {
  evaluator_ = TrustEvaluator::calibrate(calibration_, options_.evaluator);
  state_ = MonitorState::kMonitoring;
  bind_evaluator();
  record_event(MonitorEventKind::kCalibrated, static_cast<double>(calibration_.size()));
}

void RuntimeMonitor::bind_evaluator() {
  EMTS_ASSERT(evaluator_.has_value());
  spectral_ = evaluator_->try_spectral();
  if (spectral_ != nullptr) {
    spectral_scratch_.emplace(spectral_->options().spectrum);
  }
  window_set_.sample_rate = sample_rate_;
}

bool RuntimeMonitor::incremental_spectral_active() const {
  return options_.incremental_spectral && spectral_ != nullptr &&
         spectral_scratch_.has_value();
}

void RuntimeMonitor::record_event(MonitorEventKind kind, double value) {
  if (events_.empty()) return;  // event capture disabled
  events_[event_head_] = MonitorEvent{kind, traces_seen_, value};
  event_head_ = (event_head_ + 1) % events_.size();
  if (event_count_ < events_.size()) {
    ++event_count_;
  } else {
    ++stats_.events_dropped;  // the oldest entry was overwritten
  }
}

std::size_t RuntimeMonitor::drain_events(std::vector<MonitorEvent>& out) {
  const std::size_t drained = event_count_;
  if (!events_.empty()) {
    const std::size_t cap = events_.size();
    for (std::size_t i = 0; i < event_count_; ++i) {
      out.push_back(events_[(event_head_ + cap - event_count_ + i) % cap]);
    }
  }
  event_head_ = 0;
  event_count_ = 0;
  return drained;
}

std::vector<MonitorEvent> RuntimeMonitor::drain_events() {
  std::vector<MonitorEvent> out;
  drain_events(out);
  return out;
}

MonitorState RuntimeMonitor::push(const Trace& trace) { return ingest(trace); }

MonitorState RuntimeMonitor::push_batch(const TraceSet& batch) {
  EMTS_REQUIRE(!batch.empty(), "push_batch needs traces");
  EMTS_REQUIRE(std::abs(batch.sample_rate - sample_rate_) < 1e-6 * sample_rate_,
               "batch sample rate differs from the monitor");
  for (const Trace& trace : batch.traces) ingest(trace);
  return state_;
}

bool RuntimeMonitor::admit_trace(const Trace& trace) {
  // Shape gate. The first capture pins the stream length; a pre-fitted
  // evaluator additionally vets it against the fitted feature shape, so a
  // wrong-length first capture cannot pin a shape the detectors would choke
  // on (or silently mis-score through block decimation).
  if (expected_length_ != 0) {
    if (trace.size() != expected_length_) {
      ++stats_.traces_rejected;
      record_event(MonitorEventKind::kTraceRejectedShape,
                   static_cast<double>(trace.size()));
      return false;
    }
  } else if (evaluator_.has_value() && !evaluator_->accepts_trace_length(trace.size())) {
    ++stats_.traces_rejected;
    record_event(MonitorEventKind::kTraceRejectedShape,
                 static_cast<double>(trace.size()));
    return false;
  }

  // Finiteness gate: one NaN poisons every running statistic downstream
  // (PCA projection, spectral mean, latched scores), so it must never reach
  // the preprocessor.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (!std::isfinite(trace[i])) {
      ++stats_.traces_rejected;
      record_event(MonitorEventKind::kTraceRejectedNonFinite, static_cast<double>(i));
      return false;
    }
  }

  if (expected_length_ == 0) expected_length_ = trace.size();
  return true;
}

MonitorState RuntimeMonitor::ingest(const Trace& trace) {
  EMTS_REQUIRE(!trace.empty(), "cannot push an empty trace");
  const std::uint64_t t0 = util::monotonic_ns();
  ++traces_seen_;
  ++stats_.traces_ingested;

  if (!admit_trace(trace)) {
    stats_.push_latency.record(util::monotonic_ns() - t0);
    return state_;
  }

  if (state_ == MonitorState::kCalibrating) {
    calibration_.add(trace);
    ++stats_.calibration_captures;
    if (calibration_.size() >= options_.calibration_traces) finish_calibration();
    stats_.push_latency.record(util::monotonic_ns() - t0);
    return state_;
  }

  EMTS_ASSERT(evaluator_.has_value());

  // Per-trace stages score every capture through the buffered (reused
  // scratch) path; the first one (the Euclidean stage in the default stack)
  // feeds last_score().
  bool per_trace_anomaly = false;
  bool first_score = true;
  double anomaly_score = 0.0;
  for (const auto& detector : evaluator_->detectors()) {
    if (detector->windowed()) continue;
    const double s = detector->score_buffered(trace, scratch_);
    if (first_score) {
      last_score_ = s;
      first_score = false;
    }
    if (s > detector->threshold() && !per_trace_anomaly) {
      per_trace_anomaly = true;
      anomaly_score = s;
    }
  }
  ++stats_.scored_captures;
  if (per_trace_anomaly) {
    ++stats_.per_trace_anomalies;
    record_event(MonitorEventKind::kPerTraceAnomaly, anomaly_score);
  }

  // Windowed stages re-run over a rolling window of recent captures.
  bool windowed_anomaly = false;
  window_.push(trace);
  if (incremental_spectral_active()) {
    // Pay this trace's FFT now (flat per-push cost) and fold its amplitudes
    // into the running window sum; the boundary pass below is then O(bins).
    spectral_->stream_observe(window_, sample_rate_, *spectral_scratch_);
    ++stats_.spectral_incremental_updates;
  }
  if (window_.size() >= options_.spectral_window) {
    run_windowed_pass(windowed_anomaly);
  }

  if (per_trace_anomaly || windowed_anomaly) {
    ++consecutive_anomalies_;
  } else {
    consecutive_anomalies_ = 0;
  }

  if (state_ == MonitorState::kMonitoring &&
      consecutive_anomalies_ >= options_.alarm_debounce) {
    state_ = MonitorState::kAlarm;
    ++stats_.alarms_latched;
    alarm_latched_at_ = traces_seen_;
    record_event(MonitorEventKind::kAlarmLatched,
                 static_cast<double>(consecutive_anomalies_));
    if (alarm_callback_) {
      TrustReport report;
      report.verdict = Verdict::kCompromised;
      if (const auto* euclid = evaluator_->try_euclidean()) {
        report.threshold = euclid->threshold();
      }
      if (last_score_.has_value()) {
        report.mean_distance = *last_score_;
        report.max_distance = *last_score_;
      }
      report.anomalous_fraction = 1.0;
      if (last_spectral_.has_value()) report.spectral = *last_spectral_;
      alarm_callback_(report);
    }
  }
  stats_.push_latency.record(util::monotonic_ns() - t0);
  return state_;
}

void RuntimeMonitor::run_windowed_pass(bool& windowed_anomaly) {
  const std::uint64_t t0 = util::monotonic_ns();
  for (const auto& detector : evaluator_->detectors()) {
    if (!detector->windowed()) continue;
    if (const auto* sd = dynamic_cast<const SpectralDetector*>(detector.get())) {
      if (incremental_spectral_active()) {
        bool rebuilt = false;
        last_spectral_ = sd->stream_finish(window_, sample_rate_, *spectral_scratch_,
                                           options_.spectral_rebuild_every, rebuilt);
        if (rebuilt) ++stats_.spectral_recomputes;
      } else {
        last_spectral_ = sd->analyze_reusing(window_, sample_rate_, *spectral_scratch_);
        ++stats_.spectral_recomputes;
      }
      windowed_anomaly |= last_spectral_->anomalous();
    } else {
      // Generic windowed detectors take a TraceSet; snapshot the ring into a
      // reused set (per-slot assign keeps the storage warm).
      window_set_.traces.resize(window_.size());
      for (std::size_t i = 0; i < window_.size(); ++i) {
        const Trace& src = window_.oldest(i);
        window_set_.traces[i].assign(src.begin(), src.end());
      }
      const DetectorReport stage = detector->evaluate_set(
          window_set_, evaluator_->options().anomalous_fraction_alarm);
      windowed_anomaly |= stage.alarm;
    }
  }
  const std::size_t analyzed = window_.size();
  window_.clear();
  if (incremental_spectral_active()) spectral_scratch_->analyzer.stream_reset();
  ++stats_.spectral_passes;
  record_event(MonitorEventKind::kSpectralPass, static_cast<double>(analyzed));
  if (windowed_anomaly) {
    ++stats_.windowed_anomalies;
    const double strongest =
        (last_spectral_.has_value() && !last_spectral_->anomalies.empty())
            ? last_spectral_->anomalies.front().ratio
            : 0.0;
    record_event(MonitorEventKind::kWindowedAnomaly, strongest);
  }
  stats_.spectral_latency.record(util::monotonic_ns() - t0);
}

MonitorStateImage RuntimeMonitor::export_state() const {
  MonitorStateImage image;
  image.sample_rate = sample_rate_;
  image.calibration_traces = options_.calibration_traces;
  image.alarm_debounce = options_.alarm_debounce;
  image.spectral_window = options_.spectral_window;
  image.event_log_capacity = options_.event_log_capacity;
  image.incremental_spectral = options_.incremental_spectral;
  image.spectral_rebuild_every = options_.spectral_rebuild_every;

  image.state = state_;
  image.traces_seen = traces_seen_;
  image.expected_length = expected_length_;
  image.consecutive_anomalies = consecutive_anomalies_;
  image.alarm_latched_at = alarm_latched_at_;
  image.last_score = last_score_;
  image.last_spectral = last_spectral_;
  image.calibration = calibration_.traces;
  image.window.reserve(window_.size());
  for (std::size_t i = 0; i < window_.size(); ++i) image.window.push_back(window_.oldest(i));
  image.window_total_pushed = window_.total_pushed();
  if (spectral_scratch_.has_value()) {
    image.spectral_sum = spectral_scratch_->analyzer.stream_sum();
    image.spectral_count = spectral_scratch_->analyzer.stream_count();
    image.spectral_updates_since_rebuild =
        spectral_scratch_->analyzer.stream_updates_since_rebuild();
  }
  image.stats = stats_;
  // Buffered events, oldest first — the order drain_events() would emit.
  if (!events_.empty()) {
    const std::size_t cap = events_.size();
    image.events.reserve(event_count_);
    for (std::size_t i = 0; i < event_count_; ++i) {
      image.events.push_back(events_[(event_head_ + cap - event_count_ + i) % cap]);
    }
  }
  return image;
}

void RuntimeMonitor::restore_state(const MonitorStateImage& image) {
  EMTS_REQUIRE(traces_seen_ == 0 && stats_.traces_ingested == 0,
               "restore_state needs an untouched monitor");
  EMTS_REQUIRE(std::abs(image.sample_rate - sample_rate_) < 1e-6 * sample_rate_,
               "restore_state: image sample rate differs from the monitor");
  EMTS_REQUIRE(image.alarm_debounce == options_.alarm_debounce &&
                   image.spectral_window == options_.spectral_window &&
                   image.event_log_capacity == options_.event_log_capacity &&
                   image.incremental_spectral == options_.incremental_spectral &&
                   image.spectral_rebuild_every == options_.spectral_rebuild_every,
               "restore_state: image was captured under different monitor options");
  EMTS_REQUIRE((image.state == MonitorState::kCalibrating) == !evaluator_.has_value(),
               image.state == MonitorState::kCalibrating
                   ? "restore_state: a calibrating image needs a self-calibrating monitor"
                   : "restore_state: a monitoring image needs a pre-fitted monitor");
  if (!evaluator_.has_value()) {
    EMTS_REQUIRE(image.calibration_traces == options_.calibration_traces,
                 "restore_state: image was captured under different monitor options");
    EMTS_REQUIRE(image.calibration.size() < options_.calibration_traces,
                 "restore_state: calibrating image holds a full calibration set");
  }
  EMTS_REQUIRE(image.window.size() <= window_.capacity(),
               "restore_state: image window exceeds the spectral window");
  EMTS_REQUIRE(image.events.size() <= events_.size() ||
                   (events_.empty() && image.events.empty()),
               "restore_state: image events exceed the event log capacity");
  EMTS_REQUIRE(image.window_total_pushed >= image.window.size(),
               "restore_state: inconsistent window push counter");
  for (const Trace& trace : image.window) {
    EMTS_REQUIRE(image.expected_length != 0 && trace.size() == image.expected_length,
                 "restore_state: window trace shape disagrees with the pinned length");
  }
  EMTS_REQUIRE(image.spectral_count == 0 || image.spectral_count == image.window.size(),
               "restore_state: spectral accumulator count disagrees with the window");
  EMTS_REQUIRE(image.spectral_count == 0 || !image.spectral_sum.empty(),
               "restore_state: non-empty spectral accumulator with no bins");

  state_ = image.state;
  traces_seen_ = static_cast<std::size_t>(image.traces_seen);
  expected_length_ = static_cast<std::size_t>(image.expected_length);
  consecutive_anomalies_ = static_cast<std::size_t>(image.consecutive_anomalies);
  alarm_latched_at_ = image.alarm_latched_at;
  last_score_ = image.last_score;
  last_spectral_ = image.last_spectral;
  calibration_.traces = image.calibration;
  window_.clear();
  const bool incremental = incremental_spectral_active();
  for (const Trace& trace : image.window) {
    window_.push(trace);
    // Replay the per-slot spectrum caches deterministically; the accumulator
    // itself is then overwritten verbatim from the image below, so a
    // continued stream is bit-identical even mid-drift.
    if (incremental) spectral_->stream_observe(window_, sample_rate_, *spectral_scratch_);
  }
  if (incremental) {
    spectral_scratch_->analyzer.stream_restore(image.spectral_sum,
                                               image.spectral_count,
                                               image.spectral_updates_since_rebuild);
  }
  window_.restore_total_pushed(image.window_total_pushed);
  stats_ = image.stats;
  event_head_ = events_.empty() ? 0 : image.events.size() % events_.size();
  event_count_ = image.events.size();
  for (std::size_t i = 0; i < image.events.size(); ++i) events_[i] = image.events[i];
}

void RuntimeMonitor::acknowledge_alarm() {
  EMTS_REQUIRE(state_ == MonitorState::kAlarm, "no alarm to acknowledge");
  state_ = MonitorState::kMonitoring;
  // Fully re-arm: without these resets, infected traces retained in the
  // partial window (and the stale last score / spectral report) from before
  // the alarm would leak into the next windowed pass and could re-latch the
  // alarm on a perfectly clean stream.
  consecutive_anomalies_ = 0;
  window_.clear();
  if (incremental_spectral_active()) spectral_scratch_->analyzer.stream_reset();
  last_score_.reset();
  last_spectral_.reset();
  ++stats_.alarms_acknowledged;
  record_event(MonitorEventKind::kAlarmAcknowledged,
               static_cast<double>(traces_seen_ - alarm_latched_at_));
}

}  // namespace emts::core
