#include "core/preprocess.hpp"

#include <cmath>

#include "dsp/filter.hpp"
#include "dsp/resample.hpp"
#include "util/assert.hpp"
#include "util/binio.hpp"

namespace emts::core {

Preprocessor::Preprocessor() : Preprocessor(Options{}) {}

Preprocessor::Preprocessor(const Options& options) : options_{options} {
  EMTS_REQUIRE(options.smooth_window % 2 == 1, "smooth window must be odd");
  EMTS_REQUIRE(options.decimation >= 1, "decimation must be >= 1");
}

std::vector<double> Preprocessor::features(const Trace& trace) const {
  std::vector<double> work;
  std::vector<double> aux;
  std::vector<double> aux2;
  std::vector<double> out;
  features_into(trace, work, aux, aux2, out);
  return out;
}

void Preprocessor::features_into(const Trace& trace, std::vector<double>& work,
                                 std::vector<double>& aux, std::vector<double>& aux2,
                                 std::vector<double>& features) const {
  EMTS_REQUIRE(!trace.empty(), "cannot preprocess an empty trace");
  work.assign(trace.begin(), trace.end());

  if (options_.remove_mean) {
    double mean = 0.0;
    for (double v : work) mean += v;
    mean /= static_cast<double>(work.size());
    for (double& v : work) v -= mean;
  }

  if (options_.smooth_window > 1) {
    // aux holds the prefix sums, aux2 the smoothed signal; the swap keeps
    // both buffers' storage alive for the next call.
    dsp::moving_average_into(work, options_.smooth_window, aux, aux2);
    work.swap(aux2);
  }

  if (options_.normalize_rms) {
    double acc = 0.0;
    for (double v : work) acc += v * v;
    const double rms = std::sqrt(acc / static_cast<double>(work.size()));
    if (rms > 0.0) {
      for (double& v : work) v /= rms;
    }
  }

  if (options_.decimation > 1) {
    dsp::decimate_mean_into(work, options_.decimation, features);
  } else {
    features.assign(work.begin(), work.end());
  }
  EMTS_REQUIRE(!features.empty(), "decimation left no features");
}

linalg::Matrix Preprocessor::feature_matrix(const TraceSet& set) const {
  EMTS_REQUIRE(!set.empty(), "cannot preprocess an empty trace set");
  const auto first = features(set.traces.front());
  linalg::Matrix out{set.size(), first.size()};
  for (std::size_t c = 0; c < first.size(); ++c) out(0, c) = first[c];
  for (std::size_t r = 1; r < set.size(); ++r) {
    const auto f = features(set.traces[r]);
    EMTS_ASSERT(f.size() == first.size());
    for (std::size_t c = 0; c < f.size(); ++c) out(r, c) = f[c];
  }
  return out;
}

std::size_t Preprocessor::feature_dim(std::size_t trace_length) const {
  return options_.decimation > 1 ? trace_length / options_.decimation : trace_length;
}

void save_preprocessor_options(std::ostream& out, const Preprocessor::Options& options) {
  util::write_u8(out, options.remove_mean ? 1 : 0);
  util::write_u64(out, options.smooth_window);
  util::write_u8(out, options.normalize_rms ? 1 : 0);
  util::write_u64(out, options.decimation);
}

Preprocessor::Options load_preprocessor_options(std::istream& in) {
  Preprocessor::Options options;
  options.remove_mean = util::read_u8(in) != 0;
  options.smooth_window = util::read_u64(in);
  options.normalize_rms = util::read_u8(in) != 0;
  options.decimation = util::read_u64(in);
  EMTS_REQUIRE(options.smooth_window % 2 == 1, "preprocessor options: smooth window must be odd");
  EMTS_REQUIRE(options.decimation >= 1 && options.decimation < (1ull << 20),
               "preprocessor options: implausible decimation");
  return options;
}

}  // namespace emts::core
