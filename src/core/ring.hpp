// Fixed-capacity trace ring for the monitoring hot path. The runtime monitor
// keeps the most recent spectral window of captures; a TraceSet that is
// cleared after every pass reallocates each trace on re-entry, which is the
// dominant allocation source in a streamed deployment. The ring owns
// `capacity` reusable slots: push() copies into the oldest slot's existing
// storage, so after one full revolution the window ingests traces with zero
// heap traffic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/trace.hpp"

namespace emts::core {

class TraceRing {
 public:
  /// Requires capacity >= 1; slot storage grows lazily on first use.
  explicit TraceRing(std::size_t capacity);

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool full() const { return count_ == slots_.size(); }

  /// Total pushes over the ring's lifetime (not reset by clear()).
  std::uint64_t total_pushed() const { return total_pushed_; }

  /// Copies the trace into the next slot, evicting the oldest entry when
  /// full. Slot storage is reused, so pushing equal-length traces never
  /// allocates once every slot has been written once.
  void push(const Trace& trace);

  /// i-th entry in arrival order: oldest(0) is the least recent retained
  /// trace, oldest(size() - 1) == newest(). Requires i < size().
  const Trace& oldest(std::size_t i = 0) const;
  const Trace& newest() const;

  /// Logical clear: size() drops to zero but every slot keeps its storage,
  /// preserving the zero-allocation guarantee across window boundaries.
  void clear();

  /// Reinstates the lifetime push counter after a snapshot restore — the one
  /// piece of ring state push() cannot reconstruct. Requires `total` to be
  /// at least the pushes already recorded (the counter never runs backward).
  void restore_total_pushed(std::uint64_t total);

  /// Attaches a per-slot cached amplitude spectrum of `bins` doubles to every
  /// slot, preallocated up front so the incremental spectral path writes into
  /// existing storage. Idempotent for the same bin count; caches survive
  /// clear() exactly like slot storage does. Requires bins >= 1.
  void enable_spectrum_cache(std::size_t bins);
  bool spectrum_cache_enabled() const { return !spectra_.empty(); }

  /// Cached spectrum of the newest slot (the one the incremental push just
  /// filled). Requires a non-empty ring with the cache enabled.
  std::vector<double>& newest_spectrum();
  /// Cached spectrum of the i-th entry in arrival order (same indexing as
  /// oldest(i)). Requires i < size() and the cache enabled.
  const std::vector<double>& oldest_spectrum(std::size_t i) const;

 private:
  std::size_t slot_index(std::size_t i) const;

  std::vector<Trace> slots_;
  std::vector<std::vector<double>> spectra_;  // parallel to slots_ when enabled
  std::size_t head_ = 0;  // next write position
  std::size_t count_ = 0;
  std::uint64_t total_pushed_ = 0;
};

}  // namespace emts::core
