#include "core/trace.hpp"

#include "util/assert.hpp"

namespace emts::core {

void TraceSet::add(Trace trace) {
  EMTS_REQUIRE(!trace.empty(), "cannot add an empty trace");
  EMTS_REQUIRE(traces.empty() || trace.size() == traces.front().size(),
               "all traces in a set must share one length");
  traces.push_back(std::move(trace));
}

void TraceSet::reserve(std::size_t n) { traces.reserve(traces.size() + n); }

void TraceSet::add_all(std::vector<Trace> batch) {
  if (batch.empty()) return;
  const std::size_t len = traces.empty() ? batch.front().size() : traces.front().size();
  for (const Trace& t : batch) {
    EMTS_REQUIRE(!t.empty(), "cannot add an empty trace");
    EMTS_REQUIRE(t.size() == len, "all traces in a set must share one length");
  }
  reserve(batch.size());
  for (Trace& t : batch) traces.push_back(std::move(t));
}

void TraceSet::validate() const {
  EMTS_REQUIRE(sample_rate > 0.0, "trace set needs a positive sample rate");
  for (const Trace& t : traces) {
    EMTS_REQUIRE(t.size() == traces.front().size(), "ragged trace set");
  }
}

Trace TraceSet::mean_trace() const {
  EMTS_REQUIRE(!traces.empty(), "mean of an empty trace set");
  Trace mean(traces.front().size(), 0.0);
  for (const Trace& t : traces) {
    EMTS_REQUIRE(t.size() == mean.size(), "ragged trace set");
    for (std::size_t i = 0; i < mean.size(); ++i) mean[i] += t[i];
  }
  const double inv = 1.0 / static_cast<double>(traces.size());
  for (double& v : mean) v *= inv;
  return mean;
}

}  // namespace emts::core
