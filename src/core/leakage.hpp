// Side-channel leakage assessment (TVLA, Goodwill et al.): per-sample
// Welch t-test between a fixed-input and a random-input trace population.
// |t| above the standard 4.5 threshold at any sample means the traces carry
// data-dependent information.
//
// Why it's here: the paper's premise is that the on-chip sensor's traces are
// "rich in information" (Sec. III-A) — rich enough that a Trojan's tampering
// shows up. TVLA quantifies that premise: the sensor's captures leak the
// AES data dependence strongly, the external probe's far less. It also gives
// deployments a calibration self-check ("is my sensor actually seeing the
// die?") that needs no Trojan at all.
#pragma once

#include <cstddef>
#include <vector>

#include "core/trace.hpp"

namespace emts::core {

struct LeakageReport {
  std::vector<double> t_statistic;  // per sample, Welch's t
  double max_abs_t = 0.0;
  std::size_t max_abs_t_sample = 0;
  std::size_t leaky_samples = 0;  // |t| > threshold
  double threshold = 4.5;

  bool leaks() const { return leaky_samples > 0; }
};

/// Runs the fixed-vs-random TVLA. Both sets need >= 2 equal-length traces
/// and matching sample rates. Samples where both populations are constant
/// (e.g. ADC-flat regions) get t = 0.
LeakageReport tvla(const TraceSet& fixed_input, const TraceSet& random_input,
                   double threshold = 4.5);

}  // namespace emts::core
