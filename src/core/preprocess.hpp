// Preprocessing stage of the data-analysis module (paper Sec. III-D):
// denoising and feature extraction ahead of PCA. Raw oscilloscope traces are
// detrended, optionally smoothed and normalized, then reduced to a feature
// vector by block decimation so the PCA stage works on hundreds rather than
// thousands of dimensions.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "core/trace.hpp"
#include "linalg/matrix.hpp"

namespace emts::core {

class Preprocessor {
 public:
  struct Options {
    bool remove_mean = true;          // detrend DC offset
    std::size_t smooth_window = 1;    // odd moving-average length; 1 = off
    // Off by default: amplitude IS a signature (T4's whole payload is an
    // amplitude increase); normalizing away RMS would blind the detector to
    // it. Enable for setups with uncontrolled per-capture gain.
    bool normalize_rms = false;
    std::size_t decimation = 16;      // samples per feature (mean pooling)
  };

  Preprocessor();  // default options
  explicit Preprocessor(const Options& options);

  /// Feature vector of one trace.
  std::vector<double> features(const Trace& trace) const;

  /// features() writing every intermediate into caller-owned buffers
  /// (`work`, `aux`, `aux2` are scratch; `features` receives the result).
  /// Bit-identical to features(trace); zero allocations once the buffers'
  /// capacity is warm — the streaming monitor's per-push path.
  void features_into(const Trace& trace, std::vector<double>& work, std::vector<double>& aux,
                     std::vector<double>& aux2, std::vector<double>& features) const;

  /// Feature matrix of a whole set (rows = traces).
  linalg::Matrix feature_matrix(const TraceSet& set) const;

  /// Feature dimension for traces of `trace_length` samples.
  std::size_t feature_dim(std::size_t trace_length) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

/// Binary round-trip of preprocessing parameters inside an EMCA calibration
/// artifact: a deployed detector must preprocess exactly as it was fitted.
void save_preprocessor_options(std::ostream& out, const Preprocessor::Options& options);
Preprocessor::Options load_preprocessor_options(std::istream& in);

}  // namespace emts::core
