// Combined trust evaluator: the "data analysis module" of Fig. 1. Composes
// an arbitrary, pluggable list of calibrated detectors (by default the
// paper's pair: Euclidean-distance for digital Trojans, spectral for
// A2-style / fast-toggling Trojans) behind one calibrate-then-evaluate API
// and merges their per-stage verdicts into a trust report. A fitted
// evaluator serializes into an EMCA calibration artifact
// (io/save_calibration) so deployments calibrate once and monitor many.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/euclidean.hpp"
#include "core/spectral.hpp"
#include "core/trace.hpp"

namespace emts::core {

enum class Verdict { kTrusted, kSuspicious, kCompromised };

struct TrustReport {
  Verdict verdict = Verdict::kTrusted;

  /// Per-detector stage outcomes, in evaluator order.
  std::vector<DetectorReport> stages;

  // Euclidean stage conveniences (filled when an "euclidean" stage ran).
  double mean_distance = 0.0;
  double max_distance = 0.0;
  double threshold = 0.0;       // Eq. 1
  double anomalous_fraction = 0.0;  // traces beyond the threshold

  // Spectral stage (filled when a "spectral" stage ran).
  SpectralReport spectral;

  std::size_t alarmed_stages() const;
  std::string summary() const;
};

class TrustEvaluator {
 public:
  struct Options {
    // Detector stack, by registry name, in evaluation order. "euclidean" and
    // "spectral" get the typed options below; any other name is calibrated
    // through the DetectorRegistry with its registered defaults.
    std::vector<std::string> detectors{"euclidean", "spectral"};
    EuclideanDetector::Options euclidean{};
    SpectralDetector::Options spectral{};
    // Fraction of over-threshold traces that flips a per-trace stage's
    // verdict. Golden noise occasionally exceeds the Eq. 1 max; a
    // population-level exceedance rate is the runtime-robust form of the rule.
    double anomalous_fraction_alarm = 0.05;
  };

  /// Calibrates every configured detector on golden traces.
  static TrustEvaluator calibrate(const TraceSet& golden, const Options& options);
  static TrustEvaluator calibrate(const TraceSet& golden);  // default options

  /// Assembles an evaluator from already-fitted detectors — the
  /// io::load_calibration path. No golden traces, no refitting.
  static TrustEvaluator assemble(std::vector<std::shared_ptr<const Detector>> detectors,
                                 double anomalous_fraction_alarm, double sample_rate);

  /// Evaluates a batch of runtime traces. Verdict: no stage alarmed =
  /// trusted, one = suspicious, two or more = compromised.
  TrustReport evaluate(const TraceSet& suspect) const;

  /// Per-trace scores of a whole batch through the buffered scoring path.
  /// `scores` is aligned with detectors(): scores[d][t] is detector d's
  /// score of trace t, bit-identical to detectors()[d]->score(trace); rows
  /// of windowed detectors are left empty (their grain is the whole window,
  /// not a trace). Reuses `scratch` and the rows of `scores`, so a steady
  /// stream of equal-shaped batches scores with zero heap allocations.
  void score_batch(const TraceSet& batch, ScoreScratch& scratch,
                   std::vector<std::vector<double>>& scores) const;

  const std::vector<std::shared_ptr<const Detector>>& detectors() const { return detectors_; }
  const Detector* find(const std::string& name) const;

  /// Typed accessors for the paper's two stages. The try_ forms return null
  /// when the stage is absent; the reference forms require it.
  const EuclideanDetector* try_euclidean() const;
  const SpectralDetector* try_spectral() const;
  const EuclideanDetector& euclidean() const;
  const SpectralDetector& spectral() const;

  /// Whether traces of `trace_length` samples are shape-compatible with the
  /// fitted stack. With a euclidean stage this requires the preprocessed
  /// feature count to match the fitted PCA input dimension — the gate the
  /// runtime monitor applies before a capture may pin its stream shape.
  /// Stacks without a euclidean stage accept any non-zero length.
  bool accepts_trace_length(std::size_t trace_length) const;

  /// Sample rate of the calibration campaign (Hz).
  double sample_rate() const { return sample_rate_; }
  const Options& options() const { return options_; }

 private:
  TrustEvaluator(std::vector<std::shared_ptr<const Detector>> detectors, Options options,
                 double sample_rate);

  std::vector<std::shared_ptr<const Detector>> detectors_;
  Options options_;
  double sample_rate_ = 0.0;
};

const char* verdict_label(Verdict verdict);

}  // namespace emts::core
