// Combined trust evaluator: the "data analysis module" of Fig. 1. Wraps the
// Euclidean-distance detector (digital Trojans) and the spectral detector
// (A2-style / fast-toggling Trojans) behind one calibrate-then-evaluate API
// and merges their verdicts into a trust report.
#pragma once

#include <cstddef>
#include <string>

#include "core/euclidean.hpp"
#include "core/spectral.hpp"
#include "core/trace.hpp"

namespace emts::core {

enum class Verdict { kTrusted, kSuspicious, kCompromised };

struct TrustReport {
  Verdict verdict = Verdict::kTrusted;

  // Euclidean stage.
  double mean_distance = 0.0;
  double max_distance = 0.0;
  double threshold = 0.0;       // Eq. 1
  double anomalous_fraction = 0.0;  // traces beyond the threshold

  // Spectral stage.
  SpectralReport spectral;

  std::string summary() const;
};

class TrustEvaluator {
 public:
  struct Options {
    EuclideanDetector::Options euclidean{};
    SpectralDetector::Options spectral{};
    // Fraction of over-threshold traces that flips the distance verdict.
    // Golden noise occasionally exceeds the Eq. 1 max; a population-level
    // exceedance rate is the runtime-robust form of the rule.
    double anomalous_fraction_alarm = 0.05;
  };

  /// Calibrates both detectors on golden traces.
  static TrustEvaluator calibrate(const TraceSet& golden, const Options& options);
  static TrustEvaluator calibrate(const TraceSet& golden);  // default options

  /// Evaluates a batch of runtime traces.
  TrustReport evaluate(const TraceSet& suspect) const;

  const EuclideanDetector& euclidean() const { return euclidean_; }
  const SpectralDetector& spectral() const { return spectral_; }

 private:
  TrustEvaluator(EuclideanDetector euclidean, SpectralDetector spectral, const Options& options);

  EuclideanDetector euclidean_;
  SpectralDetector spectral_;
  Options options_;
};

const char* verdict_label(Verdict verdict);

}  // namespace emts::core
