// Runtime trust monitor — the deployment loop of Fig. 1. The on-chip sensor
// streams captures; the monitor either self-calibrates on an initial window
// of traces (the user "knows how the circuit will operate", Sec. III-B) or
// starts from a pre-fitted evaluator (io::load_calibration — cold start in
// O(load) instead of O(captures + PCA fit)), then scores every subsequent
// capture and raises an alarm after a debounced run of anomalies. "Runtime"
// in the paper's sense: evaluation happens while the system operates, not
// instantaneously per trace.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>

#include "core/evaluator.hpp"
#include "core/trace.hpp"

namespace emts::core {

enum class MonitorState { kCalibrating, kMonitoring, kAlarm };

class RuntimeMonitor {
 public:
  struct Options {
    std::size_t calibration_traces = 64;
    // Consecutive anomalous captures required to latch the alarm: debounces
    // the occasional golden capture beyond EDth.
    std::size_t alarm_debounce = 3;
    // Re-run the windowed (spectral) checks every this many monitored
    // captures, over the most recent window of traces.
    std::size_t spectral_window = 16;
    TrustEvaluator::Options evaluator{};
  };

  /// Self-calibrating monitor: the first `calibration_traces` pushes fit the
  /// detector stack. `sample_rate` of the incoming captures (Hz).
  explicit RuntimeMonitor(double sample_rate);  // default options
  RuntimeMonitor(double sample_rate, const Options& options);

  /// Pre-fitted monitor: starts monitoring immediately with zero calibration
  /// captures. The evaluator's calibration sample rate must match.
  RuntimeMonitor(double sample_rate, TrustEvaluator evaluator);
  RuntimeMonitor(double sample_rate, TrustEvaluator evaluator, const Options& options);

  /// Feeds one capture; returns the state after ingesting it.
  MonitorState push(Trace trace);

  MonitorState state() const { return state_; }
  std::size_t traces_seen() const { return traces_seen_; }

  /// Score of the most recent monitored capture under the first per-trace
  /// detector (the Euclidean stage in the default stack).
  std::optional<double> last_score() const { return last_score_; }

  /// The detector stack, once calibration completes (immediately for a
  /// pre-fitted monitor).
  const TrustEvaluator* evaluator() const {
    return evaluator_.has_value() ? &*evaluator_ : nullptr;
  }

  /// Most recent spectral report (if a spectral window completed).
  const std::optional<SpectralReport>& last_spectral() const { return last_spectral_; }

  /// Invoked exactly once when the alarm latches.
  void on_alarm(std::function<void(const TrustReport&)> callback);

  /// Clears a latched alarm and resumes monitoring (operator action after
  /// the "further investigations" the paper mentions).
  void acknowledge_alarm();

 private:
  void validate_options() const;
  void finish_calibration();

  Options options_;
  double sample_rate_;
  MonitorState state_ = MonitorState::kCalibrating;
  TraceSet calibration_;
  TraceSet spectral_window_;
  std::optional<TrustEvaluator> evaluator_;
  std::optional<double> last_score_;
  std::optional<SpectralReport> last_spectral_;
  std::size_t traces_seen_ = 0;
  std::size_t consecutive_anomalies_ = 0;
  std::function<void(const TrustReport&)> alarm_callback_;
};

const char* monitor_state_label(MonitorState state);

}  // namespace emts::core
