// Runtime trust monitor — the deployment loop of Fig. 1. The on-chip sensor
// streams captures; the monitor either self-calibrates on an initial window
// of traces (the user "knows how the circuit will operate", Sec. III-B) or
// starts from a pre-fitted evaluator (io::load_calibration — cold start in
// O(load) instead of O(captures + PCA fit)), then scores every subsequent
// capture and raises an alarm after a debounced run of anomalies. "Runtime"
// in the paper's sense: evaluation happens while the system operates, not
// instantaneously per trace.
//
// The hot path is streaming-grade: captures land in a fixed-capacity
// TraceRing, per-trace detectors score through reusable ScoreScratch
// buffers, and the spectral pass runs through a cached SpectrumAnalyzer —
// after one warm-up window, a push performs zero heap allocations. Per-trace
// scores stay bit-identical to the copying Detector::score() path.
//
// The spectral pass is incremental by default (Options::incremental_spectral):
// each push computes the incoming trace's amplitude spectrum once (one
// half-size real-split FFT), caches it in the ring, and updates a running
// per-bin sum, so the window-boundary pass is an O(bins) mean + classify
// instead of W FFTs — flattening the push-latency tail from ~450x p50 to
// within ~10x. Scores match the batch path (incremental_spectral = false,
// which matches SpectralDetector::analyze() to floating-point rounding) to
// rounding: anomaly kinds, bins, states and alarm sequences are identical
// because classification is tolerance-based, and at a drift-bounding rebuild
// (every spectral_rebuild_every incremental updates) the accumulator is
// re-summed bit-exactly from the cached spectra. MonitorStats and the
// drainable event log expose what the loop did without perturbing it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>

#include "core/evaluator.hpp"
#include "core/ring.hpp"
#include "core/trace.hpp"
#include "util/latency.hpp"

namespace emts::core {

enum class MonitorState { kCalibrating, kMonitoring, kAlarm };

/// Structured happenings on the monitoring loop, drainable via
/// RuntimeMonitor::drain_events(). `value` is kind-specific (see each kind).
enum class MonitorEventKind : std::uint8_t {
  kCalibrated,             // value = calibration traces consumed
  kPerTraceAnomaly,        // value = offending per-trace score
  kSpectralPass,           // value = window size analyzed
  kWindowedAnomaly,        // value = strongest spectral ratio (0 if non-spectral)
  kAlarmLatched,           // value = consecutive anomalies at latch time
  kAlarmAcknowledged,      // value = traces seen while latched
  kTraceRejectedShape,     // value = offending sample count
  kTraceRejectedNonFinite  // value = index of the first non-finite sample
};

struct MonitorEvent {
  MonitorEventKind kind{};
  std::uint64_t trace_index = 0;  // traces_seen() when the event fired
  double value = 0.0;
};

const char* monitor_event_label(MonitorEventKind kind);

/// Counters and latency histograms of one monitor's lifetime. Updated on
/// every push with O(1) allocation-free work.
struct MonitorStats {
  std::uint64_t traces_ingested = 0;      // every push, any state
  std::uint64_t traces_rejected = 0;      // pushes refused by the input gate
  std::uint64_t calibration_captures = 0; // pushes consumed while calibrating
  std::uint64_t scored_captures = 0;      // pushes scored by the detectors
  std::uint64_t per_trace_anomalies = 0;  // pushes with a per-trace exceedance
  std::uint64_t spectral_passes = 0;      // completed windowed analyses
  std::uint64_t windowed_anomalies = 0;   // passes that flagged the window
  std::uint64_t spectral_recomputes = 0;  // full mean-spectrum recomputes
                                          // (batch passes / drift rebuilds)
  std::uint64_t spectral_incremental_updates = 0;  // per-push accumulator adds
  std::uint64_t alarms_latched = 0;
  std::uint64_t alarms_acknowledged = 0;
  std::uint64_t events_dropped = 0;       // event-log overwrites (ring full)
  util::LatencyHistogram push_latency;     // wall time of each push
  util::LatencyHistogram spectral_latency; // wall time of each windowed pass
};

/// Complete image of one monitor's mutable state — everything push() can
/// change, and nothing it cannot (the fitted evaluator travels separately as
/// an EMCA artifact; scratch buffers and cached FFT plans are value-neutral
/// and rebuilt on construction). A monitor restored from an image continues
/// its stream with bit-identical scores, states, stats and events to one
/// that was never interrupted (io::write_monitor_state serializes it).
struct MonitorStateImage {
  // Option/stream mirrors: restore_state() refuses an image captured under
  // different options — a different spectral window or debounce would make
  // the restored stream diverge silently.
  double sample_rate = 0.0;
  std::uint64_t calibration_traces = 0;
  std::uint64_t alarm_debounce = 0;
  std::uint64_t spectral_window = 0;
  std::uint64_t event_log_capacity = 0;
  bool incremental_spectral = true;
  std::uint64_t spectral_rebuild_every = 4096;

  MonitorState state = MonitorState::kCalibrating;
  std::uint64_t traces_seen = 0;
  std::uint64_t expected_length = 0;    // 0 until the first accepted capture
  std::uint64_t consecutive_anomalies = 0;
  std::uint64_t alarm_latched_at = 0;
  std::optional<double> last_score;
  std::optional<SpectralReport> last_spectral;
  std::vector<Trace> calibration;       // pending self-calibration captures
  std::vector<Trace> window;            // spectral-window ring, oldest first
  std::uint64_t window_total_pushed = 0;
  // Incremental spectral accumulator: the running per-bin sum over `window`
  // plus its live count and drift counter. Restoring it verbatim (instead of
  // re-deriving it from the window) keeps the continued stream bit-identical
  // to the uninterrupted one even mid-drift.
  std::uint64_t spectral_count = 0;
  std::uint64_t spectral_updates_since_rebuild = 0;
  std::vector<double> spectral_sum;
  MonitorStats stats;                   // counters + latency histograms
  std::vector<MonitorEvent> events;     // buffered event log, oldest first
};

class RuntimeMonitor {
 public:
  struct Options {
    std::size_t calibration_traces = 64;
    // Consecutive anomalous captures required to latch the alarm: debounces
    // the occasional golden capture beyond EDth.
    std::size_t alarm_debounce = 3;
    // Re-run the windowed (spectral) checks every this many monitored
    // captures, over the most recent window of traces.
    std::size_t spectral_window = 16;
    // Capacity of the structured event log (a preallocated ring; the oldest
    // entry is overwritten on overflow and counted in events_dropped).
    // 0 disables event capture entirely.
    std::size_t event_log_capacity = 256;
    // Maintain the windowed mean spectrum incrementally (one FFT per push,
    // O(bins) at the boundary) instead of recomputing the whole window's
    // FFTs at the boundary. Scores match the batch path to floating-point
    // rounding; see the class comment.
    bool incremental_spectral = true;
    // Exact-rebuild cadence of the incremental accumulator, measured in
    // incremental updates since the last rebuild — bounds floating-point
    // drift. Must be >= 1; 1 rebuilds at every window boundary.
    std::size_t spectral_rebuild_every = 4096;
    TrustEvaluator::Options evaluator{};
  };

  /// Self-calibrating monitor: the first `calibration_traces` pushes fit the
  /// detector stack. `sample_rate` of the incoming captures (Hz).
  explicit RuntimeMonitor(double sample_rate);  // default options
  RuntimeMonitor(double sample_rate, const Options& options);

  /// Pre-fitted monitor: starts monitoring immediately with zero calibration
  /// captures. The evaluator's calibration sample rate must match.
  RuntimeMonitor(double sample_rate, TrustEvaluator evaluator);
  RuntimeMonitor(double sample_rate, TrustEvaluator evaluator, const Options& options);

  /// A monitor is a relocatable value: every member owns its storage by value
  /// (rings, scratch buffers, cached FFT plans are all vector-backed with no
  /// self-references), so a moved-to monitor continues its stream with
  /// bit-identical scores. Copying is disabled — a monitor is the identity of
  /// one capture stream, and a fleet session must never fork it silently.
  RuntimeMonitor(RuntimeMonitor&&) noexcept = default;
  RuntimeMonitor& operator=(RuntimeMonitor&&) noexcept = default;
  RuntimeMonitor(const RuntimeMonitor&) = delete;
  RuntimeMonitor& operator=(const RuntimeMonitor&) = delete;

  /// Feeds one capture; returns the state after ingesting it.
  ///
  /// Input gate: the first accepted capture pins the stream's trace length
  /// (a pre-fitted evaluator additionally vets that length against its
  /// fitted feature shape). A later push whose sample count differs, or any
  /// push containing a non-finite sample, is *rejected* instead of flowing
  /// into the preprocessor: the push counts in traces_ingested and
  /// traces_rejected, records a kTraceRejected* event, perturbs no detector
  /// state, and returns the current state. Only an empty trace throws.
  MonitorState push(const Trace& trace);

  /// Feeds a whole capture batch through the same hot path. State
  /// transitions, scores, stats and events are identical to pushing each
  /// trace individually, in order. The batch's sample rate must match the
  /// monitor's. Returns the state after the last trace.
  MonitorState push_batch(const TraceSet& batch);

  MonitorState state() const { return state_; }
  std::size_t traces_seen() const { return traces_seen_; }

  /// Sample rate of this monitor's capture stream (Hz). Immutable after
  /// construction, so safe to read concurrently with pushes.
  double sample_rate() const { return sample_rate_; }

  /// Captures every piece of mutable loop state into a transportable image.
  /// The fitted evaluator is NOT part of the image — persist it separately
  /// (io::save_calibration round-trips it bit-identically) and hand it to
  /// the monitor the image is restored into.
  MonitorStateImage export_state() const;

  /// Reinstates an exported image onto a freshly constructed monitor. The
  /// target must be untouched (zero pushes), built with the same options and
  /// sample rate the image mirrors, and hold an evaluator iff the image is
  /// past calibration. After restore, the monitor's observable state is
  /// exactly the exporter's, and every subsequent push produces bit-identical
  /// scores, transitions, stats and events to the uninterrupted stream.
  /// Throws precondition_error on any mismatch.
  void restore_state(const MonitorStateImage& image);

  /// Sample count every capture on this stream must have; 0 until the first
  /// capture is accepted.
  std::size_t expected_trace_length() const { return expected_length_; }

  /// Score of the most recent monitored capture under the first per-trace
  /// detector (the Euclidean stage in the default stack).
  std::optional<double> last_score() const { return last_score_; }

  /// The detector stack, once calibration completes (immediately for a
  /// pre-fitted monitor).
  const TrustEvaluator* evaluator() const {
    return evaluator_.has_value() ? &*evaluator_ : nullptr;
  }

  /// Most recent spectral report (if a spectral window completed).
  const std::optional<SpectralReport>& last_spectral() const { return last_spectral_; }

  /// Lifetime counters and latency histograms.
  const MonitorStats& stats() const { return stats_; }

  /// Moves the buffered events into `out` (appended, oldest first) and
  /// clears the log. Returns the number of events drained.
  std::size_t drain_events(std::vector<MonitorEvent>& out);
  std::vector<MonitorEvent> drain_events();

  /// Invoked exactly once when the alarm latches.
  void on_alarm(std::function<void(const TrustReport&)> callback);

  /// Clears a latched alarm and resumes monitoring (operator action after
  /// the "further investigations" the paper mentions). Fully re-arms the
  /// loop: the debounce run, the partially filled spectral window and the
  /// last score / spectral report are all reset, so stale pre-alarm state
  /// can never re-latch the alarm on a clean stream.
  void acknowledge_alarm();

 private:
  void validate_options() const;
  /// Non-throwing input gate; records the rejection event when it fails.
  bool admit_trace(const Trace& trace);
  void finish_calibration();
  /// Builds the per-stream scratches once an evaluator exists.
  void bind_evaluator();
  /// True when the incremental spectral path drives the windowed pass.
  bool incremental_spectral_active() const;
  MonitorState ingest(const Trace& trace);
  void run_windowed_pass(bool& windowed_anomaly);
  void record_event(MonitorEventKind kind, double value);

  Options options_;
  double sample_rate_;
  MonitorState state_ = MonitorState::kCalibrating;
  TraceSet calibration_;
  TraceRing window_;
  TraceSet window_set_;  // reused snapshot for generic windowed detectors
  std::optional<TrustEvaluator> evaluator_;
  // Cached spectral stage of the bound evaluator (nullptr when the stack has
  // none). Points at the evaluator's heap-owned detector, so it stays valid
  // across monitor moves.
  const SpectralDetector* spectral_ = nullptr;
  ScoreScratch scratch_;
  std::optional<SpectralDetector::SpectralScratch> spectral_scratch_;
  std::optional<double> last_score_;
  std::optional<SpectralReport> last_spectral_;
  std::size_t traces_seen_ = 0;
  std::size_t expected_length_ = 0;  // pinned by the first accepted capture
  std::size_t consecutive_anomalies_ = 0;
  std::uint64_t alarm_latched_at_ = 0;  // traces_seen_ when the alarm latched
  std::function<void(const TrustReport&)> alarm_callback_;
  MonitorStats stats_;
  std::vector<MonitorEvent> events_;  // preallocated ring
  std::size_t event_head_ = 0;        // next write position
  std::size_t event_count_ = 0;
};

const char* monitor_state_label(MonitorState state);

}  // namespace emts::core
