#include "core/detector.hpp"

#include <algorithm>
#include <sstream>

#include "core/euclidean.hpp"
#include "core/spectral.hpp"
#include "util/assert.hpp"

namespace emts::core {

bool Detector::is_anomalous(const Trace& trace) const { return score(trace) > threshold(); }

DetectorReport Detector::evaluate_set(const TraceSet& suspect, double alarm_fraction) const {
  EMTS_REQUIRE(!suspect.empty(), "evaluate_set needs traces");
  DetectorReport report;
  report.name = name();
  report.threshold = threshold();

  double sum = 0.0;
  std::size_t beyond = 0;
  for (const Trace& trace : suspect.traces) {
    const double s = score(trace);
    sum += s;
    report.max_score = std::max(report.max_score, s);
    if (s > report.threshold) ++beyond;
  }
  const auto n = static_cast<double>(suspect.size());
  report.mean_score = sum / n;
  report.anomalous_fraction = static_cast<double>(beyond) / n;
  report.alarm = report.anomalous_fraction > alarm_fraction;

  std::ostringstream detail;
  detail << "mean " << report.mean_score << " (threshold " << report.threshold << "), "
         << 100.0 * report.anomalous_fraction << "% beyond";
  report.detail = detail.str();
  return report;
}

std::vector<double> Detector::score_all(const TraceSet& set) const {
  std::vector<double> out;
  out.reserve(set.size());
  for (const Trace& trace : set.traces) out.push_back(score(trace));
  return out;
}

DetectorRegistry& DetectorRegistry::instance() {
  static DetectorRegistry registry;
  return registry;
}

DetectorRegistry::DetectorRegistry() {
  entries_["euclidean"] = Entry{
      [](const TraceSet& golden) {
        return std::make_shared<const EuclideanDetector>(EuclideanDetector::calibrate(golden));
      },
      [](std::istream& in) {
        return std::make_shared<const EuclideanDetector>(EuclideanDetector::load(in));
      }};
  entries_["spectral"] = Entry{
      [](const TraceSet& golden) {
        return std::make_shared<const SpectralDetector>(SpectralDetector::calibrate(golden));
      },
      [](std::istream& in) {
        return std::make_shared<const SpectralDetector>(SpectralDetector::load(in));
      }};
}

void DetectorRegistry::add(const std::string& name, CalibrateFn calibrate, LoadFn load) {
  EMTS_REQUIRE(!name.empty(), "detector name must be non-empty");
  EMTS_REQUIRE(calibrate != nullptr && load != nullptr, "detector factories must be callable");
  const std::lock_guard<std::mutex> lock{mutex_};
  entries_[name] = Entry{std::move(calibrate), std::move(load)};
}

bool DetectorRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return entries_.count(name) != 0;
}

std::vector<std::string> DetectorRegistry::names() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

std::shared_ptr<const Detector> DetectorRegistry::calibrate(const std::string& name,
                                                            const TraceSet& golden) const {
  CalibrateFn fn;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto it = entries_.find(name);
    EMTS_REQUIRE(it != entries_.end(), "unknown detector '" + name + "' (not registered)");
    fn = it->second.calibrate;
  }
  auto detector = fn(golden);
  EMTS_REQUIRE(detector != nullptr, "detector factory for '" + name + "' returned null");
  return detector;
}

std::shared_ptr<const Detector> DetectorRegistry::load(const std::string& name,
                                                       std::istream& in) const {
  LoadFn fn;
  {
    const std::lock_guard<std::mutex> lock{mutex_};
    const auto it = entries_.find(name);
    EMTS_REQUIRE(it != entries_.end(), "unknown detector '" + name + "' (not registered)");
    fn = it->second.load;
  }
  auto detector = fn(in);
  EMTS_REQUIRE(detector != nullptr, "detector loader for '" + name + "' returned null");
  return detector;
}

}  // namespace emts::core
