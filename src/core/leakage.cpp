#include "core/leakage.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace emts::core {

LeakageReport tvla(const TraceSet& fixed_input, const TraceSet& random_input,
                   double threshold) {
  EMTS_REQUIRE(fixed_input.size() >= 2 && random_input.size() >= 2,
               "TVLA needs >= 2 traces per population");
  fixed_input.validate();
  random_input.validate();
  EMTS_REQUIRE(fixed_input.trace_length() == random_input.trace_length(),
               "TVLA populations must share the trace length");
  EMTS_REQUIRE(threshold > 0.0, "TVLA threshold must be positive");

  const std::size_t n = fixed_input.trace_length();
  const auto na = static_cast<double>(fixed_input.size());
  const auto nb = static_cast<double>(random_input.size());

  // Single pass per population: accumulate per-sample sums and sum-squares.
  std::vector<double> sum_a(n, 0.0), sq_a(n, 0.0), sum_b(n, 0.0), sq_b(n, 0.0);
  for (const Trace& t : fixed_input.traces) {
    for (std::size_t i = 0; i < n; ++i) {
      sum_a[i] += t[i];
      sq_a[i] += t[i] * t[i];
    }
  }
  for (const Trace& t : random_input.traces) {
    for (std::size_t i = 0; i < n; ++i) {
      sum_b[i] += t[i];
      sq_b[i] += t[i] * t[i];
    }
  }

  LeakageReport report;
  report.threshold = threshold;
  report.t_statistic.resize(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double mean_a = sum_a[i] / na;
    const double mean_b = sum_b[i] / nb;
    const double var_a = (sq_a[i] - na * mean_a * mean_a) / (na - 1.0);
    const double var_b = (sq_b[i] - nb * mean_b * mean_b) / (nb - 1.0);
    const double denom = var_a / na + var_b / nb;
    const double t = denom > 0.0 ? (mean_a - mean_b) / std::sqrt(denom) : 0.0;
    report.t_statistic[i] = t;
    if (std::abs(t) > report.max_abs_t) {
      report.max_abs_t = std::abs(t);
      report.max_abs_t_sample = i;
    }
    if (std::abs(t) > threshold) ++report.leaky_samples;
  }
  return report;
}

}  // namespace emts::core
