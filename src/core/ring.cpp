#include "core/ring.hpp"

#include "util/assert.hpp"

namespace emts::core {

TraceRing::TraceRing(std::size_t capacity) : slots_(capacity) {
  EMTS_REQUIRE(capacity >= 1, "trace ring capacity must be >= 1");
}

void TraceRing::push(const Trace& trace) {
  // assign() reuses the slot's buffer when capacities match — the steady
  // state once every slot has seen one trace of the stream's length.
  slots_[head_].assign(trace.begin(), trace.end());
  head_ = (head_ + 1) % slots_.size();
  if (count_ < slots_.size()) ++count_;
  ++total_pushed_;
}

const Trace& TraceRing::oldest(std::size_t i) const {
  EMTS_REQUIRE(i < count_, "trace ring index out of range");
  const std::size_t cap = slots_.size();
  return slots_[(head_ + cap - count_ + i) % cap];
}

const Trace& TraceRing::newest() const {
  EMTS_REQUIRE(count_ > 0, "trace ring is empty");
  return oldest(count_ - 1);
}

void TraceRing::clear() {
  head_ = 0;
  count_ = 0;
}

void TraceRing::restore_total_pushed(std::uint64_t total) {
  EMTS_REQUIRE(total >= total_pushed_, "trace ring lifetime counter cannot run backward");
  total_pushed_ = total;
}

}  // namespace emts::core
