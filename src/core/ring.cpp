#include "core/ring.hpp"

#include "util/assert.hpp"

namespace emts::core {

TraceRing::TraceRing(std::size_t capacity) : slots_(capacity) {
  EMTS_REQUIRE(capacity >= 1, "trace ring capacity must be >= 1");
}

void TraceRing::push(const Trace& trace) {
  // assign() reuses the slot's buffer when capacities match — the steady
  // state once every slot has seen one trace of the stream's length.
  slots_[head_].assign(trace.begin(), trace.end());
  head_ = (head_ + 1) % slots_.size();
  if (count_ < slots_.size()) ++count_;
  ++total_pushed_;
}

std::size_t TraceRing::slot_index(std::size_t i) const {
  const std::size_t cap = slots_.size();
  return (head_ + cap - count_ + i) % cap;
}

const Trace& TraceRing::oldest(std::size_t i) const {
  EMTS_REQUIRE(i < count_, "trace ring index out of range");
  return slots_[slot_index(i)];
}

const Trace& TraceRing::newest() const {
  EMTS_REQUIRE(count_ > 0, "trace ring is empty");
  return oldest(count_ - 1);
}

void TraceRing::clear() {
  head_ = 0;
  count_ = 0;
}

void TraceRing::restore_total_pushed(std::uint64_t total) {
  EMTS_REQUIRE(total >= total_pushed_, "trace ring lifetime counter cannot run backward");
  total_pushed_ = total;
}

void TraceRing::enable_spectrum_cache(std::size_t bins) {
  EMTS_REQUIRE(bins >= 1, "spectrum cache requires >= 1 bin");
  if (spectra_.size() == slots_.size() && !spectra_.empty() && spectra_[0].size() == bins) {
    return;  // already enabled at this shape
  }
  spectra_.assign(slots_.size(), std::vector<double>(bins, 0.0));
}

std::vector<double>& TraceRing::newest_spectrum() {
  EMTS_REQUIRE(count_ > 0, "trace ring is empty");
  EMTS_REQUIRE(spectrum_cache_enabled(), "spectrum cache not enabled");
  return spectra_[slot_index(count_ - 1)];
}

const std::vector<double>& TraceRing::oldest_spectrum(std::size_t i) const {
  EMTS_REQUIRE(i < count_, "trace ring index out of range");
  EMTS_REQUIRE(spectrum_cache_enabled(), "spectrum cache not enabled");
  return spectra_[slot_index(i)];
}

}  // namespace emts::core
