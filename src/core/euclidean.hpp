// Euclidean-distance Trojan detector (paper Sec. III-D):
//
//   "Euclidean distance is an effective similarity metric ... The hardware
//    Trojan can be identified when the differences exceed the threshold
//    value. The threshold value is defined to be the maximum Euclidean
//    distance (EDth) among the data of Trojan-free design"   (Eq. 1).
//
// Calibration fits the preprocessing + PCA model on golden (Trojan-free)
// traces, stores their projections, and sets EDth by Eq. 1. Scoring projects
// a suspect trace and measures its distance to the golden centroid; the
// Eq. 1 threshold then separates "within golden spread" from "anomalous".
// Registered in the DetectorRegistry as "euclidean"; the fitted model
// (preprocessor params + PCA + golden projections + EDth) serializes into
// the EMCA calibration artifact and reloads bit-identically.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/preprocess.hpp"
#include "core/trace.hpp"
#include "stats/pca.hpp"

namespace emts::core {

class EuclideanDetector : public Detector {
 public:
  struct Options {
    Preprocessor::Options preprocess{};
    std::size_t pca_components = 8;
    // Include the PCA residual (Q-statistic) in the distance. The golden
    // traces only span benign variation; a Trojan's signature is typically
    // *orthogonal* to that subspace, so pure projection would discard it.
    // With the residual term the score equals the full feature-space
    // distance, decomposed into in-model and out-of-model energy.
    bool include_residual = true;
  };

  /// Fits on golden traces. Requires >= 3 traces.
  static EuclideanDetector calibrate(const TraceSet& golden, const Options& options);
  static EuclideanDetector calibrate(const TraceSet& golden);  // default options

  std::string name() const override { return "euclidean"; }
  std::string describe() const override;

  /// Eq. 1 threshold: max pairwise distance among golden projections.
  double threshold() const override { return threshold_; }

  /// Distance of a suspect trace to the golden centroid in PCA space.
  double score(const Trace& trace) const override;

  /// score() through caller-owned buffers: bit-identical values, zero heap
  /// allocations once the scratch is warm for the stream's trace length.
  double score_buffered(const Trace& trace, ScoreScratch& scratch) const override;

  /// Serializes the full fitted model; load() restores a detector whose
  /// score()/threshold() are bit-identical to this one.
  void save(std::ostream& out) const override;
  static EuclideanDetector load(std::istream& in);

  /// Distance between the golden centroid and the centroid of `suspect`
  /// traces — the per-Trojan "Euclidean distance" numbers the paper reports
  /// in Sec. IV-C (0.27 / 0.25 / 0.05 / 0.28).
  double population_distance(const TraceSet& suspect) const;

  const stats::PcaModel& pca() const { return pca_; }
  const Preprocessor& preprocessor() const { return preprocessor_; }
  std::size_t calibration_size() const { return golden_projections_.size(); }

 private:
  EuclideanDetector(Preprocessor preprocessor, stats::PcaModel pca, bool include_residual);

  /// Projection + (optional) residual magnitude of one feature vector.
  std::vector<double> embed(const std::vector<double>& features) const;

  Preprocessor preprocessor_;
  stats::PcaModel pca_;
  bool include_residual_ = true;
  // Embeddings: PCA projection, plus one extra coordinate holding the
  // out-of-model residual norm when include_residual is on.
  std::vector<std::vector<double>> golden_projections_;
  std::vector<double> golden_centroid_;
  double threshold_ = 0.0;
};

}  // namespace emts::core
