// Trace containers shared across the trust-evaluation pipeline. A Trace is
// one recorded sensor window; a TraceSet is an acquisition campaign with its
// sampling metadata. The detectors consume these and never see the simulator
// — on a real deployment they would be filled from the oscilloscope instead.
#pragma once

#include <cstddef>
#include <vector>

namespace emts::core {

/// One recorded sensor capture (volts per sample).
using Trace = std::vector<double>;

/// A set of equal-length traces plus acquisition metadata.
struct TraceSet {
  std::vector<Trace> traces;
  double sample_rate = 0.0;  // Hz

  std::size_t size() const { return traces.size(); }
  bool empty() const { return traces.empty(); }
  std::size_t trace_length() const { return traces.empty() ? 0 : traces.front().size(); }

  void add(Trace trace);

  /// Validates the invariant that all traces share one length.
  void validate() const;

  /// Element-wise mean trace; requires a non-empty set.
  Trace mean_trace() const;
};

}  // namespace emts::core
