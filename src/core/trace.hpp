// Trace containers shared across the trust-evaluation pipeline. A Trace is
// one recorded sensor window; a TraceSet is an acquisition campaign with its
// sampling metadata. The detectors consume these and never see the simulator
// — on a real deployment they would be filled from the oscilloscope instead.
#pragma once

#include <cstddef>
#include <vector>

namespace emts::core {

/// One recorded sensor capture (volts per sample).
using Trace = std::vector<double>;

/// A set of equal-length traces plus acquisition metadata.
struct TraceSet {
  std::vector<Trace> traces;
  double sample_rate = 0.0;  // Hz

  std::size_t size() const { return traces.size(); }
  bool empty() const { return traces.empty(); }
  std::size_t trace_length() const { return traces.empty() ? 0 : traces.front().size(); }

  void add(Trace trace);

  /// Pre-allocates room for `n` additional traces.
  void reserve(std::size_t n);

  /// Moves a whole batch in at once (the parallel capture engine produces
  /// traces slot-by-slot and hands them over in one append). Validates the
  /// shared-length invariant against the batch and any existing traces.
  void add_all(std::vector<Trace> batch);

  /// Validates the invariant that all traces share one length.
  void validate() const;

  /// Element-wise mean trace; requires a non-empty set.
  Trace mean_trace() const;
};

}  // namespace emts::core
