// Frequency-domain Trojan detector (paper Sec. III-E and IV-D):
//
//   "the circuits ... will generate specific EM spectrum, which will
//    concentrate around the operating frequency ... accompanying certain
//    harmonic frequency. When the A2-style Trojans are being triggered, the
//    fast flipping signals will result in extra frequency spots or increased
//    amplitude in the spectrum."
//
// Calibration records the golden mean spectrum and its significant spots.
// Analysis of suspect traces reports two anomaly kinds, exactly the paper's
// T = g / T != g case split:
//   kNewSpot        — a peak at a frequency the golden spectrum is quiet at;
//   kAmplifiedSpot  — a known spot whose magnitude grew beyond tolerance.
//
// Registered in the DetectorRegistry as "spectral". As a Detector it is
// *windowed*: its natural grain is a whole capture window (mean spectrum),
// so evaluate_set() analyzes the set at once; score(trace) is the strongest
// anomaly ratio of that single trace (0 when clean) against a threshold of 0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/ring.hpp"
#include "core/trace.hpp"
#include "dsp/spectrum.hpp"

namespace emts::core {

enum class SpectralAnomalyKind { kNewSpot, kAmplifiedSpot };

struct SpectralAnomaly {
  SpectralAnomalyKind kind;
  double frequency_hz = 0.0;
  double golden_amplitude = 0.0;
  double suspect_amplitude = 0.0;

  /// Amplification factor (suspect / max(golden, floor)).
  double ratio = 0.0;
};

struct SpectralReport {
  std::vector<SpectralAnomaly> anomalies;  // strongest first
  bool anomalous() const { return !anomalies.empty(); }
};

class SpectralDetector : public Detector {
 public:
  struct Options {
    dsp::SpectrumOptions spectrum{};
    // A golden spot = local max above noise_floor_factor x median amplitude.
    double noise_floor_factor = 6.0;
    // New spots must also clear this factor over the golden noise floor.
    double new_spot_factor = 6.0;
    // Known spots flag as amplified beyond this ratio.
    double amplification_ratio = 1.6;
    // Frequency tolerance (in bins) when matching suspect peaks to golden
    // spots.
    std::size_t match_bins = 2;
  };

  /// Fits the golden reference spectrum. Requires >= 1 trace.
  static SpectralDetector calibrate(const TraceSet& golden, const Options& options);
  static SpectralDetector calibrate(const TraceSet& golden);  // default options

  std::string name() const override { return "spectral"; }
  std::string describe() const override;
  bool windowed() const override { return true; }

  /// Strongest anomaly ratio of one trace; 0 when the trace is clean, so any
  /// positive score against the 0 threshold means "anomalous".
  double score(const Trace& trace) const override;
  double threshold() const override { return 0.0; }

  /// Whole-window verdict from one mean-spectrum analysis.
  DetectorReport evaluate_set(const TraceSet& suspect, double alarm_fraction) const override;

  /// Analyzes a set of suspect traces (averaged spectrum).
  SpectralReport analyze(const TraceSet& suspect) const;

  /// Analyzes one trace.
  SpectralReport analyze(const Trace& trace) const;

  /// Caller-owned working state for the allocation-free analysis path: the
  /// cached spectrum analyzer plus every scratch buffer one spectral pass
  /// needs. Create via make_scratch(); one scratch serves one stream.
  struct SpectralScratch {
    explicit SpectralScratch(const dsp::SpectrumOptions& options) : analyzer{options} {}

    dsp::SpectrumAnalyzer analyzer;
    std::vector<dsp::SpectralPeak> peaks;
    std::vector<double> floor_scratch;  // amplitude copy for the median
    SpectralReport report;
  };

  /// Scratch wired to this detector's spectrum options.
  SpectralScratch make_scratch() const { return SpectralScratch{options_.spectrum}; }

  /// analyze() over a capture ring through caller-owned buffers. Traces are
  /// consumed oldest-first (arrival order), matching a TraceSet holding the
  /// same traces. The mean spectrum rides the two-for-one packed real FFT
  /// (half the transforms of analyze()), so amplitudes match analyze() on
  /// that set to floating-point rounding — anomaly kinds, bins and verdicts
  /// agree because classification is tolerance-based. The returned
  /// reference stays valid until the next call with this scratch.
  /// Zero heap allocations once the scratch is warm for the stream's trace
  /// length. `sample_rate` of the ring's captures must match calibration.
  const SpectralReport& analyze_reusing(const TraceRing& window, double sample_rate,
                                        SpectralScratch& scratch) const;

  /// Incremental path, step 1 — call once right after window.push(trace):
  /// computes the newest trace's amplitude spectrum (one half-size real-split
  /// FFT), caches it in the ring's per-slot spectrum cache (enabled here on
  /// first use), and adds it into the scratch analyzer's running sum. Zero
  /// heap allocations once scratch and ring cache are warm.
  void stream_observe(TraceRing& window, double sample_rate, SpectralScratch& scratch) const;

  /// Incremental path, step 2 — call at the window boundary instead of
  /// analyze_reusing(): classifies the running mean spectrum against the
  /// golden spots. When the accumulator has absorbed >= rebuild_every
  /// incremental updates since the last exact rebuild, the sum is first
  /// rebuilt bit-exactly from the cached per-slot spectra (bounding
  /// floating-point drift) and `rebuilt` is set. Per-push amplitudes match
  /// the batch path to floating-point rounding, so anomaly kinds, bins and
  /// verdicts agree with analyze_reusing(); at a rebuild point the mean is
  /// bit-identical to a fresh accumulation of the cached spectra.
  const SpectralReport& stream_finish(const TraceRing& window, double sample_rate,
                                      SpectralScratch& scratch, std::uint64_t rebuild_every,
                                      bool& rebuilt) const;

  /// Folds a typed spectral report into the generic stage form.
  DetectorReport to_stage(const SpectralReport& report) const;

  /// Serializes the golden spectrum, spots, noise floor and options; load()
  /// restores a detector whose analyze() reports are bit-identical.
  void save(std::ostream& out) const override;
  static SpectralDetector load(std::istream& in);

  const dsp::Spectrum& golden_spectrum() const { return golden_; }
  const std::vector<dsp::SpectralPeak>& golden_spots() const { return golden_spots_; }
  double golden_noise_floor() const { return noise_floor_; }
  double sample_rate() const { return sample_rate_; }
  const Options& options() const { return options_; }

 private:
  SpectralDetector(const Options& options, dsp::Spectrum golden, double sample_rate);

  /// Classifies suspect peaks against the golden spots into `report`
  /// (cleared first), sorted strongest-ratio first.
  void match_peaks(const std::vector<dsp::SpectralPeak>& peaks, SpectralReport& report) const;

  /// Shared classification tail of analyze_reusing()/stream_finish(): floor
  /// estimate, peak finding and golden-spot matching over a mean spectrum.
  const SpectralReport& classify_mean(const dsp::Spectrum& spectrum,
                                      SpectralScratch& scratch) const;

  Options options_;
  dsp::Spectrum golden_;
  std::vector<dsp::SpectralPeak> golden_spots_;
  double noise_floor_ = 0.0;
  double sample_rate_ = 0.0;
};

}  // namespace emts::core
