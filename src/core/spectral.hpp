// Frequency-domain Trojan detector (paper Sec. III-E and IV-D):
//
//   "the circuits ... will generate specific EM spectrum, which will
//    concentrate around the operating frequency ... accompanying certain
//    harmonic frequency. When the A2-style Trojans are being triggered, the
//    fast flipping signals will result in extra frequency spots or increased
//    amplitude in the spectrum."
//
// Calibration records the golden mean spectrum and its significant spots.
// Analysis of suspect traces reports two anomaly kinds, exactly the paper's
// T = g / T != g case split:
//   kNewSpot        — a peak at a frequency the golden spectrum is quiet at;
//   kAmplifiedSpot  — a known spot whose magnitude grew beyond tolerance.
#pragma once

#include <cstddef>
#include <vector>

#include "core/trace.hpp"
#include "dsp/spectrum.hpp"

namespace emts::core {

enum class SpectralAnomalyKind { kNewSpot, kAmplifiedSpot };

struct SpectralAnomaly {
  SpectralAnomalyKind kind;
  double frequency_hz = 0.0;
  double golden_amplitude = 0.0;
  double suspect_amplitude = 0.0;

  /// Amplification factor (suspect / max(golden, floor)).
  double ratio = 0.0;
};

struct SpectralReport {
  std::vector<SpectralAnomaly> anomalies;  // strongest first
  bool anomalous() const { return !anomalies.empty(); }
};

class SpectralDetector {
 public:
  struct Options {
    dsp::SpectrumOptions spectrum{};
    // A golden spot = local max above noise_floor_factor x median amplitude.
    double noise_floor_factor = 6.0;
    // New spots must also clear this factor over the golden noise floor.
    double new_spot_factor = 6.0;
    // Known spots flag as amplified beyond this ratio.
    double amplification_ratio = 1.6;
    // Frequency tolerance (in bins) when matching suspect peaks to golden
    // spots.
    std::size_t match_bins = 2;
  };

  /// Fits the golden reference spectrum. Requires >= 1 trace.
  static SpectralDetector calibrate(const TraceSet& golden, const Options& options);
  static SpectralDetector calibrate(const TraceSet& golden);  // default options

  /// Analyzes a set of suspect traces (averaged spectrum).
  SpectralReport analyze(const TraceSet& suspect) const;

  /// Analyzes one trace.
  SpectralReport analyze(const Trace& trace) const;

  const dsp::Spectrum& golden_spectrum() const { return golden_; }
  const std::vector<dsp::SpectralPeak>& golden_spots() const { return golden_spots_; }
  double golden_noise_floor() const { return noise_floor_; }

 private:
  SpectralDetector(const Options& options, dsp::Spectrum golden, double sample_rate);

  Options options_;
  dsp::Spectrum golden_;
  std::vector<dsp::SpectralPeak> golden_spots_;
  double noise_floor_ = 0.0;
  double sample_rate_ = 0.0;
};

}  // namespace emts::core
