#include "core/spectral.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "util/assert.hpp"

namespace emts::core {

SpectralDetector::SpectralDetector(const Options& options, dsp::Spectrum golden,
                                   double sample_rate)
    : options_{options}, golden_{std::move(golden)}, sample_rate_{sample_rate} {
  // Noise floor: median amplitude away from peaks is a robust estimate.
  noise_floor_ = stats::median(golden_.amplitude);
  if (noise_floor_ <= 0.0) {
    noise_floor_ = 1e-12;
  }
  golden_spots_ = dsp::find_peaks(golden_, options_.noise_floor_factor * noise_floor_);
}

SpectralDetector SpectralDetector::calibrate(const TraceSet& golden) {
  return calibrate(golden, Options{});
}

SpectralDetector SpectralDetector::calibrate(const TraceSet& golden, const Options& options) {
  EMTS_REQUIRE(!golden.empty(), "spectral calibration needs traces");
  golden.validate();
  dsp::Spectrum spectrum =
      dsp::mean_spectrum(golden.traces, golden.sample_rate, options.spectrum);
  return SpectralDetector{options, std::move(spectrum), golden.sample_rate};
}

SpectralReport SpectralDetector::analyze(const TraceSet& suspect) const {
  EMTS_REQUIRE(!suspect.empty(), "spectral analysis needs traces");
  suspect.validate();
  EMTS_REQUIRE(std::abs(suspect.sample_rate - sample_rate_) < 1e-6 * sample_rate_,
               "suspect sample rate differs from calibration");
  const dsp::Spectrum spectrum =
      dsp::mean_spectrum(suspect.traces, suspect.sample_rate, options_.spectrum);
  EMTS_REQUIRE(spectrum.size() == golden_.size(),
               "suspect trace length differs from calibration");

  SpectralReport report;
  // Peaks must clear the *suspect's own* floor as well as the golden floor:
  // a Trojan that merely lifts the broadband floor (spread-spectrum leaks
  // like T3) raises the median with it and creates no spot — exactly the
  // paper's observation that T3 evades the spectral method.
  const double floor_level = std::max(noise_floor_, stats::median(spectrum.amplitude));
  const auto suspect_peaks =
      dsp::find_peaks(spectrum, options_.new_spot_factor * floor_level);

  for (const dsp::SpectralPeak& peak : suspect_peaks) {
    // Match against a golden spot within the bin tolerance.
    const dsp::SpectralPeak* match = nullptr;
    for (const dsp::SpectralPeak& g : golden_spots_) {
      const auto delta = peak.bin > g.bin ? peak.bin - g.bin : g.bin - peak.bin;
      if (delta <= options_.match_bins) {
        match = &g;
        break;
      }
    }

    if (match == nullptr) {
      SpectralAnomaly anomaly;
      anomaly.kind = SpectralAnomalyKind::kNewSpot;
      anomaly.frequency_hz = peak.frequency;
      anomaly.golden_amplitude = golden_.amplitude[peak.bin];
      anomaly.suspect_amplitude = peak.amplitude;
      anomaly.ratio = peak.amplitude / std::max(anomaly.golden_amplitude, noise_floor_);
      report.anomalies.push_back(anomaly);
    } else if (peak.amplitude > options_.amplification_ratio * match->amplitude) {
      SpectralAnomaly anomaly;
      anomaly.kind = SpectralAnomalyKind::kAmplifiedSpot;
      anomaly.frequency_hz = peak.frequency;
      anomaly.golden_amplitude = match->amplitude;
      anomaly.suspect_amplitude = peak.amplitude;
      anomaly.ratio = peak.amplitude / match->amplitude;
      report.anomalies.push_back(anomaly);
    }
  }

  std::sort(report.anomalies.begin(), report.anomalies.end(),
            [](const SpectralAnomaly& a, const SpectralAnomaly& b) { return a.ratio > b.ratio; });
  return report;
}

SpectralReport SpectralDetector::analyze(const Trace& trace) const {
  TraceSet set;
  set.sample_rate = sample_rate_;
  set.add(trace);
  return analyze(set);
}

}  // namespace emts::core
