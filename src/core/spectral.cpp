#include "core/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "stats/descriptive.hpp"
#include "util/assert.hpp"
#include "util/binio.hpp"

namespace emts::core {

SpectralDetector::SpectralDetector(const Options& options, dsp::Spectrum golden,
                                   double sample_rate)
    : options_{options}, golden_{std::move(golden)}, sample_rate_{sample_rate} {
  // Noise floor: median amplitude away from peaks is a robust estimate.
  noise_floor_ = stats::median(golden_.amplitude);
  if (noise_floor_ <= 0.0) {
    noise_floor_ = 1e-12;
  }
  golden_spots_ = dsp::find_peaks(golden_, options_.noise_floor_factor * noise_floor_);
}

SpectralDetector SpectralDetector::calibrate(const TraceSet& golden) {
  return calibrate(golden, Options{});
}

SpectralDetector SpectralDetector::calibrate(const TraceSet& golden, const Options& options) {
  EMTS_REQUIRE(!golden.empty(), "spectral calibration needs traces");
  EMTS_REQUIRE(std::isfinite(golden.sample_rate) && golden.sample_rate > 0.0,
               "spectral calibration: sample rate must be finite and positive");
  golden.validate();
  dsp::Spectrum spectrum =
      dsp::mean_spectrum(golden.traces, golden.sample_rate, options.spectrum);
  return SpectralDetector{options, std::move(spectrum), golden.sample_rate};
}

SpectralReport SpectralDetector::analyze(const TraceSet& suspect) const {
  EMTS_REQUIRE(!suspect.empty(), "spectral analysis needs traces");
  suspect.validate();
  EMTS_REQUIRE(std::abs(suspect.sample_rate - sample_rate_) < 1e-6 * sample_rate_,
               "suspect sample rate differs from calibration");
  const dsp::Spectrum spectrum =
      dsp::mean_spectrum(suspect.traces, suspect.sample_rate, options_.spectrum);
  EMTS_REQUIRE(spectrum.size() == golden_.size(),
               "suspect trace length differs from calibration");

  SpectralReport report;
  // Peaks must clear the *suspect's own* floor as well as the golden floor:
  // a Trojan that merely lifts the broadband floor (spread-spectrum leaks
  // like T3) raises the median with it and creates no spot — exactly the
  // paper's observation that T3 evades the spectral method.
  const double floor_level = std::max(noise_floor_, stats::median(spectrum.amplitude));
  const auto suspect_peaks =
      dsp::find_peaks(spectrum, options_.new_spot_factor * floor_level);
  match_peaks(suspect_peaks, report);
  return report;
}

const SpectralReport& SpectralDetector::analyze_reusing(const TraceRing& window,
                                                        double sample_rate,
                                                        SpectralScratch& scratch) const {
  EMTS_REQUIRE(!window.empty(), "spectral analysis needs traces");
  EMTS_REQUIRE(std::abs(sample_rate - sample_rate_) < 1e-6 * sample_rate_,
               "suspect sample rate differs from calibration");

  // Streamed mean spectrum, oldest-first: the same accumulation order as
  // mean_spectrum over a TraceSet holding these traces, but packed two
  // traces per FFT — amplitudes agree with the copying analyze() path to
  // floating-point rounding.
  scratch.analyzer.begin(window.oldest(0).size(), sample_rate);
  for (std::size_t i = 0; i < window.size(); ++i) scratch.analyzer.add(window.oldest(i));
  const dsp::Spectrum& spectrum = scratch.analyzer.mean();
  return classify_mean(spectrum, scratch);
}

const SpectralReport& SpectralDetector::classify_mean(const dsp::Spectrum& spectrum,
                                                      SpectralScratch& scratch) const {
  EMTS_REQUIRE(spectrum.size() == golden_.size(),
               "suspect trace length differs from calibration");
  scratch.floor_scratch.assign(spectrum.amplitude.begin(), spectrum.amplitude.end());
  const double floor_level =
      std::max(noise_floor_, stats::median_in_place(scratch.floor_scratch));
  dsp::find_peaks_into(spectrum, options_.new_spot_factor * floor_level, scratch.peaks);
  match_peaks(scratch.peaks, scratch.report);
  return scratch.report;
}

void SpectralDetector::stream_observe(TraceRing& window, double sample_rate,
                                      SpectralScratch& scratch) const {
  EMTS_REQUIRE(!window.empty(), "stream_observe on an empty window");
  EMTS_REQUIRE(std::abs(sample_rate - sample_rate_) < 1e-6 * sample_rate_,
               "suspect sample rate differs from calibration");
  scratch.analyzer.ensure_stream(window.newest().size(), sample_rate);
  if (!window.spectrum_cache_enabled()) {
    window.enable_spectrum_cache(scratch.analyzer.stream_bins());
  }
  scratch.analyzer.stream_push(window.newest(), window.newest_spectrum());
}

const SpectralReport& SpectralDetector::stream_finish(const TraceRing& window,
                                                      double sample_rate,
                                                      SpectralScratch& scratch,
                                                      std::uint64_t rebuild_every,
                                                      bool& rebuilt) const {
  EMTS_REQUIRE(!window.empty(), "spectral analysis needs traces");
  EMTS_REQUIRE(std::abs(sample_rate - sample_rate_) < 1e-6 * sample_rate_,
               "suspect sample rate differs from calibration");
  EMTS_REQUIRE(rebuild_every >= 1, "rebuild cadence must be >= 1");
  EMTS_REQUIRE(scratch.analyzer.stream_count() == window.size(),
               "stream_finish: accumulator count diverged from the window");

  rebuilt = false;
  if (scratch.analyzer.stream_updates_since_rebuild() >= rebuild_every) {
    // Exact rebuild: re-sum the cached per-slot spectra in arrival order.
    // Incremental accumulation added the very same values in the very same
    // order (tumbling windows never retire), so this is bit-identical to the
    // running sum unless sliding retirement has introduced drift — either
    // way the accumulator is exact afterwards.
    scratch.analyzer.stream_reset();
    for (std::size_t i = 0; i < window.size(); ++i) {
      scratch.analyzer.stream_accumulate(window.oldest_spectrum(i));
    }
    scratch.analyzer.stream_mark_rebuilt();
    rebuilt = true;
  }
  const dsp::Spectrum& spectrum = scratch.analyzer.stream_mean();
  return classify_mean(spectrum, scratch);
}

void SpectralDetector::match_peaks(const std::vector<dsp::SpectralPeak>& peaks,
                                   SpectralReport& report) const {
  report.anomalies.clear();
  for (const dsp::SpectralPeak& peak : peaks) {
    // Match against a golden spot within the bin tolerance.
    const dsp::SpectralPeak* match = nullptr;
    for (const dsp::SpectralPeak& g : golden_spots_) {
      const auto delta = peak.bin > g.bin ? peak.bin - g.bin : g.bin - peak.bin;
      if (delta <= options_.match_bins) {
        match = &g;
        break;
      }
    }

    if (match == nullptr) {
      SpectralAnomaly anomaly;
      anomaly.kind = SpectralAnomalyKind::kNewSpot;
      anomaly.frequency_hz = peak.frequency;
      anomaly.golden_amplitude = golden_.amplitude[peak.bin];
      anomaly.suspect_amplitude = peak.amplitude;
      anomaly.ratio = peak.amplitude / std::max(anomaly.golden_amplitude, noise_floor_);
      report.anomalies.push_back(anomaly);
    } else if (peak.amplitude > options_.amplification_ratio * match->amplitude) {
      SpectralAnomaly anomaly;
      anomaly.kind = SpectralAnomalyKind::kAmplifiedSpot;
      anomaly.frequency_hz = peak.frequency;
      anomaly.golden_amplitude = match->amplitude;
      anomaly.suspect_amplitude = peak.amplitude;
      anomaly.ratio = peak.amplitude / match->amplitude;
      report.anomalies.push_back(anomaly);
    }
  }

  std::sort(report.anomalies.begin(), report.anomalies.end(),
            [](const SpectralAnomaly& a, const SpectralAnomaly& b) { return a.ratio > b.ratio; });
}

SpectralReport SpectralDetector::analyze(const Trace& trace) const {
  TraceSet set;
  set.sample_rate = sample_rate_;
  set.add(trace);
  return analyze(set);
}

double SpectralDetector::score(const Trace& trace) const {
  const SpectralReport report = analyze(trace);
  return report.anomalies.empty() ? 0.0 : report.anomalies.front().ratio;
}

DetectorReport SpectralDetector::to_stage(const SpectralReport& report) const {
  DetectorReport stage;
  stage.name = name();
  stage.threshold = threshold();
  stage.alarm = report.anomalous();
  double sum = 0.0;
  for (const SpectralAnomaly& a : report.anomalies) {
    sum += a.ratio;
    stage.max_score = std::max(stage.max_score, a.ratio);
  }
  if (!report.anomalies.empty()) {
    stage.mean_score = sum / static_cast<double>(report.anomalies.size());
    stage.anomalous_fraction = 1.0;
  }
  std::ostringstream detail;
  detail << report.anomalies.size() << " spectral anomalies";
  if (!report.anomalies.empty()) {
    detail << ", strongest x" << report.anomalies.front().ratio << " at "
           << report.anomalies.front().frequency_hz / 1e6 << " MHz";
  }
  stage.detail = detail.str();
  return stage;
}

DetectorReport SpectralDetector::evaluate_set(const TraceSet& suspect,
                                              double /*alarm_fraction*/) const {
  return to_stage(analyze(suspect));
}

std::string SpectralDetector::describe() const {
  std::ostringstream out;
  out << "spectral: " << golden_spots_.size() << " golden spots over "
      << golden_.size() << " bins, noise floor " << noise_floor_ << ", fs "
      << sample_rate_ / 1e6 << " MS/s";
  return out.str();
}

void SpectralDetector::save(std::ostream& out) const {
  util::write_u32(out, static_cast<std::uint32_t>(options_.spectrum.window));
  util::write_u8(out, options_.spectrum.remove_mean ? 1 : 0);
  util::write_f64(out, options_.noise_floor_factor);
  util::write_f64(out, options_.new_spot_factor);
  util::write_f64(out, options_.amplification_ratio);
  util::write_u64(out, options_.match_bins);
  util::write_f64(out, sample_rate_);
  dsp::save_spectrum(out, golden_);
  util::write_f64(out, noise_floor_);
  util::write_u64(out, golden_spots_.size());
  for (const dsp::SpectralPeak& spot : golden_spots_) {
    util::write_u64(out, spot.bin);
    util::write_f64(out, spot.frequency);
    util::write_f64(out, spot.amplitude);
  }
}

SpectralDetector SpectralDetector::load(std::istream& in) {
  Options options;
  const std::uint32_t window = util::read_u32(in);
  EMTS_REQUIRE(window <= static_cast<std::uint32_t>(dsp::WindowKind::kBlackman),
               "spectral load: unknown window kind");
  options.spectrum.window = static_cast<dsp::WindowKind>(window);
  options.spectrum.remove_mean = util::read_u8(in) != 0;
  options.noise_floor_factor = util::read_f64(in);
  options.new_spot_factor = util::read_f64(in);
  options.amplification_ratio = util::read_f64(in);
  options.match_bins = util::read_u64(in);
  const double sample_rate = util::read_f64(in);
  EMTS_REQUIRE(std::isfinite(sample_rate) && sample_rate > 0.0,
               "spectral load: sample rate must be finite and positive");

  dsp::Spectrum golden = dsp::load_spectrum(in);
  // The constructor re-derives noise floor and spots from the spectrum; the
  // serialized values are authoritative, so restore them exactly afterwards.
  SpectralDetector detector{options, std::move(golden), sample_rate};
  detector.noise_floor_ = util::read_f64(in);
  EMTS_REQUIRE(detector.noise_floor_ > 0.0, "spectral load: bad noise floor");
  const std::uint64_t spots = util::read_u64(in);
  EMTS_REQUIRE(spots < (1ull << 20), "spectral load: implausible spot count");
  detector.golden_spots_.clear();
  detector.golden_spots_.reserve(spots);
  for (std::uint64_t s = 0; s < spots; ++s) {
    dsp::SpectralPeak spot;
    spot.bin = util::read_u64(in);
    spot.frequency = util::read_f64(in);
    spot.amplitude = util::read_f64(in);
    EMTS_REQUIRE(spot.bin < detector.golden_.size(), "spectral load: spot bin out of range");
    detector.golden_spots_.push_back(spot);
  }
  return detector;
}

}  // namespace emts::core
