// Coil geometry generators for the two pickup structures the paper compares
// (Fig. 2): the proposed on-chip sensor — a one-way rectangular spiral on the
// top metal layer, starting at the die center and growing to cover the whole
// circuit — and a LANGER-style external RF probe: several stacked circular
// turns of equal diameter held above the package.
#pragma once

#include <string>
#include <vector>

#include "layout/floorplan.hpp"
#include "layout/geometry.hpp"

namespace emts::em {

using layout::DieSpec;
using layout::Segment;
using layout::Vec3;

/// The surface one coil turn encloses — the integration domain for the flux
/// Phi = integral(Bz dA) that Faraday's law turns into the induced emf.
struct TurnSurface {
  enum class Shape { kRect, kDisk };
  Shape shape = Shape::kRect;
  double z = 0.0;
  // kRect: {x0, y0, x1, y1}; kDisk: {cx, cy, radius, unused}.
  double p0 = 0.0, p1 = 0.0, p2 = 0.0, p3 = 0.0;

  double area() const;
};

/// A pickup coil: an open polyline (sensor-in pad ... sensor-out pad) plus
/// the enclosed surface of every turn ("the effectiveness of the detection
/// ... equals to the accumulation of all the coils with gradually increasing
/// diameters", paper Sec. III-C).
struct Coil {
  std::string name;
  std::vector<Segment> path;
  std::vector<TurnSurface> turns;
  double wire_width = 0.0;  // m

  double total_length() const;
  std::size_t segment_count() const { return path.size(); }

  /// Summed enclosed area of all turns (the sensitivity-driving quantity).
  double total_turn_area() const;
};

/// Parameters of the on-chip spiral (Fig. 2(b)).
struct OnChipSpiralSpec {
  std::size_t turns = 12;
  double margin = 40e-6;      // keep-out from the core edge, m
  double wire_width = 2.0e-6; // drawn width (must satisfy min-width DRC)
};

/// Builds the spiral on the die's top metal layer. The spiral starts near the
/// die center and expands outward turn by turn, covering the whole core, as
/// the paper prescribes ("starting from the center, extending to the corner
/// and covering the entire circuit").
/// Throws precondition_error on DRC violations: wire width below the process
/// minimum, or a pitch so tight that adjacent turns would merge.
Coil make_onchip_spiral(const DieSpec& die, const OnChipSpiralSpec& spec);

/// Parameters of the external probe (Fig. 2(a)).
struct ExternalProbeSpec {
  std::size_t turns = 4;
  double radius = 1.2e-3;        // coil radius, m
  double turn_spacing = 0.15e-3; // vertical pitch between stacked turns, m
  double standoff = 0.0;         // extra height above the package top, m
  std::size_t segments_per_turn = 48;
};

/// Builds the external probe centered over the die at
/// z = die.sensor_z + die.package_top + standoff.
Coil make_external_probe(const DieSpec& die, const ExternalProbeSpec& spec);

}  // namespace emts::em
