#include "em/mutual.hpp"

#include <algorithm>
#include <cmath>

#include "em/biot_savart.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace emts::em {

double mutual_inductance(const std::vector<Segment>& path_a, const std::vector<Segment>& path_b,
                         const MutualOptions& options) {
  EMTS_REQUIRE(options.max_element > 0.0, "max_element must be positive");
  EMTS_REQUIRE(options.regularization >= 0.0, "regularization must be non-negative");

  const auto a = subdivide_path(path_a, options.max_element);
  const auto b = subdivide_path(path_b, options.max_element);
  const double eps2 = options.regularization * options.regularization;

  double acc = 0.0;
  for (const Segment& sa : a) {
    const Vec3 dla = sa.direction();
    const Vec3 ma = sa.midpoint();
    for (const Segment& sb : b) {
      const Vec3 dlb = sb.direction();
      const Vec3 r = ma - sb.midpoint();
      const double dist = std::sqrt(r.dot(r) + eps2);
      if (dist <= 0.0) continue;
      acc += dla.dot(dlb) / dist;
    }
  }
  return units::mu0 / (4.0 * units::pi) * acc;
}

namespace {

// Contour of a turn surface, counterclockwise viewed from +z, as straight
// elements no longer than max_element.
std::vector<Segment> surface_contour(const TurnSurface& surface, double max_element) {
  std::vector<Segment> contour;
  if (surface.shape == TurnSurface::Shape::kRect) {
    const Vec3 c0{surface.p0, surface.p1, surface.z};
    const Vec3 c1{surface.p2, surface.p1, surface.z};
    const Vec3 c2{surface.p2, surface.p3, surface.z};
    const Vec3 c3{surface.p0, surface.p3, surface.z};
    for (const Segment& edge :
         {Segment{c0, c1}, Segment{c1, c2}, Segment{c2, c3}, Segment{c3, c0}}) {
      const auto pieces = subdivide(edge, max_element);
      contour.insert(contour.end(), pieces.begin(), pieces.end());
    }
    return contour;
  }

  const double r = surface.p2;
  const double circumference = 2.0 * units::pi * r;
  const auto n = std::max<std::size_t>(
      64, static_cast<std::size_t>(std::ceil(circumference / max_element)));
  for (std::size_t i = 0; i < n; ++i) {
    const double a0 = 2.0 * units::pi * static_cast<double>(i) / static_cast<double>(n);
    const double a1 = 2.0 * units::pi * static_cast<double>(i + 1) / static_cast<double>(n);
    contour.push_back(
        Segment{Vec3{surface.p0 + r * std::cos(a0), surface.p1 + r * std::sin(a0), surface.z},
                Vec3{surface.p0 + r * std::cos(a1), surface.p1 + r * std::sin(a1), surface.z}});
  }
  return contour;
}

}  // namespace

double flux_through_surface(const std::vector<Segment>& path, double current,
                            const TurnSurface& surface, const FluxOptions& options) {
  EMTS_REQUIRE(options.cell_size > 0.0, "flux cell size must be positive");
  if (surface.shape == TurnSurface::Shape::kRect) {
    EMTS_REQUIRE(surface.p2 > surface.p0 && surface.p3 > surface.p1,
                 "rect turn surface must be non-empty");
  } else {
    EMTS_REQUIRE(surface.p2 > 0.0, "disk turn surface must have positive radius");
  }

  // Stokes: flux of B = curl A through the surface equals the circulation of
  // A along its boundary. A is log-singular (vs Bz's 1/r^2), so a midpoint
  // rule along the contour stays accurate even with source wires microns
  // below the turn.
  double flux = 0.0;
  for (const Segment& element : surface_contour(surface, options.cell_size)) {
    const Vec3 a = path_vector_potential(path, current, element.midpoint());
    flux += a.dot(element.direction());
  }
  return flux;
}

double loop_coil_coupling(const layout::CurrentLoop& loop, const Coil& coil,
                          const FluxOptions& options) {
  EMTS_REQUIRE(!coil.turns.empty(), "coil has no turn surfaces");
  constexpr double kUnitCurrent = 1.0;
  double total = 0.0;
  for (const TurnSurface& turn : coil.turns) {
    total += flux_through_surface(loop.segments, kUnitCurrent, turn, options);
  }
  return total;  // flux per ampere = mutual inductance
}

std::vector<double> couplings(const std::vector<layout::CurrentLoop>& loops, const Coil& coil,
                              const FluxOptions& options) {
  std::vector<double> out;
  out.reserve(loops.size());
  for (const auto& loop : loops) out.push_back(loop_coil_coupling(loop, coil, options));
  return out;
}

}  // namespace emts::em
