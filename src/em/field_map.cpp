#include "em/field_map.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace emts::em {

double FieldMap::at(std::size_t ix, std::size_t iy) const {
  EMTS_ASSERT(ix < nx && iy < ny);
  return bz[iy * nx + ix];
}

double FieldMap::max_abs() const {
  double best = 0.0;
  for (double v : bz) best = std::max(best, std::abs(v));
  return best;
}

FieldMap bz_map(const std::vector<Segment>& path, double current, const layout::DieSpec& die,
                double z, std::size_t nx, std::size_t ny) {
  EMTS_REQUIRE(nx >= 2 && ny >= 2, "field map needs at least a 2x2 grid");
  FieldMap map;
  map.nx = nx;
  map.ny = ny;
  map.x0 = 0.0;
  map.y0 = 0.0;
  map.x1 = die.core_width;
  map.y1 = die.core_height;
  map.z = z;
  map.bz.resize(nx * ny);

  for (std::size_t iy = 0; iy < ny; ++iy) {
    const double y = map.y0 + (map.y1 - map.y0) * static_cast<double>(iy) /
                                  static_cast<double>(ny - 1);
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const double x = map.x0 + (map.x1 - map.x0) * static_cast<double>(ix) /
                                    static_cast<double>(nx - 1);
      map.bz[iy * nx + ix] = path_field(path, current, Vec3{x, y, z}).z;
    }
  }
  return map;
}

}  // namespace emts::em
