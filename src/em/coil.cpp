#include "em/coil.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace emts::em {

double TurnSurface::area() const {
  if (shape == Shape::kRect) return (p2 - p0) * (p3 - p1);
  return units::pi * p2 * p2;
}

double Coil::total_length() const {
  double acc = 0.0;
  for (const Segment& s : path) acc += s.length();
  return acc;
}

double Coil::total_turn_area() const {
  double acc = 0.0;
  for (const TurnSurface& t : turns) acc += t.area();
  return acc;
}

Coil make_onchip_spiral(const DieSpec& die, const OnChipSpiralSpec& spec) {
  EMTS_REQUIRE(spec.turns >= 1, "spiral needs at least one turn");
  EMTS_REQUIRE(spec.wire_width >= die.min_wire_width,
               "spiral wire width violates the process minimum width rule");

  const double cx = 0.5 * die.core_width;
  const double cy = 0.5 * die.core_height;
  const double outer_hw = 0.5 * die.core_width - spec.margin;
  const double outer_hh = 0.5 * die.core_height - spec.margin;
  EMTS_REQUIRE(outer_hw > 0.0 && outer_hh > 0.0, "spiral margin leaves no room");

  // One pitch per turn; the innermost turn sits one pitch from the center.
  const double n = static_cast<double>(spec.turns);
  const double px = outer_hw / (n + 1.0);
  const double py = outer_hh / (n + 1.0);
  EMTS_REQUIRE(std::min(px, py) - spec.wire_width >= die.min_wire_width,
               "spiral pitch too tight: adjacent turns violate spacing DRC");

  Coil coil;
  coil.name = "onchip_spiral";
  coil.wire_width = spec.wire_width;
  const double z = die.sensor_z;

  auto add = [&](double x0, double y0, double x1, double y1) {
    coil.path.push_back(Segment{Vec3{x0, y0, z}, Vec3{x1, y1, z}});
  };

  // Turn k runs at half-extents (k+1)*pitch; the left edge overshoots down to
  // the next turn's bottom, producing the one-way spiral of Fig. 2(b).
  for (std::size_t k = 0; k < spec.turns; ++k) {
    const double hw = px * static_cast<double>(k + 1);
    const double hh = py * static_cast<double>(k + 1);
    const double next_hh = py * static_cast<double>(k + 2);

    coil.turns.push_back(
        TurnSurface{TurnSurface::Shape::kRect, z, cx - hw, cy - hh, cx + hw, cy + hh});

    add(cx - hw, cy - hh, cx + hw, cy - hh);  // bottom, left -> right
    add(cx + hw, cy - hh, cx + hw, cy + hh);  // right, up
    add(cx + hw, cy + hh, cx - hw, cy + hh);  // top, right -> left
    if (k + 1 < spec.turns) {
      add(cx - hw, cy + hh, cx - hw, cy - next_hh);  // left, overshoot down
    } else {
      // Last turn exits toward the corner (Sensor Out pad, Fig. 3).
      add(cx - hw, cy + hh, cx - hw, cy - hh);
      add(cx - hw, cy - hh, cx - outer_hw, cy - outer_hh);
    }
  }
  return coil;
}

Coil make_external_probe(const DieSpec& die, const ExternalProbeSpec& spec) {
  EMTS_REQUIRE(spec.turns >= 1, "probe needs at least one turn");
  EMTS_REQUIRE(spec.radius > 0.0, "probe radius must be positive");
  EMTS_REQUIRE(spec.segments_per_turn >= 8, "probe turns need >= 8 segments");

  Coil coil;
  coil.name = "external_probe";
  coil.wire_width = 0.1e-3;  // typical probe wire

  const double cx = 0.5 * die.core_width;
  const double cy = 0.5 * die.core_height;
  const double z0 = die.sensor_z + die.package_top + spec.standoff;

  for (std::size_t t = 0; t < spec.turns; ++t) {
    const double z = z0 + spec.turn_spacing * static_cast<double>(t);
    coil.turns.push_back(TurnSurface{TurnSurface::Shape::kDisk, z, cx, cy, spec.radius, 0.0});
    for (std::size_t s = 0; s < spec.segments_per_turn; ++s) {
      const double a0 = 2.0 * units::pi * static_cast<double>(s) /
                        static_cast<double>(spec.segments_per_turn);
      const double a1 = 2.0 * units::pi * static_cast<double>(s + 1) /
                        static_cast<double>(spec.segments_per_turn);
      coil.path.push_back(Segment{
          Vec3{cx + spec.radius * std::cos(a0), cy + spec.radius * std::sin(a0), z},
          Vec3{cx + spec.radius * std::cos(a1), cy + spec.radius * std::sin(a1), z}});
    }
    if (t + 1 < spec.turns) {
      // Vertical jog to the next stacked turn (same angular position).
      coil.path.push_back(Segment{Vec3{cx + spec.radius, cy, z},
                                  Vec3{cx + spec.radius, cy, z + spec.turn_spacing}});
    }
  }
  return coil;
}

}  // namespace emts::em
