// B-field maps over a plane above the die ("EM leakage from every point of
// the IC's surface can be acquired" — paper Sec. IV-A). Used by the sensor
// design-space benches and by tests validating the solver against analytic
// references.
#pragma once

#include <cstddef>
#include <vector>

#include "em/biot_savart.hpp"
#include "layout/floorplan.hpp"

namespace emts::em {

/// Sampled z-component of B over a rectangular grid.
struct FieldMap {
  std::size_t nx = 0;
  std::size_t ny = 0;
  double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;  // plane extent, m
  double z = 0.0;                                 // plane height, m
  std::vector<double> bz;                         // row-major, tesla

  double at(std::size_t ix, std::size_t iy) const;
  double max_abs() const;
};

/// Computes Bz of `path` carrying `current` over an nx x ny grid spanning the
/// die core at height z.
FieldMap bz_map(const std::vector<Segment>& path, double current, const layout::DieSpec& die,
                double z, std::size_t nx, std::size_t ny);

}  // namespace emts::em
