#include "em/biot_savart.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace emts::em {

Vec3 segment_field(const Segment& segment, double current, const Vec3& point) {
  const Vec3 line = segment.b - segment.a;
  const double len = line.norm();
  if (len <= 0.0) return {};
  const Vec3 u = line * (1.0 / len);

  const Vec3 ra = point - segment.a;
  const Vec3 rb = point - segment.b;
  const double ra_n = ra.norm();
  const double rb_n = rb.norm();
  if (ra_n <= 0.0 || rb_n <= 0.0) return {};  // endpoint singularity

  // Perpendicular offset from the wire axis.
  const Vec3 d_vec = ra - u * ra.dot(u);
  const double d = d_vec.norm();
  if (d < 1e-12) return {};  // on-axis: field is zero by symmetry

  // |B| = mu0 I / (4 pi d) * (cos(theta_a) - cos(theta_b)), direction u x d_hat.
  const double cos_a = ra.dot(u) / ra_n;
  const double cos_b = rb.dot(u) / rb_n;
  const double magnitude = units::mu0 * current / (4.0 * units::pi * d) * (cos_a - cos_b);

  const Vec3 dir = u.cross(d_vec * (1.0 / d));
  return dir * magnitude;
}

Vec3 segment_vector_potential(const Segment& segment, double current, const Vec3& point) {
  const Vec3 line = segment.b - segment.a;
  const double len = line.norm();
  if (len <= 0.0) return {};
  const Vec3 u = line * (1.0 / len);

  const double d1 = (point - segment.a).norm();
  const double d2 = (point - segment.b).norm();
  const double s = d1 + d2;
  // Regularize exactly on the wire (s -> len) with the wire-radius scale.
  constexpr double kWireRadius = 1e-7;
  const double denom = std::max(s - len, kWireRadius);
  const double magnitude =
      units::mu0 * current / (4.0 * units::pi) * std::log((s + len) / denom);
  return u * magnitude;
}

Vec3 path_vector_potential(const std::vector<Segment>& path, double current, const Vec3& point) {
  Vec3 total{};
  for (const Segment& s : path) total = total + segment_vector_potential(s, current, point);
  return total;
}

Vec3 path_field(const std::vector<Segment>& path, double current, const Vec3& point) {
  Vec3 total{};
  for (const Segment& s : path) total = total + segment_field(s, current, point);
  return total;
}

std::vector<Segment> subdivide(const Segment& segment, double max_length) {
  EMTS_REQUIRE(max_length > 0.0, "subdivide: max_length must be positive");
  const double len = segment.length();
  const auto pieces = static_cast<std::size_t>(std::ceil(len / max_length));
  std::vector<Segment> out;
  if (pieces <= 1 || len == 0.0) {
    out.push_back(segment);
    return out;
  }
  out.reserve(pieces);
  const Vec3 step = segment.direction() * (1.0 / static_cast<double>(pieces));
  Vec3 cursor = segment.a;
  for (std::size_t i = 0; i < pieces; ++i) {
    const Vec3 next = (i + 1 == pieces) ? segment.b : cursor + step;
    out.push_back(Segment{cursor, next});
    cursor = next;
  }
  return out;
}

std::vector<Segment> subdivide_path(const std::vector<Segment>& path, double max_length) {
  std::vector<Segment> out;
  for (const Segment& s : path) {
    const auto pieces = subdivide(s, max_length);
    out.insert(out.end(), pieces.begin(), pieces.end());
  }
  return out;
}

}  // namespace emts::em
