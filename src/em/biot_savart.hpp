// Biot–Savart law for finite straight segments — the field kernel of the
// layout-level EM simulation method the paper applies (its ref. [18]:
// transient currents are attached to the extracted wire geometry and the
// radiated field is computed from that current distribution).
#pragma once

#include <vector>

#include "layout/geometry.hpp"

namespace emts::em {

using layout::Segment;
using layout::Vec3;

/// Magnetic flux density (tesla) at `point` due to `segment` carrying
/// `current` amperes (positive = a->b). Exact closed-form finite-segment
/// solution; returns zero field on the segment axis (regularized).
Vec3 segment_field(const Segment& segment, double current, const Vec3& point);

/// Magnetic vector potential (T·m) of the segment at `point`:
///   A = (mu0 I / 4 pi) * u_hat * ln((d1 + d2 + L) / (d1 + d2 - L)).
/// Because B = curl A, the flux through any contour is the line integral of
/// A along it — the numerically robust way to couple wires that run microns
/// below a coil, where direct Bz quadrature would chase a 1/r^2 spike.
Vec3 segment_vector_potential(const Segment& segment, double current, const Vec3& point);

/// Vector potential of a whole path.
Vec3 path_vector_potential(const std::vector<Segment>& path, double current, const Vec3& point);

/// Field from a whole path (same current through every segment).
Vec3 path_field(const std::vector<Segment>& path, double current, const Vec3& point);

/// Splits a segment into pieces no longer than `max_length` (>=1 piece).
std::vector<Segment> subdivide(const Segment& segment, double max_length);

/// Splits every segment of a path.
std::vector<Segment> subdivide_path(const std::vector<Segment>& path, double max_length);

}  // namespace emts::em
