// Mutual inductance between a supply current loop and a pickup coil, by the
// Neumann double line integral
//     M = mu0/(4 pi) * sum_i sum_j (dl_i . dl_j) / r_ij .
//
// The induced sensor voltage is then v(t) = -M dI/dt (Faraday's law, the
// "induced electromotive force (emf)" computation of paper Sec. IV-A). With
// M precomputed per (module loop, coil) pair, generating a full transient
// trace reduces to differentiating module currents and a weighted sum — this
// is what makes simulating tens of thousands of traces affordable.
#pragma once

#include <vector>

#include "em/coil.hpp"
#include "layout/power_grid.hpp"

namespace emts::em {

struct MutualOptions {
  double max_element = 50e-6;      // discretization length, m
  double regularization = 1e-6;    // softening radius to tame near-contact, m
};

/// Mutual inductance (henries) between two open/closed paths by the Neumann
/// double sum. Accurate when the paths are separated by more than the
/// element size; for the near-field coil-over-die case prefer
/// loop_coil_coupling (flux integration).
double mutual_inductance(const std::vector<Segment>& path_a, const std::vector<Segment>& path_b,
                         const MutualOptions& options = {});

struct FluxOptions {
  /// Target integration-cell edge length over each turn surface; the grid is
  /// clamped to [8, 96] points per axis.
  double cell_size = 40e-6;
};

/// Flux of `path` (carrying `current` amperes) through one turn surface, by
/// midpoint quadrature of the analytic segment field.
double flux_through_surface(const std::vector<Segment>& path, double current,
                            const TurnSurface& surface, const FluxOptions& options = {});

/// Coupling of one module supply loop into one coil (henries):
/// M = sum over turns of flux(loop, turn) / I. Exact per-segment field, so it
/// stays accurate with the coil microns above the die where the Neumann sum
/// would need sub-micron elements.
double loop_coil_coupling(const layout::CurrentLoop& loop, const Coil& coil,
                          const FluxOptions& options = {});

/// Couplings of every loop into one coil, ordered like `loops`.
std::vector<double> couplings(const std::vector<layout::CurrentLoop>& loops, const Coil& coil,
                              const FluxOptions& options = {});

}  // namespace emts::em
