#include "layout/floorplan.hpp"

#include "util/assert.hpp"

namespace emts::layout {

Floorplan::Floorplan(const DieSpec& spec) : spec_{spec} {
  EMTS_REQUIRE(spec.core_width > 0.0 && spec.core_height > 0.0, "die core must be non-empty");
  EMTS_REQUIRE(spec.cell_z < spec.grid_z && spec.grid_z < spec.sensor_z,
               "metal stack must order cell < grid < sensor");
  EMTS_REQUIRE(spec.min_wire_width > 0.0, "min wire width must be positive");
}

void Floorplan::place(std::string name, const Rect& region, double area_um2) {
  EMTS_REQUIRE(region.width() > 0.0 && region.height() > 0.0, "module region must be non-empty");
  const Rect c = core();
  EMTS_REQUIRE(region.x0 >= c.x0 && region.y0 >= c.y0 && region.x1 <= c.x1 && region.y1 <= c.y1,
               "module region must lie inside the core");
  for (const PlacedModule& m : modules_) {
    EMTS_REQUIRE(!m.region.overlaps(region), "module region overlaps " + m.name);
    EMTS_REQUIRE(m.name != name, "duplicate module name " + name);
  }
  modules_.push_back(PlacedModule{std::move(name), region, area_um2});
}

const PlacedModule& Floorplan::module(const std::string& name) const {
  for (const PlacedModule& m : modules_) {
    if (m.name == name) return m;
  }
  EMTS_REQUIRE(false, "no module named " + name);
  return modules_.front();  // unreachable
}

bool Floorplan::has_module(const std::string& name) const {
  for (const PlacedModule& m : modules_) {
    if (m.name == name) return true;
  }
  return false;
}

Floorplan reference_floorplan(const DieSpec& spec) {
  Floorplan fp{spec};
  const double w = spec.core_width;
  const double h = spec.core_height;

  // AES occupies the left 72% of the core, split into its six units roughly
  // in proportion to their synthesized area (S-box array dominating).
  const double aes_w = 0.72 * w;
  namespace mn = module_names;
  // S-box array: big central block.
  fp.place(mn::kAesSbox, Rect{0.02 * w, 0.25 * h, aes_w, 0.95 * h}, 371520.0);
  // Key schedule below it.
  fp.place(mn::kAesKeySchedule, Rect{0.02 * w, 0.02 * h, 0.45 * aes_w, 0.23 * h}, 95904.0);
  // State + key registers in the lower middle strip.
  fp.place(mn::kAesState, Rect{0.46 * aes_w, 0.02 * h, 0.62 * aes_w, 0.23 * h}, 6912.0);
  fp.place(mn::kAesKeyRegs, Rect{0.63 * aes_w, 0.02 * h, 0.78 * aes_w, 0.23 * h}, 4608.0);
  // MixColumns and control complete the strip.
  fp.place(mn::kAesMixColumns, Rect{0.79 * aes_w, 0.02 * h, 0.92 * aes_w, 0.23 * h}, 13248.0);
  fp.place(mn::kAesControl, Rect{0.93 * aes_w, 0.02 * h, aes_w, 0.23 * h}, 101178.0);

  // Four digital Trojans stack along the right edge (Fig. 3), A2 above them.
  const double tx0 = aes_w + 0.03 * w;
  const double tx1 = 0.98 * w;
  fp.place(mn::kTrojanA2, Rect{tx0, 0.74 * h, tx1, 0.80 * h}, 518.0);
  fp.place(mn::kTrojan1, Rect{tx0, 0.56 * h, tx1, 0.70 * h}, 29826.0);
  fp.place(mn::kTrojan2, Rect{tx0, 0.40 * h, tx1, 0.54 * h}, 50274.0);
  fp.place(mn::kTrojan3, Rect{tx0, 0.30 * h, tx1, 0.38 * h}, 4500.0);
  fp.place(mn::kTrojan4, Rect{tx0, 0.14 * h, tx1, 0.28 * h}, 50274.0);

  return fp;
}

}  // namespace emts::layout
