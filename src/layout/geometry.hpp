// Plain geometric types shared by the layout, EM, and sensor modules.
// Lengths are in meters (SI), consistent with the Biot–Savart solver.
#pragma once

#include <cmath>

namespace emts::layout {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }

  double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  double norm() const { return std::sqrt(dot(*this)); }
};

/// Axis-aligned rectangle in the die plane (z implied by layer).
struct Rect {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;

  double width() const { return x1 - x0; }
  double height() const { return y1 - y0; }
  double area() const { return width() * height(); }
  double cx() const { return 0.5 * (x0 + x1); }
  double cy() const { return 0.5 * (y0 + y1); }

  bool contains(double x, double y) const { return x >= x0 && x <= x1 && y >= y0 && y <= y1; }
  bool overlaps(const Rect& o) const {
    return x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
  }
};

/// One straight current-carrying wire segment in 3D.
struct Segment {
  Vec3 a;
  Vec3 b;

  Vec3 direction() const { return b - a; }
  double length() const { return direction().norm(); }
  Vec3 midpoint() const { return (a + b) * 0.5; }
};

}  // namespace emts::layout
