// Die description and floorplan. Mirrors the paper's Fig. 3: a 180 nm die
// whose M1–M5 hold the AES core plus the four Trojans, with the whole top
// metal layer (M6) reserved for the spiral EM sensor, and VDD/VSS/Sensor
// pads on the rim.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "layout/geometry.hpp"

namespace emts::layout {

/// Process + die parameters (defaults: the paper's 180 nm, 6-metal stack).
struct DieSpec {
  double core_width = 2.0e-3;       // m
  double core_height = 2.0e-3;      // m
  double cell_z = 1.0e-6;           // active/local-metal height above substrate
  double grid_z = 4.5e-6;           // M4/M5 power-routing height
  double sensor_z = 6.0e-6;         // M6 top-metal height (the sensor layer)
  double min_wire_width = 0.28e-6;  // DRC minimum for M6 in this node
  double package_top = 100e-6;      // die surface to package top (ext. probe standoff)
};

/// One placed module (functional unit or Trojan) on the die.
struct PlacedModule {
  std::string name;
  Rect region;       // footprint in die coordinates
  double area_um2 = 0.0;  // logical cell area (<= region area)
};

/// The assembled floorplan.
class Floorplan {
 public:
  explicit Floorplan(const DieSpec& spec);

  const DieSpec& spec() const { return spec_; }

  /// Places a module inside the given region. Requires the region to be
  /// inside the core and not overlap previously placed modules.
  void place(std::string name, const Rect& region, double area_um2);

  const std::vector<PlacedModule>& modules() const { return modules_; }

  /// Lookup by name; throws precondition_error if absent.
  const PlacedModule& module(const std::string& name) const;
  bool has_module(const std::string& name) const;

  /// Core outline as a Rect at (0,0)..(w,h).
  Rect core() const { return Rect{0.0, 0.0, spec_.core_width, spec_.core_height}; }

 private:
  DieSpec spec_;
  std::vector<PlacedModule> modules_;
};

/// Module names used by the reference floorplan (stable identifiers that the
/// power/EM pipeline keys on).
namespace module_names {
inline constexpr const char* kAesState = "aes/state_registers";
inline constexpr const char* kAesKeyRegs = "aes/key_registers";
inline constexpr const char* kAesSbox = "aes/sbox_array";
inline constexpr const char* kAesMixColumns = "aes/mix_columns";
inline constexpr const char* kAesKeySchedule = "aes/key_schedule";
inline constexpr const char* kAesControl = "aes/control";
inline constexpr const char* kTrojan1 = "trojan/t1_am_leak";
inline constexpr const char* kTrojan2 = "trojan/t2_leakage";
inline constexpr const char* kTrojan3 = "trojan/t3_cdma";
inline constexpr const char* kTrojan4 = "trojan/t4_power_hog";
inline constexpr const char* kTrojanA2 = "trojan/a2_analog";
}  // namespace module_names

/// Builds the reference floorplan of the fabricated chip (Fig. 3): the AES
/// units fill the left ~3/4 of the core; the four digital Trojans and the A2
/// cell stack along the right edge.
/// `unit_areas_um2` maps the six AES units + five Trojans (by the names
/// above) to their cell areas; missing entries get a small default.
Floorplan reference_floorplan(const DieSpec& spec);

}  // namespace emts::layout
