#include "layout/power_grid.hpp"

#include "util/assert.hpp"

namespace emts::layout {

PadRing PadRing::for_die(const DieSpec& spec) {
  PadRing ring;
  ring.vdd = Vec3{0.0, spec.core_height, spec.grid_z};
  ring.vss = Vec3{0.0, 0.0, spec.grid_z};
  return ring;
}

double CurrentLoop::total_length() const {
  double acc = 0.0;
  for (const Segment& s : segments) acc += s.length();
  return acc;
}

double CurrentLoop::closure_error() const {
  if (segments.empty()) return 0.0;
  return (segments.back().b - segments.front().a).norm();
}

CurrentLoop supply_loop(const DieSpec& spec, const PadRing& pads, const PlacedModule& module) {
  CurrentLoop loop;
  loop.module_name = module.name;

  // The VDD strap feeds the module's top edge, the VSS strap collects at its
  // bottom edge, and the cell current crosses the module top-to-bottom. The
  // circuit therefore encloses an area in the die plane (bounded by the two
  // straps, the left pad edge, and the module crossing) — this z-normal loop
  // is what couples into the coils above.
  const double cx = module.region.cx();
  const double y_top = module.region.y1;
  const double y_bot = module.region.y0;

  const Vec3 vdd_tap{pads.vdd.x, y_top, spec.grid_z};
  const Vec3 top_grid{cx, y_top, spec.grid_z};
  const Vec3 top_cell{cx, y_top, spec.cell_z};
  const Vec3 bot_cell{cx, y_bot, spec.cell_z};
  const Vec3 bot_grid{cx, y_bot, spec.grid_z};
  const Vec3 vss_tap{pads.vss.x, y_bot, spec.grid_z};

  loop.segments.push_back(Segment{pads.vdd, vdd_tap});   // down the pad edge
  loop.segments.push_back(Segment{vdd_tap, top_grid});   // VDD strap
  loop.segments.push_back(Segment{top_grid, top_cell});  // via drop
  loop.segments.push_back(Segment{top_cell, bot_cell});  // through the module
  loop.segments.push_back(Segment{bot_cell, bot_grid});  // via rise
  loop.segments.push_back(Segment{bot_grid, vss_tap});   // VSS strap
  loop.segments.push_back(Segment{vss_tap, pads.vss});   // to the pad
  // Close through the off-die supply (bond/board path along the die edge).
  loop.segments.push_back(Segment{pads.vss, pads.vdd});

  EMTS_ASSERT(loop.closure_error() < 1e-12);
  return loop;
}

std::vector<CurrentLoop> supply_loops(const Floorplan& floorplan, const PadRing& pads) {
  std::vector<CurrentLoop> loops;
  loops.reserve(floorplan.modules().size());
  for (const PlacedModule& m : floorplan.modules()) {
    loops.push_back(supply_loop(floorplan.spec(), pads, m));
  }
  return loops;
}

}  // namespace emts::layout
