// Power-delivery model: where supply current physically flows.
//
// The EM solver needs closed current paths, not just "module X drew I(t)".
// Following the layout-level method of the paper's ref. [18], each module's
// transient current is carried by a loop: VDD pad -> top-level strap (grid_z)
// -> via drop above the module -> through the module at cell level -> via
// rise -> return strap -> VSS pad. The loop geometry (especially its enclosed
// area and its position under the sensor) determines the coupling into each
// coil.
#pragma once

#include <string>
#include <vector>

#include "layout/floorplan.hpp"
#include "layout/geometry.hpp"

namespace emts::layout {

/// Pad positions on the die rim (paper Fig. 3 places VDD top-left, VSS
/// bottom-left, sensor pads on the right).
struct PadRing {
  Vec3 vdd;
  Vec3 vss;

  /// Default ring for a die spec: VDD at top-left corner, VSS at bottom-left,
  /// both at grid height.
  static PadRing for_die(const DieSpec& spec);
};

/// The closed current loop serving one module: an ordered list of segments;
/// the same instantaneous current I(t) flows through every segment.
struct CurrentLoop {
  std::string module_name;
  std::vector<Segment> segments;

  /// Total wire length (sanity metric).
  double total_length() const;

  /// Geometric closure error |end - start| (should be ~0).
  double closure_error() const;
};

/// Builds the supply loop for one placed module.
CurrentLoop supply_loop(const DieSpec& spec, const PadRing& pads, const PlacedModule& module);

/// Builds loops for every module in a floorplan.
std::vector<CurrentLoop> supply_loops(const Floorplan& floorplan, const PadRing& pads);

}  // namespace emts::layout
