// geometry.hpp is header-only; this translation unit exists so the module has
// a stable archive even when all geometry uses are inlined, and to host any
// future out-of-line geometry helpers.
#include "layout/geometry.hpp"

namespace emts::layout {}
