// Measurement chain: what stands between the coil's induced emf and the
// numbers the analysis module sees. Covers the paper's acquisition setup —
// differential sensor output ("the voltage differences between the start
// point and end point of the coil"), amplifier gain and bandwidth, the
// oscilloscope ADC, and the noise environment. The noise model is where the
// on-chip sensor earns its SNR advantage: a small shielded on-die loop picks
// up far less ambient interference than a probe dangling over the package.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace emts::sensor {

/// One narrowband interferer (lab equipment, radio pickup): silicon-mode
/// external probes see several of these (paper Sec. V-A: "more unintended
/// influences").
struct InterferenceTone {
  double frequency_hz = 0.0;
  double amplitude_v = 0.0;
};

struct NoiseSpec {
  double thermal_rms_v = 2e-6;        // front-end / coil thermal noise
  double environment_rms_v = 60e-6;   // ambient broadband noise at the probe
  double environment_pickup = 1.0;    // how much ambient this coil collects
  std::vector<InterferenceTone> tones;  // narrowband interferers
  double drift_rms_v = 0.0;           // slow baseline wander (random walk)
  double gain_jitter_rel = 0.0;       // per-capture multiplicative gain error
};

struct ChainSpec {
  double gain = 40.0;            // amplifier, V/V
  double bandwidth_hz = 500e6;   // one-pole low-pass cutoff
  double adc_full_scale_v = 1.0; // ADC range is [-fs, +fs] after gain
  int adc_bits = 10;             // 0 = ideal (no quantization)
};

/// Simulates one capture through the chain.
class MeasurementChain {
 public:
  MeasurementChain(const ChainSpec& chain, const NoiseSpec& noise);

  /// Processes an induced-emf waveform (volts at the coil terminals) into
  /// the recorded trace. Noise draws come from `rng`, so captures are
  /// reproducible per trace seed.
  std::vector<double> measure(const std::vector<double>& emf_v, double sample_rate,
                              emts::Rng& rng) const;

  const ChainSpec& chain() const { return chain_; }
  const NoiseSpec& noise() const { return noise_; }

 private:
  ChainSpec chain_;
  NoiseSpec noise_;
};

}  // namespace emts::sensor
