#include "sensor/measurement.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/filter.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace emts::sensor {

MeasurementChain::MeasurementChain(const ChainSpec& chain, const NoiseSpec& noise)
    : chain_{chain}, noise_{noise} {
  EMTS_REQUIRE(chain.gain > 0.0, "gain must be positive");
  EMTS_REQUIRE(chain.bandwidth_hz > 0.0, "bandwidth must be positive");
  EMTS_REQUIRE(chain.adc_full_scale_v > 0.0, "ADC full scale must be positive");
  EMTS_REQUIRE(chain.adc_bits >= 0 && chain.adc_bits <= 24, "ADC bits out of range");
  EMTS_REQUIRE(noise.thermal_rms_v >= 0.0 && noise.environment_rms_v >= 0.0 &&
                   noise.environment_pickup >= 0.0 && noise.drift_rms_v >= 0.0 &&
                   noise.gain_jitter_rel >= 0.0,
               "noise parameters must be non-negative");
}

std::vector<double> MeasurementChain::measure(const std::vector<double>& emf_v,
                                              double sample_rate, emts::Rng& rng) const {
  EMTS_REQUIRE(!emf_v.empty(), "measure requires a non-empty emf waveform");
  EMTS_REQUIRE(sample_rate > 0.0, "sample rate must be positive");

  const std::size_t n = emf_v.size();
  std::vector<double> signal = emf_v;

  // Coil-referred noise is injected before the amplifier.
  const double env_rms = noise_.environment_rms_v * noise_.environment_pickup;
  for (std::size_t i = 0; i < n; ++i) {
    signal[i] += rng.gaussian(0.0, noise_.thermal_rms_v);
    if (env_rms > 0.0) signal[i] += rng.gaussian(0.0, env_rms);
  }

  // Narrowband interferers arrive with random phase each capture.
  for (const InterferenceTone& tone : noise_.tones) {
    const double phase = rng.uniform(0.0, 2.0 * units::pi);
    const double w = 2.0 * units::pi * tone.frequency_hz / sample_rate;
    for (std::size_t i = 0; i < n; ++i) {
      signal[i] += tone.amplitude_v * std::sin(w * static_cast<double>(i) + phase);
    }
  }

  // Slow baseline wander (probe positioning / supply drift).
  if (noise_.drift_rms_v > 0.0) {
    const double step = noise_.drift_rms_v / std::sqrt(static_cast<double>(n));
    double level = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      level += rng.gaussian(0.0, step);
      signal[i] += level;
    }
  }

  // Amplifier: per-capture gain error, then bandwidth limit.
  double gain = chain_.gain;
  if (noise_.gain_jitter_rel > 0.0) {
    gain *= 1.0 + rng.gaussian(0.0, noise_.gain_jitter_rel);
  }
  for (double& v : signal) v *= gain;

  dsp::OnePoleLowPass lp{chain_.bandwidth_hz, sample_rate};
  signal = lp.process(signal);

  // Oscilloscope ADC: clip to full scale, quantize.
  if (chain_.adc_bits > 0) {
    const double fs = chain_.adc_full_scale_v;
    const double lsb = 2.0 * fs / static_cast<double>(1 << chain_.adc_bits);
    for (double& v : signal) {
      v = std::clamp(v, -fs, fs);
      v = std::round(v / lsb) * lsb;
    }
  }
  return signal;
}

}  // namespace emts::sensor
