#include "fleet/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "fleet/stats_json.hpp"
#include "io/snapshot.hpp"
#include "io/wire.hpp"
#include "util/assert.hpp"
#include "util/latency.hpp"

namespace emts::fleet {

struct IngestServer::Client {
  int fd = -1;
  io::wire::FrameDecoder decoder;

  explicit Client(int fd_in) : fd{fd_in} {}
  ~Client() {
    if (fd >= 0) ::close(fd);
  }
};

IngestServer::IngestServer(FleetMonitor& fleet, ServerOptions options)
    : fleet_{fleet}, options_{std::move(options)} {
  EMTS_REQUIRE(!options_.socket_path.empty(), "ingest server needs a socket path");
  EMTS_REQUIRE(options_.max_clients >= 1, "ingest server needs max_clients >= 1");
  EMTS_REQUIRE(options_.poll_timeout_ms > 0, "ingest server poll timeout must be > 0");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  EMTS_REQUIRE(options_.socket_path.size() < sizeof addr.sun_path,
               "socket path too long: " + options_.socket_path);
  std::strncpy(addr.sun_path, options_.socket_path.c_str(), sizeof addr.sun_path - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EMTS_REQUIRE(listen_fd_ >= 0, "ingest server: socket() failed");
  // Non-blocking accepts: accept_clients() drains the whole backlog per poll
  // round and must get EAGAIN, not block, when it is empty.
  ::fcntl(listen_fd_, F_SETFL, ::fcntl(listen_fd_, F_GETFL, 0) | O_NONBLOCK);
  ::unlink(options_.socket_path.c_str());  // stale socket from a dead daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    EMTS_REQUIRE(false, "ingest server: cannot bind " + options_.socket_path);
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
    EMTS_REQUIRE(false, "ingest server: listen failed on " + options_.socket_path);
  }
}

IngestServer::~IngestServer() {
  clients_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
  }
}

void IngestServer::accept_clients() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN/EWOULDBLOCK via non-blocking accept round
    if (clients_.size() >= options_.max_clients) {
      ::close(fd);
      ++counters_.connections_dropped;
      continue;
    }
    clients_.push_back(std::make_unique<Client>(fd));
    ++counters_.connections_accepted;
  }
}

bool IngestServer::service_client(Client& client) {
  // Drain what the kernel already has; poll() told us at least one read will
  // not block, and MSG_DONTWAIT keeps the follow-ups from blocking either.
  char buffer[64 * 1024];
  for (;;) {
    const ssize_t got = ::recv(client.fd, buffer, sizeof buffer, MSG_DONTWAIT);
    if (got == 0) {
      ++counters_.connections_closed;
      return false;  // clean EOF
    }
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return true;
      ++counters_.connections_dropped;
      return false;
    }
    counters_.bytes_received += static_cast<std::uint64_t>(got);
    try {
      client.decoder.feed(buffer, static_cast<std::size_t>(got));
      // Drain every frame this chunk completed, then hand the whole batch to
      // the fleet in one call — one ring reservation per contiguous run per
      // shard instead of one synchronization round per frame. Frames with
      // unacceptable content (unknown device, sample-rate mismatch) are
      // counted by the fleet instead of thrown — framing is intact, so the
      // connection survives.
      frame_batch_.clear();
      io::wire::TraceFrame frame;
      while (client.decoder.next(frame)) {
        frame_batch_.push_back(std::move(frame));
      }
      if (!frame_batch_.empty()) {
        const FrameBatchOutcome outcome = fleet_.submit_frames(std::move(frame_batch_));
        counters_.frames_accepted += outcome.accepted;
        counters_.frames_rejected +=
            outcome.rejected_backpressure + outcome.rejected_invalid;
      }
    } catch (const precondition_error&) {
      // Malformed stream: the framing is unrecoverable, drop the connection.
      ++counters_.connections_dropped;
      return false;
    }
  }
}

void IngestServer::drain_all_clients() {
  // Shutdown barrier: keep polling with a zero timeout until no connection
  // has bytes pending, so every frame a client managed to send before the
  // stop signal is ingested and counted on this side of the final flush.
  for (;;) {
    if (clients_.empty()) return;
    std::vector<pollfd> fds;
    fds.reserve(clients_.size());
    for (const auto& client : clients_) {
      fds.push_back(pollfd{client->fd, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), 0);
    if (ready <= 0) return;
    for (std::size_t c = fds.size(); c-- > 0;) {
      if ((fds[c].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (!service_client(*clients_[c])) {
        clients_.erase(clients_.begin() + static_cast<std::ptrdiff_t>(c));
      }
    }
  }
}

void IngestServer::write_snapshot() {
  if (options_.snapshot_path.empty()) return;
  const io::FleetSnapshot snapshot = fleet_.snapshot();
  const std::string tmp = options_.snapshot_path + ".tmp";
  io::save_fleet_snapshot(tmp, snapshot);
  EMTS_REQUIRE(::rename(tmp.c_str(), options_.snapshot_path.c_str()) == 0,
               "ingest server: cannot rename snapshot into " + options_.snapshot_path);
  ++counters_.snapshots_written;
}

void IngestServer::export_stats(bool final_export) {
  if (options_.stats_path.empty()) return;
  // Periodic exports must not drain the event logs — draining would change
  // what a later snapshot carries. Only the final export consumes them.
  std::vector<FleetEvent> events;
  if (final_export) fleet_.drain_events(events);
  const std::string json = fleet_stats_json(fleet_.stats(), fleet_.options().backpressure,
                                            fleet_.options().queue_capacity, events);
  const std::string tmp = options_.stats_path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary};
    EMTS_REQUIRE(out.good(), "ingest server: cannot open " + tmp);
    out << json << '\n';
    EMTS_REQUIRE(out.good(), "ingest server: stats write failed for " + tmp);
  }
  EMTS_REQUIRE(::rename(tmp.c_str(), options_.stats_path.c_str()) == 0,
               "ingest server: cannot rename stats into " + options_.stats_path);
  ++counters_.stats_exports;
}

SnapshotCadence parse_snapshot_cadence(const std::string& text) {
  SnapshotCadence cadence;
  std::size_t digits = 0;
  while (digits < text.size() && text[digits] >= '0' && text[digits] <= '9') ++digits;
  EMTS_REQUIRE(digits > 0, "snapshot cadence needs digits: '" + text + "'");
  const std::string suffix = text.substr(digits);
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < digits; ++i) {
    const std::uint64_t digit = static_cast<std::uint64_t>(text[i] - '0');
    EMTS_REQUIRE(value <= (UINT64_MAX - digit) / 10,
                 "snapshot cadence overflows: '" + text + "'");
    value = value * 10 + digit;
  }
  if (suffix.empty()) {
    cadence.every_frames = value;
  } else if (suffix == "s") {
    EMTS_REQUIRE(value <= UINT64_MAX / 1000, "snapshot cadence overflows: '" + text + "'");
    cadence.every_ms = value * 1000;
  } else if (suffix == "ms") {
    cadence.every_ms = value;
  } else {
    EMTS_REQUIRE(false, "snapshot cadence suffix must be 's' or 'ms': '" + text + "'");
  }
  return cadence;
}

void IngestServer::run(const std::atomic<bool>& stop, std::atomic<bool>& snapshot_request) {
  std::uint64_t frames_at_snapshot = 0;
  std::uint64_t frames_at_stats = 0;
  std::uint64_t last_snapshot_ns = util::monotonic_ns();

  while (!stop.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    fds.reserve(clients_.size() + 1);
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const auto& client : clients_) {
      fds.push_back(pollfd{client->fd, POLLIN, 0});
    }

    const int ready = ::poll(fds.data(), fds.size(), options_.poll_timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;  // a signal (stop/snapshot) interrupted us
      EMTS_REQUIRE(false, "ingest server: poll failed");
    }

    if (ready > 0) {
      // Clients first (reverse order keeps erase indices stable), accepts
      // last: bytes already sent always land before a new connection's.
      for (std::size_t c = clients_.size(); c-- > 0;) {
        if ((fds[c + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        if (!service_client(*clients_[c])) {
          clients_.erase(clients_.begin() + static_cast<std::ptrdiff_t>(c));
        }
      }
      if ((fds[0].revents & POLLIN) != 0) accept_clients();
    }

    const bool frame_due =
        options_.snapshot_every_frames > 0 &&
        counters_.frames_accepted - frames_at_snapshot >= options_.snapshot_every_frames;
    const bool clock_due =
        options_.snapshot_every_ms > 0 &&
        util::monotonic_ns() - last_snapshot_ns >= options_.snapshot_every_ms * 1000000ull;
    if (ready == 0 && (snapshot_request.exchange(false) || frame_due || clock_due)) {
      // Idle round: every byte the clients had sent is ingested, so the
      // snapshot cut is a stable point of the stream, not a race with the
      // kernel's socket buffers.
      write_snapshot();
      frames_at_snapshot = counters_.frames_accepted;
      last_snapshot_ns = util::monotonic_ns();
    }
    if (ready == 0 && options_.stats_every_frames > 0 &&
        counters_.frames_accepted - frames_at_stats >= options_.stats_every_frames) {
      export_stats(/*final_export=*/false);
      frames_at_stats = counters_.frames_accepted;
    }
  }

  // Clean shutdown: no more accepts, ingest what's already in flight, score
  // it all, then persist the terminal state.
  ::close(listen_fd_);
  ::unlink(options_.socket_path.c_str());
  listen_fd_ = -1;
  drain_all_clients();
  clients_.clear();
  fleet_.flush();
  write_snapshot();
  export_stats(/*final_export=*/true);
}

}  // namespace emts::fleet
