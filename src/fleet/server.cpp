#include "fleet/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "fleet/stats_json.hpp"
#include "io/durable_file.hpp"
#include "io/snapshot.hpp"
#include "io/wire.hpp"
#include "util/assert.hpp"
#include "util/latency.hpp"

namespace emts::fleet {

struct IngestServer::Client {
  int fd = -1;
  bool tcp = false;
  /// TCP + configured secret: no trace frame is ingested until a HELLO with
  /// the right token arrives. Unix and secret-less connections start
  /// authenticated.
  bool authenticated = true;
  std::string peer = "unix";
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_decoded = 0;
  io::wire::FrameDecoder decoder;

  explicit Client(int fd_in) : fd{fd_in} {}
  ~Client() {
    if (fd >= 0) ::close(fd);
  }
};

namespace {

void set_nonblocking(int fd) {
  ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
}

std::uint32_t parse_ipv4(const std::string& text, const char* what) {
  in_addr parsed{};
  EMTS_REQUIRE(::inet_pton(AF_INET, text.c_str(), &parsed) == 1,
               std::string{what} + " needs a numeric IPv4 address: '" + text + "'");
  return ntohl(parsed.s_addr);
}

}  // namespace

TcpEndpoint parse_tcp_endpoint(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  EMTS_REQUIRE(colon != std::string::npos && colon > 0 && colon + 1 < text.size(),
               "listen endpoint must be host:port: '" + text + "'");
  TcpEndpoint endpoint;
  endpoint.addr = parse_ipv4(text.substr(0, colon), "listen endpoint");
  const std::string port_text = text.substr(colon + 1);
  std::uint32_t port = 0;
  for (const char c : port_text) {
    EMTS_REQUIRE(c >= '0' && c <= '9', "listen port needs digits: '" + text + "'");
    port = port * 10 + static_cast<std::uint32_t>(c - '0');
    EMTS_REQUIRE(port <= 65535, "listen port out of range: '" + text + "'");
  }
  EMTS_REQUIRE(port >= 1, "listen port out of range: '" + text + "'");
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

CidrRule parse_cidr(const std::string& text) {
  const std::size_t slash = text.find('/');
  CidrRule rule;
  if (slash == std::string::npos) {
    rule.network = parse_ipv4(text, "allow rule");
    rule.mask = 0xffffffffu;
    return rule;
  }
  EMTS_REQUIRE(slash > 0 && slash + 1 < text.size(),
               "allow rule must be a.b.c.d or a.b.c.d/n: '" + text + "'");
  const std::uint32_t addr = parse_ipv4(text.substr(0, slash), "allow rule");
  const std::string prefix_text = text.substr(slash + 1);
  EMTS_REQUIRE(prefix_text.size() <= 2, "allow prefix out of range: '" + text + "'");
  std::uint32_t prefix = 0;
  for (const char c : prefix_text) {
    EMTS_REQUIRE(c >= '0' && c <= '9', "allow prefix needs digits: '" + text + "'");
    prefix = prefix * 10 + static_cast<std::uint32_t>(c - '0');
  }
  EMTS_REQUIRE(prefix <= 32, "allow prefix out of range: '" + text + "'");
  rule.mask = prefix == 0 ? 0u : ~0u << (32 - prefix);
  rule.network = addr & rule.mask;
  return rule;
}

bool cidr_match(const CidrRule& rule, std::uint32_t addr_host_order) {
  return (addr_host_order & rule.mask) == rule.network;
}

IngestServer::IngestServer(FleetMonitor& fleet, ServerOptions options)
    : fleet_{fleet}, options_{std::move(options)} {
  EMTS_REQUIRE(!options_.socket_path.empty() || !options_.listen_address.empty(),
               "ingest server needs a socket path or a TCP listen endpoint");
  EMTS_REQUIRE(options_.max_clients >= 1, "ingest server needs max_clients >= 1");
  EMTS_REQUIRE(options_.poll_timeout_ms > 0, "ingest server poll timeout must be > 0");
  EMTS_REQUIRE(options_.full_snapshot_every >= 1,
               "ingest server full-snapshot cadence must be >= 1");
  allow_rules_.reserve(options_.allow.size());
  for (const std::string& rule : options_.allow) allow_rules_.push_back(parse_cidr(rule));

  try {
    if (!options_.socket_path.empty()) setup_unix_listener();
    if (!options_.listen_address.empty()) setup_tcp_listener();
  } catch (...) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      ::unlink(options_.socket_path.c_str());
      listen_fd_ = -1;
    }
    if (tcp_listen_fd_ >= 0) {
      ::close(tcp_listen_fd_);
      tcp_listen_fd_ = -1;
    }
    throw;
  }
}

void IngestServer::setup_unix_listener() {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  EMTS_REQUIRE(options_.socket_path.size() < sizeof addr.sun_path,
               "socket path too long: " + options_.socket_path);
  std::strncpy(addr.sun_path, options_.socket_path.c_str(), sizeof addr.sun_path - 1);

  // A socket file at the path may belong to a *live* daemon — probe with
  // connect() before unlinking, so starting a second daemon by mistake
  // cannot silently steal the first one's socket. Only a refused connection
  // (nothing listening behind the inode) marks the file stale.
  if (::access(options_.socket_path.c_str(), F_OK) == 0) {
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EMTS_REQUIRE(probe >= 0, "ingest server: socket() failed");
    const int rc = ::connect(probe, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    const int saved_errno = errno;
    ::close(probe);
    EMTS_REQUIRE(rc != 0, "ingest server: a daemon is already serving " +
                              options_.socket_path);
    EMTS_REQUIRE(saved_errno == ECONNREFUSED || saved_errno == ENOENT,
                 "ingest server: cannot probe " + options_.socket_path + ": " +
                     std::strerror(saved_errno));
    ::unlink(options_.socket_path.c_str());  // stale socket from a dead daemon
  }

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EMTS_REQUIRE(listen_fd_ >= 0, "ingest server: socket() failed");
  // Non-blocking accepts: the accept loops drain the whole backlog per poll
  // round and must get EAGAIN, not block, when it is empty.
  set_nonblocking(listen_fd_);
  EMTS_REQUIRE(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr) == 0,
               "ingest server: cannot bind " + options_.socket_path);
  EMTS_REQUIRE(::listen(listen_fd_, 16) == 0,
               "ingest server: listen failed on " + options_.socket_path);
}

void IngestServer::setup_tcp_listener() {
  const TcpEndpoint endpoint = parse_tcp_endpoint(options_.listen_address);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(endpoint.addr);
  addr.sin_port = htons(endpoint.port);

  tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  EMTS_REQUIRE(tcp_listen_fd_ >= 0, "ingest server: socket() failed");
  const int one = 1;
  ::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  set_nonblocking(tcp_listen_fd_);
  EMTS_REQUIRE(::bind(tcp_listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr) == 0,
               "ingest server: cannot bind " + options_.listen_address);
  EMTS_REQUIRE(::listen(tcp_listen_fd_, 16) == 0,
               "ingest server: listen failed on " + options_.listen_address);
}

IngestServer::~IngestServer() {
  clients_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
  }
  if (tcp_listen_fd_ >= 0) ::close(tcp_listen_fd_);
}

bool IngestServer::admit_client(int fd) {
  if (clients_.size() >= options_.max_clients) {
    ::close(fd);
    ++counters_.connections_dropped;
    return false;
  }
  return true;
}

void IngestServer::accept_unix_clients() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN/EWOULDBLOCK via non-blocking accept round
    if (!admit_client(fd)) continue;
    clients_.push_back(std::make_unique<Client>(fd));
    ++counters_.connections_accepted;
  }
}

void IngestServer::accept_tcp_clients() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof peer;
    const int fd =
        ::accept(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (fd < 0) return;
    const std::uint32_t peer_addr = ntohl(peer.sin_addr.s_addr);
    if (!allow_rules_.empty()) {
      bool allowed = false;
      for (const CidrRule& rule : allow_rules_) {
        if (cidr_match(rule, peer_addr)) {
          allowed = true;
          break;
        }
      }
      if (!allowed) {
        ::close(fd);
        ++counters_.connections_rejected_acl;
        continue;
      }
    }
    if (!admit_client(fd)) continue;

    // Frames are small relative to socket buffers; coalescing them behind
    // Nagle just adds round-trip latency to every capture.
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    set_nonblocking(fd);

    auto client = std::make_unique<Client>(fd);
    client->tcp = true;
    client->authenticated = options_.auth_secret.empty();
    char label[INET_ADDRSTRLEN] = {};
    ::inet_ntop(AF_INET, &peer.sin_addr, label, sizeof label);
    client->peer = std::string{label} + ":" + std::to_string(ntohs(peer.sin_port));
    clients_.push_back(std::move(client));
    ++counters_.connections_accepted;
  }
}

bool IngestServer::service_client(Client& client) {
  // Drain what the kernel already has; poll() told us at least one read will
  // not block, and MSG_DONTWAIT keeps the follow-ups from blocking either.
  char buffer[64 * 1024];
  for (;;) {
    const ssize_t got = ::recv(client.fd, buffer, sizeof buffer, MSG_DONTWAIT);
    if (got == 0) {
      ++counters_.connections_closed;
      return false;  // clean EOF
    }
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return true;
      ++counters_.connections_dropped;
      return false;
    }
    counters_.bytes_received += static_cast<std::uint64_t>(got);
    client.bytes_received += static_cast<std::uint64_t>(got);
    try {
      client.decoder.feed(buffer, static_cast<std::size_t>(got));
      // Drain every frame this chunk completed, then hand the whole batch to
      // the fleet in one call — one ring reservation per contiguous run per
      // shard instead of one synchronization round per frame. Frames with
      // unacceptable content (unknown device, sample-rate mismatch) are
      // counted by the fleet instead of thrown — framing is intact, so the
      // connection survives.
      frame_batch_.clear();
      io::wire::Frame frame;
      while (client.decoder.next(frame)) {
        if (frame.kind == io::wire::FrameKind::kHello) {
          // Auth applies to TCP connections with a configured secret; a
          // HELLO anywhere else is valid framing and simply ignored.
          if (client.tcp && !options_.auth_secret.empty() && !client.authenticated) {
            if (frame.auth_token == options_.auth_secret) {
              client.authenticated = true;
            } else {
              ++counters_.auth_failures;
              ++counters_.connections_dropped;
              return false;
            }
          }
          continue;
        }
        if (!client.authenticated) {
          // Trace before a successful HELLO: close without ingesting — this
          // frame, the batch it rode in with, everything.
          ++counters_.auth_failures;
          ++counters_.connections_dropped;
          return false;
        }
        ++client.frames_decoded;
        frame_batch_.push_back(std::move(frame.trace));
      }
      if (!frame_batch_.empty()) {
        const FrameBatchOutcome outcome = fleet_.submit_frames(std::move(frame_batch_));
        counters_.frames_accepted += outcome.accepted;
        counters_.frames_rejected +=
            outcome.rejected_backpressure + outcome.rejected_invalid;
      }
    } catch (const precondition_error&) {
      // Malformed stream: the framing is unrecoverable, drop the connection.
      ++counters_.connections_dropped;
      return false;
    }
  }
}

std::vector<ServerConnectionStats> IngestServer::connection_stats() const {
  std::vector<ServerConnectionStats> out;
  out.reserve(clients_.size());
  for (const auto& client : clients_) {
    ServerConnectionStats stats;
    stats.peer = client->peer;
    stats.tcp = client->tcp;
    stats.authenticated = client->authenticated;
    stats.bytes_received = client->bytes_received;
    stats.frames_decoded = client->frames_decoded;
    out.push_back(std::move(stats));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const ServerConnectionStats& a, const ServerConnectionStats& b) {
                     return a.peer < b.peer;
                   });
  return out;
}

void IngestServer::drain_all_clients() {
  // Shutdown barrier: keep polling with a zero timeout until no connection
  // has bytes pending, so every frame a client managed to send before the
  // stop signal is ingested and counted on this side of the final flush.
  for (;;) {
    if (clients_.empty()) return;
    std::vector<pollfd> fds;
    fds.reserve(clients_.size());
    for (const auto& client : clients_) {
      fds.push_back(pollfd{client->fd, POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), 0);
    if (ready <= 0) return;
    for (std::size_t c = fds.size(); c-- > 0;) {
      if ((fds[c].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (!service_client(*clients_[c])) {
        clients_.erase(clients_.begin() + static_cast<std::ptrdiff_t>(c));
      }
    }
  }
}

void IngestServer::write_snapshot(bool forced) {
  if (options_.snapshot_path.empty()) return;
  const std::string tmp = options_.snapshot_path + ".tmp";
  if (options_.incremental_snapshots) {
    // The first cut must be full (nothing cached yet); afterwards every Nth
    // is a full rewrite so a corrupted cache entry cannot outlive one cycle.
    const bool full = !snapshot_cache_primed_ ||
                      snapshots_since_full_ + 1 >= options_.full_snapshot_every;
    const io::FleetSnapshot snapshot =
        fleet_.snapshot(full ? SnapshotMode::kFull : SnapshotMode::kIncremental);
    io::SnapshotSaveStats save_stats;
    io::save_fleet_snapshot(tmp, snapshot, snapshot_cache_, &save_stats);
    snapshot_cache_primed_ = true;
    snapshots_since_full_ = full ? 0 : snapshots_since_full_ + 1;
    counters_.snapshot_records_reused += save_stats.records_reused;
    counters_.snapshot_records_rewritten += save_stats.records_rewritten;
  } else {
    const io::FleetSnapshot snapshot = fleet_.snapshot();
    io::save_fleet_snapshot(tmp, snapshot);
  }
  io::durable_replace(tmp, options_.snapshot_path);
  ++counters_.snapshots_written;
  if (forced) ++counters_.snapshots_forced;
}

void IngestServer::export_stats(bool final_export) {
  if (options_.stats_path.empty()) return;
  // Periodic exports must not drain the event logs — draining would change
  // what a later snapshot carries. Only the final export consumes them.
  std::vector<FleetEvent> events;
  if (final_export) fleet_.drain_events(events);
  const std::string json =
      fleet_stats_json(fleet_.stats(), fleet_.options().backpressure,
                       fleet_.options().queue_capacity, events,
                       server_stats_json(counters_, connection_stats()));
  const std::string tmp = options_.stats_path + ".tmp";
  {
    std::ofstream out{tmp, std::ios::binary};
    EMTS_REQUIRE(out.good(), "ingest server: cannot open " + tmp);
    out << json << '\n';
    EMTS_REQUIRE(out.good(), "ingest server: stats write failed for " + tmp);
  }
  io::durable_replace(tmp, options_.stats_path);
  ++counters_.stats_exports;
}

SnapshotCadence parse_snapshot_cadence(const std::string& text) {
  SnapshotCadence cadence;
  std::size_t digits = 0;
  while (digits < text.size() && text[digits] >= '0' && text[digits] <= '9') ++digits;
  EMTS_REQUIRE(digits > 0, "snapshot cadence needs digits: '" + text + "'");
  const std::string suffix = text.substr(digits);
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < digits; ++i) {
    const std::uint64_t digit = static_cast<std::uint64_t>(text[i] - '0');
    EMTS_REQUIRE(value <= (UINT64_MAX - digit) / 10,
                 "snapshot cadence overflows: '" + text + "'");
    value = value * 10 + digit;
  }
  // Zero would silently disable the cadence the caller just asked for;
  // disabling is spelled by omitting the flag, so 0/0s/0ms are usage errors.
  EMTS_REQUIRE(value > 0, "snapshot cadence must be positive: '" + text + "'");
  if (suffix.empty()) {
    cadence.every_frames = value;
  } else if (suffix == "s") {
    EMTS_REQUIRE(value <= UINT64_MAX / 1000, "snapshot cadence overflows: '" + text + "'");
    cadence.every_ms = value * 1000;
  } else if (suffix == "ms") {
    cadence.every_ms = value;
  } else {
    EMTS_REQUIRE(false, "snapshot cadence suffix must be 's' or 'ms': '" + text + "'");
  }
  return cadence;
}

void IngestServer::run(const std::atomic<bool>& stop, std::atomic<bool>& snapshot_request) {
  std::uint64_t frames_at_snapshot = 0;
  std::uint64_t frames_at_stats = 0;
  std::uint64_t last_snapshot_ns = util::monotonic_ns();
  // Starvation guard: a due snapshot/stats export *prefers* an idle round
  // (deterministic cut for quiescent clients), but a loaded daemon may never
  // be idle — so once a deadline has been due longer than one poll interval,
  // it is forced onto a busy round anyway. The cut is still consistent
  // (FleetMonitor::snapshot flushes + pauses); only the idle-determinism
  // nicety is given up, and `snapshots_forced` records that it happened.
  const std::uint64_t grace_ns =
      static_cast<std::uint64_t>(options_.poll_timeout_ms) * 1000000ull;
  std::uint64_t snapshot_due_since_ns = 0;
  std::uint64_t stats_due_since_ns = 0;
  bool snapshot_requested = false;

  while (!stop.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    fds.reserve(clients_.size() + 2);
    std::size_t listeners = 0;
    if (listen_fd_ >= 0) {
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
      ++listeners;
    }
    if (tcp_listen_fd_ >= 0) {
      fds.push_back(pollfd{tcp_listen_fd_, POLLIN, 0});
      ++listeners;
    }
    for (const auto& client : clients_) {
      fds.push_back(pollfd{client->fd, POLLIN, 0});
    }

    const int ready = ::poll(fds.data(), fds.size(), options_.poll_timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;  // a signal (stop/snapshot) interrupted us
      EMTS_REQUIRE(false, "ingest server: poll failed");
    }

    if (ready > 0) {
      // Clients first (reverse order keeps erase indices stable), accepts
      // last: bytes already sent always land before a new connection's.
      for (std::size_t c = clients_.size(); c-- > 0;) {
        if ((fds[listeners + c].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        if (!service_client(*clients_[c])) {
          clients_.erase(clients_.begin() + static_cast<std::ptrdiff_t>(c));
        }
      }
      std::size_t listener = 0;
      if (listen_fd_ >= 0 && (fds[listener++].revents & POLLIN) != 0) {
        accept_unix_clients();
      }
      if (tcp_listen_fd_ >= 0 && (fds[listener].revents & POLLIN) != 0) {
        accept_tcp_clients();
      }
    }

    if (snapshot_request.exchange(false)) snapshot_requested = true;
    const std::uint64_t now_ns = util::monotonic_ns();
    const bool frame_due =
        options_.snapshot_every_frames > 0 &&
        counters_.frames_accepted - frames_at_snapshot >= options_.snapshot_every_frames;
    const bool clock_due =
        options_.snapshot_every_ms > 0 &&
        now_ns - last_snapshot_ns >= options_.snapshot_every_ms * 1000000ull;
    const bool snapshot_due = snapshot_requested || frame_due || clock_due;
    if (!snapshot_due) {
      snapshot_due_since_ns = 0;
    } else if (snapshot_due_since_ns == 0) {
      snapshot_due_since_ns = now_ns;
    }
    const bool snapshot_overshot =
        snapshot_due && now_ns - snapshot_due_since_ns >= grace_ns;
    if (snapshot_due && (ready == 0 || snapshot_overshot)) {
      write_snapshot(/*forced=*/ready != 0);
      snapshot_requested = false;
      snapshot_due_since_ns = 0;
      frames_at_snapshot = counters_.frames_accepted;
      last_snapshot_ns = util::monotonic_ns();
    }

    const bool stats_due =
        options_.stats_every_frames > 0 &&
        counters_.frames_accepted - frames_at_stats >= options_.stats_every_frames;
    if (!stats_due) {
      stats_due_since_ns = 0;
    } else if (stats_due_since_ns == 0) {
      stats_due_since_ns = now_ns;
    }
    if (stats_due && (ready == 0 || now_ns - stats_due_since_ns >= grace_ns)) {
      export_stats(/*final_export=*/false);
      stats_due_since_ns = 0;
      frames_at_stats = counters_.frames_accepted;
    }
  }

  // Clean shutdown: no more accepts, ingest what's already in flight, score
  // it all, then persist the terminal state.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(options_.socket_path.c_str());
    listen_fd_ = -1;
  }
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  drain_all_clients();
  clients_.clear();
  fleet_.flush();
  write_snapshot(/*forced=*/false);
  export_stats(/*final_export=*/true);
}

}  // namespace emts::fleet
