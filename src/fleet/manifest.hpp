// Fleet manifest: the text file that names the devices a fleet hosts. One
// device per line, `<device_id> <archive.emta> [<model.emca>]`; blank lines
// and #-comments are skipped. Both the batch replayer (`emsentry_cli fleet`)
// and the ingest daemon (`serve`) read this format, so the parser lives here
// rather than in the tool.
#pragma once

#include <string>
#include <vector>

namespace emts::fleet {

struct ManifestEntry {
  std::string device_id;
  std::string archive_path;
  std::string model_path;  // empty: caller supplies a fleet-wide default
  std::size_t line_no = 0;  // 1-based line in the manifest file
};

/// Parses a manifest file. Throws precondition_error (with `path:line`
/// context) on an unreadable file, a malformed line, a duplicate device_id —
/// fleet device ids are unique keys, so a repeat would silently shadow the
/// earlier registration — or an empty device list.
std::vector<ManifestEntry> parse_manifest(const std::string& path);

}  // namespace emts::fleet
