// The one JSON rendering of monitor and fleet observability state. Three
// surfaces emit it — `emsentry_cli monitor --json`, `emsentry_cli fleet
// --json`, and the ingest daemon's periodic stats export — and they must
// stay parseable by one downstream schema, so the rendering lives here and
// nowhere else (DESIGN.md documents the schema next to §4g).
//
// Dependency-free by construction: hand-rolled escaping and %.17g number
// formatting (doubles round-trip exactly), no JSON library.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "fleet/fleet.hpp"
#include "fleet/server.hpp"
#include "util/latency.hpp"

namespace emts::fleet {

/// Version of the JSON schema below; emitted as "schema_version" in both the
/// monitor object and the fleet document. Bump when a key changes meaning or
/// disappears — additions alone do not require a bump, but got one here
/// (v1 -> v2) because the field itself is new, and again (v2 -> v3) when the
/// incremental spectral pipeline added the spectral_recomputes /
/// spectral_incremental_updates counters to every monitor object.
inline constexpr std::uint32_t kStatsSchemaVersion = 3;

/// JSON string escaping (control characters to \uXXXX).
std::string json_escape(const std::string& s);

/// Shortest round-trip rendering of one double ("%.17g").
std::string json_number(double value);

/// {"count":...,"p50_us":...,"p99_us":...,"max_us":...}
std::string latency_json(const util::LatencyHistogram& h);

/// One monitor session as a JSON object: state, last_score, the twelve
/// MonitorStats counters, both latency histograms, buffered events, and
/// schema_version. `monitor --json` prints exactly this object; the fleet
/// document and the daemon's stats export embed the identical object per
/// device.
std::string monitor_stats_json(core::MonitorState state,
                               const std::optional<double>& last_score,
                               const core::MonitorStats& stats,
                               const std::vector<core::MonitorEvent>& events);

/// The daemon's "server" object: the run's lifetime counters plus a
/// "connections" array of per-connection transport accounting
/// ({peer, transport, authenticated, bytes_received, frames_decoded}).
std::string server_stats_json(const ServerCounters& counters,
                              const std::vector<ServerConnectionStats>& connections);

/// The fleet document: schema_version, fleet aggregates, per-shard queue
/// accounting, and a "sessions" object keyed by device id (sorted — the
/// FleetStats contract), each value embedding monitor_stats_json. `events`
/// are drained fleet events, distributed to their sessions. A non-empty
/// `server_json` (server_stats_json output — only the ingest daemon has
/// one) is embedded as a "server" key; an addition, so the schema version
/// stays put.
std::string fleet_stats_json(const FleetStats& stats, BackpressurePolicy policy,
                             std::size_t queue_capacity,
                             const std::vector<FleetEvent>& events,
                             const std::string& server_json = {});

}  // namespace emts::fleet
