#include "fleet/fleet.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/fnv.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace emts::fleet {

const char* backpressure_label(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock:
      return "BLOCK";
    case BackpressurePolicy::kDropOldest:
      return "DROP_OLDEST";
    case BackpressurePolicy::kReject:
      return "REJECT";
  }
  return "?";
}

std::uint64_t device_hash(const std::string& device_id) {
  // FNV-1a, 64-bit (util::fnv1a64 — the same function the wire frames and
  // snapshot records use for checksums). std::hash<std::string> is
  // implementation-defined, which would let the same manifest land on
  // different shards across toolchains.
  return util::fnv1a64(device_id.data(), device_id.size());
}

namespace {

void pin_to_core(std::size_t shard_index) {
#if defined(__linux__)
  unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) cores = 1;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(shard_index % cores), &set);
  // Best effort: a restricted affinity mask (cgroups, taskset) can make the
  // chosen core invalid — the worker just keeps the inherited affinity.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)shard_index;
#endif
}

}  // namespace

FleetMonitor::FleetMonitor(const FleetOptions& options) : options_{options} {
  EMTS_REQUIRE(options_.shards >= 1, "fleet needs at least one shard");
  EMTS_REQUIRE(options_.queue_capacity >= 1, "shard queue capacity must be >= 1");
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, options_.queue_capacity));
  }
  // Sessions may be added (and submits arrive) as soon as the constructor
  // returns, so the workers start only after every Shard exists.
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    raw->worker = std::thread([this, raw] { worker_loop(*raw); });
  }
}

FleetMonitor::~FleetMonitor() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->stopping.store(true, std::memory_order_release);
    shard->work_ready.notify_all();
    shard->space_ready.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

std::size_t FleetMonitor::shard_of(const std::string& device_id) const {
  return static_cast<std::size_t>(device_hash(device_id) %
                                  static_cast<std::uint64_t>(shards_.size()));
}

void FleetMonitor::add_device(const std::string& device_id, core::TrustEvaluator evaluator) {
  add_device(device_id, std::move(evaluator), options_.monitor);
}

void FleetMonitor::add_device(const std::string& device_id, core::TrustEvaluator evaluator,
                              const core::RuntimeMonitor::Options& monitor_options) {
  EMTS_REQUIRE(!device_id.empty(), "device id must be non-empty");
  const double sample_rate = evaluator.sample_rate();
  const std::size_t shard = shard_of(device_id);
  auto session = std::make_unique<Session>(
      device_id, shard,
      core::RuntimeMonitor{sample_rate, std::move(evaluator), monitor_options});
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  EMTS_REQUIRE(sessions_.find(device_id) == sessions_.end(),
               "duplicate device '" + device_id + "'");
  sessions_.emplace(device_id, std::move(session));
}

bool FleetMonitor::has_device(const std::string& device_id) const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.find(device_id) != sessions_.end();
}

std::size_t FleetMonitor::device_count() const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  return sessions_.size();
}

std::vector<std::string> FleetMonitor::device_ids() const {
  std::vector<std::string> ids;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    ids.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

FleetMonitor::Session* FleetMonitor::find_session(const std::string& device_id) const {
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  const auto it = sessions_.find(device_id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

void FleetMonitor::wake_worker(Shard& shard) {
  // Store-fence-load handshake against the worker's park path: the worker
  // sets worker_parked, fences, then rechecks the queue before sleeping; we
  // published the enqueue, fence, then check worker_parked. At least one
  // side observes the other, and the notify happens under the mutex, so a
  // sleeping worker cannot miss new work.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (shard.worker_parked.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.work_ready.notify_one();
  }
}

void FleetMonitor::note_high_water(Shard& shard) {
  const std::size_t depth = shard.queue.size();
  std::size_t prev = shard.queue_high_water.load(std::memory_order_relaxed);
  while (depth > prev &&
         !shard.queue_high_water.compare_exchange_weak(
             prev, depth, std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
}

FleetMonitor::EnqueueOutcome FleetMonitor::enqueue_work(Shard& shard, WorkItem* items,
                                                        std::size_t n) {
  EnqueueOutcome out;
  std::size_t i = 0;
  bool counted_block = false;
  while (i < n) {
    const std::size_t took = shard.queue.try_enqueue(items + i, n - i);
    if (took > 0) {
      i += took;
      out.accepted += took;
      shard.submitted.fetch_add(took, std::memory_order_relaxed);
      note_high_water(shard);
      wake_worker(shard);
      continue;
    }
    // Ring full: apply the policy, then retry (another producer may race us
    // for any slot we free, so every pass re-attempts the enqueue).
    switch (options_.backpressure) {
      case BackpressurePolicy::kReject:
        shard.rejected_full.fetch_add(n - i, std::memory_order_relaxed);
        return out;
      case BackpressurePolicy::kDropOldest: {
        // The producer acts as a consumer for one slot: MPMC dequeue of the
        // oldest queued capture, destroyed on scope exit.
        WorkItem victim;
        if (shard.queue.try_dequeue(&victim, 1) == 1) {
          shard.dropped_oldest.fetch_add(1, std::memory_order_relaxed);
          out.evicted = true;
        }
        continue;
      }
      case BackpressurePolicy::kBlock: {
        if (!counted_block) {
          // One wait episode per call (submit() keeps its one-per-submission
          // meaning; a batch counts each time it has to park).
          shard.blocked.fetch_add(1, std::memory_order_relaxed);
          counted_block = true;
        }
        std::unique_lock<std::mutex> lock(shard.mutex);
        shard.block_waiters.fetch_add(1, std::memory_order_relaxed);
        // Mirror of wake_worker's handshake: register as a waiter, fence,
        // recheck occupancy; the worker advances cons_tail, fences, then
        // checks block_waiters.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        shard.space_ready.wait(lock, [&] {
          return shard.stopping.load(std::memory_order_relaxed) ||
                 shard.queue.size() < shard.queue.capacity();
        });
        shard.block_waiters.fetch_sub(1, std::memory_order_relaxed);
        if (shard.stopping.load(std::memory_order_relaxed)) {
          // Shutdown raced the wait; refuse rather than enqueue into a
          // draining fleet.
          shard.rejected_full.fetch_add(n - i, std::memory_order_relaxed);
          return out;
        }
        continue;
      }
    }
  }
  return out;
}

SubmitResult FleetMonitor::submit(const std::string& device_id, core::Trace trace) {
  EMTS_REQUIRE(!trace.empty(), "cannot submit an empty trace");
  Session* session = find_session(device_id);
  EMTS_REQUIRE(session != nullptr, "unknown device '" + device_id + "'");
  // Sessions are never removed, so `session` stays valid after the lookup
  // lock drops; its shard assignment is immutable.
  WorkItem item{session, std::move(trace)};
  const EnqueueOutcome out = enqueue_work(*shards_[session->shard], &item, 1);
  if (out.accepted == 0) return SubmitResult::kRejected;
  return out.evicted ? SubmitResult::kReplacedOldest : SubmitResult::kAccepted;
}

std::size_t FleetMonitor::submit_batch(const std::string& device_id,
                                       const core::TraceSet& batch) {
  EMTS_REQUIRE(!batch.empty(), "submit_batch needs traces");
  EMTS_REQUIRE(batch.trace_length() > 0, "cannot submit empty traces");
  Session* session = find_session(device_id);
  EMTS_REQUIRE(session != nullptr, "unknown device '" + device_id + "'");
  std::vector<WorkItem> items;
  items.reserve(batch.size());
  for (const core::Trace& trace : batch.traces) {
    items.push_back(WorkItem{session, core::Trace{trace}});
  }
  return enqueue_work(*shards_[session->shard], items.data(), items.size()).accepted;
}

SubmitResult FleetMonitor::submit_frame(io::wire::TraceFrame&& frame) {
  Session* session = find_session(frame.device_id);
  EMTS_REQUIRE(session != nullptr, "unknown device '" + frame.device_id + "'");
  // sample_rate() is immutable after construction, so this read needs no
  // exec lock even while the session's worker is scoring.
  const double expected = session->monitor.sample_rate();
  EMTS_REQUIRE(std::abs(frame.sample_rate - expected) <= 1e-6 * expected,
               "frame sample rate for '" + frame.device_id +
                   "' disagrees with the session's calibration");
  return submit(frame.device_id, std::move(frame.trace));
}

FrameBatchOutcome FleetMonitor::submit_frames(std::vector<io::wire::TraceFrame>&& frames) {
  FrameBatchOutcome out;
  if (frames.empty()) return out;

  // Vet every frame up front, grouping the valid ones by shard in arrival
  // order — one device's frames land in one group, still in order, so the
  // bulk reservation preserves per-device FIFO.
  std::vector<std::vector<WorkItem>> groups(shards_.size());
  for (io::wire::TraceFrame& frame : frames) {
    Session* session = find_session(frame.device_id);
    if (session == nullptr || frame.trace.empty()) {
      ++out.rejected_invalid;
      continue;
    }
    const double expected = session->monitor.sample_rate();
    if (std::abs(frame.sample_rate - expected) > 1e-6 * expected) {
      ++out.rejected_invalid;
      continue;
    }
    groups[session->shard].push_back(WorkItem{session, std::move(frame.trace)});
  }
  frames.clear();

  for (std::size_t s = 0; s < groups.size(); ++s) {
    std::vector<WorkItem>& items = groups[s];
    if (items.empty()) continue;
    const EnqueueOutcome enq = enqueue_work(*shards_[s], items.data(), items.size());
    out.accepted += enq.accepted;
    out.rejected_backpressure += items.size() - enq.accepted;
  }
  return out;
}

io::FleetSnapshot FleetMonitor::snapshot(SnapshotMode mode) {
  // Score everything already queued, then quiesce: the cut lands on a
  // whole-capture boundary for every device. Captures submitted after the
  // flush keep queueing (backpressure applies) and are simply on the far
  // side of the cut.
  flush();
  pause();

  io::FleetSnapshot out;
  out.shards = static_cast<std::uint32_t>(shards_.size());
  out.queue_capacity = static_cast<std::uint32_t>(options_.queue_capacity);
  out.backpressure = static_cast<std::uint8_t>(options_.backpressure);

  std::vector<const Session*> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) sessions.push_back(session.get());
  }
  std::sort(sessions.begin(), sessions.end(),
            [](const Session* a, const Session* b) { return a->device_id < b->device_id; });

  // The workers are quiesced, so per-session traces_ingested is stable for
  // the whole cut; the marks mutex only orders us against concurrent
  // acknowledge_alarm/drain_events markers.
  std::lock_guard<std::mutex> marks(snapshot_marks_mutex_);

  out.devices.reserve(sessions.size());
  for (const Session* session : sessions) {
    std::lock_guard<std::mutex> exec(shards_[session->shard]->exec_mutex);
    const std::uint64_t ingested = session->monitor.stats().traces_ingested;
    if (mode == SnapshotMode::kIncremental) {
      const auto mark = snapshot_marks_.find(session->device_id);
      const bool clean = mark != snapshot_marks_.end() && mark->second == ingested &&
                         snapshot_force_dirty_.count(session->device_id) == 0;
      if (clean) {
        io::FleetSnapshot::Device placeholder;
        placeholder.device_id = session->device_id;
        placeholder.dirty = false;
        out.devices.push_back(std::move(placeholder));
        continue;
      }
    }
    const core::TrustEvaluator* evaluator = session->monitor.evaluator();
    EMTS_REQUIRE(evaluator != nullptr,
                 "fleet snapshot: session '" + session->device_id + "' has no evaluator");
    out.devices.push_back(io::FleetSnapshot::Device{
        session->device_id, *evaluator, session->monitor.export_state()});
    snapshot_marks_[session->device_id] = ingested;
  }
  snapshot_force_dirty_.clear();
  resume();
  return out;
}

void FleetMonitor::restore(const io::FleetSnapshot& snapshot) {
  EMTS_REQUIRE(device_count() == 0, "fleet restore requires a fleet with no devices");
  for (const io::FleetSnapshot::Device& device : snapshot.devices) {
    const core::MonitorStateImage& image = device.monitor;
    // Per-session options come from the image's mirrors — restore_state()
    // refuses a mismatch, so defaults on this fleet can never silently
    // change a restored stream's debounce or window.
    core::RuntimeMonitor::Options monitor_options = options_.monitor;
    monitor_options.calibration_traces = static_cast<std::size_t>(image.calibration_traces);
    monitor_options.alarm_debounce = static_cast<std::size_t>(image.alarm_debounce);
    monitor_options.spectral_window = static_cast<std::size_t>(image.spectral_window);
    monitor_options.event_log_capacity = static_cast<std::size_t>(image.event_log_capacity);
    EMTS_REQUIRE(device.dirty && device.evaluator.has_value(),
                 "fleet restore: device '" + device.device_id +
                     "' is a clean placeholder — materialize it through the cache-aware"
                     " save first");
    add_device(device.device_id, *device.evaluator, monitor_options);
    Session* session = find_session(device.device_id);
    std::lock_guard<std::mutex> exec(shards_[session->shard]->exec_mutex);
    session->monitor.restore_state(image);
  }
}

void FleetMonitor::worker_loop(Shard& shard) {
  if (options_.pin_workers) pin_to_core(shard.index);
  for (;;) {
    WorkItem item;
    if (!shard.stopping.load(std::memory_order_acquire) &&
        shard.paused.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lock(shard.mutex);
      shard.worker_parked.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      // A stopping shard drains even while paused (the destructor's
      // drain-then-stop semantics must not hang on a paused fleet).
      shard.work_ready.wait(lock, [&] {
        return shard.stopping.load(std::memory_order_relaxed) ||
               !shard.paused.load(std::memory_order_relaxed);
      });
      shard.worker_parked.store(false, std::memory_order_relaxed);
      continue;
    }

    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      // Claim busy only while allowed to run, rechecked under the mutex:
      // pause() flips `paused` under this mutex and then waits on !busy, so
      // it can never observe an idle worker and still watch it score.
      if (!shard.stopping.load(std::memory_order_relaxed) &&
          shard.paused.load(std::memory_order_relaxed)) {
        continue;
      }
      shard.busy = true;
    }

    if (shard.queue.try_dequeue(&item, 1) == 0) {
      std::unique_lock<std::mutex> lock(shard.mutex);
      shard.busy = false;
      shard.idle.notify_all();  // busy→false is what pause()/flush() wait on
      if (shard.stopping.load(std::memory_order_relaxed) && shard.queue.empty()) {
        return;
      }
      shard.worker_parked.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      shard.work_ready.wait(lock, [&] {
        return shard.stopping.load(std::memory_order_relaxed) ||
               (!shard.queue.empty() && !shard.paused.load(std::memory_order_relaxed));
      });
      shard.worker_parked.store(false, std::memory_order_relaxed);
      continue;
    }

    // A slot just freed — wake kBlock producers if any are parked (the
    // mirror of wake_worker's handshake; see enqueue_work).
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (shard.block_waiters.load(std::memory_order_relaxed) > 0) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.space_ready.notify_all();
    }

    // Score outside any queue synchronization (producers keep flowing) but
    // under the shard's exec lock (snapshot readers never observe a
    // half-updated monitor). push() cannot throw here — empty traces are
    // refused at submit() and malformed traces are rejected by the monitor's
    // input gate — but a worker must outlive any detector bug, so swallow
    // and count.
    bool fault = false;
    {
      std::lock_guard<std::mutex> exec(shard.exec_mutex);
      try {
        item.session->monitor.push(item.trace);
      } catch (const std::exception&) {
        fault = true;
      }
    }
    shard.processed.fetch_add(1, std::memory_order_relaxed);
    if (fault) shard.worker_faults.fetch_add(1, std::memory_order_relaxed);

    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.busy = false;
      shard.idle.notify_all();
    }
  }
}

void FleetMonitor::pause() {
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mutex);
    shard->paused.store(true, std::memory_order_release);
    shard->work_ready.notify_all();
    shard->idle.wait(lock, [&] { return !shard->busy; });
  }
}

void FleetMonitor::resume() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->paused.store(false, std::memory_order_release);
    shard->work_ready.notify_all();
  }
}

void FleetMonitor::flush() {
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mutex);
    shard->idle.wait(lock, [&] { return shard->queue.empty() && !shard->busy; });
  }
}

core::MonitorState FleetMonitor::device_state(const std::string& device_id) const {
  const Session* session = find_session(device_id);
  EMTS_REQUIRE(session != nullptr, "unknown device '" + device_id + "'");
  std::lock_guard<std::mutex> exec(shards_[session->shard]->exec_mutex);
  return session->monitor.state();
}

void FleetMonitor::acknowledge_alarm(const std::string& device_id) {
  Session* session = find_session(device_id);
  EMTS_REQUIRE(session != nullptr, "unknown device '" + device_id + "'");
  {
    std::lock_guard<std::mutex> exec(shards_[session->shard]->exec_mutex);
    session->monitor.acknowledge_alarm();
  }
  // Mutates session state without moving traces_ingested — the incremental
  // dirty key can't see it, so mark explicitly.
  std::lock_guard<std::mutex> marks(snapshot_marks_mutex_);
  snapshot_force_dirty_.insert(device_id);
}

FleetStats FleetMonitor::stats() const {
  FleetStats out;
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats snapshot;
    snapshot.submitted = shard->submitted.load(std::memory_order_relaxed);
    snapshot.processed = shard->processed.load(std::memory_order_relaxed);
    snapshot.dropped_oldest = shard->dropped_oldest.load(std::memory_order_relaxed);
    snapshot.rejected_full = shard->rejected_full.load(std::memory_order_relaxed);
    snapshot.blocked = shard->blocked.load(std::memory_order_relaxed);
    snapshot.worker_faults = shard->worker_faults.load(std::memory_order_relaxed);
    snapshot.queue_depth = shard->queue.size();
    snapshot.queue_high_water = shard->queue_high_water.load(std::memory_order_relaxed);
    out.traces_submitted += snapshot.submitted;
    out.traces_processed += snapshot.processed;
    out.backpressure_dropped += snapshot.dropped_oldest;
    out.backpressure_rejected += snapshot.rejected_full;
    out.shards.push_back(snapshot);
  }

  std::vector<Session*> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) sessions.push_back(session.get());
  }
  std::sort(sessions.begin(), sessions.end(),
            [](const Session* a, const Session* b) { return a->device_id < b->device_id; });

  out.devices = sessions.size();
  out.sessions.reserve(sessions.size());
  for (const Session* session : sessions) {
    std::lock_guard<std::mutex> exec(shards_[session->shard]->exec_mutex);
    SessionStats snapshot;
    snapshot.device_id = session->device_id;
    snapshot.shard = session->shard;
    snapshot.state = session->monitor.state();
    snapshot.last_score = session->monitor.last_score();
    snapshot.monitor = session->monitor.stats();
    switch (snapshot.state) {
      case core::MonitorState::kCalibrating:
        ++out.devices_calibrating;
        break;
      case core::MonitorState::kMonitoring:
        ++out.devices_monitoring;
        break;
      case core::MonitorState::kAlarm:
        ++out.devices_alarm;
        break;
    }
    out.alarms_latched += snapshot.monitor.alarms_latched;
    out.traces_rejected_invalid += snapshot.monitor.traces_rejected;
    out.sessions.push_back(std::move(snapshot));
  }
  return out;
}

std::size_t FleetMonitor::drain_events(std::vector<FleetEvent>& out) {
  std::vector<Session*> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) sessions.push_back(session.get());
  }
  std::sort(sessions.begin(), sessions.end(),
            [](const Session* a, const Session* b) { return a->device_id < b->device_id; });

  std::size_t drained = 0;
  std::vector<core::MonitorEvent> scratch;
  for (Session* session : sessions) {
    scratch.clear();
    {
      std::lock_guard<std::mutex> exec(shards_[session->shard]->exec_mutex);
      session->monitor.drain_events(scratch);
    }
    if (!scratch.empty()) {
      // Emptied the session's event log: state moved without a push, so the
      // incremental dirty key must be forced.
      std::lock_guard<std::mutex> marks(snapshot_marks_mutex_);
      snapshot_force_dirty_.insert(session->device_id);
    }
    drained += scratch.size();
    for (core::MonitorEvent& event : scratch) {
      out.push_back(FleetEvent{session->device_id, event});
    }
  }
  return drained;
}

std::vector<FleetEvent> FleetMonitor::drain_events() {
  std::vector<FleetEvent> out;
  drain_events(out);
  return out;
}

}  // namespace emts::fleet
