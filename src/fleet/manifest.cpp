#include "fleet/manifest.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/assert.hpp"

namespace emts::fleet {

std::vector<ManifestEntry> parse_manifest(const std::string& path) {
  std::ifstream in(path);
  EMTS_REQUIRE(in.good(), "cannot open manifest " + path);
  std::vector<ManifestEntry> entries;
  std::unordered_map<std::string, std::size_t> first_line;  // device_id -> line
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream fields(line);
    ManifestEntry entry;
    if (!(fields >> entry.device_id)) continue;     // blank line
    if (entry.device_id.front() == '#') continue;   // comment
    entry.line_no = line_no;
    EMTS_REQUIRE(static_cast<bool>(fields >> entry.archive_path),
                 path + ":" + std::to_string(line_no) + ": expected `device_id archive.emta"
                 " [model.emca]`");
    fields >> entry.model_path;  // optional
    std::string extra;
    EMTS_REQUIRE(!(fields >> extra),
                 path + ":" + std::to_string(line_no) + ": trailing fields after model path");
    const auto [it, inserted] = first_line.emplace(entry.device_id, line_no);
    if (!inserted) {
      precondition_failure("unique device_id",
                           path + ":" + std::to_string(line_no) + ": duplicate device_id `" +
                               entry.device_id + "` (first listed at line " +
                               std::to_string(it->second) + ")");
    }
    entries.push_back(std::move(entry));
  }
  EMTS_REQUIRE(!entries.empty(), "manifest " + path + " lists no devices");
  return entries;
}

}  // namespace emts::fleet
