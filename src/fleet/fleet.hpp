// Fleet monitor: the multi-chip deployment layer above RuntimeMonitor. The
// paper's end state is runtime trust evaluation of deployed silicon, and the
// sensor-array follow-up (Wang et al., arXiv:2401.12193) makes explicit that
// real deployments watch *many* sensors/chips at once. FleetMonitor hosts N
// independent monitoring sessions keyed by a stable device id — each wrapping
// a pre-fitted RuntimeMonitor, typically loaded from one shared EMCA
// calibration artifact ("calibrate once, monitor many", now fleet-wide) —
// and routes incoming (device_id, Trace) captures to them through a fixed
// set of worker shards.
//
// Guarantees:
//   * Per-device ordering — a device maps to one shard (stable FNV-1a hash,
//     device_hash() % shards), each shard runs one worker draining a FIFO
//     ring, so one device's captures are scored in submission order while
//     different devices run concurrently. Batched submission preserves this:
//     a batch occupies one contiguous ring reservation.
//   * Bit-identical scoring — a session's monitor sees exactly the trace
//     sequence submitted for its device, so per-device results (scores,
//     states, stats, events) are bit-identical to running that device
//     through its own standalone RuntimeMonitor — on the per-trace, batched,
//     and wire-frame paths alike.
//   * Bounded ingest — every shard queue holds at most queue_capacity
//     traces; the backpressure policy decides what a full queue does to a
//     submitter (block, evict the oldest queued capture, or refuse), with
//     per-shard accounting for every outcome.
//   * Lock-free hot path — the shard queue is a bounded MPMC ring
//     (util::BoundedMpmcRing); producers and the worker touch a mutex only
//     to park/wake (kBlock full, idle worker) and for the control plane
//     (pause/resume/flush/snapshot). See DESIGN.md §4i.
//   * Fault isolation — shape-mismatched or non-finite captures are rejected
//     by the session monitor's input gate (a structured MonitorEvent plus a
//     traces_rejected counter), never poisoning the detector stack or the
//     shard worker.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/monitor.hpp"
#include "core/trace.hpp"
#include "io/snapshot.hpp"
#include "io/wire.hpp"
#include "util/mpmc_ring.hpp"

namespace emts::fleet {

/// What a full shard queue does to a submitter.
enum class BackpressurePolicy : std::uint8_t {
  kBlock,       // wait until the worker frees a slot (lossless, applies flow
                // control to the producer)
  kDropOldest,  // evict the oldest queued capture to admit the new one
                // (bounded latency, sacrifices completeness)
  kReject       // refuse the new capture (caller decides; lossless for the
                // queue, lossy for the stream)
};

const char* backpressure_label(BackpressurePolicy policy);

/// Outcome of one submit().
enum class SubmitResult : std::uint8_t {
  kAccepted,        // enqueued (possibly after blocking)
  kReplacedOldest,  // enqueued; the shard's oldest queued capture was evicted
  kRejected         // refused by the kReject policy; the trace was not taken
};

struct FleetOptions {
  /// Worker shards (>= 1). Devices hash onto shards; each shard owns one
  /// worker thread and one bounded queue.
  std::size_t shards = 2;
  /// Per-shard queue capacity (>= 1), in traces.
  std::size_t queue_capacity = 64;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Pin shard worker i to CPU (i % hardware cores). Linux-only (no-op
  /// elsewhere); pointless when shards exceed cores — see DESIGN.md §4i for
  /// when pinning helps and when it hurts.
  bool pin_workers = false;
  /// Options for every session's RuntimeMonitor (calibration_traces is
  /// irrelevant — fleet sessions are pre-fitted).
  core::RuntimeMonitor::Options monitor{};
};

/// One shard's lifetime accounting (a point-in-time copy of the shard's
/// atomic counters; totals are exact, queue_depth/high_water are sampled).
struct ShardStats {
  std::uint64_t submitted = 0;       // captures accepted into the queue
  std::uint64_t processed = 0;       // captures drained and scored
  std::uint64_t dropped_oldest = 0;  // kDropOldest evictions
  std::uint64_t rejected_full = 0;   // kReject refusals
  std::uint64_t blocked = 0;         // kBlock submissions that had to wait
  std::uint64_t worker_faults = 0;   // exceptions swallowed by the worker
  std::size_t queue_depth = 0;       // at snapshot time
  std::size_t queue_high_water = 0;  // deepest the queue has ever been
};

/// One session's snapshot inside FleetStats.
struct SessionStats {
  std::string device_id;
  std::size_t shard = 0;
  core::MonitorState state{};
  std::optional<double> last_score{};
  core::MonitorStats monitor;
};

/// Fleet-wide observability snapshot (stats()).
struct FleetStats {
  std::vector<ShardStats> shards;
  std::vector<SessionStats> sessions;  // sorted by device id

  // Aggregates over the shards…
  std::uint64_t traces_submitted = 0;
  std::uint64_t traces_processed = 0;
  std::uint64_t backpressure_dropped = 0;   // kDropOldest evictions
  std::uint64_t backpressure_rejected = 0;  // kReject refusals

  // …and over the sessions (the fleet verdict counts).
  std::size_t devices = 0;
  std::size_t devices_calibrating = 0;
  std::size_t devices_monitoring = 0;
  std::size_t devices_alarm = 0;
  std::uint64_t alarms_latched = 0;
  std::uint64_t traces_rejected_invalid = 0;  // session input-gate rejections
};

/// A session monitor event tagged with its device.
struct FleetEvent {
  std::string device_id;
  core::MonitorEvent event;
};

/// Outcome of one submit_frames() batch.
struct FrameBatchOutcome {
  std::size_t accepted = 0;               // enqueued for scoring
  std::size_t rejected_backpressure = 0;  // kReject refusals (queue full)
  std::size_t rejected_invalid = 0;       // unknown device / rate mismatch /
                                          // empty trace
};

/// Stable 64-bit FNV-1a hash of a device id — the shard router. Stable
/// across platforms and runs (std::hash is not), so a fleet replay assigns
/// the same devices to the same shards everywhere.
std::uint64_t device_hash(const std::string& device_id);

/// How much of the fleet a snapshot() cut copies. kFull copies every
/// session. kIncremental copies only *dirty* sessions — those whose monitor
/// state moved since the previous cut (any push advances traces_ingested;
/// acknowledge_alarm/drain_events mark the session dirty explicitly) — and
/// emits clean sessions as placeholders (Device::dirty == false) for the
/// cache-aware io::save_fleet_snapshot overload to fill from its record
/// cache. Both modes advance the dirty baseline.
enum class SnapshotMode : std::uint8_t { kFull, kIncremental };

class FleetMonitor {
 public:
  explicit FleetMonitor(const FleetOptions& options = {});

  /// Drains every queue, then stops and joins the shard workers.
  ~FleetMonitor();

  FleetMonitor(const FleetMonitor&) = delete;
  FleetMonitor& operator=(const FleetMonitor&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  const FleetOptions& options() const { return options_; }

  /// Shard a device id routes to: device_hash(id) % shard_count().
  std::size_t shard_of(const std::string& device_id) const;

  /// Registers a monitoring session for `device_id` around a pre-fitted
  /// evaluator (io::load_calibration). The session cold-starts in
  /// kMonitoring. Throws precondition_error on a duplicate id or an empty
  /// id. Safe to call while traffic is flowing for other devices.
  void add_device(const std::string& device_id, core::TrustEvaluator evaluator);
  void add_device(const std::string& device_id, core::TrustEvaluator evaluator,
                  const core::RuntimeMonitor::Options& monitor_options);

  bool has_device(const std::string& device_id) const;
  std::size_t device_count() const;
  std::vector<std::string> device_ids() const;  // sorted

  /// Routes one capture to its device's session. Thread-safe; callers that
  /// need per-device ordering must submit a given device's captures from one
  /// thread (the natural shape: one producer per sensor front-end).
  /// Throws precondition_error for an unknown device or an empty trace;
  /// malformed-but-plausible traces (wrong shape, non-finite samples) are
  /// accepted here and rejected by the session's input gate with a
  /// structured event — see RuntimeMonitor::push.
  SubmitResult submit(const std::string& device_id, core::Trace trace);

  /// Submits a whole batch for one device with a single ring reservation
  /// per contiguous run — the amortized path: one CAS admits the run that
  /// fits instead of one synchronization round per trace. Trace order is
  /// preserved (a reservation is contiguous), so results are bit-identical
  /// to per-trace submit(). Returns the number of traces accepted (kReject
  /// refusals are counted out; with kBlock or kDropOldest this always
  /// equals batch.size()). `blocked` counts wait episodes, not traces.
  std::size_t submit_batch(const std::string& device_id, const core::TraceSet& batch);

  /// submit() for a decoded wire frame (io::wire::FrameDecoder output) — the
  /// ingest daemon's entry point. The frame's device must be registered and
  /// its sample rate must match the session's (within 1e-6 relative); either
  /// mismatch throws precondition_error, so a daemon can refuse a frame
  /// without perturbing any session state.
  SubmitResult submit_frame(io::wire::TraceFrame&& frame);

  /// Batched submit_frame for a drained decoder buffer: frames are vetted,
  /// grouped by shard in arrival order, and bulk-enqueued (one reservation
  /// per contiguous run). Invalid frames (unknown device, sample-rate
  /// mismatch, empty trace) are counted instead of thrown, so one bad frame
  /// never blocks the rest of a network read. Per-device ordering holds:
  /// one device's frames stay in arrival order within its shard group.
  FrameBatchOutcome submit_frames(std::vector<io::wire::TraceFrame>&& frames);

  /// Barrier: returns once every capture submitted before the call has been
  /// scored and all workers are idle. Concurrent submitters may of course
  /// re-fill the queues afterwards. Must not be called on a paused fleet
  /// with queued work — a paused worker never drains.
  void flush();

  /// Quiesces the shard workers: any capture in flight finishes, then nothing
  /// further is scored until resume(). Captures keep queueing (and the
  /// backpressure policy keeps applying), which is exactly what a maintenance
  /// window looks like — and what deterministic queue-saturation tests need.
  void pause();
  void resume();

  /// Consistent point-in-time image of the whole fleet: every queued capture
  /// is scored (flush), the workers quiesce (pause), every session's fitted
  /// evaluator and complete monitor state are copied, and the workers resume.
  /// Concurrent submitters land on one side of the cut or the other — never
  /// half-scored. The image round-trips through io::save_fleet_snapshot /
  /// load_fleet_snapshot and restore(), after which every session continues
  /// its stream bit-identically to one that was never interrupted.
  ///
  /// kIncremental copies only sessions dirtied since the previous cut (see
  /// SnapshotMode); the paused window then scales with dirty devices, not
  /// fleet size. Clean placeholder devices must be materialized by the
  /// cache-aware save overload — they cannot be restore()d directly.
  io::FleetSnapshot snapshot(SnapshotMode mode = SnapshotMode::kFull);

  /// Reinstates a snapshot's sessions onto this fleet, which must not have
  /// any devices yet (shard layout may differ from the snapshot's — device
  /// routing is a pure function of the id). Each session resumes with the
  /// exported monitor state; per-session monitor options come from the
  /// image's option mirrors, not this fleet's defaults. Throws
  /// precondition_error if the fleet already has devices or an image is
  /// inconsistent.
  void restore(const io::FleetSnapshot& snapshot);

  /// Current state of one device's session (safe while traffic flows).
  core::MonitorState device_state(const std::string& device_id) const;

  /// Clears a latched alarm on one device (RuntimeMonitor::acknowledge_alarm
  /// semantics; throws if that session is not alarmed).
  void acknowledge_alarm(const std::string& device_id);

  /// Consistent fleet-wide snapshot: per-shard queue accounting, per-session
  /// monitor stats, and the fleet verdict counts. Safe while traffic flows
  /// (workers pause between captures, never mid-score).
  FleetStats stats() const;

  /// Moves every session's buffered events into `out` (appended), tagged
  /// with their device id, sessions in sorted-id order, each session's
  /// events oldest first. Clears the session logs. Returns the number of
  /// events drained.
  std::size_t drain_events(std::vector<FleetEvent>& out);
  std::vector<FleetEvent> drain_events();

 private:
  struct Session {
    std::string device_id;
    std::size_t shard = 0;
    core::RuntimeMonitor monitor;  // pinned: sessions live behind unique_ptr

    Session(std::string id, std::size_t shard_index, core::RuntimeMonitor m)
        : device_id{std::move(id)}, shard{shard_index}, monitor{std::move(m)} {}
  };

  struct WorkItem {
    Session* session = nullptr;
    core::Trace trace;
  };

  /// One worker shard. The hot path is the lock-free `queue` plus the atomic
  /// counters; `mutex` exists only so threads can *sleep* (a parked worker,
  /// kBlock producers waiting for space) and for the control plane
  /// (pause/resume/flush/stop). The parked/waiter flags implement the
  /// store-fence-load wakeup handshake described in DESIGN.md §4i; notifies
  /// are issued while holding `mutex`, so a registered sleeper can never
  /// miss its wakeup. exec_mutex guards the shard's session monitors (held
  /// by the worker per capture, and by snapshot readers) so
  /// stats()/drain_events() never race a score in flight and never block
  /// producers.
  struct Shard {
    Shard(std::size_t shard_index, std::size_t capacity)
        : index{shard_index}, queue{capacity} {}

    const std::size_t index;
    util::BoundedMpmcRing<WorkItem> queue;

    // Lifetime counters — exact totals, no lock on the increment path.
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> processed{0};
    std::atomic<std::uint64_t> dropped_oldest{0};
    std::atomic<std::uint64_t> rejected_full{0};
    std::atomic<std::uint64_t> blocked{0};
    std::atomic<std::uint64_t> worker_faults{0};
    std::atomic<std::size_t> queue_high_water{0};

    // Park/wake + control plane.
    mutable std::mutex mutex;
    std::condition_variable work_ready;   // worker: queue non-empty / stopping
    std::condition_variable space_ready;  // kBlock producers: slot freed
    std::condition_variable idle;         // flush(): queue empty and not busy
    std::atomic<bool> paused{false};      // written under mutex
    std::atomic<bool> stopping{false};    // written under mutex
    std::atomic<bool> worker_parked{false};
    std::atomic<std::size_t> block_waiters{0};
    bool busy = false;  // worker is scoring a dequeued item (guarded by mutex)

    mutable std::mutex exec_mutex;
    std::thread worker;
  };

  struct EnqueueOutcome {
    std::size_t accepted = 0;
    bool evicted = false;  // any kDropOldest eviction happened
  };

  Session* find_session(const std::string& device_id) const;
  void worker_loop(Shard& shard);

  /// Moves items[0..n) into the shard ring under the fleet's backpressure
  /// policy. Bulk: each pass reserves the longest contiguous run that fits.
  /// Accepts fewer than n only under kReject (queue full) or when shutdown
  /// races a kBlock wait.
  EnqueueOutcome enqueue_work(Shard& shard, WorkItem* items, std::size_t n);

  /// Wakes the shard worker if it is parked (enqueue fast path stays
  /// lock-free when the worker is running).
  static void wake_worker(Shard& shard);
  static void note_high_water(Shard& shard);

  FleetOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex sessions_mutex_;  // guards the map itself
  std::unordered_map<std::string, std::unique_ptr<Session>> sessions_;

  /// Incremental-snapshot dirty baseline: traces_ingested per device at the
  /// last cut (missing entry = never snapshotted = dirty) plus explicit marks
  /// for mutations pushes don't cover (acknowledge_alarm, drain_events).
  /// Guarded by its own mutex — markers run on user threads while workers
  /// score.
  mutable std::mutex snapshot_marks_mutex_;
  std::unordered_map<std::string, std::uint64_t> snapshot_marks_;
  std::unordered_set<std::string> snapshot_force_dirty_;
};

}  // namespace emts::fleet
