// Ingest daemon around a FleetMonitor: a unix-domain-socket accept loop that
// decodes EMWF trace frames from any number of client connections and routes
// them into the fleet's shard queues (submit_frame). This is the service
// surface of the paper's deployment story — sensors stream captures to a
// long-running trust evaluator instead of batch replays — grown on top of
// the existing bounded-ingest machinery: the shard queues, backpressure
// policies and per-device ordering all apply unchanged to socket traffic.
//
// The loop is cooperative and signal-driven. `stop` (set by SIGINT/SIGTERM
// in the CLI) triggers a clean shutdown: drain every connection's kernel
// buffer, flush the fleet, write a final snapshot and stats export, then
// return. `snapshot_request` (SIGUSR1) asks for a mid-flight snapshot; it is
// honored only on an idle poll round, after every byte the clients have
// already sent has been ingested — so the cut is deterministic for a client
// that stops sending and then raises the signal. Snapshots and stats land
// via write-to-temp-then-rename, so a file that exists is always complete.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"

namespace emts::fleet {

struct ServerOptions {
  /// Path of the unix-domain listening socket (created; a stale file at the
  /// path is unlinked first; unlinked again on shutdown).
  std::string socket_path;

  /// Snapshot (EMFS) destination. Empty disables snapshots entirely —
  /// including the shutdown snapshot and SIGUSR1 requests.
  std::string snapshot_path;
  /// Also snapshot automatically every N accepted frames (0 = only on
  /// request and shutdown).
  std::uint64_t snapshot_every_frames = 0;
  /// Also snapshot automatically every N wall-clock milliseconds (0 = no
  /// wall-clock cadence). Like every other automatic snapshot, honored only
  /// on idle poll rounds, so the cut stays deterministic; combinable with
  /// the frame cadence (either being due triggers a snapshot).
  std::uint64_t snapshot_every_ms = 0;

  /// Periodic fleet stats JSON destination (fleet_stats_json schema). Empty
  /// disables the export. The final export at shutdown drains and includes
  /// buffered events; periodic exports do not drain them (observability must
  /// not perturb the stream).
  std::string stats_path;
  /// Export stats every N accepted frames (0 = only the final export).
  std::uint64_t stats_every_frames = 0;

  /// poll() granularity; bounds signal-to-reaction latency.
  int poll_timeout_ms = 50;
  /// Concurrent client connections; further accepts are closed immediately.
  std::size_t max_clients = 64;
};

/// Lifetime accounting of one serve run.
struct ServerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;    // clean EOFs
  std::uint64_t connections_dropped = 0;   // protocol violations, over-limit
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_accepted = 0;       // decoded and routed into the fleet
  std::uint64_t frames_rejected = 0;       // unknown device, rate mismatch, or
                                           // kReject backpressure refusals
  std::uint64_t snapshots_written = 0;
  std::uint64_t stats_exports = 0;
};

class IngestServer {
 public:
  /// Binds and listens immediately (throws precondition_error on failure);
  /// traffic flows once run() is entered. The fleet must outlive the server.
  IngestServer(FleetMonitor& fleet, ServerOptions options);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Serves until `stop` becomes true, then shuts down cleanly (drain,
  /// flush, final snapshot + stats). `snapshot_request` may be set at any
  /// time (signal-safe); it is consumed on the next idle poll round.
  void run(const std::atomic<bool>& stop, std::atomic<bool>& snapshot_request);

  const ServerCounters& counters() const { return counters_; }
  const ServerOptions& options() const { return options_; }

 private:
  struct Client;

  void accept_clients();
  /// Reads every byte currently available on one client; returns false when
  /// the connection is finished (EOF or protocol error) and must be closed.
  bool service_client(Client& client);
  void drain_all_clients();
  void write_snapshot();
  void export_stats(bool final_export);

  FleetMonitor& fleet_;
  ServerOptions options_;
  ServerCounters counters_{};
  int listen_fd_ = -1;
  std::vector<std::unique_ptr<Client>> clients_;
  /// Scratch for batch frame draining: filled per recv() chunk, handed to
  /// FleetMonitor::submit_frames in one call, capacity reused across chunks.
  std::vector<io::wire::TraceFrame> frame_batch_;
};

/// Parses a `--snapshot-every` cadence argument: a bare count means frames,
/// an `s` or `ms` suffix means wall-clock time (returned in the second
/// member, in milliseconds; the first member is 0 then, and vice versa).
/// Throws precondition_error on empty input, garbage digits or an unknown
/// suffix — the CLI maps that to a usage error (exit 2).
struct SnapshotCadence {
  std::uint64_t every_frames = 0;
  std::uint64_t every_ms = 0;
};
SnapshotCadence parse_snapshot_cadence(const std::string& text);

}  // namespace emts::fleet
