// Ingest daemon around a FleetMonitor: an accept loop over a unix-domain
// socket and/or a TCP listener that decodes EMWF trace frames from any
// number of client connections and routes them into the fleet's shard
// queues (submit_frame). This is the service surface of the paper's
// deployment story — sensors stream captures to a long-running trust
// evaluator instead of batch replays — grown on top of the existing
// bounded-ingest machinery: the shard queues, backpressure policies and
// per-device ordering all apply unchanged to socket traffic.
//
// Transports. Unix-socket clients are trusted by filesystem permissions.
// TCP clients (same EMWF framing, TCP_NODELAY) pass two gates: an IPv4
// CIDR/host allowlist checked at accept time, and — when the daemon is
// configured with a shared secret — a HELLO auth frame that must be the
// first frame on the connection; trace frames before a successful HELLO
// close the connection without ingesting anything.
//
// The loop is cooperative and signal-driven. `stop` (set by SIGINT/SIGTERM
// in the CLI) triggers a clean shutdown: drain every connection's kernel
// buffer, flush the fleet, write a final snapshot and stats export, then
// return. `snapshot_request` (SIGUSR1) asks for a mid-flight snapshot.
// Snapshots and stats prefer an idle poll round (every byte the clients
// already sent is ingested, so the cut is deterministic for a quiescent
// client) — but a daemon under sustained load may never see an idle round,
// so a due snapshot/stats export overshooting its deadline by more than one
// poll interval is forced anyway (counted in `snapshots_forced`; the cut is
// still consistent, FleetMonitor::snapshot flushes and pauses). Artifacts
// land via write-to-temp, fsync, rename, fsync-directory
// (io::durable_replace), so a file that exists is complete *and* survives a
// power cut.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/fleet.hpp"
#include "io/snapshot.hpp"

namespace emts::fleet {

struct ServerOptions {
  /// Path of the unix-domain listening socket. Empty disables the unix
  /// transport (then listen_address must be set). The constructor probes an
  /// existing socket file with connect() first: a live daemon behind it is a
  /// hard error, only a stale (connection-refused) file is unlinked.
  std::string socket_path;

  /// TCP listen endpoint as "host:port" (numeric IPv4, e.g.
  /// "127.0.0.1:7600"). Empty disables the TCP transport.
  std::string listen_address;

  /// IPv4 allowlist for TCP peers: "a.b.c.d" single hosts or "a.b.c.d/n"
  /// CIDR blocks. Empty allows any peer. Rejected accepts are closed
  /// immediately and counted (connections_rejected_acl). Unix-socket
  /// clients are never filtered.
  std::vector<std::string> allow;

  /// Shared secret for TCP connections. Non-empty requires every TCP client
  /// to authenticate with a HELLO frame carrying exactly this token before
  /// its first trace frame. Unix-socket clients never need auth.
  std::string auth_secret;

  /// Snapshot (EMFS) destination. Empty disables snapshots entirely —
  /// including the shutdown snapshot and SIGUSR1 requests.
  std::string snapshot_path;
  /// Also snapshot automatically every N accepted frames (0 = only on
  /// request and shutdown).
  std::uint64_t snapshot_every_frames = 0;
  /// Also snapshot automatically every N wall-clock milliseconds (0 = no
  /// wall-clock cadence). Combinable with the frame cadence (either being
  /// due triggers a snapshot).
  std::uint64_t snapshot_every_ms = 0;

  /// Incremental snapshot cuts: copy and re-encode only devices whose state
  /// moved since the last cut, stream the rest from the in-memory record
  /// cache (io::FleetSnapshotRecordCache). Every written file is still a
  /// complete EMFS container, byte-identical to a full rewrite.
  bool incremental_snapshots = false;
  /// In incremental mode, force a full rewrite every Nth snapshot (>= 1) as
  /// a periodic safety net; the first cut is always full (cold cache).
  std::uint64_t full_snapshot_every = 16;

  /// Periodic fleet stats JSON destination (fleet_stats_json schema). Empty
  /// disables the export. The final export at shutdown drains and includes
  /// buffered events; periodic exports do not drain them (observability must
  /// not perturb the stream).
  std::string stats_path;
  /// Export stats every N accepted frames (0 = only the final export).
  std::uint64_t stats_every_frames = 0;

  /// poll() granularity; bounds signal-to-reaction latency, and doubles as
  /// the grace window before a due snapshot/stats export is forced onto a
  /// busy loop.
  int poll_timeout_ms = 50;
  /// Concurrent client connections; further accepts are closed immediately.
  std::size_t max_clients = 64;
};

/// Lifetime accounting of one serve run.
struct ServerCounters {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;    // clean EOFs
  std::uint64_t connections_dropped = 0;   // protocol violations, over-limit
  std::uint64_t connections_rejected_acl = 0;  // TCP accepts outside the allowlist
  std::uint64_t auth_failures = 0;         // bad HELLO token / trace before auth
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_accepted = 0;       // decoded and routed into the fleet
  std::uint64_t frames_rejected = 0;       // unknown device, rate mismatch, or
                                           // kReject backpressure refusals
  std::uint64_t snapshots_written = 0;
  std::uint64_t snapshots_forced = 0;      // cut on a busy round after overshoot
  std::uint64_t snapshot_records_reused = 0;     // incremental-mode cache hits
  std::uint64_t snapshot_records_rewritten = 0;  // re-encoded device records
  std::uint64_t stats_exports = 0;
};

/// Per-connection transport accounting, surfaced in the stats export.
struct ServerConnectionStats {
  std::string peer;  // "unix" or "a.b.c.d:port"
  bool tcp = false;
  bool authenticated = false;  // always true for unix / no-secret connections
  std::uint64_t bytes_received = 0;
  std::uint64_t frames_decoded = 0;
};

/// Parsed "host:port" TCP endpoint (numeric IPv4 only). Throws
/// precondition_error on a malformed host, missing colon, or a port outside
/// 1..65535 — the CLI maps that to a usage error.
struct TcpEndpoint {
  std::uint32_t addr = 0;  // host byte order
  std::uint16_t port = 0;
};
TcpEndpoint parse_tcp_endpoint(const std::string& text);

/// Parsed IPv4 allowlist rule: "a.b.c.d" (an exact host, /32) or
/// "a.b.c.d/n". Throws precondition_error on malformed input.
struct CidrRule {
  std::uint32_t network = 0;  // host byte order, already masked
  std::uint32_t mask = 0;     // host byte order
};
CidrRule parse_cidr(const std::string& text);
bool cidr_match(const CidrRule& rule, std::uint32_t addr_host_order);

class IngestServer {
 public:
  /// Binds and listens immediately on every configured transport (throws
  /// precondition_error on failure); traffic flows once run() is entered.
  /// The fleet must outlive the server.
  IngestServer(FleetMonitor& fleet, ServerOptions options);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Serves until `stop` becomes true, then shuts down cleanly (drain,
  /// flush, final snapshot + stats). `snapshot_request` may be set at any
  /// time (signal-safe); it is consumed on the next poll round — idle if
  /// one comes soon enough, forced onto a busy round otherwise.
  void run(const std::atomic<bool>& stop, std::atomic<bool>& snapshot_request);

  const ServerCounters& counters() const { return counters_; }
  const ServerOptions& options() const { return options_; }

  /// Point-in-time copy of every live connection's accounting (sorted by
  /// peer label, ties broken by age).
  std::vector<ServerConnectionStats> connection_stats() const;

 private:
  struct Client;

  void setup_unix_listener();
  void setup_tcp_listener();
  void accept_unix_clients();
  void accept_tcp_clients();
  bool admit_client(int fd);
  /// Reads every byte currently available on one client; returns false when
  /// the connection is finished (EOF or protocol error) and must be closed.
  bool service_client(Client& client);
  void drain_all_clients();
  void write_snapshot(bool forced);
  void export_stats(bool final_export);

  FleetMonitor& fleet_;
  ServerOptions options_;
  ServerCounters counters_{};
  int listen_fd_ = -1;      // unix transport (-1 when disabled)
  int tcp_listen_fd_ = -1;  // TCP transport (-1 when disabled)
  std::vector<CidrRule> allow_rules_;
  std::vector<std::unique_ptr<Client>> clients_;
  /// Scratch for batch frame draining: filled per recv() chunk, handed to
  /// FleetMonitor::submit_frames in one call, capacity reused across chunks.
  std::vector<io::wire::TraceFrame> frame_batch_;
  /// Incremental-snapshot record cache + full-rewrite cadence state.
  io::FleetSnapshotRecordCache snapshot_cache_;
  bool snapshot_cache_primed_ = false;
  std::uint64_t snapshots_since_full_ = 0;
};

/// Parses a `--snapshot-every` cadence argument: a bare count means frames,
/// an `s` or `ms` suffix means wall-clock time (returned in the second
/// member, in milliseconds; the first member is 0 then, and vice versa).
/// Throws precondition_error on empty input, garbage digits, an unknown
/// suffix, or a zero value (`0`, `0s`, `0ms` would silently disable the
/// cadence — disabling is spelled by omitting the flag) — the CLI maps that
/// to a usage error (exit 2).
struct SnapshotCadence {
  std::uint64_t every_frames = 0;
  std::uint64_t every_ms = 0;
};
SnapshotCadence parse_snapshot_cadence(const std::string& text);

}  // namespace emts::fleet
