#include "fleet/stats_json.hpp"

#include <cstdio>

namespace emts::fleet {

namespace {

void append_u64(std::string& out, const char* key, std::uint64_t value) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(value);
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::string latency_json(const util::LatencyHistogram& h) {
  std::string out = "{";
  append_u64(out, "count", h.count());
  out += ",\"p50_us\":" + json_number(h.p50_ns() / 1e3);
  out += ",\"p99_us\":" + json_number(h.p99_ns() / 1e3);
  out += ",\"max_us\":" + json_number(static_cast<double>(h.max_ns()) / 1e3);
  out += "}";
  return out;
}

std::string monitor_stats_json(core::MonitorState state,
                               const std::optional<double>& last_score,
                               const core::MonitorStats& stats,
                               const std::vector<core::MonitorEvent>& events) {
  std::string out = "{";
  append_u64(out, "schema_version", kStatsSchemaVersion);
  out += ",\"state\":\"";
  out += core::monitor_state_label(state);
  out += "\",\"last_score\":";
  out += last_score.has_value() ? json_number(*last_score) : "null";
  out += ',';
  append_u64(out, "traces_ingested", stats.traces_ingested);
  out += ',';
  append_u64(out, "traces_rejected", stats.traces_rejected);
  out += ',';
  append_u64(out, "calibration_captures", stats.calibration_captures);
  out += ',';
  append_u64(out, "scored_captures", stats.scored_captures);
  out += ',';
  append_u64(out, "per_trace_anomalies", stats.per_trace_anomalies);
  out += ',';
  append_u64(out, "spectral_passes", stats.spectral_passes);
  out += ',';
  append_u64(out, "windowed_anomalies", stats.windowed_anomalies);
  out += ',';
  append_u64(out, "spectral_recomputes", stats.spectral_recomputes);
  out += ',';
  append_u64(out, "spectral_incremental_updates", stats.spectral_incremental_updates);
  out += ',';
  append_u64(out, "alarms_latched", stats.alarms_latched);
  out += ',';
  append_u64(out, "alarms_acknowledged", stats.alarms_acknowledged);
  out += ',';
  append_u64(out, "events_dropped", stats.events_dropped);
  out += ",\"push_latency\":" + latency_json(stats.push_latency);
  out += ",\"spectral_latency\":" + latency_json(stats.spectral_latency);
  out += ",\"events\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) out += ',';
    out += "{";
    append_u64(out, "trace_index", events[i].trace_index);
    out += ",\"kind\":\"";
    out += core::monitor_event_label(events[i].kind);
    out += "\",\"value\":" + json_number(events[i].value) + "}";
  }
  out += "]}";
  return out;
}

std::string server_stats_json(const ServerCounters& counters,
                              const std::vector<ServerConnectionStats>& connections) {
  std::string out = "{";
  append_u64(out, "connections_accepted", counters.connections_accepted);
  out += ',';
  append_u64(out, "connections_closed", counters.connections_closed);
  out += ',';
  append_u64(out, "connections_dropped", counters.connections_dropped);
  out += ',';
  append_u64(out, "connections_rejected_acl", counters.connections_rejected_acl);
  out += ',';
  append_u64(out, "auth_failures", counters.auth_failures);
  out += ',';
  append_u64(out, "bytes_received", counters.bytes_received);
  out += ',';
  append_u64(out, "frames_accepted", counters.frames_accepted);
  out += ',';
  append_u64(out, "frames_rejected", counters.frames_rejected);
  out += ',';
  append_u64(out, "snapshots_written", counters.snapshots_written);
  out += ',';
  append_u64(out, "snapshots_forced", counters.snapshots_forced);
  out += ',';
  append_u64(out, "snapshot_records_reused", counters.snapshot_records_reused);
  out += ',';
  append_u64(out, "snapshot_records_rewritten", counters.snapshot_records_rewritten);
  out += ',';
  append_u64(out, "stats_exports", counters.stats_exports);
  out += ",\"connections\":[";
  for (std::size_t c = 0; c < connections.size(); ++c) {
    const ServerConnectionStats& conn = connections[c];
    if (c != 0) out += ',';
    out += "{\"peer\":\"" + json_escape(conn.peer) + "\",\"transport\":\"";
    out += conn.tcp ? "tcp" : "unix";
    out += "\",\"authenticated\":";
    out += conn.authenticated ? "true" : "false";
    out += ',';
    append_u64(out, "bytes_received", conn.bytes_received);
    out += ',';
    append_u64(out, "frames_decoded", conn.frames_decoded);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string fleet_stats_json(const FleetStats& stats, BackpressurePolicy policy,
                             std::size_t queue_capacity,
                             const std::vector<FleetEvent>& events,
                             const std::string& server_json) {
  std::string out = "{";
  append_u64(out, "schema_version", kStatsSchemaVersion);
  out += ',';
  append_u64(out, "devices", stats.devices);
  out += ",\"shards\":" + std::to_string(stats.shards.size());
  out += ",\"policy\":\"";
  out += backpressure_label(policy);
  out += "\",";
  append_u64(out, "queue_capacity", queue_capacity);
  out += ',';
  append_u64(out, "traces_submitted", stats.traces_submitted);
  out += ',';
  append_u64(out, "traces_processed", stats.traces_processed);
  out += ',';
  append_u64(out, "backpressure_dropped", stats.backpressure_dropped);
  out += ',';
  append_u64(out, "backpressure_rejected", stats.backpressure_rejected);
  out += ',';
  append_u64(out, "traces_rejected_invalid", stats.traces_rejected_invalid);
  out += ',';
  append_u64(out, "devices_calibrating", stats.devices_calibrating);
  out += ',';
  append_u64(out, "devices_monitoring", stats.devices_monitoring);
  out += ',';
  append_u64(out, "devices_alarm", stats.devices_alarm);
  out += ',';
  append_u64(out, "alarms_latched", stats.alarms_latched);
  out += ",\"shard_queues\":[";
  for (std::size_t s = 0; s < stats.shards.size(); ++s) {
    const ShardStats& shard = stats.shards[s];
    if (s != 0) out += ',';
    out += "{";
    append_u64(out, "submitted", shard.submitted);
    out += ',';
    append_u64(out, "processed", shard.processed);
    out += ',';
    append_u64(out, "dropped_oldest", shard.dropped_oldest);
    out += ',';
    append_u64(out, "rejected_full", shard.rejected_full);
    out += ',';
    append_u64(out, "blocked", shard.blocked);
    out += ',';
    append_u64(out, "queue_high_water", shard.queue_high_water);
    out += "}";
  }
  out += "],\"sessions\":{";
  for (std::size_t d = 0; d < stats.sessions.size(); ++d) {
    const SessionStats& session = stats.sessions[d];
    std::vector<core::MonitorEvent> session_events;
    for (const FleetEvent& event : events) {
      if (event.device_id == session.device_id) session_events.push_back(event.event);
    }
    if (d != 0) out += ',';
    out += "\"" + json_escape(session.device_id) + "\":{\"shard\":" +
           std::to_string(session.shard) + ",\"monitor\":" +
           monitor_stats_json(session.state, session.last_score, session.monitor,
                              session_events) +
           "}";
  }
  out += "}";
  if (!server_json.empty()) out += ",\"server\":" + server_json;
  out += "}";
  return out;
}

}  // namespace emts::fleet
