#include "attack/cpa.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/assert.hpp"

namespace emts::attack {

std::size_t inv_shift_position(std::size_t j) {
  EMTS_REQUIRE(j < 16, "byte position out of range");
  // state10[r + 4c] came (pre-AddRoundKey) from after_sub[r + 4((c + r) % 4)].
  const std::size_t r = j % 4;
  const std::size_t c = j / 4;
  return r + 4 * ((c + r) % 4);
}

std::vector<EncryptionTrace> slice_encryptions(
    const core::TraceSet& windows,
    const std::vector<std::vector<aes::Block>>& ciphertexts_per_window,
    std::size_t samples_per_encryption) {
  EMTS_REQUIRE(windows.size() == ciphertexts_per_window.size(),
               "one ciphertext list per window required");
  EMTS_REQUIRE(samples_per_encryption > 0, "samples_per_encryption must be positive");

  std::vector<EncryptionTrace> out;
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const core::Trace& window = windows.traces[w];
    const auto& cts = ciphertexts_per_window[w];
    EMTS_REQUIRE(window.size() >= cts.size() * samples_per_encryption,
                 "window too short for its ciphertext list");
    for (std::size_t e = 0; e < cts.size(); ++e) {
      EncryptionTrace trace;
      const auto begin = window.begin() + static_cast<long>(e * samples_per_encryption);
      trace.samples.assign(begin, begin + static_cast<long>(samples_per_encryption));
      trace.ciphertext = cts[e];
      out.push_back(std::move(trace));
    }
  }
  return out;
}

std::size_t CpaByteResult::rank_of(std::uint8_t truth) const {
  std::size_t rank = 0;
  for (int guess = 0; guess < 256; ++guess) {
    if (correlation[static_cast<std::size_t>(guess)] > correlation[truth] &&
        guess != truth) {
      ++rank;
    }
  }
  return rank;
}

std::size_t CpaResult::correct_bytes(const aes::Block& truth) const {
  std::size_t correct = 0;
  for (std::size_t j = 0; j < 16; ++j) correct += (round10_key[j] == truth[j]);
  return correct;
}

CpaResult last_round_cpa(const std::vector<EncryptionTrace>& traces,
                         const CpaOptions& options) {
  EMTS_REQUIRE(traces.size() >= 8, "CPA needs at least 8 encryption traces");
  EMTS_REQUIRE(options.window_end > options.window_begin, "empty CPA sample window");
  const std::size_t n = traces.size();
  const std::size_t window = options.window_end - options.window_begin;
  for (const EncryptionTrace& t : traces) {
    EMTS_REQUIRE(t.samples.size() >= options.window_end,
                 "encryption trace shorter than the CPA window");
  }

  // Precompute per-sample means and standard deviations of the measurements.
  std::vector<double> mean(window, 0.0);
  std::vector<double> sq(window, 0.0);
  for (const EncryptionTrace& t : traces) {
    for (std::size_t s = 0; s < window; ++s) {
      const double v = t.samples[options.window_begin + s];
      mean[s] += v;
      sq[s] += v * v;
    }
  }
  const double dn = static_cast<double>(n);
  std::vector<double> sd(window, 0.0);
  for (std::size_t s = 0; s < window; ++s) {
    mean[s] /= dn;
    sd[s] = std::sqrt(std::max(sq[s] / dn - mean[s] * mean[s], 0.0));
  }

  CpaResult result;
  std::vector<double> prediction(n);
  for (std::size_t j = 0; j < 16; ++j) {
    CpaByteResult& byte = result.bytes[j];
    const std::size_t src = inv_shift_position(j);

    for (int guess = 0; guess < 256; ++guess) {
      // Hamming-distance prediction per trace.
      double p_mean = 0.0;
      for (std::size_t t = 0; t < n; ++t) {
        const std::uint8_t ct_j = traces[t].ciphertext[j];
        const std::uint8_t before =
            aes::inv_sbox(static_cast<std::uint8_t>(ct_j ^ guess));
        const std::uint8_t after = traces[t].ciphertext[src];
        prediction[t] = std::popcount(static_cast<unsigned>(before ^ after));
        p_mean += prediction[t];
      }
      p_mean /= dn;
      double p_var = 0.0;
      for (std::size_t t = 0; t < n; ++t) {
        prediction[t] -= p_mean;
        p_var += prediction[t] * prediction[t];
      }
      const double p_sd = std::sqrt(p_var / dn);
      if (p_sd == 0.0) continue;

      // Max |rho| over the sample window.
      double best_abs = 0.0;
      for (std::size_t s = 0; s < window; ++s) {
        if (sd[s] == 0.0) continue;
        double cov = 0.0;
        for (std::size_t t = 0; t < n; ++t) {
          cov += prediction[t] * (traces[t].samples[options.window_begin + s] - mean[s]);
        }
        const double rho = cov / (dn * p_sd * sd[s]);
        best_abs = std::max(best_abs, std::abs(rho));
      }
      byte.correlation[static_cast<std::size_t>(guess)] = best_abs;
      if (best_abs > byte.best_correlation) {
        byte.best_correlation = best_abs;
        byte.best_guess = static_cast<std::uint8_t>(guess);
      }
    }
    result.round10_key[j] = byte.best_guess;
  }

  result.master_key = aes::invert_key_schedule(result.round10_key);
  return result;
}

}  // namespace emts::attack
