// Correlation power analysis (CPA) against the last AES round — the
// attacker's side of the EM channel. The paper credits EM with being "rich
// in information" (Sec. III-A); this module proves the point: the same
// on-chip sensor traces the trust framework consumes carry enough
// data-dependent leakage to recover the AES key, using the classic
// Hamming-distance model on the round-9 -> round-10 state-register
// transition (Brier et al., CHES 2004). It doubles as a warning: sensor
// output must never leave the trust boundary.
//
// Attack model: known ciphertexts, traces time-aligned to encryptions. For
// a guessed last-round-key byte k at position j, the predicted register
// flip count at the shifted source byte is
//     HD( inv_sbox(ct[j] ^ k), ct[inv_shift(j)] );
// the correct guess correlates with the measured round-10 samples; the key
// schedule is then inverted for the master key.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "aes/aes128.hpp"
#include "core/trace.hpp"

namespace emts::attack {

/// One encryption's worth of samples plus its observed ciphertext.
struct EncryptionTrace {
  std::vector<double> samples;
  aes::Block ciphertext;
};

/// Cuts full capture windows into per-encryption segments, pairing each with
/// its ciphertext. `ciphertexts_per_window[w]` lists the ciphertexts of
/// window w in execution order; each window must hold at least
/// samples_per_encryption * list-size samples.
std::vector<EncryptionTrace> slice_encryptions(
    const core::TraceSet& windows,
    const std::vector<std::vector<aes::Block>>& ciphertexts_per_window,
    std::size_t samples_per_encryption);

/// Byte position that feeds state10[j] through ShiftRows (the register whose
/// flip the model predicts).
std::size_t inv_shift_position(std::size_t j);

struct CpaOptions {
  // Sample range (within an encryption segment) covering the final round.
  // Defaults match the 12-cycle / 8-samples-per-cycle schedule: round 10
  // occupies cycle 10.
  std::size_t window_begin = 80;
  std::size_t window_end = 88;
};

struct CpaByteResult {
  std::uint8_t best_guess = 0;
  double best_correlation = 0.0;
  // |correlation| of every guess (max over the sample window), for ranking.
  std::array<double, 256> correlation{};

  /// Rank of `truth` among all guesses (0 = best).
  std::size_t rank_of(std::uint8_t truth) const;
};

struct CpaResult {
  std::array<CpaByteResult, 16> bytes{};
  aes::Block round10_key{};  // best guess per byte
  aes::Key master_key{};     // key schedule inverted

  /// How many bytes of `truth` (a round-10 key) were guessed exactly.
  std::size_t correct_bytes(const aes::Block& truth) const;
};

/// Runs the attack. Requires >= 8 encryption traces of equal length covering
/// the sample window.
CpaResult last_round_cpa(const std::vector<EncryptionTrace>& traces,
                         const CpaOptions& options = {});

}  // namespace emts::attack
