#include "dsp/stft.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/fft.hpp"
#include "util/assert.hpp"

namespace emts::dsp {

double Spectrogram::frame_time(std::size_t frame) const {
  return static_cast<double>(frame * hop) / sample_rate;
}

double Spectrogram::bin_frequency(std::size_t bin) const {
  return sample_rate * static_cast<double>(bin) / static_cast<double>(window_length);
}

std::size_t Spectrogram::bin_of(double frequency_hz) const {
  EMTS_REQUIRE(bins() > 0, "empty spectrogram");
  const double width = sample_rate / static_cast<double>(window_length);
  const auto idx = static_cast<std::size_t>(std::max(0.0, std::round(frequency_hz / width)));
  return std::min(idx, bins() - 1);
}

double Spectrogram::band_power(std::size_t frame, double f_lo, double f_hi) const {
  EMTS_REQUIRE(frame < frames(), "frame out of range");
  EMTS_REQUIRE(f_hi >= f_lo, "band must be ordered");
  const std::size_t lo = bin_of(f_lo);
  const std::size_t hi = bin_of(f_hi);
  double acc = 0.0;
  for (std::size_t b = lo; b <= hi; ++b) acc += magnitude[frame][b];
  return acc / static_cast<double>(hi - lo + 1);
}

Spectrogram stft(const std::vector<double>& signal, double sample_rate,
                 const StftOptions& options) {
  EMTS_REQUIRE(sample_rate > 0.0, "sample rate must be positive");
  EMTS_REQUIRE(is_power_of_two(options.window_length), "window length must be a power of two");
  EMTS_REQUIRE(options.hop > 0 && options.hop <= options.window_length,
               "hop must be in (0, window_length]");
  EMTS_REQUIRE(signal.size() >= options.window_length, "signal shorter than one window");

  const auto window = make_window(options.window, options.window_length);
  const double gain = coherent_gain(window);
  const std::size_t bins = options.window_length / 2 + 1;

  Spectrogram spec;
  spec.sample_rate = sample_rate;
  spec.window_length = options.window_length;
  spec.hop = options.hop;

  for (std::size_t start = 0; start + options.window_length <= signal.size();
       start += options.hop) {
    std::vector<cplx> frame(options.window_length);
    double mean = 0.0;
    if (options.remove_mean) {
      for (std::size_t i = 0; i < options.window_length; ++i) mean += signal[start + i];
      mean /= static_cast<double>(options.window_length);
    }
    for (std::size_t i = 0; i < options.window_length; ++i) {
      frame[i] = cplx{(signal[start + i] - mean) * window[i], 0.0};
    }
    fft_in_place(frame);

    std::vector<double> mags(bins);
    for (std::size_t b = 0; b < bins; ++b) {
      const bool interior = (b != 0) && (b != options.window_length / 2);
      mags[b] = (interior ? 2.0 : 1.0) * std::abs(frame[b]) / gain;
    }
    spec.magnitude.push_back(std::move(mags));
  }
  return spec;
}

std::size_t find_band_activation(const Spectrogram& spec, double f_lo, double f_hi,
                                 double factor) {
  EMTS_REQUIRE(spec.frames() >= 3, "need at least 3 frames");
  EMTS_REQUIRE(factor > 1.0, "activation factor must exceed 1");

  std::vector<double> power(spec.frames());
  for (std::size_t f = 0; f < spec.frames(); ++f) power[f] = spec.band_power(f, f_lo, f_hi);

  // Baseline from the quiet quartile: robust as long as the band is silent
  // in at least ~25% of the frames (the median would fail once the tone is
  // on for most of the recording).
  std::vector<double> sorted = power;
  std::sort(sorted.begin(), sorted.end());
  const double baseline = sorted[sorted.size() / 4];
  const double threshold = factor * std::max(baseline, 1e-300);

  for (std::size_t f = 0; f < spec.frames(); ++f) {
    if (power[f] > threshold) return f;
  }
  return spec.frames();
}

}  // namespace emts::dsp
