#include "dsp/window.hpp"

#include <cmath>
#include <numeric>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace emts::dsp {

std::vector<double> make_window(WindowKind kind, std::size_t n) {
  EMTS_REQUIRE(n > 0, "make_window requires n > 0");
  std::vector<double> w(n, 1.0);
  const double denom = static_cast<double>(n);  // periodic window
  for (std::size_t i = 0; i < n; ++i) {
    const double x = 2.0 * units::pi * static_cast<double>(i) / denom;
    switch (kind) {
      case WindowKind::kRectangular:
        w[i] = 1.0;
        break;
      case WindowKind::kHann:
        w[i] = 0.5 - 0.5 * std::cos(x);
        break;
      case WindowKind::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(x);
        break;
      case WindowKind::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(x) + 0.08 * std::cos(2.0 * x);
        break;
    }
  }
  return w;
}

std::vector<double> apply_window(const std::vector<double>& signal,
                                 const std::vector<double>& window) {
  EMTS_REQUIRE(signal.size() == window.size(), "apply_window: size mismatch");
  std::vector<double> out(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) out[i] = signal[i] * window[i];
  return out;
}

double coherent_gain(const std::vector<double>& window) {
  return std::accumulate(window.begin(), window.end(), 0.0);
}

}  // namespace emts::dsp
