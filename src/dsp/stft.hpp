// Short-time Fourier transform: the time-frequency view. The spectral
// detector answers *whether* a Trojan's tone is present; the spectrogram
// answers *when* it appeared within a stream — turning the runtime monitor's
// alarm into a forensic timestamp.
#pragma once

#include <cstddef>
#include <vector>

#include "dsp/window.hpp"

namespace emts::dsp {

struct Spectrogram {
  // magnitude[frame][bin]: window-corrected amplitude.
  std::vector<std::vector<double>> magnitude;
  double sample_rate = 0.0;
  std::size_t window_length = 0;
  std::size_t hop = 0;

  std::size_t frames() const { return magnitude.size(); }
  std::size_t bins() const { return magnitude.empty() ? 0 : magnitude.front().size(); }

  /// Start time (seconds) of frame f.
  double frame_time(std::size_t frame) const;

  /// Center frequency (Hz) of bin b.
  double bin_frequency(std::size_t bin) const;

  /// Bin whose center is nearest to f (clamped).
  std::size_t bin_of(double frequency_hz) const;

  /// Mean magnitude over [f_lo, f_hi] in frame `frame`.
  double band_power(std::size_t frame, double f_lo, double f_hi) const;
};

struct StftOptions {
  std::size_t window_length = 1024;  // power of two
  std::size_t hop = 512;
  WindowKind window = WindowKind::kHann;
  bool remove_mean = true;
};

/// Computes the magnitude spectrogram. Requires signal.size() >=
/// window_length, power-of-two window, and 0 < hop <= window_length.
Spectrogram stft(const std::vector<double>& signal, double sample_rate,
                 const StftOptions& options = {});

/// First frame where the band's power exceeds `factor` times the quiet
/// baseline (the 25th percentile across frames — so the band must be silent
/// in at least a quarter of the recording); returns frames() when no
/// activation is found.
std::size_t find_band_activation(const Spectrogram& spec, double f_lo, double f_hi,
                                 double factor = 4.0);

}  // namespace emts::dsp
