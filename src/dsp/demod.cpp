#include "dsp/demod.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/filter.hpp"
#include "util/assert.hpp"
#include "util/units.hpp"

namespace emts::dsp {

std::vector<double> am_demodulate(const std::vector<double>& signal,
                                  const AmDemodOptions& options) {
  EMTS_REQUIRE(options.carrier_hz > 0.0, "carrier must be positive");
  EMTS_REQUIRE(options.sample_rate > 2.0 * options.carrier_hz,
               "sample rate must exceed twice the carrier (Nyquist)");
  const double w = 2.0 * units::pi * options.carrier_hz / options.sample_rate;

  // Quadrature mixing removes carrier-phase sensitivity: envelope = |I + jQ|.
  std::vector<double> in_phase(signal.size());
  std::vector<double> quadrature(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) {
    const double phase = w * static_cast<double>(i);
    in_phase[i] = signal[i] * std::cos(phase);
    quadrature[i] = signal[i] * std::sin(phase);
  }

  OnePoleLowPass lp_i{options.carrier_hz / 2.0, options.sample_rate};
  OnePoleLowPass lp_q{options.carrier_hz / 2.0, options.sample_rate};
  const auto i_f = lp_i.process(in_phase);
  const auto q_f = lp_q.process(quadrature);

  std::vector<double> envelope(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) {
    envelope[i] = 2.0 * std::hypot(i_f[i], q_f[i]);
  }
  return envelope;
}

std::vector<int> slice_bits(const std::vector<double>& envelope, double sample_rate,
                            double bit_rate_hz) {
  EMTS_REQUIRE(bit_rate_hz > 0.0, "bit rate must be positive");
  EMTS_REQUIRE(!envelope.empty(), "slice_bits requires a non-empty envelope");
  const double samples_per_bit = sample_rate / bit_rate_hz;
  EMTS_REQUIRE(samples_per_bit >= 2.0, "need at least 2 samples per bit");

  const auto [lo_it, hi_it] = std::minmax_element(envelope.begin(), envelope.end());
  const double midpoint = 0.5 * (*lo_it + *hi_it);

  std::vector<int> bits;
  for (double start = 0.0; start + samples_per_bit <= static_cast<double>(envelope.size()) + 0.5;
       start += samples_per_bit) {
    const auto lo = static_cast<std::size_t>(start);
    const auto hi = std::min(static_cast<std::size_t>(start + samples_per_bit), envelope.size());
    if (hi <= lo) break;
    double mean = 0.0;
    for (std::size_t i = lo; i < hi; ++i) mean += envelope[i];
    mean /= static_cast<double>(hi - lo);
    bits.push_back(mean > midpoint ? 1 : 0);
  }
  return bits;
}

std::vector<double> ook_modulate(const std::vector<int>& bits, double carrier_hz,
                                 double sample_rate, std::size_t samples_per_bit,
                                 double amplitude) {
  EMTS_REQUIRE(carrier_hz > 0.0 && sample_rate > 0.0, "rates must be positive");
  EMTS_REQUIRE(samples_per_bit > 0, "samples_per_bit must be positive");
  const double w = 2.0 * units::pi * carrier_hz / sample_rate;
  std::vector<double> out;
  out.reserve(bits.size() * samples_per_bit);
  std::size_t t = 0;
  for (int bit : bits) {
    for (std::size_t i = 0; i < samples_per_bit; ++i, ++t) {
      out.push_back(bit != 0 ? amplitude * std::sin(w * static_cast<double>(t)) : 0.0);
    }
  }
  return out;
}

}  // namespace emts::dsp
