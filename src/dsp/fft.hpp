// Iterative radix-2 Cooley–Tukey FFT, implemented from scratch.
// Used by the spectral Trojan detector (paper Sec. III-E / Fig. 4 / Fig. 6 i–l)
// to transform measured EM traces into the frequency domain.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace emts::dsp {

using cplx = std::complex<double>;

/// True if n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

/// In-place forward FFT. Requires power-of-two size.
void fft_in_place(std::vector<cplx>& data);

/// In-place inverse FFT (includes 1/N scaling). Requires power-of-two size.
void ifft_in_place(std::vector<cplx>& data);

/// Forward FFT of a real signal; zero-pads to the next power of two.
/// Returns the full complex spectrum (size = padded length).
std::vector<cplx> fft_real(const std::vector<double>& signal);

/// Inverse FFT returning the real part (imaginary residue discarded).
std::vector<double> ifft_real(std::vector<cplx> spectrum);

}  // namespace emts::dsp
