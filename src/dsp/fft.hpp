// Iterative radix-2 Cooley–Tukey FFT, implemented from scratch.
// Used by the spectral Trojan detector (paper Sec. III-E / Fig. 4 / Fig. 6 i–l)
// to transform measured EM traces into the frequency domain.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace emts::dsp {

using cplx = std::complex<double>;

/// True if n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

/// In-place forward FFT. Requires power-of-two size.
void fft_in_place(std::vector<cplx>& data);

/// In-place inverse FFT (includes 1/N scaling). Requires power-of-two size.
void ifft_in_place(std::vector<cplx>& data);

/// Forward FFT of a real signal; zero-pads to the next power of two.
/// Returns the full complex spectrum (size = padded length).
std::vector<cplx> fft_real(const std::vector<double>& signal);

/// Inverse FFT returning the real part (imaginary residue discarded).
std::vector<double> ifft_real(std::vector<cplx> spectrum);

/// Precomputed forward FFT of one fixed power-of-two size: the bit-reversal
/// permutation and every stage's twiddle factors are cached at construction,
/// so forward() performs no allocations and no trigonometry. The twiddles
/// are generated with the exact same recurrence the one-shot fft_in_place
/// uses (w *= wlen per butterfly), so a plan's output is bit-identical to
/// fft_in_place for every input — the streaming monitor can swap between the
/// two paths without perturbing a single score.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);  // n must be a power of two

  std::size_t size() const { return n_; }

  /// In-place forward transform; requires data.size() == size().
  void forward(std::vector<cplx>& data) const;

 private:
  std::size_t n_ = 1;
  std::vector<std::size_t> reverse_;  // bit-reversal partner of each index
  std::vector<cplx> twiddles_;        // per-stage tables, stages concatenated
};

}  // namespace emts::dsp
