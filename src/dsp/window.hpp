// Window functions for spectral estimation. The spectral detector windows
// traces before the FFT to keep Trojan tones from smearing into neighbours.
#pragma once

#include <cstddef>
#include <vector>

namespace emts::dsp {

enum class WindowKind { kRectangular, kHann, kHamming, kBlackman };

/// Window coefficients of length n (periodic form, suited to FFT analysis).
std::vector<double> make_window(WindowKind kind, std::size_t n);

/// Element-wise product of signal and window; requires equal sizes.
std::vector<double> apply_window(const std::vector<double>& signal,
                                 const std::vector<double>& window);

/// Sum of window coefficients (amplitude-correction denominator).
double coherent_gain(const std::vector<double>& window);

}  // namespace emts::dsp
