#include "dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/fft.hpp"
#include "util/assert.hpp"
#include "util/binio.hpp"

namespace emts::dsp {

std::size_t Spectrum::bin_of(double f) const {
  EMTS_REQUIRE(!frequency.empty(), "bin_of on an empty spectrum");
  if (f <= frequency.front()) return 0;
  if (f >= frequency.back()) return frequency.size() - 1;
  const double width = bin_width();
  const auto idx = static_cast<std::size_t>(std::llround(f / width));
  return std::min(idx, frequency.size() - 1);
}

double Spectrum::bin_width() const {
  EMTS_REQUIRE(frequency.size() >= 2, "bin_width requires >= 2 bins");
  return frequency[1] - frequency[0];
}

Spectrum amplitude_spectrum(const std::vector<double>& signal, double sample_rate,
                            const SpectrumOptions& options) {
  EMTS_REQUIRE(!signal.empty(), "amplitude_spectrum requires a non-empty signal");
  EMTS_REQUIRE(sample_rate > 0.0, "sample_rate must be positive");

  std::vector<double> work = signal;
  if (options.remove_mean) {
    double mean = 0.0;
    for (double v : work) mean += v;
    mean /= static_cast<double>(work.size());
    for (double& v : work) v -= mean;
  }

  const auto window = make_window(options.window, work.size());
  work = apply_window(work, window);
  const double gain = coherent_gain(window);

  const auto full = fft_real(work);
  const std::size_t n = full.size();
  const std::size_t bins = n / 2 + 1;

  Spectrum out;
  out.frequency.resize(bins);
  out.amplitude.resize(bins);
  // Zero padding stretches the transform but not the physical duration; bins
  // are spaced by fs/n_padded while amplitude correction uses the window sum.
  for (std::size_t k = 0; k < bins; ++k) {
    out.frequency[k] = sample_rate * static_cast<double>(k) / static_cast<double>(n);
    const double mag = std::abs(full[k]);
    const bool interior = (k != 0) && (k != n / 2);
    out.amplitude[k] = (interior ? 2.0 : 1.0) * mag / gain;
  }
  return out;
}

Spectrum mean_spectrum(const std::vector<std::vector<double>>& signals, double sample_rate,
                       const SpectrumOptions& options) {
  EMTS_REQUIRE(!signals.empty(), "mean_spectrum requires at least one trace");
  Spectrum acc = amplitude_spectrum(signals.front(), sample_rate, options);
  for (std::size_t i = 1; i < signals.size(); ++i) {
    EMTS_REQUIRE(signals[i].size() == signals.front().size(),
                 "mean_spectrum requires equal-length traces");
    const Spectrum s = amplitude_spectrum(signals[i], sample_rate, options);
    for (std::size_t k = 0; k < acc.amplitude.size(); ++k) acc.amplitude[k] += s.amplitude[k];
  }
  const double inv = 1.0 / static_cast<double>(signals.size());
  for (double& a : acc.amplitude) a *= inv;
  return acc;
}

std::vector<SpectralPeak> find_peaks(const Spectrum& spectrum, double min_amplitude,
                                     std::size_t max_peaks) {
  std::vector<SpectralPeak> peaks;
  const auto& amp = spectrum.amplitude;
  for (std::size_t k = 1; k + 1 < amp.size(); ++k) {
    if (amp[k] >= min_amplitude && amp[k] > amp[k - 1] && amp[k] >= amp[k + 1]) {
      peaks.push_back({k, spectrum.frequency[k], amp[k]});
    }
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const SpectralPeak& a, const SpectralPeak& b) { return a.amplitude > b.amplitude; });
  if (peaks.size() > max_peaks) peaks.resize(max_peaks);
  return peaks;
}

void save_spectrum(std::ostream& out, const Spectrum& spectrum) {
  EMTS_REQUIRE(spectrum.frequency.size() == spectrum.amplitude.size(),
               "save_spectrum: ragged spectrum");
  util::write_f64_vec(out, spectrum.frequency);
  util::write_f64_vec(out, spectrum.amplitude);
}

Spectrum load_spectrum(std::istream& in) {
  Spectrum spectrum;
  spectrum.frequency = util::read_f64_vec(in);
  spectrum.amplitude = util::read_f64_vec(in);
  EMTS_REQUIRE(spectrum.frequency.size() == spectrum.amplitude.size(),
               "load_spectrum: ragged spectrum");
  EMTS_REQUIRE(!spectrum.amplitude.empty(), "load_spectrum: empty spectrum");
  return spectrum;
}

}  // namespace emts::dsp
