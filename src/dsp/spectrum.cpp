#include "dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/fft.hpp"
#include "util/assert.hpp"
#include "util/binio.hpp"
#include "util/units.hpp"

namespace emts::dsp {

std::size_t Spectrum::bin_of(double f) const {
  EMTS_REQUIRE(!frequency.empty(), "bin_of on an empty spectrum");
  if (f <= frequency.front()) return 0;
  if (f >= frequency.back()) return frequency.size() - 1;
  const double width = bin_width();
  const auto idx = static_cast<std::size_t>(std::llround(f / width));
  return std::min(idx, frequency.size() - 1);
}

double Spectrum::bin_width() const {
  EMTS_REQUIRE(frequency.size() >= 2, "bin_width requires >= 2 bins");
  return frequency[1] - frequency[0];
}

Spectrum amplitude_spectrum(const std::vector<double>& signal, double sample_rate,
                            const SpectrumOptions& options) {
  EMTS_REQUIRE(!signal.empty(), "amplitude_spectrum requires a non-empty signal");
  EMTS_REQUIRE(sample_rate > 0.0, "sample_rate must be positive");

  std::vector<double> work = signal;
  if (options.remove_mean) {
    double mean = 0.0;
    for (double v : work) mean += v;
    mean /= static_cast<double>(work.size());
    for (double& v : work) v -= mean;
  }

  const auto window = make_window(options.window, work.size());
  work = apply_window(work, window);
  const double gain = coherent_gain(window);

  const auto full = fft_real(work);
  const std::size_t n = full.size();
  const std::size_t bins = n / 2 + 1;

  Spectrum out;
  out.frequency.resize(bins);
  out.amplitude.resize(bins);
  // Zero padding stretches the transform but not the physical duration; bins
  // are spaced by fs/n_padded while amplitude correction uses the window sum.
  for (std::size_t k = 0; k < bins; ++k) {
    out.frequency[k] = sample_rate * static_cast<double>(k) / static_cast<double>(n);
    const double mag = std::abs(full[k]);
    const bool interior = (k != 0) && (k != n / 2);
    out.amplitude[k] = (interior ? 2.0 : 1.0) * mag / gain;
  }
  return out;
}

Spectrum mean_spectrum(const std::vector<std::vector<double>>& signals, double sample_rate,
                       const SpectrumOptions& options) {
  EMTS_REQUIRE(!signals.empty(), "mean_spectrum requires at least one trace");
  Spectrum acc = amplitude_spectrum(signals.front(), sample_rate, options);
  for (std::size_t i = 1; i < signals.size(); ++i) {
    EMTS_REQUIRE(signals[i].size() == signals.front().size(),
                 "mean_spectrum requires equal-length traces");
    const Spectrum s = amplitude_spectrum(signals[i], sample_rate, options);
    for (std::size_t k = 0; k < acc.amplitude.size(); ++k) acc.amplitude[k] += s.amplitude[k];
  }
  const double inv = 1.0 / static_cast<double>(signals.size());
  for (double& a : acc.amplitude) a *= inv;
  return acc;
}

std::vector<SpectralPeak> find_peaks(const Spectrum& spectrum, double min_amplitude,
                                     std::size_t max_peaks) {
  std::vector<SpectralPeak> peaks;
  find_peaks_into(spectrum, min_amplitude, peaks, max_peaks);
  return peaks;
}

void find_peaks_into(const Spectrum& spectrum, double min_amplitude,
                     std::vector<SpectralPeak>& peaks, std::size_t max_peaks) {
  peaks.clear();
  const auto& amp = spectrum.amplitude;
  for (std::size_t k = 1; k + 1 < amp.size(); ++k) {
    if (amp[k] >= min_amplitude && amp[k] > amp[k - 1] && amp[k] >= amp[k + 1]) {
      peaks.push_back({k, spectrum.frequency[k], amp[k]});
    }
  }
  if (peaks.size() > max_peaks) {
    // Truncation must drop the *weakest* peaks, wherever they sit on the
    // frequency axis: a Trojan carrier high in the band would otherwise be
    // the first casualty. Select by amplitude (ties broken by bin so the
    // result is deterministic), then restore bin order for the survivors.
    std::sort(peaks.begin(), peaks.end(), [](const SpectralPeak& a, const SpectralPeak& b) {
      if (a.amplitude != b.amplitude) return a.amplitude > b.amplitude;
      return a.bin < b.bin;
    });
    peaks.resize(max_peaks);
    std::sort(peaks.begin(), peaks.end(),
              [](const SpectralPeak& a, const SpectralPeak& b) { return a.bin < b.bin; });
  }
}

SpectrumAnalyzer::SpectrumAnalyzer(const SpectrumOptions& options) : options_{options} {}

void SpectrumAnalyzer::prepare(std::size_t n, double sample_rate) {
  EMTS_REQUIRE(n > 0, "SpectrumAnalyzer requires a non-empty signal");
  EMTS_REQUIRE(sample_rate > 0.0, "sample_rate must be positive");
  if (n == signal_length_ && sample_rate == sample_rate_) return;

  ++warmups_;
  signal_length_ = n;
  sample_rate_ = sample_rate;
  window_ = make_window(options_.window, n);
  gain_ = coherent_gain(window_);

  const std::size_t padded = next_power_of_two(n);
  if (!plan_.has_value() || plan_->size() != padded) plan_.emplace(padded);

  const std::size_t bins = padded / 2 + 1;
  out_.frequency.resize(bins);
  out_.amplitude.resize(bins);
  amp_.resize(bins);
  for (std::size_t k = 0; k < bins; ++k) {
    out_.frequency[k] = sample_rate * static_cast<double>(k) / static_cast<double>(padded);
  }
}

void SpectrumAnalyzer::preprocess_into(const std::vector<double>& signal,
                                       std::vector<double>& dst) {
  // Mirrors amplitude_spectrum step for step (same summation order, same
  // window product) so the single-signal path stays bit-identical to the
  // allocating one.
  dst.assign(signal.begin(), signal.end());
  if (options_.remove_mean) {
    double mean = 0.0;
    for (double v : dst) mean += v;
    mean /= static_cast<double>(dst.size());
    for (double& v : dst) v -= mean;
  }
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] *= window_[i];
}

void SpectrumAnalyzer::transform_into_amp(const std::vector<double>& signal) {
  preprocess_into(signal, work_);
  transform_preprocessed_into_amp(work_);
}

void SpectrumAnalyzer::transform_preprocessed_into_amp(const std::vector<double>& pre) {
  const std::size_t padded = plan_->size();
  data_.assign(padded, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < pre.size(); ++i) data_[i] = cplx{pre[i], 0.0};
  plan_->forward(data_);

  const std::size_t bins = padded / 2 + 1;
  for (std::size_t k = 0; k < bins; ++k) {
    const double mag = std::abs(data_[k]);
    const bool interior = (k != 0) && (k != padded / 2);
    amp_[k] = (interior ? 2.0 : 1.0) * mag / gain_;
  }
}

void SpectrumAnalyzer::transform_pair_into_amps(const std::vector<double>& first,
                                                const std::vector<double>& second) {
  // Two-for-one real FFT: both preprocessed signals ride one complex
  // transform (first in the real lane, second in the imaginary lane) and the
  // conjugate symmetry of real inputs separates them afterwards:
  //   A[k] = (Z[k] + conj(Z[N-k])) / 2,   B[k] = (Z[k] - conj(Z[N-k])) / 2i.
  // Only magnitudes are needed, and |B| is unchanged by the -i rotation, so
  // the unpacking is two component sums and one |.| per signal per bin. This
  // halves the FFT count of a mean-spectrum pass; results match the
  // one-signal-per-transform path to floating-point rounding (a few ULPs).
  const std::size_t padded = plan_->size();
  data_.assign(padded, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < first.size(); ++i) data_[i] = cplx{first[i], second[i]};
  plan_->forward(data_);

  const std::size_t bins = padded / 2 + 1;
  for (std::size_t k = 0; k < bins; ++k) {
    const std::size_t m = (padded - k) % padded;  // mirror bin; k=0 -> 0
    const double zr = data_[k].real();
    const double zi = data_[k].imag();
    const double mr = data_[m].real();
    const double mi = -data_[m].imag();  // conj(Z[N-k])
    const double mag_a = 0.5 * std::abs(cplx{zr + mr, zi + mi});
    const double mag_b = 0.5 * std::abs(cplx{zr - mr, zi - mi});
    const bool interior = (k != 0) && (k != padded / 2);
    const double scale = (interior ? 2.0 : 1.0) / gain_;
    amp_[k] = scale * mag_a;
    amp2_[k] = scale * mag_b;
  }
}

void SpectrumAnalyzer::transform_preprocessed_realsplit_into_amp(
    const std::vector<double>& pre) {
  const std::size_t padded = plan_->size();
  if (padded < 2) {
    // A 1-point transform has no half-size plan; the full path is O(1) here.
    transform_preprocessed_into_amp(pre);
    return;
  }
  // Real-split: even samples ride the real lane, odd samples the imaginary
  // lane of one N/2 complex FFT. Conjugate symmetry untangles the two real
  // half-streams E (even) and O (odd), and the classic decimation-in-time
  // recombination X[k] = E[k] + e^{-2πik/N}·O[k] yields the length-N real
  // transform for k = 0..N/2 — one flat-latency FFT per push at the same
  // amortized cost as the two-for-one pairing.
  const std::size_t half = padded / 2;
  data_half_.assign(half, cplx{0.0, 0.0});
  const std::size_t n = pre.size();
  for (std::size_t i = 0; i < half; ++i) {
    const double re = (2 * i < n) ? pre[2 * i] : 0.0;
    const double im = (2 * i + 1 < n) ? pre[2 * i + 1] : 0.0;
    data_half_[i] = cplx{re, im};
  }
  plan_half_->forward(data_half_);

  const std::size_t bins = half + 1;
  for (std::size_t k = 0; k < bins; ++k) {
    const std::size_t kk = k % half;            // k = half wraps to bin 0
    const std::size_t mm = (half - k) % half;   // mirror bin; k=0 -> 0
    const double zr = data_half_[kk].real();
    const double zi = data_half_[kk].imag();
    const double mr = data_half_[mm].real();
    const double mi = -data_half_[mm].imag();  // conj(Z[half-k])
    const double er = 0.5 * (zr + mr);         // E[k] = (Z[k] + conj(Z[m])) / 2
    const double ei = 0.5 * (zi + mi);
    const double odd_r = 0.5 * (zi - mi);      // O[k] = -i (Z[k] - conj(Z[m])) / 2
    const double odd_i = -0.5 * (zr - mr);
    const double tr = stream_tw_[k].real();
    const double ti = stream_tw_[k].imag();
    const double xr = er + tr * odd_r - ti * odd_i;
    const double xi = ei + tr * odd_i + ti * odd_r;
    const double mag = std::abs(cplx{xr, xi});
    const bool interior = (k != 0) && (k != half);
    amp_[k] = (interior ? 2.0 : 1.0) * mag / gain_;
  }
}

void SpectrumAnalyzer::accumulate_amp(const std::vector<double>& amp) {
  if (accumulated_ == 0) {
    out_.amplitude.assign(amp.begin(), amp.end());
  } else {
    for (std::size_t k = 0; k < out_.amplitude.size(); ++k) out_.amplitude[k] += amp[k];
  }
  ++accumulated_;
}

const Spectrum& SpectrumAnalyzer::analyze(const std::vector<double>& signal,
                                          double sample_rate) {
  prepare(signal.size(), sample_rate);
  mean_open_ = false;
  transform_into_amp(signal);
  out_.amplitude.assign(amp_.begin(), amp_.end());
  return out_;
}

void SpectrumAnalyzer::begin(std::size_t trace_length, double sample_rate) {
  prepare(trace_length, sample_rate);
  amp2_.resize(plan_->size() / 2 + 1);
  accumulated_ = 0;
  pending_full_ = false;
  mean_open_ = true;
}

void SpectrumAnalyzer::add(const std::vector<double>& signal) {
  EMTS_REQUIRE(mean_open_, "SpectrumAnalyzer::add before begin()");
  EMTS_REQUIRE(signal.size() == signal_length_,
               "SpectrumAnalyzer::add: trace length differs from begin()");
  if (!pending_full_) {
    // Hold the first of a pair; its transform rides the next add()'s FFT.
    preprocess_into(signal, pending_);
    pending_full_ = true;
    return;
  }
  preprocess_into(signal, work_);
  transform_pair_into_amps(pending_, work_);
  pending_full_ = false;
  accumulate_amp(amp_);
  accumulate_amp(amp2_);
}

const Spectrum& SpectrumAnalyzer::mean() {
  EMTS_REQUIRE(mean_open_, "SpectrumAnalyzer::mean before begin()");
  if (pending_full_) {
    // Odd trace count: the leftover (already preprocessed) signal gets its
    // own transform, bit-identical to the unpaired single-signal path.
    transform_preprocessed_into_amp(pending_);
    pending_full_ = false;
    accumulate_amp(amp_);
  }
  EMTS_REQUIRE(accumulated_ > 0, "SpectrumAnalyzer::mean with no traces added");
  const double inv = 1.0 / static_cast<double>(accumulated_);
  for (double& a : out_.amplitude) a *= inv;
  mean_open_ = false;
  return out_;
}

void SpectrumAnalyzer::ensure_stream(std::size_t trace_length, double sample_rate) {
  prepare(trace_length, sample_rate);
  const std::size_t padded = plan_->size();
  if (padded >= 2) {
    const std::size_t half = padded / 2;
    if (!plan_half_.has_value() || plan_half_->size() != half) {
      plan_half_.emplace(half);
      data_half_.reserve(half);
      stream_tw_.resize(half + 1);
      for (std::size_t k = 0; k <= half; ++k) {
        const double angle =
            -2.0 * units::pi * static_cast<double>(k) / static_cast<double>(padded);
        stream_tw_[k] = cplx{std::cos(angle), std::sin(angle)};
      }
    }
  }
  const std::size_t bins = padded / 2 + 1;
  if (stream_sum_.size() != bins) {
    // Resizing the accumulator is only legal while it is empty; a restored
    // update counter must survive the first post-restore preparation.
    EMTS_REQUIRE(stream_count_ == 0,
                 "SpectrumAnalyzer::ensure_stream: accumulator shape change mid-stream");
    stream_sum_.assign(bins, 0.0);
  }
}

void SpectrumAnalyzer::stream_transform(const std::vector<double>& signal,
                                        std::vector<double>& amp_out) {
  EMTS_REQUIRE(signal.size() == signal_length_,
               "SpectrumAnalyzer::stream_transform: trace length differs from ensure_stream()");
  preprocess_into(signal, work_);
  transform_preprocessed_realsplit_into_amp(work_);
  amp_out.assign(amp_.begin(), amp_.end());
}

void SpectrumAnalyzer::stream_push(const std::vector<double>& signal,
                                   std::vector<double>& amp_out) {
  stream_transform(signal, amp_out);
  EMTS_REQUIRE(stream_sum_.size() == amp_out.size(),
               "SpectrumAnalyzer::stream_push before ensure_stream()");
  for (std::size_t k = 0; k < stream_sum_.size(); ++k) stream_sum_[k] += amp_out[k];
  ++stream_count_;
  ++stream_updates_;
}

void SpectrumAnalyzer::stream_accumulate(const std::vector<double>& amp) {
  EMTS_REQUIRE(stream_sum_.size() == amp.size(),
               "SpectrumAnalyzer::stream_accumulate: bin count mismatch");
  for (std::size_t k = 0; k < stream_sum_.size(); ++k) stream_sum_[k] += amp[k];
  ++stream_count_;
}

void SpectrumAnalyzer::stream_retire(const std::vector<double>& amp) {
  EMTS_REQUIRE(stream_count_ > 0, "SpectrumAnalyzer::stream_retire on an empty accumulator");
  EMTS_REQUIRE(stream_sum_.size() == amp.size(),
               "SpectrumAnalyzer::stream_retire: bin count mismatch");
  for (std::size_t k = 0; k < stream_sum_.size(); ++k) stream_sum_[k] -= amp[k];
  --stream_count_;
  ++stream_updates_;
}

void SpectrumAnalyzer::stream_reset() {
  std::fill(stream_sum_.begin(), stream_sum_.end(), 0.0);
  stream_count_ = 0;
  // stream_updates_ deliberately survives: the rebuild cadence counts total
  // incremental operations, so drift stays bounded under tumbling windows
  // that reset the accumulator every window boundary.
}

void SpectrumAnalyzer::stream_mark_rebuilt() { stream_updates_ = 0; }

const Spectrum& SpectrumAnalyzer::stream_mean() {
  EMTS_REQUIRE(stream_count_ > 0, "SpectrumAnalyzer::stream_mean on an empty accumulator");
  EMTS_REQUIRE(stream_sum_.size() == out_.amplitude.size(),
               "SpectrumAnalyzer::stream_mean before ensure_stream()");
  mean_open_ = false;
  const double inv = 1.0 / static_cast<double>(stream_count_);
  for (std::size_t k = 0; k < stream_sum_.size(); ++k) out_.amplitude[k] = stream_sum_[k] * inv;
  return out_;
}

void SpectrumAnalyzer::stream_restore(const std::vector<double>& sum, std::size_t count,
                                      std::uint64_t updates_since_rebuild) {
  EMTS_REQUIRE(count == 0 || !sum.empty(),
               "SpectrumAnalyzer::stream_restore: non-zero count with empty sum");
  stream_sum_.assign(sum.begin(), sum.end());
  stream_count_ = count;
  stream_updates_ = updates_since_rebuild;
}

void save_spectrum(std::ostream& out, const Spectrum& spectrum) {
  EMTS_REQUIRE(spectrum.frequency.size() == spectrum.amplitude.size(),
               "save_spectrum: ragged spectrum");
  util::write_f64_vec(out, spectrum.frequency);
  util::write_f64_vec(out, spectrum.amplitude);
}

Spectrum load_spectrum(std::istream& in) {
  Spectrum spectrum;
  spectrum.frequency = util::read_f64_vec(in);
  spectrum.amplitude = util::read_f64_vec(in);
  EMTS_REQUIRE(spectrum.frequency.size() == spectrum.amplitude.size(),
               "load_spectrum: ragged spectrum");
  EMTS_REQUIRE(!spectrum.amplitude.empty(), "load_spectrum: empty spectrum");
  return spectrum;
}

}  // namespace emts::dsp
