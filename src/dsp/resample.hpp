// Rate reduction and trace alignment. The preprocessing stage decimates long
// oscilloscope traces into PCA-sized feature vectors, and aligns traces by
// cross-correlation so trigger jitter does not masquerade as a Trojan.
#pragma once

#include <cstddef>
#include <vector>

namespace emts::dsp {

/// Averaging decimator: each output sample is the mean of `factor` inputs.
/// The trailing partial block (if any) is dropped.
std::vector<double> decimate_mean(const std::vector<double>& signal, std::size_t factor);

/// decimate_mean writing into a caller-owned vector: bit-identical results,
/// zero allocations once the vector's capacity is warm.
void decimate_mean_into(const std::vector<double>& signal, std::size_t factor,
                        std::vector<double>& out);

/// Peak-magnitude decimator: each output sample is the extreme (by absolute
/// value) of its block, preserving narrow pulses that a mean would dilute.
std::vector<double> decimate_peak(const std::vector<double>& signal, std::size_t factor);

/// Integer lag in [-max_lag, +max_lag] maximizing cross-correlation of b
/// against a (positive lag means b is delayed relative to a).
int best_alignment_lag(const std::vector<double>& a, const std::vector<double>& b,
                       std::size_t max_lag);

/// Shifts a signal by `lag` samples (positive = earlier content moves left),
/// zero-filling the vacated region. Output length equals input length.
std::vector<double> shift(const std::vector<double>& signal, int lag);

}  // namespace emts::dsp
