// Amplitude spectra and peak finding. This is the frequency-domain view the
// paper uses for A2-style Trojan detection (Sec. III-E, Fig. 4, Fig. 6 i-l):
// the circuit concentrates energy at its clock and harmonics; fast-toggling
// Trojan triggers add new spots or raise existing ones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <vector>

#include "dsp/fft.hpp"
#include "dsp/window.hpp"

namespace emts::dsp {

/// One-sided amplitude spectrum of a real signal.
struct Spectrum {
  std::vector<double> frequency;  // Hz, bin centers, size n/2+1
  std::vector<double> amplitude;  // window-corrected amplitude per bin

  std::size_t size() const { return amplitude.size(); }

  /// Index of the bin whose center is nearest to f (clamped to range).
  std::size_t bin_of(double f) const;

  /// Resolution in Hz between adjacent bins.
  double bin_width() const;
};

struct SpectrumOptions {
  WindowKind window = WindowKind::kHann;
  bool remove_mean = true;  // suppress the DC bin so it never masks tones
};

/// Computes the one-sided amplitude spectrum. `sample_rate` in Hz.
/// The signal is zero-padded to a power of two.
Spectrum amplitude_spectrum(const std::vector<double>& signal, double sample_rate,
                            const SpectrumOptions& options = {});

/// Averaged amplitude spectrum over several traces of equal length.
Spectrum mean_spectrum(const std::vector<std::vector<double>>& signals, double sample_rate,
                       const SpectrumOptions& options = {});

/// A local maximum in a spectrum.
struct SpectralPeak {
  std::size_t bin = 0;
  double frequency = 0.0;
  double amplitude = 0.0;
};

/// Local maxima above `min_amplitude`, bin-ordered, at most `max_peaks`.
/// A bin qualifies when it exceeds both neighbours. When more than
/// `max_peaks` bins qualify, the *strongest* peaks are kept (selection by
/// amplitude, not by bin position — a Trojan carrier high in the band must
/// survive truncation) and the survivors are returned in bin order.
std::vector<SpectralPeak> find_peaks(const Spectrum& spectrum, double min_amplitude,
                                     std::size_t max_peaks = 32);

/// find_peaks writing into a caller-owned vector (cleared first): identical
/// results, zero allocations once the vector's capacity is warm.
void find_peaks_into(const Spectrum& spectrum, double min_amplitude,
                     std::vector<SpectralPeak>& peaks, std::size_t max_peaks = 32);

/// Reusable spectral pass: caches the window coefficients, the FFT plan and
/// every working buffer for one trace length, so repeated analyze() /
/// begin()+add()+mean() calls on equally sized signals perform zero heap
/// allocations after the first (warm-up) pass. analyze() is bit-identical to
/// amplitude_spectrum with the same options. The streamed begin()/add()/
/// mean() path additionally packs consecutive traces two-per-FFT (the
/// two-for-one real transform), halving the dominant cost of a mean-spectrum
/// pass; its output matches mean_spectrum to floating-point rounding (a few
/// ULPs per bin), which the tolerance-based anomaly classification absorbs.
class SpectrumAnalyzer {
 public:
  explicit SpectrumAnalyzer(const SpectrumOptions& options = {});

  const SpectrumOptions& options() const { return options_; }

  /// One-shot spectrum of a single signal; the returned reference stays
  /// valid until the next analyze()/begin() call.
  const Spectrum& analyze(const std::vector<double>& signal, double sample_rate);

  /// Streamed mean spectrum: begin() fixes the trace length, add() feeds
  /// each trace, mean() finishes. Matches mean_spectrum() over the same
  /// traces in the same order to floating-point rounding (see class doc).
  void begin(std::size_t trace_length, double sample_rate);
  void add(const std::vector<double>& signal);
  const Spectrum& mean();

  /// Incremental mean-spectrum mode: one half-size real-split FFT per push,
  /// amplitudes cached in a caller-owned buffer, and a running per-bin sum
  /// maintained by add-incoming / subtract-outgoing. stream_mean() divides
  /// the sum by the live count without touching per-trace state, so a window
  /// boundary costs one O(bins) pass instead of W FFTs. Per-push amplitudes
  /// match amplitude_spectrum to floating-point rounding (a few ULPs per
  /// bin); an exact rebuild from the cached amplitudes (stream_reset +
  /// stream_accumulate in arrival order) bounds accumulator drift and is
  /// bit-identical to re-summing the same values.
  ///
  /// ensure_stream() prepares the caches for a trace length / sample rate;
  /// resizing the accumulator is only legal while it is empty
  /// (stream_count() == 0) — shape changes mid-stream are a caller bug.
  void ensure_stream(std::size_t trace_length, double sample_rate);
  /// Amplitude spectrum of one signal into `amp_out` (resized to bins).
  void stream_transform(const std::vector<double>& signal, std::vector<double>& amp_out);
  /// stream_transform + add the amplitudes into the running sum. Counts as
  /// one incremental update toward the drift-bounding rebuild cadence.
  void stream_push(const std::vector<double>& signal, std::vector<double>& amp_out);
  /// Adds an already-computed amplitude vector into the running sum without
  /// advancing the update counter (rebuild / restore path).
  void stream_accumulate(const std::vector<double>& amp);
  /// Subtracts an outgoing cached amplitude vector from the running sum
  /// (sliding-window retirement). Counts as one incremental update.
  void stream_retire(const std::vector<double>& amp);
  /// Zeroes the running sum and count. Deliberately does NOT reset the
  /// lifetime update counter: rebuild cadence is measured in total
  /// incremental operations, so drift stays bounded even under tumbling
  /// windows that reset the accumulator every window.
  void stream_reset();
  /// Marks an exact rebuild complete (zeroes the update counter).
  void stream_mark_rebuilt();
  /// Mean of the accumulated spectra; valid until the next analyze()/begin()
  /// /stream_mean() call. Requires stream_count() > 0.
  const Spectrum& stream_mean();
  /// Overwrites the accumulator bit-exactly (snapshot restore).
  void stream_restore(const std::vector<double>& sum, std::size_t count,
                      std::uint64_t updates_since_rebuild);

  const std::vector<double>& stream_sum() const { return stream_sum_; }
  std::size_t stream_count() const { return stream_count_; }
  std::uint64_t stream_updates_since_rebuild() const { return stream_updates_; }
  std::size_t stream_bins() const { return stream_sum_.size(); }

  /// Number of times the caches had to be (re)built — a new trace length or
  /// sample rate. Stays constant across passes once the analyzer is warm.
  std::size_t warmups() const { return warmups_; }

 private:
  void prepare(std::size_t n, double sample_rate);
  /// Detrend + window one signal into dst (same arithmetic order as
  /// amplitude_spectrum).
  void preprocess_into(const std::vector<double>& signal, std::vector<double>& dst);
  /// Preprocess + FFT of one signal into amp_ (amplitude per bin).
  void transform_into_amp(const std::vector<double>& signal);
  /// FFT of one already-preprocessed signal into amp_.
  void transform_preprocessed_into_amp(const std::vector<double>& pre);
  /// Two-for-one real FFT of a pair of preprocessed signals: amplitudes of
  /// `first` land in amp_, of `second` in amp2_.
  void transform_pair_into_amps(const std::vector<double>& first,
                                const std::vector<double>& second);
  /// Real-split half-size FFT of one preprocessed signal into amp_ (even
  /// samples in the real lane, odd in the imaginary lane of an N/2 complex
  /// transform, untangled with precomputed twiddles). Same amortized cost as
  /// the two-for-one pairing, but with flat per-call latency.
  void transform_preprocessed_realsplit_into_amp(const std::vector<double>& pre);
  /// Adds one per-trace amplitude vector into the running mean accumulator.
  void accumulate_amp(const std::vector<double>& amp);

  SpectrumOptions options_;
  std::size_t signal_length_ = 0;
  double sample_rate_ = 0.0;
  std::vector<double> window_;     // coefficients for signal_length_
  double gain_ = 0.0;              // coherent gain of window_
  std::optional<FftPlan> plan_;    // plan for the padded length
  std::vector<double> work_;       // detrended + windowed signal
  std::vector<double> pending_;    // first-of-pair preprocessed signal
  bool pending_full_ = false;      // pending_ holds an unconsumed signal
  std::vector<cplx> data_;         // FFT working buffer (padded)
  std::vector<double> amp_;        // per-trace amplitude scratch
  std::vector<double> amp2_;       // second lane of a packed pair
  Spectrum out_;                   // analyze()/mean() result buffer
  std::size_t accumulated_ = 0;    // traces added since begin()
  bool mean_open_ = false;         // begin() called, mean() pending
  std::size_t warmups_ = 0;
  std::optional<FftPlan> plan_half_;  // N/2 plan for the real-split transform
  std::vector<cplx> data_half_;       // half-size FFT working buffer
  std::vector<cplx> stream_tw_;       // untangle twiddles e^{-2πik/N}, half+1
  std::vector<double> stream_sum_;    // running per-bin amplitude sum
  std::size_t stream_count_ = 0;      // live traces in the running sum
  std::uint64_t stream_updates_ = 0;  // incremental ops since last rebuild
};

/// Binary round-trip of a reference spectrum (the spectral detector's golden
/// model in an EMCA calibration artifact). load_spectrum restores the bins
/// bit-identically and throws precondition_error on truncation or mismatch.
void save_spectrum(std::ostream& out, const Spectrum& spectrum);
Spectrum load_spectrum(std::istream& in);

}  // namespace emts::dsp
