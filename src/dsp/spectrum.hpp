// Amplitude spectra and peak finding. This is the frequency-domain view the
// paper uses for A2-style Trojan detection (Sec. III-E, Fig. 4, Fig. 6 i-l):
// the circuit concentrates energy at its clock and harmonics; fast-toggling
// Trojan triggers add new spots or raise existing ones.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "dsp/window.hpp"

namespace emts::dsp {

/// One-sided amplitude spectrum of a real signal.
struct Spectrum {
  std::vector<double> frequency;  // Hz, bin centers, size n/2+1
  std::vector<double> amplitude;  // window-corrected amplitude per bin

  std::size_t size() const { return amplitude.size(); }

  /// Index of the bin whose center is nearest to f (clamped to range).
  std::size_t bin_of(double f) const;

  /// Resolution in Hz between adjacent bins.
  double bin_width() const;
};

struct SpectrumOptions {
  WindowKind window = WindowKind::kHann;
  bool remove_mean = true;  // suppress the DC bin so it never masks tones
};

/// Computes the one-sided amplitude spectrum. `sample_rate` in Hz.
/// The signal is zero-padded to a power of two.
Spectrum amplitude_spectrum(const std::vector<double>& signal, double sample_rate,
                            const SpectrumOptions& options = {});

/// Averaged amplitude spectrum over several traces of equal length.
Spectrum mean_spectrum(const std::vector<std::vector<double>>& signals, double sample_rate,
                       const SpectrumOptions& options = {});

/// A local maximum in a spectrum.
struct SpectralPeak {
  std::size_t bin = 0;
  double frequency = 0.0;
  double amplitude = 0.0;
};

/// Local maxima above `min_amplitude`, strongest first, at most `max_peaks`.
/// A bin qualifies when it exceeds both neighbours.
std::vector<SpectralPeak> find_peaks(const Spectrum& spectrum, double min_amplitude,
                                     std::size_t max_peaks = 32);

/// Binary round-trip of a reference spectrum (the spectral detector's golden
/// model in an EMCA calibration artifact). load_spectrum restores the bins
/// bit-identically and throws precondition_error on truncation or mismatch.
void save_spectrum(std::ostream& out, const Spectrum& spectrum);
Spectrum load_spectrum(std::istream& in);

}  // namespace emts::dsp
