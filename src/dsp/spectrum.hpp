// Amplitude spectra and peak finding. This is the frequency-domain view the
// paper uses for A2-style Trojan detection (Sec. III-E, Fig. 4, Fig. 6 i-l):
// the circuit concentrates energy at its clock and harmonics; fast-toggling
// Trojan triggers add new spots or raise existing ones.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <vector>

#include "dsp/fft.hpp"
#include "dsp/window.hpp"

namespace emts::dsp {

/// One-sided amplitude spectrum of a real signal.
struct Spectrum {
  std::vector<double> frequency;  // Hz, bin centers, size n/2+1
  std::vector<double> amplitude;  // window-corrected amplitude per bin

  std::size_t size() const { return amplitude.size(); }

  /// Index of the bin whose center is nearest to f (clamped to range).
  std::size_t bin_of(double f) const;

  /// Resolution in Hz between adjacent bins.
  double bin_width() const;
};

struct SpectrumOptions {
  WindowKind window = WindowKind::kHann;
  bool remove_mean = true;  // suppress the DC bin so it never masks tones
};

/// Computes the one-sided amplitude spectrum. `sample_rate` in Hz.
/// The signal is zero-padded to a power of two.
Spectrum amplitude_spectrum(const std::vector<double>& signal, double sample_rate,
                            const SpectrumOptions& options = {});

/// Averaged amplitude spectrum over several traces of equal length.
Spectrum mean_spectrum(const std::vector<std::vector<double>>& signals, double sample_rate,
                       const SpectrumOptions& options = {});

/// A local maximum in a spectrum.
struct SpectralPeak {
  std::size_t bin = 0;
  double frequency = 0.0;
  double amplitude = 0.0;
};

/// Local maxima above `min_amplitude`, bin-ordered, at most `max_peaks`.
/// A bin qualifies when it exceeds both neighbours. When more than
/// `max_peaks` bins qualify, the *strongest* peaks are kept (selection by
/// amplitude, not by bin position — a Trojan carrier high in the band must
/// survive truncation) and the survivors are returned in bin order.
std::vector<SpectralPeak> find_peaks(const Spectrum& spectrum, double min_amplitude,
                                     std::size_t max_peaks = 32);

/// find_peaks writing into a caller-owned vector (cleared first): identical
/// results, zero allocations once the vector's capacity is warm.
void find_peaks_into(const Spectrum& spectrum, double min_amplitude,
                     std::vector<SpectralPeak>& peaks, std::size_t max_peaks = 32);

/// Reusable spectral pass: caches the window coefficients, the FFT plan and
/// every working buffer for one trace length, so repeated analyze() /
/// begin()+add()+mean() calls on equally sized signals perform zero heap
/// allocations after the first (warm-up) pass. analyze() is bit-identical to
/// amplitude_spectrum with the same options. The streamed begin()/add()/
/// mean() path additionally packs consecutive traces two-per-FFT (the
/// two-for-one real transform), halving the dominant cost of a mean-spectrum
/// pass; its output matches mean_spectrum to floating-point rounding (a few
/// ULPs per bin), which the tolerance-based anomaly classification absorbs.
class SpectrumAnalyzer {
 public:
  explicit SpectrumAnalyzer(const SpectrumOptions& options = {});

  const SpectrumOptions& options() const { return options_; }

  /// One-shot spectrum of a single signal; the returned reference stays
  /// valid until the next analyze()/begin() call.
  const Spectrum& analyze(const std::vector<double>& signal, double sample_rate);

  /// Streamed mean spectrum: begin() fixes the trace length, add() feeds
  /// each trace, mean() finishes. Matches mean_spectrum() over the same
  /// traces in the same order to floating-point rounding (see class doc).
  void begin(std::size_t trace_length, double sample_rate);
  void add(const std::vector<double>& signal);
  const Spectrum& mean();

  /// Number of times the caches had to be (re)built — a new trace length or
  /// sample rate. Stays constant across passes once the analyzer is warm.
  std::size_t warmups() const { return warmups_; }

 private:
  void prepare(std::size_t n, double sample_rate);
  /// Detrend + window one signal into dst (same arithmetic order as
  /// amplitude_spectrum).
  void preprocess_into(const std::vector<double>& signal, std::vector<double>& dst);
  /// Preprocess + FFT of one signal into amp_ (amplitude per bin).
  void transform_into_amp(const std::vector<double>& signal);
  /// FFT of one already-preprocessed signal into amp_.
  void transform_preprocessed_into_amp(const std::vector<double>& pre);
  /// Two-for-one real FFT of a pair of preprocessed signals: amplitudes of
  /// `first` land in amp_, of `second` in amp2_.
  void transform_pair_into_amps(const std::vector<double>& first,
                                const std::vector<double>& second);
  /// Adds one per-trace amplitude vector into the running mean accumulator.
  void accumulate_amp(const std::vector<double>& amp);

  SpectrumOptions options_;
  std::size_t signal_length_ = 0;
  double sample_rate_ = 0.0;
  std::vector<double> window_;     // coefficients for signal_length_
  double gain_ = 0.0;              // coherent gain of window_
  std::optional<FftPlan> plan_;    // plan for the padded length
  std::vector<double> work_;       // detrended + windowed signal
  std::vector<double> pending_;    // first-of-pair preprocessed signal
  bool pending_full_ = false;      // pending_ holds an unconsumed signal
  std::vector<cplx> data_;         // FFT working buffer (padded)
  std::vector<double> amp_;        // per-trace amplitude scratch
  std::vector<double> amp2_;       // second lane of a packed pair
  Spectrum out_;                   // analyze()/mean() result buffer
  std::size_t accumulated_ = 0;    // traces added since begin()
  bool mean_open_ = false;         // begin() called, mean() pending
  std::size_t warmups_ = 0;
};

/// Binary round-trip of a reference spectrum (the spectral detector's golden
/// model in an EMCA calibration artifact). load_spectrum restores the bins
/// bit-identically and throws precondition_error on truncation or mismatch.
void save_spectrum(std::ostream& out, const Spectrum& spectrum);
Spectrum load_spectrum(std::istream& in);

}  // namespace emts::dsp
