// Time-domain filters used by the measurement chain (sensor bandwidth) and
// the preprocessing stage (denoising before PCA, paper Sec. III-D).
#pragma once

#include <cstddef>
#include <vector>

namespace emts::dsp {

/// Centered moving-average smoother with odd window length.
std::vector<double> moving_average(const std::vector<double>& signal, std::size_t window_length);

/// moving_average writing into caller-owned buffers: `prefix` is scratch for
/// the prefix sums, `out` receives the smoothed signal. Bit-identical to
/// moving_average; zero allocations once both buffers' capacity is warm.
void moving_average_into(const std::vector<double>& signal, std::size_t window_length,
                         std::vector<double>& prefix, std::vector<double>& out);

/// Single-pole IIR low-pass (models the sensor/amplifier bandwidth).
/// cutoff_hz is the -3 dB point; sample_rate in Hz.
class OnePoleLowPass {
 public:
  OnePoleLowPass(double cutoff_hz, double sample_rate);

  /// Processes one sample, carrying state across calls.
  double step(double x);

  /// Filters a whole signal starting from zero state.
  std::vector<double> process(const std::vector<double>& signal);

  void reset();
  double alpha() const { return alpha_; }

 private:
  double alpha_;
  double state_ = 0.0;
};

/// First-difference derivative scaled by the sample rate: y[i] ≈ dx/dt.
/// Faraday's law turns coil flux into emf via exactly this operation.
std::vector<double> differentiate(const std::vector<double>& signal, double sample_rate);

/// Cumulative trapezoidal integral scaled by the sample interval.
std::vector<double> integrate(const std::vector<double>& signal, double sample_rate);

}  // namespace emts::dsp
