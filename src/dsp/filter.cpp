#include "dsp/filter.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace emts::dsp {

std::vector<double> moving_average(const std::vector<double>& signal, std::size_t window_length) {
  std::vector<double> prefix;
  std::vector<double> out;
  moving_average_into(signal, window_length, prefix, out);
  return out;
}

void moving_average_into(const std::vector<double>& signal, std::size_t window_length,
                         std::vector<double>& prefix, std::vector<double>& out) {
  EMTS_REQUIRE(window_length % 2 == 1, "moving_average requires an odd window length");
  EMTS_REQUIRE(!signal.empty(), "moving_average requires a non-empty signal");
  const std::size_t n = signal.size();
  const std::size_t half = window_length / 2;
  out.assign(n, 0.0);

  // Prefix sums make the smoother O(n) independent of window size.
  prefix.assign(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + signal[i];

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = (i >= half) ? i - half : 0;
    const std::size_t hi = std::min(i + half, n - 1);
    out[i] = (prefix[hi + 1] - prefix[lo]) / static_cast<double>(hi - lo + 1);
  }
}

OnePoleLowPass::OnePoleLowPass(double cutoff_hz, double sample_rate) : alpha_{0.0} {
  EMTS_REQUIRE(cutoff_hz > 0.0, "cutoff must be positive");
  EMTS_REQUIRE(sample_rate > 0.0, "sample_rate must be positive");
  // Exact discretization of a one-pole RC low-pass.
  alpha_ = 1.0 - std::exp(-2.0 * units::pi * cutoff_hz / sample_rate);
}

double OnePoleLowPass::step(double x) {
  state_ += alpha_ * (x - state_);
  return state_;
}

std::vector<double> OnePoleLowPass::process(const std::vector<double>& signal) {
  reset();
  std::vector<double> out(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) out[i] = step(signal[i]);
  return out;
}

void OnePoleLowPass::reset() { state_ = 0.0; }

std::vector<double> differentiate(const std::vector<double>& signal, double sample_rate) {
  EMTS_REQUIRE(sample_rate > 0.0, "sample_rate must be positive");
  if (signal.empty()) return {};
  std::vector<double> out(signal.size(), 0.0);
  for (std::size_t i = 1; i < signal.size(); ++i) {
    out[i] = (signal[i] - signal[i - 1]) * sample_rate;
  }
  if (signal.size() > 1) out[0] = out[1];
  return out;
}

std::vector<double> integrate(const std::vector<double>& signal, double sample_rate) {
  EMTS_REQUIRE(sample_rate > 0.0, "sample_rate must be positive");
  if (signal.empty()) return {};
  const double dt = 1.0 / sample_rate;
  std::vector<double> out(signal.size(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 1; i < signal.size(); ++i) {
    acc += 0.5 * (signal[i] + signal[i - 1]) * dt;
    out[i] = acc;
  }
  return out;
}

}  // namespace emts::dsp
