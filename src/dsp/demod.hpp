// AM demodulation. Trojan T1 leaks key bits on a 750 kHz AM carrier (paper
// Sec. IV-A, "demodulated with a wireless radio receiver"); this module plays
// the attacker's receiver so tests can prove the leak actually carries data
// — and the examples can show the defender catching it in the spectrum.
#pragma once

#include <cstddef>
#include <vector>

namespace emts::dsp {

struct AmDemodOptions {
  double carrier_hz = 750e3;
  double sample_rate = 384e6;
  double bit_rate_hz = 0.0;  // if > 0, also slice bits at this rate
};

/// Coherent AM demodulation: mixes with the carrier, low-passes the product,
/// and returns the recovered baseband envelope.
std::vector<double> am_demodulate(const std::vector<double>& signal, const AmDemodOptions& options);

/// Slices a demodulated envelope into bits at `bit_rate_hz` by thresholding
/// each bit period's mean against the global midpoint.
std::vector<int> slice_bits(const std::vector<double>& envelope, double sample_rate,
                            double bit_rate_hz);

/// On-off-keyed carrier synthesis (the Trojan's transmitter): for each bit,
/// `samples_per_bit` samples of carrier (bit=1) or silence (bit=0).
std::vector<double> ook_modulate(const std::vector<int>& bits, double carrier_hz,
                                 double sample_rate, std::size_t samples_per_bit,
                                 double amplitude = 1.0);

}  // namespace emts::dsp
