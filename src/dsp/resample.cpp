#include "dsp/resample.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace emts::dsp {

std::vector<double> decimate_mean(const std::vector<double>& signal, std::size_t factor) {
  std::vector<double> out;
  decimate_mean_into(signal, factor, out);
  return out;
}

void decimate_mean_into(const std::vector<double>& signal, std::size_t factor,
                        std::vector<double>& out) {
  EMTS_REQUIRE(factor > 0, "decimation factor must be positive");
  const std::size_t blocks = signal.size() / factor;
  out.assign(blocks, 0.0);
  for (std::size_t b = 0; b < blocks; ++b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < factor; ++i) acc += signal[b * factor + i];
    out[b] = acc / static_cast<double>(factor);
  }
}

std::vector<double> decimate_peak(const std::vector<double>& signal, std::size_t factor) {
  EMTS_REQUIRE(factor > 0, "decimation factor must be positive");
  const std::size_t blocks = signal.size() / factor;
  std::vector<double> out(blocks, 0.0);
  for (std::size_t b = 0; b < blocks; ++b) {
    double best = 0.0;
    for (std::size_t i = 0; i < factor; ++i) {
      const double v = signal[b * factor + i];
      if (std::abs(v) > std::abs(best)) best = v;
    }
    out[b] = best;
  }
  return out;
}

int best_alignment_lag(const std::vector<double>& a, const std::vector<double>& b,
                       std::size_t max_lag) {
  EMTS_REQUIRE(a.size() == b.size(), "alignment requires equal-length signals");
  EMTS_REQUIRE(!a.empty(), "alignment requires non-empty signals");
  const auto n = static_cast<long>(a.size());
  const auto span = static_cast<long>(max_lag);

  double best_score = -1e300;
  int best_lag = 0;
  for (long lag = -span; lag <= span; ++lag) {
    double acc = 0.0;
    for (long i = 0; i < n; ++i) {
      const long j = i + lag;
      if (j < 0 || j >= n) continue;
      acc += a[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(j)];
    }
    if (acc > best_score) {
      best_score = acc;
      best_lag = static_cast<int>(lag);
    }
  }
  return best_lag;
}

std::vector<double> shift(const std::vector<double>& signal, int lag) {
  const auto n = static_cast<long>(signal.size());
  std::vector<double> out(signal.size(), 0.0);
  for (long i = 0; i < n; ++i) {
    const long j = i + lag;
    if (j >= 0 && j < n) out[static_cast<std::size_t>(i)] = signal[static_cast<std::size_t>(j)];
  }
  return out;
}

}  // namespace emts::dsp
