#include "dsp/fft.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/units.hpp"

namespace emts::dsp {

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

void bit_reverse_permute(std::vector<cplx>& data) {
  const std::size_t n = data.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

void transform(std::vector<cplx>& data, bool inverse) {
  const std::size_t n = data.size();
  EMTS_REQUIRE(is_power_of_two(n), "FFT requires a power-of-two length");
  bit_reverse_permute(data);

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * units::pi / static_cast<double>(len);
    const cplx wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      cplx w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cplx u = data[i + k];
        const cplx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (cplx& x : data) x *= scale;
  }
}

}  // namespace

void fft_in_place(std::vector<cplx>& data) { transform(data, /*inverse=*/false); }

void ifft_in_place(std::vector<cplx>& data) { transform(data, /*inverse=*/true); }

std::vector<cplx> fft_real(const std::vector<double>& signal) {
  EMTS_REQUIRE(!signal.empty(), "fft_real requires a non-empty signal");
  std::vector<cplx> data(next_power_of_two(signal.size()), cplx{0.0, 0.0});
  for (std::size_t i = 0; i < signal.size(); ++i) data[i] = cplx{signal[i], 0.0};
  fft_in_place(data);
  return data;
}

std::vector<double> ifft_real(std::vector<cplx> spectrum) {
  ifft_in_place(spectrum);
  std::vector<double> out(spectrum.size());
  for (std::size_t i = 0; i < spectrum.size(); ++i) out[i] = spectrum[i].real();
  return out;
}

FftPlan::FftPlan(std::size_t n) : n_{n} {
  EMTS_REQUIRE(is_power_of_two(n), "FftPlan requires a power-of-two length");

  // Same index walk as bit_reverse_permute, recorded instead of applied.
  reverse_.assign(n_, 0);
  std::size_t j = 0;
  for (std::size_t i = 1; i < n_; ++i) {
    std::size_t bit = n_ >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    reverse_[i] = j;
  }

  // Each stage's butterfly restarts w = 1 and steps w *= wlen; every group
  // inside a stage replays the identical sequence, so one table per stage
  // reproduces the one-shot transform's arithmetic exactly.
  twiddles_.reserve(n_ > 1 ? n_ - 1 : 0);
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const double angle = -2.0 * units::pi / static_cast<double>(len);
    const cplx wlen{std::cos(angle), std::sin(angle)};
    cplx w{1.0, 0.0};
    for (std::size_t k = 0; k < len / 2; ++k) {
      twiddles_.push_back(w);
      w *= wlen;
    }
  }
}

void FftPlan::forward(std::vector<cplx>& data) const {
  EMTS_REQUIRE(data.size() == n_, "FftPlan::forward: size mismatch with plan");
  for (std::size_t i = 1; i < n_; ++i) {
    if (i < reverse_[i]) std::swap(data[i], data[reverse_[i]]);
  }
  std::size_t offset = 0;
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const cplx* w = twiddles_.data() + offset;
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n_; i += len) {
      for (std::size_t k = 0; k < half; ++k) {
        const cplx u = data[i + k];
        const cplx v = data[i + k + half] * w[k];
        data[i + k] = u + v;
        data[i + k + half] = u - v;
      }
    }
    offset += half;
  }
}

}  // namespace emts::dsp
