#include "netlist/synth.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <string>

#include "util/assert.hpp"

namespace emts::netlist {

namespace {

// Synthesis context: shares constants, per-variable inverted selects, and
// every already-built sub-function (keyed by its residual truth table).
class Synthesizer {
 public:
  Synthesizer(Netlist& nl, const std::vector<NetId>& inputs) : nl_{nl}, inputs_{inputs} {}

  NetId build(const TruthTable& table) {
    EMTS_ASSERT(!table.empty());
    // Constant function?
    bool all_zero = true;
    bool all_one = true;
    for (bool b : table) {
      all_zero &= !b;
      all_one &= b;
    }
    if (all_zero) return tie_lo();
    if (all_one) return tie_hi();

    const auto key = table_key(table);
    if (const auto it = memo_.find(key); it != memo_.end()) return it->second;

    // Shannon expansion on the highest remaining variable: the table for n
    // variables splits into low half (var = 0) and high half (var = 1).
    const std::size_t n = var_count(table.size());
    const std::size_t half = table.size() / 2;
    const TruthTable lo(table.begin(), table.begin() + static_cast<long>(half));
    const TruthTable hi(table.begin() + static_cast<long>(half), table.end());
    const NetId sel = inputs_[n - 1];

    NetId out = kInvalidNet;
    if (lo == hi) {
      out = build(lo);  // variable is redundant
    } else if (is_const0(lo) && is_const1(hi)) {
      out = sel;  // literal
    } else if (is_const1(lo) && is_const0(hi)) {
      out = inverted(sel);
    } else if (is_const0(lo)) {
      out = add_gate(CellType::kAnd2, sel, build(hi));
    } else if (is_const0(hi)) {
      out = add_gate(CellType::kAnd2, inverted(sel), build(lo));
    } else if (is_const1(lo)) {
      out = add_gate(CellType::kOr2, inverted(sel), build(hi));
    } else if (is_const1(hi)) {
      out = add_gate(CellType::kOr2, sel, build(lo));
    } else {
      const NetId c0 = build(lo);
      const NetId c1 = build(hi);
      if (c0 == c1) {
        out = c0;
      } else if (c0 == inverted_of(c1)) {
        // mux(c, !c, sel) = sel XNOR c1... = sel == c1.
        out = add_gate(CellType::kXnor2, sel, c1);
      } else {
        const NetId net = nl_.add_net();
        nl_.add_cell(CellType::kMux2, {c0, c1, sel}, net);
        out = net;
      }
    }

    memo_.emplace(key, out);
    return out;
  }

 private:
  static std::size_t var_count(std::size_t table_size) {
    std::size_t n = 0;
    while ((std::size_t{1} << n) < table_size) ++n;
    return n;
  }

  static bool is_const0(const TruthTable& t) {
    for (bool b : t) {
      if (b) return false;
    }
    return true;
  }

  static bool is_const1(const TruthTable& t) {
    for (bool b : t) {
      if (!b) return false;
    }
    return true;
  }

  // Key: variable count prefix + packed bits (tables of different arity with
  // equal content must not collide).
  static std::string table_key(const TruthTable& t) {
    std::string key;
    key.reserve(t.size() / 8 + 3);
    key.push_back(static_cast<char>(var_count(t.size())));
    char acc = 0;
    int bits = 0;
    for (bool b : t) {
      acc = static_cast<char>((acc << 1) | (b ? 1 : 0));
      if (++bits == 8) {
        key.push_back(acc);
        acc = 0;
        bits = 0;
      }
    }
    if (bits != 0) key.push_back(acc);
    return key;
  }

  NetId tie_lo() {
    if (tie_lo_ == kInvalidNet) {
      tie_lo_ = nl_.add_net("const0");
      nl_.add_cell(CellType::kTieLo, {}, tie_lo_);
    }
    return tie_lo_;
  }

  NetId tie_hi() {
    if (tie_hi_ == kInvalidNet) {
      tie_hi_ = nl_.add_net("const1");
      nl_.add_cell(CellType::kTieHi, {}, tie_hi_);
    }
    return tie_hi_;
  }

  NetId inverted(NetId net) {
    if (const auto it = inverted_.find(net); it != inverted_.end()) return it->second;
    const NetId out = nl_.add_net();
    nl_.add_cell(CellType::kInv, {net}, out);
    inverted_.emplace(net, out);
    inverted_source_.emplace(out, net);
    return out;
  }

  /// Net that `net` is the inversion of, if we built it; else kInvalidNet.
  NetId inverted_of(NetId net) const {
    if (const auto it = inverted_source_.find(net); it != inverted_source_.end()) {
      return it->second;
    }
    return kInvalidNet;
  }

  NetId add_gate(CellType type, NetId a, NetId b) {
    // Commutative gates: canonical operand order improves sharing.
    if (a > b) std::swap(a, b);
    const auto key = std::make_tuple(type, a, b);
    if (const auto it = gates_.find(key); it != gates_.end()) return it->second;
    const NetId out = nl_.add_net();
    nl_.add_cell(type, {a, b}, out);
    gates_.emplace(key, out);
    return out;
  }

  Netlist& nl_;
  const std::vector<NetId>& inputs_;
  std::map<std::string, NetId> memo_;
  std::map<NetId, NetId> inverted_;
  std::map<NetId, NetId> inverted_source_;
  std::map<std::tuple<CellType, NetId, NetId>, NetId> gates_;
  NetId tie_lo_ = kInvalidNet;
  NetId tie_hi_ = kInvalidNet;
};

}  // namespace

std::vector<NetId> synthesize_lut(Netlist& nl, const std::vector<NetId>& inputs,
                                  const std::vector<TruthTable>& outputs) {
  EMTS_REQUIRE(!inputs.empty() && inputs.size() <= 16, "synthesize_lut: 1..16 inputs");
  EMTS_REQUIRE(!outputs.empty(), "synthesize_lut: at least one output");
  const std::size_t expected = std::size_t{1} << inputs.size();
  for (const TruthTable& t : outputs) {
    EMTS_REQUIRE(t.size() == expected, "synthesize_lut: truth table size must be 2^n");
  }

  Synthesizer synth{nl, inputs};
  std::vector<NetId> out;
  out.reserve(outputs.size());
  for (const TruthTable& t : outputs) out.push_back(synth.build(t));
  return out;
}

}  // namespace emts::netlist
