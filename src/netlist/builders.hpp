// Parametric netlist generators for the recurring structures in the paper's
// Trojans and control logic: shift registers (T2's leak path), XNOR LFSRs
// (T3's CDMA spreading-sequence generator), synchronous counters and clock
// dividers (T1's 750 kHz carrier, the A2 trigger pulse train), toggle
// register banks (T4's power-hog payload), and comparator/reduction trees.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace emts::netlist {

/// Serial-in shift register; q[0] is the stage closest to serial_in.
struct ShiftRegisterHandle {
  std::vector<NetId> q;
};
ShiftRegisterHandle build_shift_register(Netlist& nl, std::size_t width, NetId serial_in);

/// Fibonacci LFSR with XNOR feedback (the all-zero reset state is a valid
/// sequence state). `taps` are state indices fed into the feedback XNOR
/// chain; index width-1 is always included.
struct LfsrHandle {
  std::vector<NetId> state;
  NetId feedback;
};
LfsrHandle build_lfsr(Netlist& nl, std::size_t width, std::vector<std::size_t> taps);

/// Synchronous binary up-counter with enable; bits[0] is the lsb.
/// bits[k] toggles every 2^k enabled cycles, so bits[k] is a clock/2^(k+1)
/// divider output.
struct CounterHandle {
  std::vector<NetId> bits;
};
CounterHandle build_counter(Netlist& nl, std::size_t width, NetId enable);

/// Register bank whose every flop toggles while `enable` is high (T4's
/// "more flipping registers" payload).
struct ToggleBankHandle {
  std::vector<NetId> q;
};
ToggleBankHandle build_toggle_bank(Netlist& nl, std::size_t width, NetId enable);

/// Balanced AND reduction; returns the root net. Requires >= 1 input.
NetId build_and_tree(Netlist& nl, std::vector<NetId> inputs);

/// Balanced OR reduction; returns the root net. Requires >= 1 input.
NetId build_or_tree(Netlist& nl, std::vector<NetId> inputs);

/// Balanced XOR reduction; returns the root net. Requires >= 1 input.
NetId build_xor_tree(Netlist& nl, std::vector<NetId> inputs);

/// Single-output comparator: high when `bits` equals `constant` (bit 0 = lsb).
/// This is the classic rare-value Trojan trigger structure.
NetId build_equals_const(Netlist& nl, const std::vector<NetId>& bits, std::uint64_t constant);

}  // namespace emts::netlist
