// Combinational logic synthesis from truth tables: Shannon (MUX)
// decomposition with structural hashing, constant folding, and gate-level
// strength reduction. This is how the repository builds *real* gate-level
// implementations of nonlinear blocks — most importantly the AES S-box,
// whose synthesized netlist is verified against the reference cipher over
// all 256 inputs in the tests.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace emts::netlist {

/// Truth table of one output: bit `i` is the output value when the inputs
/// spell the binary number i (inputs[0] = lsb of i). size() must be
/// 2^inputs.size().
using TruthTable = std::vector<bool>;

/// Synthesizes an n-input, m-output boolean function. Returns the m output
/// nets. Identical sub-functions are shared across all outputs (structural
/// hashing), constants fold to tie cells, and single-literal / AND / OR
/// shapes replace full multiplexers where possible.
/// Requires 1 <= inputs.size() <= 16 and every table sized 2^n.
std::vector<NetId> synthesize_lut(Netlist& nl, const std::vector<NetId>& inputs,
                                  const std::vector<TruthTable>& outputs);

}  // namespace emts::netlist
