// Static timing analysis over the gate-level netlist: topological arrival
// times through the combinational fabric between sequential/primary
// endpoints. Answers the question every clocked design must: does the
// longest path settle inside the clock period? (The chip model's 48 MHz
// choice is validated against the synthesized AES core in the tests.)
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/netlist.hpp"

namespace emts::netlist {

/// Result of a timing analysis.
struct TimingReport {
  double critical_delay_ps = 0.0;      // worst arrival at any endpoint
  std::vector<CellId> critical_path;   // cells along the worst path, start to end
  std::vector<double> arrival_ps;      // per-net arrival time (ps)

  /// True if the design settles within `period_ps` (with `margin_ps` slack).
  bool meets_period(double period_ps, double margin_ps = 0.0) const {
    return critical_delay_ps + margin_ps <= period_ps;
  }
};

/// Computes arrival times. Timing starts at 0 on primary (undriven) nets and
/// at flop outputs (clk-to-Q counted via the DFF cell delay); combinational
/// cells add their library delay; flop D pins and primary outputs are
/// endpoints. Throws precondition_error on combinational cycles.
TimingReport analyze_timing(const Netlist& netlist);

}  // namespace emts::netlist
