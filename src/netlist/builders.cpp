#include "netlist/builders.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace emts::netlist {

ShiftRegisterHandle build_shift_register(Netlist& nl, std::size_t width, NetId serial_in) {
  EMTS_REQUIRE(width >= 1, "shift register needs width >= 1");
  ShiftRegisterHandle handle;
  NetId prev = serial_in;
  for (std::size_t i = 0; i < width; ++i) {
    const NetId q = nl.add_net("sr_q" + std::to_string(i));
    nl.add_cell(CellType::kDff, {prev}, q);
    handle.q.push_back(q);
    prev = q;
  }
  return handle;
}

LfsrHandle build_lfsr(Netlist& nl, std::size_t width, std::vector<std::size_t> taps) {
  EMTS_REQUIRE(width >= 2, "LFSR needs width >= 2");
  for (std::size_t t : taps) {
    EMTS_REQUIRE(t < width, "LFSR tap index out of range");
  }
  if (std::find(taps.begin(), taps.end(), width - 1) == taps.end()) {
    taps.push_back(width - 1);
  }

  LfsrHandle handle;
  // Create state nets first so feedback can reference them.
  for (std::size_t i = 0; i < width; ++i) {
    handle.state.push_back(nl.add_net("lfsr_s" + std::to_string(i)));
  }

  // XNOR feedback chain over the taps: for an even number of XNOR stages the
  // result is the XNOR-parity that makes all-zeros a sequence state.
  NetId fb = handle.state[taps[0]];
  for (std::size_t k = 1; k < taps.size(); ++k) {
    const NetId next = nl.add_net("lfsr_fb" + std::to_string(k));
    nl.add_cell(CellType::kXnor2, {fb, handle.state[taps[k]]}, next);
    fb = next;
  }
  if (taps.size() == 1) {
    // Single tap: invert so the zero state still progresses.
    const NetId inv = nl.add_net("lfsr_fbinv");
    nl.add_cell(CellType::kInv, {fb}, inv);
    fb = inv;
  }
  handle.feedback = fb;

  // Shift: state[0] <= feedback, state[i] <= state[i-1].
  nl.add_cell(CellType::kDff, {fb}, handle.state[0]);
  for (std::size_t i = 1; i < width; ++i) {
    nl.add_cell(CellType::kDff, {handle.state[i - 1]}, handle.state[i]);
  }
  return handle;
}

CounterHandle build_counter(Netlist& nl, std::size_t width, NetId enable) {
  EMTS_REQUIRE(width >= 1, "counter needs width >= 1");
  CounterHandle handle;
  for (std::size_t i = 0; i < width; ++i) {
    handle.bits.push_back(nl.add_net("cnt_q" + std::to_string(i)));
  }

  NetId carry = enable;
  for (std::size_t i = 0; i < width; ++i) {
    const NetId d = nl.add_net("cnt_d" + std::to_string(i));
    nl.add_cell(CellType::kXor2, {handle.bits[i], carry}, d);
    nl.add_cell(CellType::kDff, {d}, handle.bits[i]);
    if (i + 1 < width) {
      const NetId next_carry = nl.add_net("cnt_c" + std::to_string(i + 1));
      nl.add_cell(CellType::kAnd2, {carry, handle.bits[i]}, next_carry);
      carry = next_carry;
    }
  }
  return handle;
}

ToggleBankHandle build_toggle_bank(Netlist& nl, std::size_t width, NetId enable) {
  EMTS_REQUIRE(width >= 1, "toggle bank needs width >= 1");
  ToggleBankHandle handle;
  for (std::size_t i = 0; i < width; ++i) {
    const NetId q = nl.add_net("tb_q" + std::to_string(i));
    const NetId d = nl.add_net("tb_d" + std::to_string(i));
    nl.add_cell(CellType::kXor2, {q, enable}, d);
    nl.add_cell(CellType::kDff, {d}, q);
    handle.q.push_back(q);
  }
  return handle;
}

namespace {

NetId build_tree(Netlist& nl, std::vector<NetId> level, CellType gate, const char* prefix) {
  EMTS_REQUIRE(!level.empty(), "reduction tree needs >= 1 input");
  std::size_t stage = 0;
  while (level.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const NetId out = nl.add_net(std::string(prefix) + std::to_string(stage) + "_" +
                                   std::to_string(i / 2));
      nl.add_cell(gate, {level[i], level[i + 1]}, out);
      next.push_back(out);
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
    ++stage;
  }
  return level.front();
}

}  // namespace

NetId build_and_tree(Netlist& nl, std::vector<NetId> inputs) {
  return build_tree(nl, std::move(inputs), CellType::kAnd2, "and");
}

NetId build_or_tree(Netlist& nl, std::vector<NetId> inputs) {
  return build_tree(nl, std::move(inputs), CellType::kOr2, "or");
}

NetId build_xor_tree(Netlist& nl, std::vector<NetId> inputs) {
  return build_tree(nl, std::move(inputs), CellType::kXor2, "xor");
}

NetId build_equals_const(Netlist& nl, const std::vector<NetId>& bits, std::uint64_t constant) {
  EMTS_REQUIRE(!bits.empty() && bits.size() <= 64, "comparator needs 1..64 bits");
  std::vector<NetId> matched;
  for (std::size_t b = 0; b < bits.size(); ++b) {
    if (((constant >> b) & 1ULL) != 0) {
      matched.push_back(bits[b]);
    } else {
      const NetId inv = nl.add_net("eq_n" + std::to_string(b));
      nl.add_cell(CellType::kInv, {bits[b]}, inv);
      matched.push_back(inv);
    }
  }
  return build_and_tree(nl, std::move(matched));
}

}  // namespace emts::netlist
