#include "netlist/cell.hpp"

#include <array>

#include "util/assert.hpp"

namespace emts::netlist {

namespace {

// Representative 180 nm values: NAND2 is the 1.0 gate-equivalent reference at
// ~12 um^2; flip-flops dominate both area and switched charge. Delays are
// typical-corner pin-to-pin figures.
constexpr std::array<CellInfo, 12> kCellTable{{
    {"INV", 1, 8.0, 0.67, 60.0, 4.0},
    {"BUF", 1, 10.0, 1.0, 90.0, 5.0},
    {"NAND2", 2, 12.0, 1.0, 80.0, 6.0},
    {"NOR2", 2, 12.0, 1.0, 95.0, 6.0},
    {"AND2", 2, 16.0, 1.33, 120.0, 8.0},
    {"OR2", 2, 16.0, 1.33, 130.0, 8.0},
    {"XOR2", 2, 28.0, 2.33, 150.0, 12.0},
    {"XNOR2", 2, 28.0, 2.33, 150.0, 12.0},
    {"MUX2", 3, 30.0, 2.33, 140.0, 11.0},
    {"DFF", 1, 72.0, 6.0, 200.0, 30.0},
    {"TIELO", 0, 4.0, 0.33, 0.0, 0.0},
    {"TIEHI", 0, 4.0, 0.33, 0.0, 0.0},
}};

}  // namespace

const CellInfo& cell_info(CellType type) {
  const auto idx = static_cast<std::size_t>(type);
  EMTS_ASSERT(idx < kCellTable.size());
  return kCellTable[idx];
}

std::size_t cell_type_count() { return kCellTable.size(); }

CellType cell_type_at(std::size_t index) {
  EMTS_REQUIRE(index < kCellTable.size(), "cell type index out of range");
  return static_cast<CellType>(index);
}

bool eval_cell(CellType type, const std::vector<bool>& inputs) {
  EMTS_REQUIRE(inputs.size() == cell_info(type).num_inputs,
               "eval_cell: wrong input count");
  switch (type) {
    case CellType::kInv:
      return !inputs[0];
    case CellType::kBuf:
      return inputs[0];
    case CellType::kNand2:
      return !(inputs[0] && inputs[1]);
    case CellType::kNor2:
      return !(inputs[0] || inputs[1]);
    case CellType::kAnd2:
      return inputs[0] && inputs[1];
    case CellType::kOr2:
      return inputs[0] || inputs[1];
    case CellType::kXor2:
      return inputs[0] != inputs[1];
    case CellType::kXnor2:
      return inputs[0] == inputs[1];
    case CellType::kMux2:
      return inputs[2] ? inputs[1] : inputs[0];
    case CellType::kDff:
      return inputs[0];
    case CellType::kTieLo:
      return false;
    case CellType::kTieHi:
      return true;
  }
  EMTS_ASSERT(false);
  return false;
}

}  // namespace emts::netlist
