#include "netlist/netlist.hpp"

#include "util/assert.hpp"

namespace emts::netlist {

Netlist::Netlist(std::string name) : name_{std::move(name)} {}

NetId Netlist::add_net(std::string net_name) {
  const auto id = static_cast<NetId>(net_names_.size());
  EMTS_REQUIRE(id != kInvalidNet, "netlist net capacity exhausted");
  if (net_name.empty()) net_name = "n" + std::to_string(id);
  net_names_.push_back(std::move(net_name));
  net_driver_.push_back(kInvalidNet);
  net_fanout_.emplace_back();
  return id;
}

CellId Netlist::add_cell(CellType type, std::vector<NetId> inputs, NetId output) {
  const CellInfo& info = cell_info(type);
  EMTS_REQUIRE(inputs.size() == info.num_inputs, "add_cell: wrong input count");
  EMTS_REQUIRE(output < net_names_.size(), "add_cell: output net does not exist");
  EMTS_REQUIRE(net_driver_[output] == kInvalidNet, "add_cell: output net already driven");
  for (NetId in : inputs) {
    EMTS_REQUIRE(in < net_names_.size(), "add_cell: input net does not exist");
  }

  const auto id = static_cast<CellId>(cells_.size());
  for (std::size_t pin = 0; pin < inputs.size(); ++pin) {
    net_fanout_[inputs[pin]].emplace_back(id, pin);
  }
  net_driver_[output] = id;
  if (type == CellType::kDff) flops_.push_back(id);
  cells_.push_back(Cell{type, std::move(inputs), output});
  return id;
}

void Netlist::mark_primary_input(NetId net) {
  EMTS_REQUIRE(net < net_names_.size(), "mark_primary_input: no such net");
  EMTS_REQUIRE(net_driver_[net] == kInvalidNet, "primary input must be undriven");
  primary_inputs_.push_back(net);
}

void Netlist::mark_primary_output(NetId net) {
  EMTS_REQUIRE(net < net_names_.size(), "mark_primary_output: no such net");
  primary_outputs_.push_back(net);
}

const Cell& Netlist::cell(CellId id) const {
  EMTS_ASSERT(id < cells_.size());
  return cells_[id];
}

const std::string& Netlist::net_name(NetId id) const {
  EMTS_ASSERT(id < net_names_.size());
  return net_names_[id];
}

bool Netlist::has_driver(NetId net) const {
  EMTS_ASSERT(net < net_driver_.size());
  return net_driver_[net] != kInvalidNet;
}

CellId Netlist::driver(NetId net) const {
  EMTS_REQUIRE(has_driver(net), "driver: net is undriven");
  return net_driver_[net];
}

const std::vector<std::pair<CellId, std::size_t>>& Netlist::fanout(NetId net) const {
  EMTS_ASSERT(net < net_fanout_.size());
  return net_fanout_[net];
}

GateCountReport Netlist::gate_count() const {
  GateCountReport report;
  report.count_by_type.assign(cell_type_count(), 0);
  report.cell_count = cells_.size();
  for (const Cell& c : cells_) {
    const CellInfo& info = cell_info(c.type);
    report.gate_equivalents += info.gate_equivalents;
    report.area_um2 += info.area_um2;
    ++report.count_by_type[static_cast<std::size_t>(c.type)];
  }
  return report;
}

NetId Netlist::merge(const Netlist& other) {
  const auto offset = static_cast<NetId>(net_names_.size());
  for (std::size_t n = 0; n < other.net_names_.size(); ++n) {
    add_net(other.name_ + "/" + other.net_names_[n]);
  }
  for (const Cell& c : other.cells_) {
    std::vector<NetId> inputs;
    inputs.reserve(c.inputs.size());
    for (NetId in : c.inputs) inputs.push_back(in + offset);
    add_cell(c.type, std::move(inputs), c.output + offset);
  }
  for (NetId pi : other.primary_inputs_) primary_inputs_.push_back(pi + offset);
  for (NetId po : other.primary_outputs_) primary_outputs_.push_back(po + offset);
  return offset;
}

}  // namespace emts::netlist
