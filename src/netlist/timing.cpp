#include "netlist/timing.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace emts::netlist {

TimingReport analyze_timing(const Netlist& netlist) {
  TimingReport report;
  const std::size_t nets = netlist.net_count();
  report.arrival_ps.assign(nets, 0.0);

  // Kahn topological order over combinational cells (flops break the graph:
  // their outputs are timing *sources*, their inputs timing *endpoints*).
  std::vector<std::size_t> pending(netlist.cell_count(), 0);
  std::vector<CellId> ready;
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    const Cell& cell = netlist.cell(id);
    if (cell.type == CellType::kDff) {
      // Launch: Q becomes valid clk-to-Q after the edge.
      report.arrival_ps[cell.output] = cell_info(CellType::kDff).delay_ps;
      continue;
    }
    std::size_t unresolved = 0;
    for (NetId in : cell.inputs) {
      if (netlist.has_driver(in) && netlist.cell(netlist.driver(in)).type != CellType::kDff) {
        ++unresolved;
      }
    }
    pending[id] = unresolved;
    if (unresolved == 0) ready.push_back(id);
  }

  // Track the worst-driving cell per net so the critical path can be walked
  // backwards afterwards.
  constexpr CellId kNone = 0xffffffffu;
  std::vector<CellId> worst_driver(nets, kNone);

  std::size_t processed = 0;
  std::vector<CellId> order;
  while (!ready.empty()) {
    const CellId id = ready.back();
    ready.pop_back();
    const Cell& cell = netlist.cell(id);
    ++processed;

    double worst_input = 0.0;
    for (NetId in : cell.inputs) worst_input = std::max(worst_input, report.arrival_ps[in]);
    report.arrival_ps[cell.output] = worst_input + cell_info(cell.type).delay_ps;
    worst_driver[cell.output] = id;

    for (const auto& [sink, pin] : netlist.fanout(cell.output)) {
      if (netlist.cell(sink).type == CellType::kDff) continue;
      EMTS_ASSERT(pending[sink] > 0);
      if (--pending[sink] == 0) ready.push_back(sink);
      (void)pin;
    }
  }

  std::size_t combinational = 0;
  for (CellId id = 0; id < netlist.cell_count(); ++id) {
    combinational += (netlist.cell(id).type != CellType::kDff);
  }
  EMTS_REQUIRE(processed == combinational,
               "timing analysis requires an acyclic combinational fabric");

  // Endpoints: flop D inputs and primary outputs.
  NetId worst_net = kInvalidNet;
  for (CellId flop : netlist.flops()) {
    const NetId d = netlist.cell(flop).inputs[0];
    if (report.arrival_ps[d] >= report.critical_delay_ps) {
      report.critical_delay_ps = report.arrival_ps[d];
      worst_net = d;
    }
  }
  for (NetId po : netlist.primary_outputs()) {
    if (report.arrival_ps[po] >= report.critical_delay_ps) {
      report.critical_delay_ps = report.arrival_ps[po];
      worst_net = po;
    }
  }

  // Walk the worst path backwards through worst-arrival inputs.
  while (worst_net != kInvalidNet && worst_driver[worst_net] != kNone) {
    const CellId id = worst_driver[worst_net];
    report.critical_path.push_back(id);
    const Cell& cell = netlist.cell(id);
    NetId next = kInvalidNet;
    double best = -1.0;
    for (NetId in : cell.inputs) {
      if (report.arrival_ps[in] > best) {
        best = report.arrival_ps[in];
        next = in;
      }
    }
    worst_net = next;
  }
  std::reverse(report.critical_path.begin(), report.critical_path.end());
  return report;
}

}  // namespace emts::netlist
