// Standard-cell library model for a generic 180 nm process (the technology of
// the paper's fabricated AES, Sec. IV-C). Per-cell area, gate-equivalents and
// delay feed three consumers: Table I gate counts, the placer's footprint
// computation, and the event-driven simulator's timing.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace emts::netlist {

enum class CellType {
  kInv,
  kBuf,
  kNand2,
  kNor2,
  kAnd2,
  kOr2,
  kXor2,
  kXnor2,
  kMux2,   // inputs: {a, b, sel} -> sel ? b : a
  kDff,    // inputs: {d}; state element, updated on clock_edge()
  kTieLo,  // constant 0, no inputs
  kTieHi,  // constant 1, no inputs
};

/// Static properties of a cell type.
struct CellInfo {
  std::string_view name;
  std::size_t num_inputs;
  double area_um2;          // placement footprint
  double gate_equivalents;  // NAND2-equivalent count (Table I units)
  double delay_ps;          // pin-to-pin propagation delay
  double switch_charge_fc;  // charge moved per output toggle (femtocoulombs)
};

/// Table lookup; total function over CellType.
const CellInfo& cell_info(CellType type);

/// Number of distinct cell types (for iteration in reports).
std::size_t cell_type_count();

/// CellType from its dense index in [0, cell_type_count()).
CellType cell_type_at(std::size_t index);

/// Combinational evaluation. `inputs.size()` must equal the cell's
/// num_inputs. kDff evaluates as identity (Q tracking is the simulator's
/// job); tie cells ignore inputs.
bool eval_cell(CellType type, const std::vector<bool>& inputs);

}  // namespace emts::netlist
