// Event-driven two-value logic simulator with per-cell transport delays.
// Besides functional verification, its job is to produce the *switching
// activity* — which cells toggled, and when within the cycle — that the power
// model turns into transient currents and ultimately EM radiation.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace emts::netlist {

/// One recorded output toggle: which cell switched and when (ps from the most
/// recent clock edge or settle start).
struct TimedToggle {
  double time_ps = 0.0;
  CellId cell = 0;
};

class Simulator {
 public:
  /// Binds to a netlist (kept by reference; must outlive the simulator) and
  /// settles the initial state: all nets start at 0, then every cell output
  /// is evaluated, so tie cells and inverters reach consistent values.
  explicit Simulator(const Netlist& netlist);

  /// Drives a primary (undriven) net. Takes effect at the next settle() or
  /// clock_edge().
  void set_input(NetId net, bool value);

  /// Propagates pending events until the network is quiescent.
  /// Throws precondition_error if activity does not die down (combinational
  /// loop / oscillation), after a generous event budget.
  void settle();

  /// One rising clock edge: samples every DFF's D, schedules Q updates, then
  /// settles. Toggle recording for "last cycle" restarts here.
  void clock_edge();

  bool value(NetId net) const;

  /// Reads a bit-vector (index 0 = lsb) of net values.
  std::uint64_t read_word(const std::vector<NetId>& nets) const;

  /// Drives a bit-vector (index 0 = lsb).
  void set_word(const std::vector<NetId>& nets, std::uint64_t word);

  /// Output toggles recorded since the last clock_edge() (or since
  /// construction / explicit settle-with-reset), in time order.
  const std::vector<TimedToggle>& last_cycle_toggles() const { return cycle_toggles_; }

  /// Cumulative count of output toggles since construction or reset().
  std::uint64_t total_toggles() const { return total_toggles_; }

  /// Total switched charge (fC) in the last cycle, from the cell library's
  /// per-toggle charge figures.
  double last_cycle_charge_fc() const;

  /// Returns nets (all of them) to 0 and re-settles the initial state.
  void reset();

  std::uint64_t cycle_count() const { return cycles_; }

 private:
  struct Event {
    double time_ps;
    std::uint64_t seq;  // tie-break for deterministic ordering
    NetId net;
    bool value;
    bool operator>(const Event& other) const {
      if (time_ps != other.time_ps) return time_ps > other.time_ps;
      return seq > other.seq;
    }
  };

  void schedule(NetId net, bool value, double time_ps);
  void evaluate_fanout(NetId net, double now_ps);
  void run_queue();
  void settle_initial();

  const Netlist& netlist_;
  std::vector<char> net_value_;
  std::vector<char> net_pending_;  // value after all scheduled events
  std::vector<char> flop_state_;   // Q value per flop index
  std::vector<Event> queue_;       // min-heap via std::push_heap/greater
  std::uint64_t seq_ = 0;
  std::uint64_t total_toggles_ = 0;
  std::uint64_t cycles_ = 0;
  std::vector<TimedToggle> cycle_toggles_;
};

}  // namespace emts::netlist
