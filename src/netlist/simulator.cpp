#include "netlist/simulator.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace emts::netlist {

namespace {

// Budget per settle: generous multiple of circuit size. A well-formed
// synchronous netlist settles in ~logic-depth events; hitting this bound
// means a combinational loop is oscillating.
constexpr std::uint64_t kEventsPerCellBudget = 64;

}  // namespace

Simulator::Simulator(const Netlist& netlist)
    : netlist_{netlist},
      net_value_(netlist.net_count(), 0),
      net_pending_(netlist.net_count(), 0),
      flop_state_(netlist.flops().size(), 0) {
  settle_initial();
}

void Simulator::settle_initial() {
  // Evaluate every cell output against the all-zero net state so constants
  // and inverting gates propagate. DFF outputs present their stored state.
  for (CellId id = 0; id < netlist_.cell_count(); ++id) {
    const Cell& c = netlist_.cell(id);
    bool out = false;
    if (c.type == CellType::kDff) {
      const auto& flops = netlist_.flops();
      const auto it = std::lower_bound(flops.begin(), flops.end(), id);
      EMTS_ASSERT(it != flops.end() && *it == id);
      out = flop_state_[static_cast<std::size_t>(it - flops.begin())] != 0;
    } else {
      std::vector<bool> ins(c.inputs.size());
      for (std::size_t p = 0; p < c.inputs.size(); ++p) ins[p] = net_value_[c.inputs[p]] != 0;
      out = eval_cell(c.type, ins);
    }
    if (out != (net_pending_[c.output] != 0)) {
      schedule(c.output, out, cell_info(c.type).delay_ps);
    }
  }
  run_queue();
  cycle_toggles_.clear();
}

void Simulator::set_input(NetId net, bool value) {
  EMTS_REQUIRE(net < netlist_.net_count(), "set_input: no such net");
  EMTS_REQUIRE(!netlist_.has_driver(net), "set_input: net is driven by a cell");
  if ((net_pending_[net] != 0) == value) return;
  schedule(net, value, 0.0);
}

void Simulator::schedule(NetId net, bool value, double time_ps) {
  net_pending_[net] = value ? 1 : 0;
  queue_.push_back(Event{time_ps, seq_++, net, value});
  std::push_heap(queue_.begin(), queue_.end(), std::greater<>{});
}

void Simulator::evaluate_fanout(NetId net, double now_ps) {
  for (const auto& [cell_id, pin] : netlist_.fanout(net)) {
    const Cell& c = netlist_.cell(cell_id);
    if (c.type == CellType::kDff) continue;  // flops only sample on clock edges
    std::vector<bool> ins(c.inputs.size());
    for (std::size_t p = 0; p < c.inputs.size(); ++p) ins[p] = net_value_[c.inputs[p]] != 0;
    const bool out = eval_cell(c.type, ins);
    if (out != (net_pending_[c.output] != 0)) {
      schedule(c.output, out, now_ps + cell_info(c.type).delay_ps);
    }
    (void)pin;
  }
}

void Simulator::run_queue() {
  const std::uint64_t budget =
      kEventsPerCellBudget * std::max<std::uint64_t>(netlist_.cell_count(), 16);
  std::uint64_t processed = 0;
  while (!queue_.empty()) {
    std::pop_heap(queue_.begin(), queue_.end(), std::greater<>{});
    const Event ev = queue_.back();
    queue_.pop_back();

    if ((net_value_[ev.net] != 0) == ev.value) continue;
    net_value_[ev.net] = ev.value ? 1 : 0;

    if (netlist_.has_driver(ev.net)) {
      ++total_toggles_;
      cycle_toggles_.push_back(TimedToggle{ev.time_ps, netlist_.driver(ev.net)});
    }
    evaluate_fanout(ev.net, ev.time_ps);

    EMTS_REQUIRE(++processed <= budget,
                 "simulator did not settle: combinational loop or oscillation");
  }
}

void Simulator::settle() { run_queue(); }

void Simulator::clock_edge() {
  cycle_toggles_.clear();
  ++cycles_;

  // Input changes applied since the last settle happen *before* this edge.
  run_queue();

  // Sample every D input *before* any Q changes (two-phase edge semantics).
  const auto& flops = netlist_.flops();
  std::vector<char> sampled(flops.size());
  for (std::size_t f = 0; f < flops.size(); ++f) {
    sampled[f] = net_value_[netlist_.cell(flops[f]).inputs[0]];
  }
  for (std::size_t f = 0; f < flops.size(); ++f) {
    if (sampled[f] != flop_state_[f]) {
      flop_state_[f] = sampled[f];
      const Cell& c = netlist_.cell(flops[f]);
      schedule(c.output, sampled[f] != 0, cell_info(CellType::kDff).delay_ps);
    }
  }
  run_queue();
}

bool Simulator::value(NetId net) const {
  EMTS_REQUIRE(net < netlist_.net_count(), "value: no such net");
  return net_value_[net] != 0;
}

std::uint64_t Simulator::read_word(const std::vector<NetId>& nets) const {
  EMTS_REQUIRE(nets.size() <= 64, "read_word: at most 64 bits");
  std::uint64_t word = 0;
  for (std::size_t b = 0; b < nets.size(); ++b) {
    if (value(nets[b])) word |= (1ULL << b);
  }
  return word;
}

void Simulator::set_word(const std::vector<NetId>& nets, std::uint64_t word) {
  EMTS_REQUIRE(nets.size() <= 64, "set_word: at most 64 bits");
  for (std::size_t b = 0; b < nets.size(); ++b) {
    set_input(nets[b], ((word >> b) & 1ULL) != 0);
  }
}

double Simulator::last_cycle_charge_fc() const {
  double total = 0.0;
  for (const TimedToggle& t : cycle_toggles_) {
    total += cell_info(netlist_.cell(t.cell).type).switch_charge_fc;
  }
  return total;
}

void Simulator::reset() {
  std::fill(net_value_.begin(), net_value_.end(), 0);
  std::fill(net_pending_.begin(), net_pending_.end(), 0);
  std::fill(flop_state_.begin(), flop_state_.end(), 0);
  queue_.clear();
  cycle_toggles_.clear();
  total_toggles_ = 0;
  cycles_ = 0;
  settle_initial();
}

}  // namespace emts::netlist
