// Gate-level netlist graph. Cells drive nets; nets fan out to cell inputs.
// Invariants enforced at construction: every net has at most one driver, every
// cell input references an existing net. The structure is append-only, which
// keeps ids stable and lets the simulator index by plain vectors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/cell.hpp"

namespace emts::netlist {

using NetId = std::uint32_t;
using CellId = std::uint32_t;

inline constexpr NetId kInvalidNet = 0xffffffffu;

/// One cell instance: type, input nets, output net.
struct Cell {
  CellType type;
  std::vector<NetId> inputs;
  NetId output = kInvalidNet;
};

/// Aggregate size report (drives the Table I reproduction).
struct GateCountReport {
  std::size_t cell_count = 0;
  double gate_equivalents = 0.0;
  double area_um2 = 0.0;
  std::vector<std::size_t> count_by_type;  // indexed by CellType
};

class Netlist {
 public:
  explicit Netlist(std::string name = "top");

  const std::string& name() const { return name_; }

  /// Creates a new undriven net. Primary inputs are nets that never get a
  /// driving cell; the simulator sets them directly.
  NetId add_net(std::string net_name = "");

  /// Adds a cell driving `output`. Requires all nets to exist, the output to
  /// be undriven, and the input count to match the cell type.
  CellId add_cell(CellType type, std::vector<NetId> inputs, NetId output);

  /// Marks a net as a primary input (documentation + validation aid).
  void mark_primary_input(NetId net);

  /// Marks a net as a primary output.
  void mark_primary_output(NetId net);

  std::size_t net_count() const { return net_names_.size(); }
  std::size_t cell_count() const { return cells_.size(); }

  const Cell& cell(CellId id) const;
  const std::string& net_name(NetId id) const;

  /// Id of the cell driving `net`, or kInvalidCell sentinel via has_driver().
  bool has_driver(NetId net) const;
  CellId driver(NetId net) const;

  /// Cell inputs fed by `net` as (cell, pin) pairs.
  const std::vector<std::pair<CellId, std::size_t>>& fanout(NetId net) const;

  const std::vector<NetId>& primary_inputs() const { return primary_inputs_; }
  const std::vector<NetId>& primary_outputs() const { return primary_outputs_; }

  /// All state elements (DFF cells), in insertion order.
  const std::vector<CellId>& flops() const { return flops_; }

  GateCountReport gate_count() const;

  /// Appends every cell and net of `other` into this netlist and returns the
  /// net-id offset applied (new id = old id + offset). Used to assemble the
  /// AES + Trojans die from per-block netlists.
  NetId merge(const Netlist& other);

 private:
  std::string name_;
  std::vector<std::string> net_names_;
  std::vector<Cell> cells_;
  std::vector<CellId> net_driver_;  // kInvalidNet used as "no driver" marker
  std::vector<std::vector<std::pair<CellId, std::size_t>>> net_fanout_;
  std::vector<NetId> primary_inputs_;
  std::vector<NetId> primary_outputs_;
  std::vector<CellId> flops_;
};

}  // namespace emts::netlist
