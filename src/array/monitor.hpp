// Array runtime monitor: one pre-fitted RuntimeMonitor session per coil, all
// fed from the same bundle stream (the array analogue of Fig. 1's deployment
// loop). Detection stays per sensor — any session's alarm is the array's
// alarm — while the monitor additionally accumulates each coil's residual
// energy above its golden baseline into the anomaly-energy vector the
// Localizer matches against the sensitivity matrix.
#pragma once

#include <cstdint>
#include <vector>

#include "array/calibration.hpp"
#include "array/capture.hpp"
#include "array/grid.hpp"
#include "core/monitor.hpp"

namespace emts::array {

class ArrayMonitor {
 public:
  struct Options {
    /// Per-sensor session options (calibration_traces is irrelevant —
    /// sessions cold-start monitoring from the fitted artifacts).
    core::RuntimeMonitor::Options session{};
    /// Consecutive spectral-anomalous windowed passes on one coil that latch
    /// the array alarm. RuntimeMonitor's own debounce counts *pushes*, so a
    /// spectral-only offender (A2's triggering tone) that is quiet in the
    /// per-trace distance never accumulates a push run; the array layer
    /// debounces windowed passes instead, where such a Trojan is persistent.
    std::size_t spectral_debounce = 2;
    /// Minimum strongest-anomaly ratio for a windowed pass to count toward
    /// the spectral latch. At micro-coil SNR the golden stream occasionally
    /// reports a "new" spot whose amplitude merely *matches* calibration
    /// (ratio ~1 — a local-max flicker at the detection gate); a real
    /// injected tone amplifies the bin well past it. Measured margins on the
    /// default config: golden flickers <= ~1.1, A2's tone >= ~2.5 on the
    /// quietest coupled coil.
    double spectral_ratio_gate = 1.5;
  };

  /// Builds one pre-fitted session per coil from the calibration (which must
  /// match the grid's sensor count).
  ArrayMonitor(const SensorGrid& grid, const ArrayCalibration& calibration);
  ArrayMonitor(const SensorGrid& grid, const ArrayCalibration& calibration,
               const Options& options);

  const SensorGrid& grid() const { return grid_; }
  std::size_t sensor_count() const { return sessions_.size(); }
  std::size_t bundles_seen() const { return bundles_seen_; }

  /// Feeds one bundle: trace s goes to session s, in order, and each coil's
  /// residual energy against its golden mean joins the anomaly accumulator.
  /// Returns kAlarm if any session is alarmed, else kMonitoring.
  core::MonitorState push_bundle(const Bundle& bundle);

  /// Feeds a whole batch bundle-by-bundle (window order preserved).
  core::MonitorState push_bundles(const BundleSet& bundles);

  /// Any session latched in alarm, or any coil's spectral latch set (see
  /// Options::spectral_debounce).
  bool any_alarm() const;

  /// Whether sensor `sensor`'s spectral latch is set.
  bool spectral_alarmed(std::size_t sensor) const;

  /// Per-sensor session states, grid row-major.
  std::vector<core::MonitorState> states() const;

  const core::RuntimeMonitor& session(std::size_t sensor) const;
  core::RuntimeMonitor& session(std::size_t sensor);

  /// The localization observable: per sensor, sqrt(max(0, mean residual
  /// energy over the pushed bundles - golden baseline)) — linear in the
  /// Trojan's coupling into that coil (see array/calibration.hpp). Zero
  /// everywhere on a golden stream up to noise.
  std::vector<double> anomaly_energy() const;

  /// Clears the residual accumulators so the next localization window starts
  /// clean. Session state and alarm latches are untouched.
  void reset_anomaly_window();

  /// Operator action after the paper's "further investigations": clears
  /// every latched session alarm and spectral latch, and resets the
  /// localization window.
  void acknowledge_alarms();

 private:
  const SensorGrid& grid_;
  Options options_;
  std::vector<core::RuntimeMonitor> sessions_;
  std::vector<core::Trace> golden_means_;
  std::vector<double> baselines_;
  std::vector<double> residual_sums_;
  // Spectral persistence per coil: consecutive anomalous windowed passes and
  // the latched flag once the run reaches spectral_debounce.
  std::vector<std::size_t> spectral_runs_;
  std::vector<bool> spectral_latched_;
  std::size_t bundles_seen_ = 0;
};

}  // namespace emts::array
