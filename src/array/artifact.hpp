// Array calibration artifact. Format "EMAA" v1 (docs/FORMATS.md):
//
//   magic   'E' 'M' 'A' 'A'
//   u32     version (1)
//   u32     grid nx
//   u32     grid ny
//   f64     grid coil radius as specified (0 = auto rule)
//   u32     grid turns per coil
//   f64     grid z clearance, m
//   f64     capture sample rate, Hz
//   u32     sensor count (= nx * ny)
//   then per sensor, grid row-major:
//     f64_vec  golden mean trace (volts per sample)
//     f64      baseline residual energy, V^2
//     bytes    embedded EMCA calibration artifact (io::save_calibration
//              stream form; self-delimiting — the EMCA loader stops exactly
//              after its last detector payload)
//
// The grid spec travels with the calibrations so a monitor can rebuild the
// identical SensorGrid (grid geometry is pure + deterministic) and refuse an
// artifact fitted for a different array. All fitted doubles round-trip
// bit-identically.
#pragma once

#include <iosfwd>
#include <string>

#include "array/calibration.hpp"

namespace emts::array {

/// Writes the array's full fitted state. Throws precondition_error on I/O
/// failure. The stream form writes the identical bytes into an open stream.
void save_array_calibration(const std::string& path, const ArrayCalibration& calibration);
void save_array_calibration(std::ostream& out, const ArrayCalibration& calibration);

/// Reads an artifact written by save_array_calibration. Every detector named
/// by an embedded EMCA must be present in the DetectorRegistry. Throws
/// precondition_error on bad magic, version, shape, or payload. The stream
/// form stops exactly after the last sensor's EMCA; the path form requires
/// the file to end there.
ArrayCalibration load_array_calibration(const std::string& path);
ArrayCalibration load_array_calibration(std::istream& in);

}  // namespace emts::array
