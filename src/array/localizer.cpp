#include "array/localizer.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace emts::array {

namespace {

double l2_norm(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) sum += x * x;
  return std::sqrt(sum);
}

}  // namespace

Localizer::Localizer(const SensorGrid& grid) : grid_{grid} {
  templates_.reserve(grid.module_count());
  for (std::size_t m = 0; m < grid.module_count(); ++m) {
    std::vector<double> column = grid.sensitivity().column_magnitudes(m);
    const double norm = l2_norm(column);
    if (norm > 0.0) {
      for (double& x : column) x /= norm;
    } else {
      column.clear();  // couples nowhere: never a localization candidate
    }
    templates_.push_back(std::move(column));
  }
}

LocalizationReport Localizer::localize(const std::vector<double>& anomaly_energy) const {
  EMTS_REQUIRE(anomaly_energy.size() == grid_.sensor_count(),
               "Localizer: anomaly vector length does not match the grid");
  LocalizationReport report;
  report.anomaly = anomaly_energy;
  report.module_scores.assign(grid_.module_count(), 0.0);

  const double anomaly_norm = l2_norm(anomaly_energy);
  if (anomaly_norm <= 0.0) return report;  // golden stream: nothing to name

  std::size_t best = 0;
  double best_score = -1.0;
  for (std::size_t m = 0; m < templates_.size(); ++m) {
    if (templates_[m].empty()) continue;
    double dot = 0.0;
    for (std::size_t s = 0; s < anomaly_energy.size(); ++s) {
      dot += anomaly_energy[s] * templates_[m][s];
    }
    const double score = dot / anomaly_norm;
    report.module_scores[m] = score;
    if (score > best_score) {
      best_score = score;
      best = m;
    }
  }
  if (best_score < 0.0) return report;  // no module couples anywhere

  const ModuleRef& module = grid_.modules()[best];
  report.localized = true;
  report.module_index = best;
  report.module_name = module.name;
  report.module_x = module.cx;
  report.module_y = module.cy;
  report.score = best_score;
  report.cell = grid_.nearest_site(module.cx, module.cy);
  return report;
}

std::size_t cell_distance(const SensorGrid& grid, const std::string& module_a,
                          const std::string& module_b) {
  const ModuleRef& a = grid.modules()[grid.module_index(module_a)];
  const ModuleRef& b = grid.modules()[grid.module_index(module_b)];
  const SensorSite cell_a = grid.nearest_site(a.cx, a.cy);
  const SensorSite cell_b = grid.nearest_site(b.cx, b.cy);
  const std::size_t dx =
      cell_a.ix > cell_b.ix ? cell_a.ix - cell_b.ix : cell_b.ix - cell_a.ix;
  const std::size_t dy =
      cell_a.iy > cell_b.iy ? cell_a.iy - cell_b.iy : cell_b.iy - cell_a.iy;
  return std::max(dx, dy);
}

}  // namespace emts::array
