// Sensor-array grid: N x M parametric pickup micro-coils tiled over the die,
// the array extension of the paper's single spiral (PAPERS.md: "Programmable
// EM Sensor Array for Golden-Model Free Run-time Trojan Detection and
// Localization", arXiv 2401.12193). Each grid cell hosts a small multi-turn
// coil on the sensor metal layer; the coupling of every floorplan module's
// supply loop into every coil is precomputed once into a SensitivityMatrix —
// the geometric fingerprint that later turns a per-sensor anomaly vector
// into a named floorplan region (array::Localizer).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "layout/floorplan.hpp"

namespace emts::array {

struct GridSpec {
  std::size_t nx = 4;
  std::size_t ny = 4;
  /// Pickup radius of each micro-coil (m). 0 = auto: 40% of the smaller
  /// cell pitch, so neighbouring coils never overlap.
  double coil_radius = 0.0;
  /// Stacked turns per micro-coil; the flux (and hence every coupling)
  /// scales linearly with it, exactly like the spiral's accumulated area.
  std::size_t turns = 8;
  /// Height of the coil plane above the sensor metal layer (m).
  double z_clearance = 2e-6;
};

/// One grid site: cell indices plus the coil centre in die coordinates.
struct SensorSite {
  std::size_t ix = 0;
  std::size_t iy = 0;
  double x = 0.0;  // m
  double y = 0.0;  // m
};

/// One floorplan module as the array sees it: name + placement centre.
struct ModuleRef {
  std::string name;
  double cx = 0.0;  // m
  double cy = 0.0;  // m
};

/// Couplings (henries) of every module supply loop into every grid coil.
/// Row s = sensor, column m = module (floorplan order). Values are signed;
/// localization correlates against magnitudes.
class SensitivityMatrix {
 public:
  SensitivityMatrix() = default;
  SensitivityMatrix(std::size_t sensors, std::size_t modules);

  std::size_t sensors() const { return sensors_; }
  std::size_t modules() const { return modules_; }

  double at(std::size_t sensor, std::size_t module) const;
  double& at(std::size_t sensor, std::size_t module);

  /// One module's |coupling| pattern over the whole array — the template the
  /// localizer matches anomaly vectors against.
  std::vector<double> column_magnitudes(std::size_t module) const;

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

 private:
  std::size_t sensors_ = 0;
  std::size_t modules_ = 0;
  std::vector<double> values_;  // row-major, sensors x modules
};

/// The instantiated array: sites, module references, and the precomputed
/// sensitivity matrix. Pure geometry — no randomness, bit-reproducible.
class SensorGrid {
 public:
  /// Tiles `spec` over the floorplan core and solves the coupling of every
  /// module supply loop into every coil (em::flux_through_surface over a
  /// disk turn surface, times the turn count).
  SensorGrid(const layout::Floorplan& floorplan, const GridSpec& spec);

  const GridSpec& spec() const { return spec_; }
  std::size_t nx() const { return spec_.nx; }
  std::size_t ny() const { return spec_.ny; }
  std::size_t sensor_count() const { return sites_.size(); }
  std::size_t module_count() const { return modules_.size(); }

  const std::vector<SensorSite>& sites() const { return sites_; }
  const SensorSite& site(std::size_t sensor) const;

  const std::vector<ModuleRef>& modules() const { return modules_; }
  /// Index of a module by floorplan name; throws precondition_error if absent.
  std::size_t module_index(const std::string& name) const;

  const SensitivityMatrix& sensitivity() const { return sensitivity_; }

  /// Grid pitch (m) along each axis.
  double pitch_x() const;
  double pitch_y() const;
  /// Height of the coil plane (m).
  double coil_z() const { return coil_z_; }
  /// Resolved pickup radius (m) after the auto rule.
  double coil_radius() const { return coil_radius_; }

  /// Grid cell whose centre is nearest to (x, y).
  SensorSite nearest_site(double x, double y) const;

 private:
  GridSpec spec_;
  double core_width_ = 0.0;
  double core_height_ = 0.0;
  double coil_z_ = 0.0;
  double coil_radius_ = 0.0;
  std::vector<SensorSite> sites_;
  std::vector<ModuleRef> modules_;
  SensitivityMatrix sensitivity_;
};

}  // namespace emts::array
