#include "array/artifact.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "io/calibration.hpp"
#include "util/assert.hpp"
#include "util/binio.hpp"

namespace emts::array {

namespace {

constexpr char kMagic[4] = {'E', 'M', 'A', 'A'};
constexpr std::uint32_t kVersion = 1;
// An array larger than this is a corrupt header, not a plausible die.
constexpr std::uint32_t kMaxAxis = 4096;

}  // namespace

void save_array_calibration(std::ostream& out, const ArrayCalibration& calibration) {
  const GridSpec& grid = calibration.grid;
  EMTS_REQUIRE(calibration.sensor_count() == grid.nx * grid.ny,
               "save_array_calibration: sensor count does not match the grid");
  out.write(kMagic, sizeof kMagic);
  util::write_u32(out, kVersion);
  util::write_u32(out, static_cast<std::uint32_t>(grid.nx));
  util::write_u32(out, static_cast<std::uint32_t>(grid.ny));
  util::write_f64(out, grid.coil_radius);
  util::write_u32(out, static_cast<std::uint32_t>(grid.turns));
  util::write_f64(out, grid.z_clearance);
  util::write_f64(out, calibration.sample_rate);
  util::write_u32(out, static_cast<std::uint32_t>(calibration.sensor_count()));
  for (const SensorCalibration& sensor : calibration.sensors) {
    util::write_f64_vec(out, sensor.golden_mean);
    util::write_f64(out, sensor.baseline_residual);
    io::save_calibration(out, sensor.evaluator);
  }
  EMTS_REQUIRE(out.good(), "save_array_calibration: write failed");
}

void save_array_calibration(const std::string& path, const ArrayCalibration& calibration) {
  std::ofstream out{path, std::ios::binary};
  EMTS_REQUIRE(out.good(), "save_array_calibration: cannot open " + path);
  save_array_calibration(out, calibration);
  EMTS_REQUIRE(out.good(), "save_array_calibration: write failed for " + path);
}

ArrayCalibration load_array_calibration(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof magic);
  EMTS_REQUIRE(in.gcount() == sizeof magic, "load_array_calibration: truncated header");
  EMTS_REQUIRE(std::memcmp(magic, kMagic, sizeof magic) == 0,
               "load_array_calibration: bad magic");
  const std::uint32_t version = util::read_u32(in);
  EMTS_REQUIRE(version == kVersion, "load_array_calibration: unsupported version");

  ArrayCalibration calibration;
  const std::uint32_t nx = util::read_u32(in);
  const std::uint32_t ny = util::read_u32(in);
  EMTS_REQUIRE(nx >= 2 && nx <= kMaxAxis && ny >= 2 && ny <= kMaxAxis,
               "load_array_calibration: implausible grid shape");
  calibration.grid.nx = nx;
  calibration.grid.ny = ny;
  calibration.grid.coil_radius = util::read_f64(in);
  EMTS_REQUIRE(std::isfinite(calibration.grid.coil_radius) && calibration.grid.coil_radius >= 0.0,
               "load_array_calibration: bad coil radius");
  calibration.grid.turns = util::read_u32(in);
  EMTS_REQUIRE(calibration.grid.turns >= 1, "load_array_calibration: bad turn count");
  calibration.grid.z_clearance = util::read_f64(in);
  EMTS_REQUIRE(std::isfinite(calibration.grid.z_clearance) && calibration.grid.z_clearance >= 0.0,
               "load_array_calibration: bad z clearance");
  calibration.sample_rate = util::read_f64(in);
  EMTS_REQUIRE(std::isfinite(calibration.sample_rate) && calibration.sample_rate > 0.0,
               "load_array_calibration: bad sample rate");

  const std::uint32_t count = util::read_u32(in);
  EMTS_REQUIRE(count == nx * ny,
               "load_array_calibration: sensor count does not match the grid shape");
  calibration.sensors.reserve(count);
  for (std::uint32_t s = 0; s < count; ++s) {
    core::Trace golden_mean = util::read_f64_vec(in);
    EMTS_REQUIRE(!golden_mean.empty(), "load_array_calibration: empty golden mean trace");
    const double baseline = util::read_f64(in);
    EMTS_REQUIRE(std::isfinite(baseline) && baseline >= 0.0,
                 "load_array_calibration: bad baseline residual");
    // The embedded EMCA is self-delimiting: its loader consumes exactly one
    // artifact and leaves the stream at the next sensor's golden mean.
    core::TrustEvaluator evaluator = io::load_calibration(in);
    calibration.sensors.push_back(
        SensorCalibration{std::move(evaluator), std::move(golden_mean), baseline});
  }
  return calibration;
}

ArrayCalibration load_array_calibration(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EMTS_REQUIRE(in.good(), "load_array_calibration: cannot open " + path);
  ArrayCalibration calibration = load_array_calibration(in);
  EMTS_REQUIRE(in.peek() == std::ifstream::traits_type::eof(),
               "load_array_calibration: trailing bytes in " + path);
  return calibration;
}

}  // namespace emts::array
