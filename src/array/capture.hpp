// Array acquisition: one (seed, trace_index) realization observed by every
// grid coil at once. The physics of a window — the per-module transient
// supply currents — is computed exactly once; each sensor then sees the same
// switching activity through its own row of the sensitivity matrix plus its
// own deterministic noise stream, so bundles are bit-reproducible across
// runs and thread counts (the new CaptureEngine batch axis: N correlated
// traces per window instead of one).
#pragma once

#include <cstdint>
#include <vector>

#include "array/grid.hpp"
#include "core/trace.hpp"
#include "sensor/measurement.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"

namespace emts::array {

/// Every sensor's recording of one capture window.
struct Bundle {
  std::vector<core::Trace> traces;  // one per sensor, grid row-major order
  double sample_rate = 0.0;         // Hz

  std::size_t sensor_count() const { return traces.size(); }
};

/// A batch of bundles, transposed into one TraceSet per sensor — the shape
/// the per-sensor calibration and monitoring paths consume.
struct BundleSet {
  std::vector<core::TraceSet> per_sensor;
  double sample_rate = 0.0;

  std::size_t sensor_count() const { return per_sensor.size(); }
  std::size_t windows() const { return per_sensor.empty() ? 0 : per_sensor.front().size(); }

  /// Bundle view of window `w` (copies the per-sensor traces).
  Bundle bundle(std::size_t w) const;
};

struct ArrayCaptureOptions {
  /// Measurement chain per micro-coil. The defaults model an on-die
  /// differential readout: higher gain than the spiral front-end (the
  /// micro-coil emf is smaller) and a small ambient pickup (shielded,
  /// millimetre-scale loop).
  sensor::ChainSpec chain{200.0, 500e6, 1.0, 12};
  sensor::NoiseSpec noise{};

  ArrayCaptureOptions() {
    noise.thermal_rms_v = 2.0e-6;
    noise.environment_rms_v = 115.0e-6;
    noise.environment_pickup = 0.05;
  }
};

class ArrayCapture {
 public:
  ArrayCapture(const SensorGrid& grid, const ArrayCaptureOptions& options = {});

  const SensorGrid& grid() const { return grid_; }
  const ArrayCaptureOptions& options() const { return options_; }

  /// Records one window on every sensor. Pure function of (chip config/seed,
  /// armed Trojan, encrypting, trace_index, sensor index): repeated calls —
  /// on any thread — return bit-identical bundles. The grid must be built on
  /// the same floorplan as the chip (module order is asserted).
  Bundle capture_bundle(const sim::Chip& chip, std::uint64_t trace_index,
                        bool encrypting = true) const;

  /// Records `count` windows at [first_index, first_index + count) across
  /// the engine's worker pool, one physics evaluation per window. Output is
  /// slot-ordered and bit-identical to the serial loop for any thread count.
  BundleSet capture_batch(const sim::CaptureEngine& engine, const sim::Chip& chip,
                          std::size_t count, std::uint64_t first_index,
                          bool encrypting = true) const;

 private:
  /// Per-capture random stream label; mirrors sim::Chip's derivation so the
  /// array's noise realizations are decorrelated across windows, conditions
  /// and armed Trojans exactly like the spiral's.
  static std::uint64_t stream_label(const sim::Chip& chip, bool encrypting,
                                    std::uint64_t trace_index);

  const SensorGrid& grid_;
  ArrayCaptureOptions options_;
  sensor::MeasurementChain chain_;
};

}  // namespace emts::array
