#include "array/grid.hpp"

#include <algorithm>
#include <cmath>

#include "em/coil.hpp"
#include "em/mutual.hpp"
#include "layout/power_grid.hpp"
#include "util/assert.hpp"

namespace emts::array {

SensitivityMatrix::SensitivityMatrix(std::size_t sensors, std::size_t modules)
    : sensors_{sensors}, modules_{modules}, values_(sensors * modules, 0.0) {}

double SensitivityMatrix::at(std::size_t sensor, std::size_t module) const {
  EMTS_ASSERT(sensor < sensors_ && module < modules_);
  return values_[sensor * modules_ + module];
}

double& SensitivityMatrix::at(std::size_t sensor, std::size_t module) {
  EMTS_ASSERT(sensor < sensors_ && module < modules_);
  return values_[sensor * modules_ + module];
}

std::vector<double> SensitivityMatrix::column_magnitudes(std::size_t module) const {
  EMTS_ASSERT(module < modules_);
  std::vector<double> column(sensors_, 0.0);
  for (std::size_t s = 0; s < sensors_; ++s) column[s] = std::abs(at(s, module));
  return column;
}

SensorGrid::SensorGrid(const layout::Floorplan& floorplan, const GridSpec& spec)
    : spec_{spec} {
  EMTS_REQUIRE(spec.nx >= 2 && spec.ny >= 2, "sensor grid needs at least 2x2 coils");
  EMTS_REQUIRE(spec.turns >= 1, "sensor grid coils need at least one turn");
  EMTS_REQUIRE(spec.z_clearance >= 0.0, "sensor grid z clearance must be >= 0");

  const layout::DieSpec& die = floorplan.spec();
  core_width_ = die.core_width;
  core_height_ = die.core_height;
  coil_z_ = die.sensor_z + spec.z_clearance;

  const double px = pitch_x();
  const double py = pitch_y();
  coil_radius_ = spec.coil_radius > 0.0 ? spec.coil_radius : 0.4 * std::min(px, py);
  EMTS_REQUIRE(coil_radius_ > 0.0, "sensor grid coil radius must be positive");
  EMTS_REQUIRE(2.0 * coil_radius_ <= std::min(px, py) + 1e-12,
               "sensor grid coils overlap: radius exceeds half the cell pitch");

  sites_.reserve(spec.nx * spec.ny);
  for (std::size_t iy = 0; iy < spec.ny; ++iy) {
    for (std::size_t ix = 0; ix < spec.nx; ++ix) {
      SensorSite site;
      site.ix = ix;
      site.iy = iy;
      site.x = px * (static_cast<double>(ix) + 0.5);
      site.y = py * (static_cast<double>(iy) + 0.5);
      sites_.push_back(site);
    }
  }

  // Couplings: the flux of each module's unit-current supply loop through
  // each coil's disk surface, scaled by the stacked turn count (the same
  // accumulated-area argument the paper makes for the spiral, Sec. III-C).
  const auto pads = layout::PadRing::for_die(die);
  const auto loops = layout::supply_loops(floorplan, pads);
  modules_.reserve(loops.size());
  for (const auto& loop : loops) {
    const layout::PlacedModule& placed = floorplan.module(loop.module_name);
    modules_.push_back(ModuleRef{loop.module_name, placed.region.cx(), placed.region.cy()});
  }

  sensitivity_ = SensitivityMatrix{sites_.size(), loops.size()};
  const em::FluxOptions flux_options{coil_radius_ / 2.0};
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    const em::TurnSurface disk{em::TurnSurface::Shape::kDisk, coil_z_, sites_[s].x,
                               sites_[s].y, coil_radius_, 0.0};
    for (std::size_t m = 0; m < loops.size(); ++m) {
      sensitivity_.at(s, m) = static_cast<double>(spec.turns) *
                              em::flux_through_surface(loops[m].segments, 1.0, disk,
                                                       flux_options);
    }
  }
}

const SensorSite& SensorGrid::site(std::size_t sensor) const {
  EMTS_ASSERT(sensor < sites_.size());
  return sites_[sensor];
}

std::size_t SensorGrid::module_index(const std::string& name) const {
  for (std::size_t m = 0; m < modules_.size(); ++m) {
    if (modules_[m].name == name) return m;
  }
  EMTS_REQUIRE(false, "sensor grid knows no module named " + name);
  return 0;
}

double SensorGrid::pitch_x() const {
  return core_width_ / static_cast<double>(spec_.nx);
}

double SensorGrid::pitch_y() const {
  return core_height_ / static_cast<double>(spec_.ny);
}

SensorSite SensorGrid::nearest_site(double x, double y) const {
  EMTS_ASSERT(!sites_.empty());
  std::size_t best = 0;
  double best_d2 = -1.0;
  for (std::size_t s = 0; s < sites_.size(); ++s) {
    const double dx = sites_[s].x - x;
    const double dy = sites_[s].y - y;
    const double d2 = dx * dx + dy * dy;
    if (best_d2 < 0.0 || d2 < best_d2) {
      best_d2 = d2;
      best = s;
    }
  }
  return sites_[best];
}

}  // namespace emts::array
