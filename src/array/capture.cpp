#include "array/capture.hpp"

#include <utility>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace emts::array {

namespace {

// Per-sensor noise stream salt. Mixed so that no grid size can collide with
// the chip's own pickup salts (0x0c1 / 0xe72) or with another sensor.
std::uint64_t sensor_salt(std::size_t sensor) {
  return mix64(0xa77a1ULL + static_cast<std::uint64_t>(sensor));
}

}  // namespace

Bundle BundleSet::bundle(std::size_t w) const {
  EMTS_ASSERT(w < windows());
  Bundle out;
  out.sample_rate = sample_rate;
  out.traces.reserve(per_sensor.size());
  for (const core::TraceSet& set : per_sensor) out.traces.push_back(set.traces[w]);
  return out;
}

ArrayCapture::ArrayCapture(const SensorGrid& grid, const ArrayCaptureOptions& options)
    : grid_{grid}, options_{options}, chain_{options.chain, options.noise} {}

std::uint64_t ArrayCapture::stream_label(const sim::Chip& chip, bool encrypting,
                                         std::uint64_t trace_index) {
  // Mirrors Chip::capture_stream_label exactly (the derivation is part of the
  // capture contract — DESIGN.md §4): golden encrypting windows reduce to
  // mix64(trace_index); idle and armed conditions decorrelate their noise.
  std::uint64_t label = mix64(trace_index);
  if (!encrypting) label = mix64(label ^ 0x1d1eULL);
  if (const auto armed = chip.armed_kind()) {
    label = mix64(label ^ (0xa63edULL + static_cast<std::uint64_t>(*armed)));
  }
  return label;
}

Bundle ArrayCapture::capture_bundle(const sim::Chip& chip, std::uint64_t trace_index,
                                    bool encrypting) const {
  // One physics evaluation feeds every coil, exactly like Chip::capture()
  // feeding both pickups: compute the per-module currents once, then each
  // sensor sums Faraday terms through its own sensitivity row.
  const auto currents = chip.module_transients(encrypting, trace_index);
  EMTS_REQUIRE(currents.size() == grid_.module_count(),
               "sensor grid floorplan does not match the chip's floorplan");

  std::vector<std::vector<double>> didt;
  didt.reserve(currents.size());
  for (const auto& c : currents) didt.push_back(c.derivative());

  const std::size_t n = chip.samples_per_trace();
  const std::uint64_t label = stream_label(chip, encrypting, trace_index);
  // stream_root_ is private to the chip, but it is Rng{config.seed} by
  // construction; rebuilding it here keeps ArrayCapture a pure function of
  // the same public capture identity.
  const Rng root{chip.config().seed};
  const SensitivityMatrix& sens = grid_.sensitivity();

  Bundle bundle;
  bundle.sample_rate = chip.sample_rate();
  bundle.traces.reserve(grid_.sensor_count());
  for (std::size_t s = 0; s < grid_.sensor_count(); ++s) {
    std::vector<double> emf(n, 0.0);
    for (std::size_t m = 0; m < didt.size(); ++m) {
      const double coupling_h = sens.at(s, m);
      if (coupling_h == 0.0) continue;
      const std::vector<double>& d = didt[m];
      for (std::size_t i = 0; i < n; ++i) {
        emf[i] -= coupling_h * d[i];  // Faraday: v = -M dI/dt
      }
    }
    Rng rng = root.fork(label ^ sensor_salt(s));
    bundle.traces.push_back(chain_.measure(emf, chip.sample_rate(), rng));
  }
  return bundle;
}

BundleSet ArrayCapture::capture_batch(const sim::CaptureEngine& engine, const sim::Chip& chip,
                                      std::size_t count, std::uint64_t first_index,
                                      bool encrypting) const {
  const std::size_t sensors = grid_.sensor_count();
  // Slot-indexed staging: worker w owns column w of every sensor's batch, so
  // the result is independent of scheduling order.
  std::vector<std::vector<core::Trace>> slots(sensors, std::vector<core::Trace>(count));
  engine.parallel_for(count, [&](std::size_t w) {
    Bundle b = capture_bundle(chip, first_index + static_cast<std::uint64_t>(w), encrypting);
    for (std::size_t s = 0; s < sensors; ++s) slots[s][w] = std::move(b.traces[s]);
  });

  BundleSet out;
  out.sample_rate = chip.sample_rate();
  out.per_sensor.resize(sensors);
  for (std::size_t s = 0; s < sensors; ++s) {
    out.per_sensor[s].sample_rate = chip.sample_rate();
    out.per_sensor[s].add_all(std::move(slots[s]));
  }
  return out;
}

}  // namespace emts::array
