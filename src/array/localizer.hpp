// Trojan localization over the sensor array. On alarm, the per-sensor
// anomaly-energy vector (ArrayMonitor::anomaly_energy — linear in the
// offender's coupling into each coil) is matched against the sensitivity
// matrix: each floorplan module's |coupling| pattern over the array is a
// spatial template, and the module whose template best correlates with the
// anomaly (normalized least squares over unit vectors = cosine similarity)
// names the offending floorplan region. This is EM's structural edge over
// power side channels: the answer is a *place*, not just a verdict.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "array/grid.hpp"

namespace emts::array {

struct LocalizationReport {
  /// False when the anomaly vector carries no energy (golden stream) — no
  /// region is named and the fields below are meaningless.
  bool localized = false;
  std::size_t module_index = 0;  // grid module order
  std::string module_name;       // floorplan region named
  double module_x = 0.0;         // named module's placement centre, m
  double module_y = 0.0;
  /// Winning normalized correlation in [0, 1] (1 = anomaly pattern is
  /// exactly the module's coupling template).
  double score = 0.0;
  /// Grid cell nearest the named module — the array's spatial resolution.
  SensorSite cell{};
  std::vector<double> module_scores;  // per module, grid module order
  std::vector<double> anomaly;        // the matched per-sensor input
};

class Localizer {
 public:
  /// Precomputes each module's unit-norm |coupling| template from the grid's
  /// sensitivity matrix.
  explicit Localizer(const SensorGrid& grid);

  const SensorGrid& grid() const { return grid_; }

  /// Matches a per-sensor anomaly-energy vector (grid row-major, one entry
  /// per coil) against every module template and names the best match.
  LocalizationReport localize(const std::vector<double>& anomaly_energy) const;

 private:
  const SensorGrid& grid_;
  std::vector<std::vector<double>> templates_;  // unit L2 norm; empty if the
                                                // module couples nowhere
};

/// Distance between two modules in grid cells (Chebyshev metric over the
/// cells nearest their placement centres) — the "within one grid cell"
/// localization figure of merit.
std::size_t cell_distance(const SensorGrid& grid, const std::string& module_a,
                          const std::string& module_b);

}  // namespace emts::array
