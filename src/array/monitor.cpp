#include "array/monitor.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace emts::array {

ArrayMonitor::ArrayMonitor(const SensorGrid& grid, const ArrayCalibration& calibration)
    : ArrayMonitor{grid, calibration, Options{}} {}

ArrayMonitor::ArrayMonitor(const SensorGrid& grid, const ArrayCalibration& calibration,
                           const Options& options)
    : grid_{grid}, options_{options} {
  EMTS_REQUIRE(calibration.sensor_count() == grid.sensor_count(),
               "ArrayMonitor: calibration sensor count does not match the grid");
  EMTS_REQUIRE(calibration.sample_rate > 0.0, "ArrayMonitor: calibration has no sample rate");
  EMTS_REQUIRE(options.spectral_debounce >= 1,
               "ArrayMonitor: spectral debounce must be >= 1");
  sessions_.reserve(calibration.sensor_count());
  golden_means_.reserve(calibration.sensor_count());
  baselines_.reserve(calibration.sensor_count());
  for (const SensorCalibration& sensor : calibration.sensors) {
    sessions_.emplace_back(calibration.sample_rate, sensor.evaluator, options.session);
    golden_means_.push_back(sensor.golden_mean);
    baselines_.push_back(sensor.baseline_residual);
  }
  residual_sums_.assign(sessions_.size(), 0.0);
  spectral_runs_.assign(sessions_.size(), 0);
  spectral_latched_.assign(sessions_.size(), false);
}

core::MonitorState ArrayMonitor::push_bundle(const Bundle& bundle) {
  EMTS_REQUIRE(bundle.sensor_count() == sessions_.size(),
               "ArrayMonitor: bundle sensor count does not match the grid");
  for (std::size_t s = 0; s < sessions_.size(); ++s) {
    const std::uint64_t passes_before = sessions_[s].stats().spectral_passes;
    sessions_[s].push(bundle.traces[s]);
    residual_sums_[s] += residual_energy(bundle.traces[s], golden_means_[s]);
    if (sessions_[s].stats().spectral_passes > passes_before) {
      const auto& spectral = sessions_[s].last_spectral();
      // anomalies are sorted strongest first, so front() carries the gate.
      const bool anomalous = spectral.has_value() && spectral->anomalous() &&
                             spectral->anomalies.front().ratio >= options_.spectral_ratio_gate;
      spectral_runs_[s] = anomalous ? spectral_runs_[s] + 1 : 0;
      if (spectral_runs_[s] >= options_.spectral_debounce) spectral_latched_[s] = true;
    }
  }
  ++bundles_seen_;
  return any_alarm() ? core::MonitorState::kAlarm : core::MonitorState::kMonitoring;
}

core::MonitorState ArrayMonitor::push_bundles(const BundleSet& bundles) {
  core::MonitorState state =
      any_alarm() ? core::MonitorState::kAlarm : core::MonitorState::kMonitoring;
  for (std::size_t w = 0; w < bundles.windows(); ++w) state = push_bundle(bundles.bundle(w));
  return state;
}

bool ArrayMonitor::any_alarm() const {
  if (std::any_of(spectral_latched_.begin(), spectral_latched_.end(),
                  [](bool latched) { return latched; })) {
    return true;
  }
  return std::any_of(sessions_.begin(), sessions_.end(), [](const core::RuntimeMonitor& m) {
    return m.state() == core::MonitorState::kAlarm;
  });
}

bool ArrayMonitor::spectral_alarmed(std::size_t sensor) const {
  EMTS_ASSERT(sensor < spectral_latched_.size());
  return spectral_latched_[sensor];
}

std::vector<core::MonitorState> ArrayMonitor::states() const {
  std::vector<core::MonitorState> states;
  states.reserve(sessions_.size());
  for (const core::RuntimeMonitor& m : sessions_) states.push_back(m.state());
  return states;
}

const core::RuntimeMonitor& ArrayMonitor::session(std::size_t sensor) const {
  EMTS_ASSERT(sensor < sessions_.size());
  return sessions_[sensor];
}

core::RuntimeMonitor& ArrayMonitor::session(std::size_t sensor) {
  EMTS_ASSERT(sensor < sessions_.size());
  return sessions_[sensor];
}

std::vector<double> ArrayMonitor::anomaly_energy() const {
  std::vector<double> anomaly(sessions_.size(), 0.0);
  if (bundles_seen_ == 0) return anomaly;
  for (std::size_t s = 0; s < sessions_.size(); ++s) {
    const double mean_residual = residual_sums_[s] / static_cast<double>(bundles_seen_);
    anomaly[s] = std::sqrt(std::max(0.0, mean_residual - baselines_[s]));
  }
  return anomaly;
}

void ArrayMonitor::reset_anomaly_window() {
  std::fill(residual_sums_.begin(), residual_sums_.end(), 0.0);
  bundles_seen_ = 0;
}

void ArrayMonitor::acknowledge_alarms() {
  for (core::RuntimeMonitor& m : sessions_) {
    if (m.state() == core::MonitorState::kAlarm) m.acknowledge_alarm();
  }
  std::fill(spectral_runs_.begin(), spectral_runs_.end(), 0);
  spectral_latched_.assign(spectral_latched_.size(), false);
  reset_anomaly_window();
}

}  // namespace emts::array
