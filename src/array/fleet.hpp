// Fleet hosting for sensor arrays — the traffic multiplier: one logical
// array device becomes N per-sensor FleetMonitor sessions, each keyed by a
// suffixed device id. Per-sensor ordering is free: each coil's stream keys
// its own session, and FleetMonitor guarantees per-device FIFO, so a
// fleet-hosted array scores bit-identically to a standalone ArrayMonitor fed
// the same bundles.
#pragma once

#include <cstddef>
#include <string>

#include "array/calibration.hpp"
#include "array/capture.hpp"
#include "core/monitor.hpp"
#include "fleet/fleet.hpp"

namespace emts::array {

/// Session key of one coil under a logical array device:
/// "<device_id>/s<index>" with the index zero-padded to three digits, so
/// sorted session listings (FleetStats, device_ids()) follow grid row-major
/// order for arrays up to 1000 coils.
std::string sensor_device_id(const std::string& device_id, std::size_t sensor);

/// Registers one pre-fitted session per coil (sensor_device_id keys). The
/// overload without options uses the fleet's default monitor options.
void add_array_device(fleet::FleetMonitor& fleet, const std::string& device_id,
                      const ArrayCalibration& calibration);
void add_array_device(fleet::FleetMonitor& fleet, const std::string& device_id,
                      const ArrayCalibration& calibration,
                      const core::RuntimeMonitor::Options& monitor_options);

/// Routes one bundle to its device's per-sensor sessions, trace s to session
/// s. Callers needing per-sensor ordering submit a device's bundles from one
/// thread, exactly like FleetMonitor::submit.
void submit_bundle(fleet::FleetMonitor& fleet, const std::string& device_id,
                   const Bundle& bundle);

/// Batched form: each sensor's whole trace sequence goes through one
/// submit_batch reservation, preserving window order per sensor.
void submit_bundles(fleet::FleetMonitor& fleet, const std::string& device_id,
                    const BundleSet& bundles);

}  // namespace emts::array
