// Per-coil golden fitting for the array. Each sensor gets the full detector
// stack (core::TrustEvaluator — "calibrate once, monitor many", now per
// coil) plus the two numbers localization needs: the golden mean trace and
// the baseline residual energy of golden captures around it. With the fixed
// challenge workload every golden window carries the same deterministic
// signal, so a runtime capture's residual energy above that baseline is the
// power a Trojan injected at this coil — proportional to the square of its
// coupling, which is what the Localizer matches against the sensitivity
// matrix.
#pragma once

#include <cstdint>
#include <vector>

#include "array/capture.hpp"
#include "array/grid.hpp"
#include "core/evaluator.hpp"
#include "core/trace.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"

namespace emts::array {

/// One coil's fitted state.
struct SensorCalibration {
  core::TrustEvaluator evaluator;  // per-coil detector stack
  core::Trace golden_mean;         // element-wise mean golden capture
  double baseline_residual = 0.0;  // mean golden residual energy (V^2)
};

/// The whole array's fitted state — what the EMAA artifact round-trips.
struct ArrayCalibration {
  GridSpec grid{};          // spec the grid was instantiated from
  double sample_rate = 0.0;  // Hz
  std::vector<SensorCalibration> sensors;  // grid row-major order

  std::size_t sensor_count() const { return sensors.size(); }
};

struct ArrayCalibrationOptions {
  /// Golden capture windows per coil.
  std::size_t windows = 64;
  /// First trace index of the calibration campaign.
  std::uint64_t first_index = 0;
  /// Detector stack fitted per coil.
  core::TrustEvaluator::Options evaluator{};
};

/// Mean squared deviation of a capture from the golden mean (V^2 per
/// sample) — the localization observable.
double residual_energy(const core::Trace& trace, const core::Trace& golden_mean);

/// Records a golden calibration campaign through every coil and fits each
/// coil's detector stack + localization baseline. The chip must be golden
/// (no armed Trojan) — calibrating on infected silicon is the classic
/// golden-chip mistake and is refused.
ArrayCalibration calibrate_array(const ArrayCapture& capture, const sim::CaptureEngine& engine,
                                 const sim::Chip& golden_chip,
                                 const ArrayCalibrationOptions& options = {});

}  // namespace emts::array
