#include "array/fleet.hpp"

#include "util/assert.hpp"

namespace emts::array {

std::string sensor_device_id(const std::string& device_id, std::size_t sensor) {
  EMTS_REQUIRE(!device_id.empty(), "sensor_device_id: empty device id");
  std::string id = device_id + "/s";
  char digits[24];
  std::size_t len = 0;
  std::size_t value = sensor;
  do {
    digits[len++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  for (std::size_t pad = len; pad < 3; ++pad) id += '0';
  while (len > 0) id += digits[--len];
  return id;
}

void add_array_device(fleet::FleetMonitor& fleet, const std::string& device_id,
                      const ArrayCalibration& calibration) {
  for (std::size_t s = 0; s < calibration.sensor_count(); ++s) {
    fleet.add_device(sensor_device_id(device_id, s), calibration.sensors[s].evaluator);
  }
}

void add_array_device(fleet::FleetMonitor& fleet, const std::string& device_id,
                      const ArrayCalibration& calibration,
                      const core::RuntimeMonitor::Options& monitor_options) {
  for (std::size_t s = 0; s < calibration.sensor_count(); ++s) {
    fleet.add_device(sensor_device_id(device_id, s), calibration.sensors[s].evaluator,
                     monitor_options);
  }
}

void submit_bundle(fleet::FleetMonitor& fleet, const std::string& device_id,
                   const Bundle& bundle) {
  for (std::size_t s = 0; s < bundle.sensor_count(); ++s) {
    fleet.submit(sensor_device_id(device_id, s), bundle.traces[s]);
  }
}

void submit_bundles(fleet::FleetMonitor& fleet, const std::string& device_id,
                    const BundleSet& bundles) {
  for (std::size_t s = 0; s < bundles.sensor_count(); ++s) {
    fleet.submit_batch(sensor_device_id(device_id, s), bundles.per_sensor[s]);
  }
}

}  // namespace emts::array
