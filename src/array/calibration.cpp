#include "array/calibration.hpp"

#include "util/assert.hpp"

namespace emts::array {

double residual_energy(const core::Trace& trace, const core::Trace& golden_mean) {
  EMTS_REQUIRE(!trace.empty() && trace.size() == golden_mean.size(),
               "residual_energy: trace shape does not match the golden mean");
  double sum = 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double d = trace[i] - golden_mean[i];
    sum += d * d;
  }
  return sum / static_cast<double>(trace.size());
}

ArrayCalibration calibrate_array(const ArrayCapture& capture, const sim::CaptureEngine& engine,
                                 const sim::Chip& golden_chip,
                                 const ArrayCalibrationOptions& options) {
  EMTS_REQUIRE(!golden_chip.armed_kind().has_value(),
               "calibrate_array: refusing to calibrate on a chip with an armed Trojan");
  EMTS_REQUIRE(options.windows >= 2, "calibrate_array: need at least 2 golden windows");

  const BundleSet golden =
      capture.capture_batch(engine, golden_chip, options.windows, options.first_index, true);

  ArrayCalibration calibration;
  calibration.grid = capture.grid().spec();
  calibration.sample_rate = golden.sample_rate;
  calibration.sensors.reserve(golden.sensor_count());
  for (const core::TraceSet& set : golden.per_sensor) {
    SensorCalibration sensor{core::TrustEvaluator::calibrate(set, options.evaluator),
                             set.mean_trace(), 0.0};
    double sum = 0.0;
    for (const core::Trace& t : set.traces) sum += residual_energy(t, sensor.golden_mean);
    sensor.baseline_residual = sum / static_cast<double>(set.size());
    calibration.sensors.push_back(std::move(sensor));
  }
  return calibration;
}

}  // namespace emts::array
