#include "io/csv.hpp"

#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace emts::io {

void write_csv(const std::string& path, const std::vector<std::string>& column_names,
               const std::vector<std::vector<double>>& columns) {
  EMTS_REQUIRE(!columns.empty(), "write_csv needs at least one column");
  EMTS_REQUIRE(column_names.size() == columns.size(), "one name per column required");
  const std::size_t rows = columns.front().size();
  for (const auto& col : columns) {
    EMTS_REQUIRE(col.size() == rows, "write_csv: ragged columns");
  }

  std::ofstream out{path};
  EMTS_REQUIRE(out.good(), "write_csv: cannot open " + path);
  out.precision(12);

  for (std::size_t c = 0; c < column_names.size(); ++c) {
    out << column_names[c] << (c + 1 < column_names.size() ? "," : "\n");
  }
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      out << columns[c][r] << (c + 1 < columns.size() ? "," : "\n");
    }
  }
  EMTS_REQUIRE(out.good(), "write_csv: write failed for " + path);
}

std::vector<std::vector<double>> read_csv(const std::string& path,
                                          std::vector<std::string>* column_names) {
  std::ifstream in{path};
  EMTS_REQUIRE(in.good(), "read_csv: cannot open " + path);

  std::string header;
  EMTS_REQUIRE(static_cast<bool>(std::getline(in, header)), "read_csv: empty file " + path);

  std::vector<std::string> names;
  {
    std::istringstream hs{header};
    std::string cell;
    while (std::getline(hs, cell, ',')) names.push_back(cell);
  }
  EMTS_REQUIRE(!names.empty(), "read_csv: no columns in " + path);
  if (column_names != nullptr) *column_names = names;

  std::vector<std::vector<double>> columns(names.size());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls{line};
    std::string cell;
    std::size_t c = 0;
    while (std::getline(ls, cell, ',')) {
      EMTS_REQUIRE(c < columns.size(), "read_csv: row wider than header in " + path);
      columns[c].push_back(std::stod(cell));
      ++c;
    }
    EMTS_REQUIRE(c == columns.size(), "read_csv: row narrower than header in " + path);
  }
  return columns;
}

}  // namespace emts::io
