#include "io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/assert.hpp"

namespace emts::io {

Table::Table(std::vector<std::string> headers) : headers_{std::move(headers)} {
  EMTS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  EMTS_REQUIRE(cells.size() == headers_.size(), "row width must match headers");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream out;
  out << std::setprecision(precision) << value;
  return out.str();
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    out << "\n";
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace emts::io
