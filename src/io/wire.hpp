// Wire protocol for the fleet ingest daemon: a versioned, length-prefixed,
// checksummed binary frame carrying one (device_id, trace) capture. This is
// the trace-archive sample format (little-endian float64) re-hosted behind a
// framing header so captures can stream over a byte pipe (unix/TCP socket)
// instead of arriving as a whole file. Format "EMWF" v1:
//
//   u32   magic 'E''M''W''F' (little-endian 0x46574d45)
//   u8    version (1)
//   u8    frame type (1 = trace, 2 = hello)
//   u16   reserved (0)
//   u32   payload byte count
//   bytes payload
//   u64   FNV-1a 64 checksum of the payload bytes
//
// Trace payload (type 1):
//   string device_id (u32 byte count + bytes)
//   f64    sample rate, Hz
//   u32    sample count
//   f64    samples
//
// Hello payload (type 2 — connection auth for the TCP transport):
//   string auth token (u32 byte count + bytes, 1..4096)
//
// A HELLO carries the client's shared-secret token and, when the daemon is
// configured with one, must be the first frame on a TCP connection; trace
// frames before a successful HELLO close the connection without ingesting.
//
// Every declared length is hard-capped and cross-checked (the payload length
// must agree exactly with the sample count), so a corrupt or adversarial
// stream is rejected with a clear error instead of triggering a pathological
// allocation. The checksum catches torn writes: a daemon restarting mid-frame
// must never score half a capture.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/trace.hpp"

namespace emts::io::wire {

inline constexpr std::uint32_t kMagic = 0x46574d45u;  // 'EMWF' little-endian
inline constexpr std::uint8_t kVersion = 1;
inline constexpr std::uint8_t kFrameTrace = 1;
inline constexpr std::uint8_t kFrameHello = 2;

/// Auth tokens ride in a u32-prefixed string like device ids, same cap.
inline constexpr std::uint32_t kMaxAuthTokenBytes = 4096;

/// Hard cap on a frame's declared payload (16 MiB ~ 2M samples): the decoder
/// refuses anything larger before buffering or allocating.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 24;

/// Bytes of framing around a payload (header + trailing checksum).
inline constexpr std::size_t kFrameOverhead = 12 + 8;

/// One decoded trace frame.
struct TraceFrame {
  std::string device_id;
  double sample_rate = 0.0;
  core::Trace trace;
};

/// Kind tag for the generic decode path (values match the wire frame type).
enum class FrameKind : std::uint8_t {
  kTrace = kFrameTrace,
  kHello = kFrameHello,
};

/// One decoded frame of any kind; exactly the member named by `kind` is
/// meaningful.
struct Frame {
  FrameKind kind = FrameKind::kTrace;
  TraceFrame trace;        // kind == kTrace
  std::string auth_token;  // kind == kHello
};

/// Appends one encoded trace frame to `out` (reuse the buffer across calls
/// to amortize its allocation). The span form frames samples straight out of
/// a mapped archive without an intermediate Trace copy.
void encode_trace_frame(const TraceFrame& frame, std::string& out);
void encode_trace_frame(const std::string& device_id, double sample_rate,
                        const double* samples, std::size_t count, std::string& out);

/// Appends one encoded HELLO auth frame (token 1..4096 bytes) to `out`.
void encode_hello_frame(const std::string& auth_token, std::string& out);

/// Incremental frame parser for a socket byte stream. feed() appends raw
/// bytes; next() pops complete frames in arrival order. The decoder owns a
/// compacting buffer, so partial frames straddling read() boundaries are
/// handled transparently.
class FrameDecoder {
 public:
  /// Bytes are copied into the internal buffer.
  void feed(const char* data, std::size_t size);

  /// Extracts the next complete frame of any kind into `out`. Returns false
  /// when the buffered bytes do not yet hold a full frame (feed more).
  /// Throws precondition_error on a malformed stream — bad magic,
  /// unsupported version or frame type, absurd or inconsistent declared
  /// lengths, or a checksum mismatch — after which the connection must be
  /// dropped (the stream has no recoverable framing).
  bool next(Frame& out);

  /// Trace-only convenience for callers that do not speak auth (benches,
  /// replay paths): like next(Frame&), but a HELLO frame in the stream is a
  /// precondition_error.
  bool next(TraceFrame& out);

  /// Bytes buffered but not yet consumed by next().
  std::size_t buffered() const { return buffer_.size() - consumed_; }

  /// Complete frames handed out over this decoder's lifetime.
  std::uint64_t frames_decoded() const { return frames_decoded_; }

 private:
  std::vector<char> buffer_;
  std::size_t consumed_ = 0;  // prefix of buffer_ already handed out
  std::uint64_t frames_decoded_ = 0;
};

}  // namespace emts::io::wire
