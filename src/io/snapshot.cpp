#include "io/snapshot.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "io/calibration.hpp"
#include "util/assert.hpp"
#include "util/binio.hpp"
#include "util/fnv.hpp"

namespace emts::io {

namespace {

constexpr char kMagic[4] = {'E', 'M', 'F', 'S'};
// v2: monitor states gained the incremental-spectral option mirrors and the
// spectral accumulator (sum + count + drift counter) plus two MonitorStats
// counters. v1 containers predate the incremental pipeline and cannot
// reconstruct that state, so they are refused rather than guessed at.
constexpr std::uint32_t kVersion = 2;
// A fleet snapshot is an operational artifact, not a data lake: caps sized
// generously above any believable deployment, tight enough that a corrupt
// count is refused before it turns into an allocation.
constexpr std::uint32_t kMaxDevices = 1u << 16;
constexpr std::uint32_t kMaxBufferedTraces = 1u << 20;
constexpr std::uint32_t kMaxAnomalies = 1u << 20;
constexpr std::uint64_t kMaxDeviceBytes = 1ull << 32;

void write_histogram(std::ostream& out, const util::LatencyHistogram& h) {
  for (const std::uint64_t b : h.buckets()) util::write_u64(out, b);
  util::write_u64(out, h.count());
  util::write_u64(out, h.total_ns());
  util::write_u64(out, h.raw_min_ns());
  util::write_u64(out, h.max_ns());
}

void read_histogram(std::istream& in, util::LatencyHistogram& h) {
  std::array<std::uint64_t, util::LatencyHistogram::kBuckets> buckets{};
  for (std::uint64_t& b : buckets) b = util::read_u64(in);
  const std::uint64_t count = util::read_u64(in);
  const std::uint64_t total = util::read_u64(in);
  const std::uint64_t raw_min = util::read_u64(in);
  const std::uint64_t max = util::read_u64(in);
  h.restore(buckets, count, total, raw_min, max);  // validates consistency
}

void write_traces(std::ostream& out, const std::vector<core::Trace>& traces) {
  util::write_u32(out, static_cast<std::uint32_t>(traces.size()));
  for (const core::Trace& trace : traces) util::write_f64_vec(out, trace);
}

std::vector<core::Trace> read_traces(std::istream& in) {
  const std::uint32_t count = util::read_u32(in);
  EMTS_REQUIRE(count <= kMaxBufferedTraces, "monitor state: implausible trace count");
  std::vector<core::Trace> traces;
  traces.reserve(count);
  for (std::uint32_t t = 0; t < count; ++t) traces.push_back(util::read_f64_vec(in));
  return traces;
}

}  // namespace

void write_monitor_state(std::ostream& out, const core::MonitorStateImage& image) {
  util::write_f64(out, image.sample_rate);
  util::write_u64(out, image.calibration_traces);
  util::write_u64(out, image.alarm_debounce);
  util::write_u64(out, image.spectral_window);
  util::write_u64(out, image.event_log_capacity);
  util::write_u8(out, image.incremental_spectral ? 1 : 0);
  util::write_u64(out, image.spectral_rebuild_every);

  util::write_u8(out, static_cast<std::uint8_t>(image.state));
  util::write_u64(out, image.traces_seen);
  util::write_u64(out, image.expected_length);
  util::write_u64(out, image.consecutive_anomalies);
  util::write_u64(out, image.alarm_latched_at);

  util::write_u8(out, image.last_score.has_value() ? 1 : 0);
  util::write_f64(out, image.last_score.value_or(0.0));

  util::write_u8(out, image.last_spectral.has_value() ? 1 : 0);
  const std::size_t anomaly_count =
      image.last_spectral.has_value() ? image.last_spectral->anomalies.size() : 0;
  util::write_u32(out, static_cast<std::uint32_t>(anomaly_count));
  if (image.last_spectral.has_value()) {
    for (const core::SpectralAnomaly& a : image.last_spectral->anomalies) {
      util::write_u8(out, static_cast<std::uint8_t>(a.kind));
      util::write_f64(out, a.frequency_hz);
      util::write_f64(out, a.golden_amplitude);
      util::write_f64(out, a.suspect_amplitude);
      util::write_f64(out, a.ratio);
    }
  }

  write_traces(out, image.calibration);
  write_traces(out, image.window);
  util::write_u64(out, image.window_total_pushed);
  util::write_u64(out, image.spectral_count);
  util::write_u64(out, image.spectral_updates_since_rebuild);
  util::write_f64_vec(out, image.spectral_sum);

  const core::MonitorStats& s = image.stats;
  util::write_u64(out, s.traces_ingested);
  util::write_u64(out, s.traces_rejected);
  util::write_u64(out, s.calibration_captures);
  util::write_u64(out, s.scored_captures);
  util::write_u64(out, s.per_trace_anomalies);
  util::write_u64(out, s.spectral_passes);
  util::write_u64(out, s.windowed_anomalies);
  util::write_u64(out, s.spectral_recomputes);
  util::write_u64(out, s.spectral_incremental_updates);
  util::write_u64(out, s.alarms_latched);
  util::write_u64(out, s.alarms_acknowledged);
  util::write_u64(out, s.events_dropped);
  write_histogram(out, s.push_latency);
  write_histogram(out, s.spectral_latency);

  util::write_u32(out, static_cast<std::uint32_t>(image.events.size()));
  for (const core::MonitorEvent& e : image.events) {
    util::write_u8(out, static_cast<std::uint8_t>(e.kind));
    util::write_u64(out, e.trace_index);
    util::write_f64(out, e.value);
  }
  EMTS_REQUIRE(out.good(), "write_monitor_state: write failed");
}

core::MonitorStateImage read_monitor_state(std::istream& in) {
  core::MonitorStateImage image;
  image.sample_rate = util::read_f64(in);
  EMTS_REQUIRE(std::isfinite(image.sample_rate) && image.sample_rate > 0.0,
               "monitor state: bad sample rate");
  image.calibration_traces = util::read_u64(in);
  image.alarm_debounce = util::read_u64(in);
  image.spectral_window = util::read_u64(in);
  image.event_log_capacity = util::read_u64(in);
  const std::uint8_t incremental = util::read_u8(in);
  EMTS_REQUIRE(incremental <= 1, "monitor state: bad incremental-spectral flag");
  image.incremental_spectral = incremental == 1;
  image.spectral_rebuild_every = util::read_u64(in);
  EMTS_REQUIRE(image.spectral_rebuild_every >= 1,
               "monitor state: bad spectral rebuild cadence");

  const std::uint8_t state = util::read_u8(in);
  EMTS_REQUIRE(state <= static_cast<std::uint8_t>(core::MonitorState::kAlarm),
               "monitor state: bad state tag");
  image.state = static_cast<core::MonitorState>(state);
  image.traces_seen = util::read_u64(in);
  image.expected_length = util::read_u64(in);
  image.consecutive_anomalies = util::read_u64(in);
  image.alarm_latched_at = util::read_u64(in);

  const std::uint8_t has_score = util::read_u8(in);
  EMTS_REQUIRE(has_score <= 1, "monitor state: bad last-score flag");
  const double last_score = util::read_f64(in);
  if (has_score == 1) image.last_score = last_score;

  const std::uint8_t has_spectral = util::read_u8(in);
  EMTS_REQUIRE(has_spectral <= 1, "monitor state: bad spectral flag");
  const std::uint32_t anomaly_count = util::read_u32(in);
  EMTS_REQUIRE(anomaly_count <= kMaxAnomalies, "monitor state: implausible anomaly count");
  EMTS_REQUIRE(has_spectral == 1 || anomaly_count == 0,
               "monitor state: anomalies without a spectral report");
  // Each anomaly is 33 serialized bytes; bound the declared count against
  // what the stream can actually hold before reserving.
  EMTS_REQUIRE(anomaly_count * 33ull <= util::stream_remaining(in),
               "monitor state: anomaly count exceeds remaining bytes");
  if (has_spectral == 1) {
    core::SpectralReport report;
    report.anomalies.reserve(anomaly_count);
    for (std::uint32_t a = 0; a < anomaly_count; ++a) {
      core::SpectralAnomaly anomaly;
      const std::uint8_t kind = util::read_u8(in);
      EMTS_REQUIRE(kind <= static_cast<std::uint8_t>(core::SpectralAnomalyKind::kAmplifiedSpot),
                   "monitor state: bad anomaly kind");
      anomaly.kind = static_cast<core::SpectralAnomalyKind>(kind);
      anomaly.frequency_hz = util::read_f64(in);
      anomaly.golden_amplitude = util::read_f64(in);
      anomaly.suspect_amplitude = util::read_f64(in);
      anomaly.ratio = util::read_f64(in);
      report.anomalies.push_back(anomaly);
    }
    image.last_spectral = std::move(report);
  }

  image.calibration = read_traces(in);
  image.window = read_traces(in);
  image.window_total_pushed = util::read_u64(in);
  image.spectral_count = util::read_u64(in);
  image.spectral_updates_since_rebuild = util::read_u64(in);
  image.spectral_sum = util::read_f64_vec(in);
  EMTS_REQUIRE(image.spectral_count == 0 || image.spectral_count == image.window.size(),
               "monitor state: spectral accumulator count disagrees with the window");
  EMTS_REQUIRE(image.spectral_count == 0 || !image.spectral_sum.empty(),
               "monitor state: non-empty spectral accumulator with no bins");

  core::MonitorStats& s = image.stats;
  s.traces_ingested = util::read_u64(in);
  s.traces_rejected = util::read_u64(in);
  s.calibration_captures = util::read_u64(in);
  s.scored_captures = util::read_u64(in);
  s.per_trace_anomalies = util::read_u64(in);
  s.spectral_passes = util::read_u64(in);
  s.windowed_anomalies = util::read_u64(in);
  s.spectral_recomputes = util::read_u64(in);
  s.spectral_incremental_updates = util::read_u64(in);
  s.alarms_latched = util::read_u64(in);
  s.alarms_acknowledged = util::read_u64(in);
  s.events_dropped = util::read_u64(in);
  read_histogram(in, s.push_latency);
  read_histogram(in, s.spectral_latency);

  const std::uint32_t event_count = util::read_u32(in);
  EMTS_REQUIRE(event_count <= image.event_log_capacity,
               "monitor state: more events than the log can hold");
  // 17 bytes per serialized event.
  EMTS_REQUIRE(event_count * 17ull <= util::stream_remaining(in),
               "monitor state: event count exceeds remaining bytes");
  image.events.reserve(event_count);
  for (std::uint32_t e = 0; e < event_count; ++e) {
    core::MonitorEvent event;
    const std::uint8_t kind = util::read_u8(in);
    EMTS_REQUIRE(
        kind <= static_cast<std::uint8_t>(core::MonitorEventKind::kTraceRejectedNonFinite),
        "monitor state: bad event kind");
    event.kind = static_cast<core::MonitorEventKind>(kind);
    event.trace_index = util::read_u64(in);
    event.value = util::read_f64(in);
    image.events.push_back(event);
  }
  return image;
}

namespace {

// Full on-disk record for one device: id framing + length-framed payload +
// FNV-1a checksum. Deterministic for a given device state, which is what
// makes the incremental record cache sound — and keeps incremental and full
// containers of identical fleets byte-identical.
std::string encode_device_record(const FleetSnapshot::Device& device) {
  // Stage the payload so it can be length-framed and checksummed: the
  // loader verifies integrity per record before touching its contents.
  std::ostringstream staged{std::ios::binary};
  std::ostringstream emca{std::ios::binary};
  EMTS_REQUIRE(device.evaluator.has_value(),
               "save_fleet_snapshot: record for '" + device.device_id +
                   "' has no evaluator");
  save_calibration(emca, *device.evaluator);
  const std::string emca_bytes = emca.str();
  util::write_u64(staged, emca_bytes.size());
  staged.write(emca_bytes.data(), static_cast<std::streamsize>(emca_bytes.size()));
  write_monitor_state(staged, device.monitor);

  std::ostringstream record{std::ios::binary};
  const std::string payload = staged.str();
  util::write_string(record, device.device_id);
  util::write_u64(record, payload.size());
  record.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  util::write_u64(record, util::fnv1a64(payload.data(), payload.size()));
  EMTS_REQUIRE(record.good(), "save_fleet_snapshot: record staging failed");
  return record.str();
}

void check_snapshot_shape(const FleetSnapshot& snapshot) {
  EMTS_REQUIRE(snapshot.devices.size() <= kMaxDevices,
               "save_fleet_snapshot: too many devices");
  for (std::size_t d = 1; d < snapshot.devices.size(); ++d) {
    EMTS_REQUIRE(snapshot.devices[d - 1].device_id < snapshot.devices[d].device_id,
                 "save_fleet_snapshot: devices must be sorted by id, without duplicates");
  }
}

void write_snapshot_header(std::ostream& out, const FleetSnapshot& snapshot) {
  out.write(kMagic, sizeof kMagic);
  util::write_u32(out, kVersion);
  util::write_u32(out, snapshot.shards);
  util::write_u32(out, snapshot.queue_capacity);
  util::write_u8(out, snapshot.backpressure);
  util::write_u32(out, static_cast<std::uint32_t>(snapshot.devices.size()));
}

}  // namespace

void save_fleet_snapshot(const std::string& path, const FleetSnapshot& snapshot) {
  check_snapshot_shape(snapshot);

  std::ofstream out{path, std::ios::binary};
  EMTS_REQUIRE(out.good(), "save_fleet_snapshot: cannot open " + path);
  write_snapshot_header(out, snapshot);

  for (const FleetSnapshot::Device& device : snapshot.devices) {
    EMTS_REQUIRE(device.dirty,
                 "save_fleet_snapshot: clean (placeholder) record for '" +
                     device.device_id + "' needs the cache-aware overload");
    const std::string record = encode_device_record(device);
    out.write(record.data(), static_cast<std::streamsize>(record.size()));
  }
  EMTS_REQUIRE(out.good(), "save_fleet_snapshot: write failed for " + path);
}

void save_fleet_snapshot(const std::string& path, const FleetSnapshot& snapshot,
                         FleetSnapshotRecordCache& cache, SnapshotSaveStats* stats) {
  check_snapshot_shape(snapshot);

  // Refresh the cache before touching the file so a failed write leaves the
  // cache consistent with the *state*, which is what the next cut needs.
  SnapshotSaveStats local{};
  std::map<std::string, std::string> next;
  for (const FleetSnapshot::Device& device : snapshot.devices) {
    if (device.dirty) {
      next.emplace(device.device_id, encode_device_record(device));
      ++local.records_rewritten;
      continue;
    }
    auto hit = cache.records.find(device.device_id);
    EMTS_REQUIRE(hit != cache.records.end(),
                 "save_fleet_snapshot: clean record for '" + device.device_id +
                     "' missing from the cache (cold cache needs a full cut)");
    next.emplace(device.device_id, std::move(hit->second));
    ++local.records_reused;
  }
  // Departed devices fall out here: `next` holds exactly the snapshot's ids.
  cache.records = std::move(next);

  std::ofstream out{path, std::ios::binary};
  EMTS_REQUIRE(out.good(), "save_fleet_snapshot: cannot open " + path);
  write_snapshot_header(out, snapshot);
  for (const FleetSnapshot::Device& device : snapshot.devices) {
    const std::string& record = cache.records.at(device.device_id);
    out.write(record.data(), static_cast<std::streamsize>(record.size()));
  }
  EMTS_REQUIRE(out.good(), "save_fleet_snapshot: write failed for " + path);
  if (stats != nullptr) *stats = local;
}

FleetSnapshot load_fleet_snapshot(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EMTS_REQUIRE(in.good(), "load_fleet_snapshot: cannot open " + path);

  char magic[4] = {};
  in.read(magic, sizeof magic);
  EMTS_REQUIRE(in.gcount() == sizeof magic, "load_fleet_snapshot: truncated header");
  EMTS_REQUIRE(std::memcmp(magic, kMagic, sizeof magic) == 0,
               "load_fleet_snapshot: bad magic in " + path);
  const std::uint32_t version = util::read_u32(in);
  EMTS_REQUIRE(version == kVersion,
               "load_fleet_snapshot: unsupported version " + std::to_string(version) +
                   " (expected 2; v1 snapshots predate the incremental spectral state)");

  FleetSnapshot snapshot;
  snapshot.shards = util::read_u32(in);
  snapshot.queue_capacity = util::read_u32(in);
  snapshot.backpressure = util::read_u8(in);
  const std::uint32_t device_count = util::read_u32(in);
  EMTS_REQUIRE(device_count <= kMaxDevices, "load_fleet_snapshot: implausible device count");

  snapshot.devices.reserve(device_count);
  for (std::uint32_t d = 0; d < device_count; ++d) {
    std::string device_id = util::read_string(in);
    EMTS_REQUIRE(!device_id.empty(), "load_fleet_snapshot: empty device id");
    EMTS_REQUIRE(snapshot.devices.empty() || snapshot.devices.back().device_id < device_id,
                 "load_fleet_snapshot: device records out of order or duplicated");

    const std::uint64_t payload_size = util::read_u64(in);
    EMTS_REQUIRE(payload_size <= kMaxDeviceBytes,
                 "load_fleet_snapshot: implausible record size for '" + device_id + "'");
    // +8 for the trailing checksum the record still owes.
    EMTS_REQUIRE(payload_size + 8 <= util::stream_remaining(in),
                 "load_fleet_snapshot: record size for '" + device_id +
                     "' exceeds remaining bytes");

    std::string payload(static_cast<std::size_t>(payload_size), '\0');
    in.read(payload.data(), static_cast<std::streamsize>(payload_size));
    EMTS_REQUIRE(in.gcount() == static_cast<std::streamsize>(payload_size),
                 "load_fleet_snapshot: truncated record for '" + device_id + "'");
    const std::uint64_t declared_sum = util::read_u64(in);
    EMTS_REQUIRE(declared_sum == util::fnv1a64(payload.data(), payload.size()),
                 "load_fleet_snapshot: checksum mismatch for '" + device_id + "'");

    std::istringstream record{payload, std::ios::binary};
    const std::uint64_t emca_size = util::read_u64(record);
    EMTS_REQUIRE(emca_size <= util::stream_remaining(record),
                 "load_fleet_snapshot: calibration size for '" + device_id +
                     "' exceeds its record");
    // Parse the EMCA artifact from its exact sub-range so an artifact that
    // reads short or long of its declared frame is caught here, not blamed on
    // the monitor-state bytes that follow.
    std::string emca_bytes(static_cast<std::size_t>(emca_size), '\0');
    record.read(emca_bytes.data(), static_cast<std::streamsize>(emca_size));
    std::istringstream emca{emca_bytes, std::ios::binary};
    core::TrustEvaluator evaluator = load_calibration(emca);
    EMTS_REQUIRE(emca.peek() == std::istringstream::traits_type::eof(),
                 "load_fleet_snapshot: calibration frame for '" + device_id +
                     "' not fully consumed");
    core::MonitorStateImage monitor = read_monitor_state(record);
    EMTS_REQUIRE(record.peek() == std::istringstream::traits_type::eof(),
                 "load_fleet_snapshot: trailing bytes in record for '" + device_id + "'");

    snapshot.devices.push_back(
        FleetSnapshot::Device{std::move(device_id), std::move(evaluator), std::move(monitor)});
  }
  EMTS_REQUIRE(in.peek() == std::ifstream::traits_type::eof(),
               "load_fleet_snapshot: trailing bytes in " + path);
  return snapshot;
}

}  // namespace emts::io
