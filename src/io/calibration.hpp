// Calibration artifact: persist a fitted detector stack so deployments can
// cold-start monitoring without re-capturing golden traces ("calibrate once,
// monitor many"). Format "EMCA" v1:
//
//   magic   'E' 'M' 'C' 'A'
//   u32     version (1)
//   f64     calibration sample rate, Hz
//   f64     anomalous-fraction alarm gate
//   u32     detector count
//   then per detector:
//     string  registry name (u32 byte count + bytes)
//     u64     payload size in bytes
//     bytes   detector payload (Detector::save output)
//
// Payloads are length-framed so the loader can reject an unknown detector
// name, a payload that is not fully consumed, and trailing bytes after the
// last detector — any of which marks a corrupt or incompatible artifact.
// All fitted doubles round-trip bit-identically: a loaded evaluator scores
// every trace exactly as the evaluator that was saved.
#pragma once

#include <iosfwd>
#include <string>

#include "core/evaluator.hpp"

namespace emts::io {

/// Writes the evaluator's full fitted state. Throws precondition_error on
/// I/O failure. The stream form writes the identical bytes into an open
/// stream — the embedding the EMFS fleet snapshot uses to bundle one EMCA
/// artifact per device.
void save_calibration(const std::string& path, const core::TrustEvaluator& evaluator);
void save_calibration(std::ostream& out, const core::TrustEvaluator& evaluator);

/// Reads an artifact written by save_calibration and reassembles the
/// evaluator. Every named detector must be present in the DetectorRegistry
/// (call baseline::register_ron_detector() first for "ron" stacks). Throws
/// precondition_error on bad magic, version, sizes, unknown detectors,
/// under/over-consumed payloads, or trailing bytes. The stream form stops
/// exactly after the last detector payload (no trailing-byte check), so an
/// artifact can be embedded in a larger container; the path form requires
/// the file to end there.
core::TrustEvaluator load_calibration(const std::string& path);
core::TrustEvaluator load_calibration(std::istream& in);

}  // namespace emts::io
