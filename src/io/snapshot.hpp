// EMFS fleet-snapshot container: the durable form of a running fleet. One
// snapshot bundles, per device, the fitted detector stack (an embedded EMCA
// calibration artifact) and the monitor's complete mutable state (a
// core::MonitorStateImage), so a restarted daemon resumes monitoring every
// device — window contents, debounce runs, latched alarms, lifetime stats —
// without recalibration, and continues each stream bit-identically to a
// process that never died. Format "EMFS" v1:
//
//   magic   'E' 'M' 'F' 'S'
//   u32     version (1)
//   u32     shard count        (the fleet's layout at snapshot time —
//   u32     queue capacity      restart defaults; a restored fleet may
//   u8      backpressure policy re-shard freely, device_hash is stable)
//   u32     device count
//   then per device, sorted by device id:
//     string  device id (u32 byte count + bytes)
//     u64     payload size in bytes
//     bytes   payload:
//               u64   EMCA byte count, then the EMCA artifact
//               bytes monitor state image (read_monitor_state's format)
//     u64     FNV-1a 64 checksum of the payload bytes
//
// Every record is length-framed and checksummed: the loader verifies the
// checksum, bounds every declared length against the bytes actually
// remaining (a corrupt header is rejected before it can allocate), and
// requires the file to end exactly after the last record.
//
// Incremental saves: because serialization is deterministic (devices sorted,
// no timestamps), a device whose state has not moved since the last snapshot
// re-serializes to byte-identical record bytes. The cache-aware
// save_fleet_snapshot overload exploits this — records for clean devices
// (Device::dirty == false) are streamed verbatim from a
// FleetSnapshotRecordCache instead of being re-copied and re-encoded, so the
// cost of a snapshot cut scales with the number of *moved* devices, not the
// fleet size. The output is always a complete, self-contained EMFS v2
// container, byte-identical to a full rewrite of the same state; there is no
// delta file format and load_fleet_snapshot needs no changes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/monitor.hpp"

namespace emts::io {

/// Serializes one monitor state image (every field, both latency
/// histograms, the buffered event log) such that read_monitor_state returns
/// a bit-identical image.
void write_monitor_state(std::ostream& out, const core::MonitorStateImage& image);
core::MonitorStateImage read_monitor_state(std::istream& in);

/// In-memory form of one EMFS container.
struct FleetSnapshot {
  /// Fleet layout at snapshot time; restart defaults, not requirements.
  std::uint32_t shards = 0;
  std::uint32_t queue_capacity = 0;
  std::uint8_t backpressure = 0;  // numeric fleet::BackpressurePolicy

  struct Device {
    std::string device_id;
    /// EMCA round-trip: bit-identical scores. Engaged whenever dirty is true
    /// (always, for loaded snapshots); nullopt only in clean placeholders.
    std::optional<core::TrustEvaluator> evaluator;
    core::MonitorStateImage monitor;
    /// When false the evaluator/monitor members are unpopulated placeholders
    /// and the device's on-disk record must come from the save-time cache
    /// (incremental snapshot mode). Defaults true so every existing producer
    /// keeps the full-copy semantics.
    bool dirty = true;
  };
  std::vector<Device> devices;  // sorted by device id
};

/// Raw on-disk record bytes (id framing + length + payload + checksum) per
/// device, keyed by device id, from the last cache-aware save. Owned by the
/// snapshot producer (the daemon); save_fleet_snapshot keeps it in sync —
/// dirty devices refresh their entry, departed devices are pruned.
struct FleetSnapshotRecordCache {
  std::map<std::string, std::string> records;
};

/// How much of a cache-aware save was reuse vs fresh encoding.
struct SnapshotSaveStats {
  std::uint64_t records_reused = 0;
  std::uint64_t records_rewritten = 0;
};

/// Writes/reads a whole container. Loading needs every detector named by the
/// embedded EMCA artifacts registered (baseline::register_ron_detector() for
/// "ron" stacks). Throws precondition_error on I/O failure, bad magic or
/// version, absurd or inconsistent lengths, checksum mismatches, unsorted or
/// duplicate device records, or trailing bytes.
///
/// The plain save requires every device record to be populated
/// (Device::dirty == true — it has no cache to fall back on). The
/// cache-aware overload streams clean devices' records from `cache`
/// verbatim, refreshes the cache from dirty devices, prunes departed ids,
/// and reports the reuse split via `stats` when non-null. A clean device
/// with no cache entry is a precondition_error: the producer must mark
/// everything dirty on its first (cold-cache) cut.
void save_fleet_snapshot(const std::string& path, const FleetSnapshot& snapshot);
void save_fleet_snapshot(const std::string& path, const FleetSnapshot& snapshot,
                         FleetSnapshotRecordCache& cache,
                         SnapshotSaveStats* stats = nullptr);
FleetSnapshot load_fleet_snapshot(const std::string& path);

}  // namespace emts::io
