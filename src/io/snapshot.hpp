// EMFS fleet-snapshot container: the durable form of a running fleet. One
// snapshot bundles, per device, the fitted detector stack (an embedded EMCA
// calibration artifact) and the monitor's complete mutable state (a
// core::MonitorStateImage), so a restarted daemon resumes monitoring every
// device — window contents, debounce runs, latched alarms, lifetime stats —
// without recalibration, and continues each stream bit-identically to a
// process that never died. Format "EMFS" v1:
//
//   magic   'E' 'M' 'F' 'S'
//   u32     version (1)
//   u32     shard count        (the fleet's layout at snapshot time —
//   u32     queue capacity      restart defaults; a restored fleet may
//   u8      backpressure policy re-shard freely, device_hash is stable)
//   u32     device count
//   then per device, sorted by device id:
//     string  device id (u32 byte count + bytes)
//     u64     payload size in bytes
//     bytes   payload:
//               u64   EMCA byte count, then the EMCA artifact
//               bytes monitor state image (read_monitor_state's format)
//     u64     FNV-1a 64 checksum of the payload bytes
//
// Every record is length-framed and checksummed: the loader verifies the
// checksum, bounds every declared length against the bytes actually
// remaining (a corrupt header is rejected before it can allocate), and
// requires the file to end exactly after the last record.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/monitor.hpp"

namespace emts::io {

/// Serializes one monitor state image (every field, both latency
/// histograms, the buffered event log) such that read_monitor_state returns
/// a bit-identical image.
void write_monitor_state(std::ostream& out, const core::MonitorStateImage& image);
core::MonitorStateImage read_monitor_state(std::istream& in);

/// In-memory form of one EMFS container.
struct FleetSnapshot {
  /// Fleet layout at snapshot time; restart defaults, not requirements.
  std::uint32_t shards = 0;
  std::uint32_t queue_capacity = 0;
  std::uint8_t backpressure = 0;  // numeric fleet::BackpressurePolicy

  struct Device {
    std::string device_id;
    core::TrustEvaluator evaluator;    // EMCA round-trip: bit-identical scores
    core::MonitorStateImage monitor;
  };
  std::vector<Device> devices;  // sorted by device id
};

/// Writes/reads a whole container. Loading needs every detector named by the
/// embedded EMCA artifacts registered (baseline::register_ron_detector() for
/// "ron" stacks). Throws precondition_error on I/O failure, bad magic or
/// version, absurd or inconsistent lengths, checksum mismatches, unsorted or
/// duplicate device records, or trailing bytes.
void save_fleet_snapshot(const std::string& path, const FleetSnapshot& snapshot);
FleetSnapshot load_fleet_snapshot(const std::string& path);

}  // namespace emts::io
