#include "io/wire.hpp"

#include <cmath>
#include <cstring>

#include "util/assert.hpp"
#include "util/fnv.hpp"

namespace emts::io::wire {

namespace {

// Device ids ride in a u32-prefixed string; anything beyond this is a
// corrupt frame, not a plausible fleet identifier.
constexpr std::uint32_t kMaxDeviceIdBytes = 4096;

void append_raw(std::string& out, const void* data, std::size_t size) {
  out.append(static_cast<const char*>(data), size);
}

template <typename T>
void append_scalar(std::string& out, T value) {
  append_raw(out, &value, sizeof value);
}

template <typename T>
T read_scalar(const char* data) {
  T value;
  std::memcpy(&value, data, sizeof value);
  return value;
}

}  // namespace

void encode_trace_frame(const TraceFrame& frame, std::string& out) {
  encode_trace_frame(frame.device_id, frame.sample_rate, frame.trace.data(),
                     frame.trace.size(), out);
}

void encode_trace_frame(const std::string& device_id, double sample_rate,
                        const double* samples, std::size_t count, std::string& out) {
  EMTS_REQUIRE(!device_id.empty() && device_id.size() <= kMaxDeviceIdBytes,
               "wire: device id must be 1..4096 bytes");
  EMTS_REQUIRE(count > 0, "wire: cannot frame an empty trace");
  EMTS_REQUIRE(std::isfinite(sample_rate) && sample_rate > 0.0,
               "wire: frame needs a positive, finite sample rate");
  const std::size_t payload_size =
      sizeof(std::uint32_t) + device_id.size() + sizeof(double) + sizeof(std::uint32_t) +
      count * sizeof(double);
  EMTS_REQUIRE(payload_size <= kMaxFramePayload, "wire: trace too large for one frame");

  append_scalar(out, kMagic);
  append_scalar(out, kVersion);
  append_scalar(out, kFrameTrace);
  append_scalar(out, std::uint16_t{0});
  append_scalar(out, static_cast<std::uint32_t>(payload_size));

  const std::size_t payload_start = out.size();
  append_scalar(out, static_cast<std::uint32_t>(device_id.size()));
  append_raw(out, device_id.data(), device_id.size());
  append_scalar(out, sample_rate);
  append_scalar(out, static_cast<std::uint32_t>(count));
  append_raw(out, samples, count * sizeof(double));

  append_scalar(out, util::fnv1a64(out.data() + payload_start, payload_size));
}

void encode_hello_frame(const std::string& auth_token, std::string& out) {
  EMTS_REQUIRE(!auth_token.empty() && auth_token.size() <= kMaxAuthTokenBytes,
               "wire: auth token must be 1..4096 bytes");
  const std::size_t payload_size = sizeof(std::uint32_t) + auth_token.size();

  append_scalar(out, kMagic);
  append_scalar(out, kVersion);
  append_scalar(out, kFrameHello);
  append_scalar(out, std::uint16_t{0});
  append_scalar(out, static_cast<std::uint32_t>(payload_size));

  const std::size_t payload_start = out.size();
  append_scalar(out, static_cast<std::uint32_t>(auth_token.size()));
  append_raw(out, auth_token.data(), auth_token.size());

  append_scalar(out, util::fnv1a64(out.data() + payload_start, payload_size));
}

void FrameDecoder::feed(const char* data, std::size_t size) {
  // Compact once the consumed prefix dominates, so a long-lived connection
  // never grows the buffer beyond a few frames.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

namespace {

void parse_trace_payload(const char* payload, std::uint32_t payload_size, TraceFrame& out) {
  // Every sub-length must land exactly on the declared payload size, or the
  // frame lies about its own shape.
  EMTS_REQUIRE(payload_size >= sizeof(std::uint32_t), "wire: truncated frame payload");
  const std::uint32_t id_bytes = read_scalar<std::uint32_t>(payload);
  EMTS_REQUIRE(id_bytes >= 1 && id_bytes <= kMaxDeviceIdBytes,
               "wire: implausible device id size");
  const std::size_t fixed = sizeof(std::uint32_t) + id_bytes + sizeof(double) +
                            sizeof(std::uint32_t);
  EMTS_REQUIRE(payload_size >= fixed, "wire: truncated frame payload");
  const char* cursor = payload + sizeof(std::uint32_t);
  out.device_id.assign(cursor, id_bytes);
  cursor += id_bytes;
  out.sample_rate = read_scalar<double>(cursor);
  cursor += sizeof(double);
  EMTS_REQUIRE(std::isfinite(out.sample_rate) && out.sample_rate > 0.0,
               "wire: frame has a non-positive sample rate");
  const std::uint32_t sample_count = read_scalar<std::uint32_t>(cursor);
  cursor += sizeof(std::uint32_t);
  EMTS_REQUIRE(sample_count > 0, "wire: frame holds an empty trace");
  EMTS_REQUIRE(fixed + sample_count * sizeof(double) == payload_size,
               "wire: frame sample count disagrees with payload size");
  out.trace.resize(sample_count);
  std::memcpy(out.trace.data(), cursor, sample_count * sizeof(double));
}

void parse_hello_payload(const char* payload, std::uint32_t payload_size, std::string& out) {
  EMTS_REQUIRE(payload_size >= sizeof(std::uint32_t), "wire: truncated frame payload");
  const std::uint32_t token_bytes = read_scalar<std::uint32_t>(payload);
  EMTS_REQUIRE(token_bytes >= 1 && token_bytes <= kMaxAuthTokenBytes,
               "wire: implausible auth token size");
  EMTS_REQUIRE(sizeof(std::uint32_t) + token_bytes == payload_size,
               "wire: hello token size disagrees with payload size");
  out.assign(payload + sizeof(std::uint32_t), token_bytes);
}

}  // namespace

bool FrameDecoder::next(Frame& out) {
  const std::size_t available = buffered();
  if (available < 12) return false;  // header not yet complete
  const char* head = buffer_.data() + consumed_;

  EMTS_REQUIRE(read_scalar<std::uint32_t>(head) == kMagic, "wire: bad frame magic");
  EMTS_REQUIRE(read_scalar<std::uint8_t>(head + 4) == kVersion,
               "wire: unsupported frame version");
  const std::uint8_t frame_type = read_scalar<std::uint8_t>(head + 5);
  EMTS_REQUIRE(frame_type == kFrameTrace || frame_type == kFrameHello,
               "wire: unknown frame type");
  const std::uint32_t payload_size = read_scalar<std::uint32_t>(head + 8);
  EMTS_REQUIRE(payload_size <= kMaxFramePayload, "wire: implausible frame payload size");

  if (available < 12 + static_cast<std::size_t>(payload_size) + 8) return false;
  const char* payload = head + 12;
  const std::uint64_t declared_sum = read_scalar<std::uint64_t>(payload + payload_size);
  EMTS_REQUIRE(util::fnv1a64(payload, payload_size) == declared_sum,
               "wire: frame checksum mismatch");

  if (frame_type == kFrameTrace) {
    out.kind = FrameKind::kTrace;
    parse_trace_payload(payload, payload_size, out.trace);
  } else {
    out.kind = FrameKind::kHello;
    parse_hello_payload(payload, payload_size, out.auth_token);
  }

  consumed_ += 12 + payload_size + 8;
  ++frames_decoded_;
  return true;
}

bool FrameDecoder::next(TraceFrame& out) {
  Frame frame;
  if (!next(frame)) return false;
  // Trace-only callers have no auth state to update; a HELLO here means the
  // peer is speaking the authenticated dialect at an endpoint that does not.
  EMTS_REQUIRE(frame.kind == FrameKind::kTrace,
               "wire: unexpected HELLO frame on a trace-only stream");
  out = std::move(frame.trace);
  return true;
}

}  // namespace emts::io::wire
