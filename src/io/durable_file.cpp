#include "io/durable_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/assert.hpp"

namespace emts::io {

namespace {

// Opens `path` read-only and fsyncs it. On Linux fsync on an O_RDONLY fd
// flushes the inode's dirty pages, so the writer does not need to keep its
// own descriptor open across the rename.
void fsync_path(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  EMTS_REQUIRE(fd >= 0, "durable_replace: cannot open " + path + " for fsync: " +
                            std::strerror(errno));
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  EMTS_REQUIRE(rc == 0,
               "durable_replace: fsync failed for " + path + ": " +
                   std::strerror(saved_errno));
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void durable_replace(const std::string& tmp_path, const std::string& final_path) {
  try {
    fsync_path(tmp_path, O_RDONLY);
    EMTS_REQUIRE(std::rename(tmp_path.c_str(), final_path.c_str()) == 0,
                 "durable_replace: rename " + tmp_path + " -> " + final_path +
                     " failed: " + std::strerror(errno));
  } catch (...) {
    ::unlink(tmp_path.c_str());
    throw;
  }
  // The rename is visible; now pin the directory entry itself. Failure here
  // is still an error (the artifact may vanish on power cut) but the tmp
  // name is gone, so there is nothing to clean up.
  fsync_path(parent_dir(final_path), O_RDONLY | O_DIRECTORY);
}

}  // namespace emts::io
