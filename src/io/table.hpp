// Aligned plain-text tables: how the benches print the paper's tables and
// figure series in a diff-friendly form.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace emts::io {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant issues.
  static std::string num(double value, int precision = 4);

  /// Renders with column alignment and a header rule.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace emts::io
