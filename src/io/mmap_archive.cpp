#include "io/mmap_archive.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstring>

#include "util/assert.hpp"
#include "util/binio.hpp"

namespace emts::io {

namespace {

// Mirror of the EMTA v1 header in trace_archive.cpp (private there by
// design; the wire layout is the contract, not the struct).
constexpr char kMagic[4] = {'E', 'M', 'T', 'A'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 32;

}  // namespace

MappedTraceArchive::MappedTraceArchive(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  EMTS_REQUIRE(fd >= 0, "mmap_archive: cannot open " + path);

  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    EMTS_REQUIRE(false, "mmap_archive: cannot stat " + path);
  }
  const std::size_t file_bytes = static_cast<std::size_t>(st.st_size);
  if (file_bytes < kHeaderBytes) {
    ::close(fd);
    EMTS_REQUIRE(false, "mmap_archive: truncated header in " + path);
  }

  void* mapping = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  EMTS_REQUIRE(mapping != MAP_FAILED, "mmap_archive: mmap failed for " + path);
  mapping_ = mapping;
  mapping_bytes_ = file_bytes;

  const char* bytes = static_cast<const char*>(mapping);
  std::uint32_t version = 0;
  std::uint64_t trace_count = 0;
  std::uint64_t trace_length = 0;
  double sample_rate = 0.0;
  std::memcpy(&version, bytes + 4, sizeof version);
  std::memcpy(&trace_count, bytes + 8, sizeof trace_count);
  std::memcpy(&trace_length, bytes + 16, sizeof trace_length);
  std::memcpy(&sample_rate, bytes + 24, sizeof sample_rate);

  try {
    EMTS_REQUIRE(std::memcmp(bytes, kMagic, sizeof kMagic) == 0,
                 "mmap_archive: bad magic in " + path);
    EMTS_REQUIRE(version == kVersion, "mmap_archive: unsupported version");
    EMTS_REQUIRE(trace_count > 0 && trace_length > 0,
                 "mmap_archive: empty archive " + path);
    EMTS_REQUIRE(std::isfinite(sample_rate) && sample_rate > 0.0,
                 "mmap_archive: bad sample rate");
    EMTS_REQUIRE(trace_count < (1ull << 32) && trace_length < (1ull << 32),
                 "mmap_archive: implausible sizes in " + path);
    // The whole-file shape check: header + samples must account for every
    // byte, so a truncated or padded file is rejected up front — there is no
    // per-trace read to fail later. Both factors may be up to 2^32-1, so the
    // product can wrap u64 (e.g. 2^31 x 2^30 x 8 = 2^64 ≡ 0) and make a
    // crafted header agree with a header-only file; multiply checked.
    std::uint64_t sample_count = 0;
    std::uint64_t payload_bytes = 0;
    EMTS_REQUIRE(util::checked_mul_u64(trace_count, trace_length, &sample_count) &&
                     util::checked_mul_u64(sample_count, sizeof(double), &payload_bytes),
                 "mmap_archive: declared shape overflows in " + path);
    EMTS_REQUIRE(file_bytes == kHeaderBytes + payload_bytes,
                 "mmap_archive: file size disagrees with declared shape in " + path);
  } catch (...) {
    unmap();
    throw;
  }

  samples_ = reinterpret_cast<const double*>(bytes + kHeaderBytes);
  trace_count_ = static_cast<std::size_t>(trace_count);
  trace_length_ = static_cast<std::size_t>(trace_length);
  sample_rate_ = sample_rate;
}

MappedTraceArchive::~MappedTraceArchive() { unmap(); }

MappedTraceArchive::MappedTraceArchive(MappedTraceArchive&& other) noexcept
    : mapping_{other.mapping_},
      mapping_bytes_{other.mapping_bytes_},
      samples_{other.samples_},
      trace_count_{other.trace_count_},
      trace_length_{other.trace_length_},
      sample_rate_{other.sample_rate_} {
  other.mapping_ = nullptr;
  other.mapping_bytes_ = 0;
  other.samples_ = nullptr;
  other.trace_count_ = 0;
  other.trace_length_ = 0;
}

MappedTraceArchive& MappedTraceArchive::operator=(MappedTraceArchive&& other) noexcept {
  if (this != &other) {
    unmap();
    mapping_ = other.mapping_;
    mapping_bytes_ = other.mapping_bytes_;
    samples_ = other.samples_;
    trace_count_ = other.trace_count_;
    trace_length_ = other.trace_length_;
    sample_rate_ = other.sample_rate_;
    other.mapping_ = nullptr;
    other.mapping_bytes_ = 0;
    other.samples_ = nullptr;
    other.trace_count_ = 0;
    other.trace_length_ = 0;
  }
  return *this;
}

void MappedTraceArchive::unmap() noexcept {
  if (mapping_ != nullptr) {
    ::munmap(mapping_, mapping_bytes_);
    mapping_ = nullptr;
    mapping_bytes_ = 0;
    samples_ = nullptr;
  }
}

const double* MappedTraceArchive::trace(std::size_t i) const {
  EMTS_REQUIRE(i < trace_count_, "mmap_archive: trace index out of range");
  return samples_ + i * trace_length_;
}

core::Trace MappedTraceArchive::trace_copy(std::size_t i) const {
  const double* begin = trace(i);
  return core::Trace(begin, begin + trace_length_);
}

}  // namespace emts::io
