#include "io/calibration.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/detector.hpp"
#include "util/assert.hpp"
#include "util/binio.hpp"

namespace emts::io {

namespace {

constexpr char kMagic[4] = {'E', 'M', 'C', 'A'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kMaxDetectors = 64;

}  // namespace

void save_calibration(std::ostream& out, const core::TrustEvaluator& evaluator) {
  out.write(kMagic, sizeof kMagic);
  util::write_u32(out, kVersion);
  util::write_f64(out, evaluator.sample_rate());
  util::write_f64(out, evaluator.options().anomalous_fraction_alarm);
  util::write_u32(out, static_cast<std::uint32_t>(evaluator.detectors().size()));

  for (const auto& detector : evaluator.detectors()) {
    // Serialize to a scratch buffer first: the payload is length-framed so
    // the loader can verify exact consumption per detector.
    std::ostringstream payload{std::ios::binary};
    detector->save(payload);
    const std::string bytes = payload.str();
    util::write_string(out, detector->name());
    util::write_u64(out, bytes.size());
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EMTS_REQUIRE(out.good(), "save_calibration: write failed");
}

void save_calibration(const std::string& path, const core::TrustEvaluator& evaluator) {
  std::ofstream out{path, std::ios::binary};
  EMTS_REQUIRE(out.good(), "save_calibration: cannot open " + path);
  save_calibration(out, evaluator);
  EMTS_REQUIRE(out.good(), "save_calibration: write failed for " + path);
}

core::TrustEvaluator load_calibration(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof magic);
  EMTS_REQUIRE(in.gcount() == sizeof magic, "load_calibration: truncated header");
  EMTS_REQUIRE(std::memcmp(magic, kMagic, sizeof magic) == 0,
               "load_calibration: bad magic");
  const std::uint32_t version = util::read_u32(in);
  EMTS_REQUIRE(version == kVersion, "load_calibration: unsupported version");

  const double sample_rate = util::read_f64(in);
  EMTS_REQUIRE(std::isfinite(sample_rate) && sample_rate > 0.0,
               "load_calibration: bad sample rate");
  const double alarm_fraction = util::read_f64(in);
  EMTS_REQUIRE(std::isfinite(alarm_fraction) && alarm_fraction > 0.0 && alarm_fraction <= 1.0,
               "load_calibration: bad alarm fraction");
  const std::uint32_t count = util::read_u32(in);
  EMTS_REQUIRE(count >= 1 && count <= kMaxDetectors, "load_calibration: bad detector count");

  std::vector<std::shared_ptr<const core::Detector>> detectors;
  detectors.reserve(count);
  for (std::uint32_t d = 0; d < count; ++d) {
    const std::string name = util::read_string(in);
    EMTS_REQUIRE(core::DetectorRegistry::instance().contains(name),
                 "load_calibration: unknown detector '" + name + "' (not registered)");
    const std::uint64_t payload_size = util::read_u64(in);
    // A declared payload the stream cannot possibly hold is a corrupt
    // header; refuse it before the allocation it would otherwise trigger.
    EMTS_REQUIRE(payload_size <= util::stream_remaining(in),
                 "load_calibration: payload size for '" + name +
                     "' exceeds remaining bytes");

    std::string bytes(static_cast<std::size_t>(payload_size), '\0');
    in.read(bytes.data(), static_cast<std::streamsize>(payload_size));
    EMTS_REQUIRE(in.gcount() == static_cast<std::streamsize>(payload_size),
                 "load_calibration: truncated payload for '" + name + "'");

    std::istringstream payload{bytes, std::ios::binary};
    auto detector = core::DetectorRegistry::instance().load(name, payload);
    EMTS_REQUIRE(payload.peek() == std::istringstream::traits_type::eof(),
                 "load_calibration: unconsumed payload bytes for '" + name + "'");
    detectors.push_back(std::move(detector));
  }
  return core::TrustEvaluator::assemble(std::move(detectors), alarm_fraction, sample_rate);
}

core::TrustEvaluator load_calibration(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EMTS_REQUIRE(in.good(), "load_calibration: cannot open " + path);
  core::TrustEvaluator evaluator = load_calibration(in);
  EMTS_REQUIRE(in.peek() == std::ifstream::traits_type::eof(),
               "load_calibration: trailing bytes in " + path);
  return evaluator;
}

}  // namespace emts::io
