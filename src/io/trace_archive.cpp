#include "io/trace_archive.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>

#include "util/assert.hpp"
#include "util/binio.hpp"

namespace emts::io {

namespace {

constexpr char kMagic[4] = {'E', 'M', 'T', 'A'};
constexpr std::uint32_t kVersion = 1;

struct Header {
  char magic[4];
  std::uint32_t version;
  std::uint64_t trace_count;
  std::uint64_t trace_length;
  double sample_rate;
};

}  // namespace

void save_trace_archive(const std::string& path, const core::TraceSet& set) {
  EMTS_REQUIRE(!set.empty(), "cannot archive an empty trace set");
  set.validate();

  std::ofstream out{path, std::ios::binary};
  EMTS_REQUIRE(out.good(), "save_trace_archive: cannot open " + path);

  Header header{};
  std::memcpy(header.magic, kMagic, sizeof kMagic);
  header.version = kVersion;
  header.trace_count = set.size();
  header.trace_length = set.trace_length();
  header.sample_rate = set.sample_rate;
  out.write(reinterpret_cast<const char*>(&header), sizeof header);

  for (const core::Trace& trace : set.traces) {
    out.write(reinterpret_cast<const char*>(trace.data()),
              static_cast<std::streamsize>(trace.size() * sizeof(double)));
  }
  EMTS_REQUIRE(out.good(), "save_trace_archive: write failed for " + path);
}

core::TraceSet load_trace_archive(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EMTS_REQUIRE(in.good(), "load_trace_archive: cannot open " + path);

  Header header{};
  in.read(reinterpret_cast<char*>(&header), sizeof header);
  EMTS_REQUIRE(in.gcount() == sizeof header, "load_trace_archive: truncated header in " + path);
  EMTS_REQUIRE(std::memcmp(header.magic, kMagic, sizeof kMagic) == 0,
               "load_trace_archive: bad magic in " + path);
  EMTS_REQUIRE(header.version == kVersion, "load_trace_archive: unsupported version");
  EMTS_REQUIRE(header.trace_count > 0 && header.trace_length > 0,
               "load_trace_archive: empty archive " + path);
  EMTS_REQUIRE(std::isfinite(header.sample_rate) && header.sample_rate > 0.0,
               "load_trace_archive: bad sample rate");
  // Guard pathological headers before allocating.
  EMTS_REQUIRE(header.trace_count < (1ull << 32) && header.trace_length < (1ull << 32),
               "load_trace_archive: implausible sizes in " + path);
  // The declared shape must account for every remaining byte — checked
  // before the read loop so a header claiming gigabytes against a kilobyte
  // file is rejected without allocating a single trace. The product of two
  // <2^32 factors times 8 can wrap u64, so it is computed checked.
  std::uint64_t sample_count = 0;
  std::uint64_t payload_bytes = 0;
  EMTS_REQUIRE(util::checked_mul_u64(header.trace_count, header.trace_length,
                                     &sample_count) &&
                   util::checked_mul_u64(sample_count, sizeof(double), &payload_bytes),
               "load_trace_archive: declared shape overflows in " + path);
  EMTS_REQUIRE(payload_bytes == util::stream_remaining(in),
               "load_trace_archive: declared shape disagrees with file size in " + path);

  core::TraceSet set;
  set.sample_rate = header.sample_rate;
  for (std::uint64_t t = 0; t < header.trace_count; ++t) {
    core::Trace trace(header.trace_length);
    in.read(reinterpret_cast<char*>(trace.data()),
            static_cast<std::streamsize>(trace.size() * sizeof(double)));
    EMTS_REQUIRE(in.gcount() ==
                     static_cast<std::streamsize>(trace.size() * sizeof(double)),
                 "load_trace_archive: truncated payload in " + path);
    set.add(std::move(trace));
  }
  // A well-formed archive ends exactly where the header says it does;
  // trailing bytes mean the header lies about the payload shape.
  EMTS_REQUIRE(in.peek() == std::ifstream::traits_type::eof(),
               "load_trace_archive: trailing bytes in " + path);
  return set;
}

}  // namespace emts::io
