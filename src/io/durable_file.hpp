// Crash-durable tmp+rename publication. The daemon's snapshot/stats artifacts
// are written to `<final>.tmp` and renamed into place so readers never see a
// half-written file — but rename alone only orders the *names*, not the data:
// after a power cut the new name can point at a zero-length or partial inode
// unless the tmp file was fsynced first, and the rename itself can be lost
// unless the parent directory is fsynced after. durable_replace() does both,
// which is the full barrier sequence (write, fsync(file), rename,
// fsync(dir)) POSIX requires before an artifact may be declared written.
#pragma once

#include <string>

namespace emts::io {

/// Renames `tmp_path` onto `final_path` with full durability: fsync the tmp
/// file's data, rename, then fsync the parent directory so the new directory
/// entry survives a crash. Both paths must live in the same directory.
/// Throws precondition_error when any step fails (the tmp file is unlinked
/// on failure so retries start clean).
void durable_replace(const std::string& tmp_path, const std::string& final_path);

}  // namespace emts::io
