// Binary trace archive: persist acquisition campaigns so the analysis module
// can run offline, detectors can be recalibrated later, and golden
// references can ship with a deployment. Format "EMTA" v1: a fixed header
// (magic, version, trace count, trace length, sample rate) followed by
// little-endian float64 samples, trace-major.
#pragma once

#include <string>

#include "core/trace.hpp"

namespace emts::io {

/// Writes a validated TraceSet; throws precondition_error on I/O failure or
/// an empty/ragged set.
void save_trace_archive(const std::string& path, const core::TraceSet& set);

/// Reads an archive written by save_trace_archive; validates the header and
/// returns the reconstructed set. Throws precondition_error on any mismatch
/// (bad magic, truncated payload, zero sizes).
core::TraceSet load_trace_archive(const std::string& path);

}  // namespace emts::io
