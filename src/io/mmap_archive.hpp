// Zero-copy EMTA archive access for load generation. load_trace_archive()
// deserializes every sample into freshly allocated Traces — fine for
// analysis, wasteful for a replay client whose only job is to push bytes at
// a socket as fast as possible. MappedTraceArchive mmap()s the archive and
// validates the same header invariants, then hands out pointers straight
// into the mapping: the EMTA payload is little-endian float64 starting at a
// double-aligned offset, so a trace is readable in place with no copy and no
// per-trace heap traffic. The kernel pages samples in on demand, which is
// what lets a replay client stream archives much larger than RAM at line
// rate.
#pragma once

#include <cstddef>
#include <string>

#include "core/trace.hpp"

namespace emts::io {

class MappedTraceArchive {
 public:
  /// Opens and maps the archive read-only, validating the EMTA header
  /// against the actual file size (declared shape must account for every
  /// byte). Throws precondition_error on open/map failure or any header
  /// mismatch — the same corruption checks load_trace_archive applies.
  explicit MappedTraceArchive(const std::string& path);
  ~MappedTraceArchive();

  MappedTraceArchive(MappedTraceArchive&& other) noexcept;
  MappedTraceArchive& operator=(MappedTraceArchive&& other) noexcept;
  MappedTraceArchive(const MappedTraceArchive&) = delete;
  MappedTraceArchive& operator=(const MappedTraceArchive&) = delete;

  std::size_t size() const { return trace_count_; }
  std::size_t trace_length() const { return trace_length_; }
  double sample_rate() const { return sample_rate_; }

  /// Pointer to trace i's samples inside the mapping (trace_length doubles).
  /// Valid for the archive's lifetime. Requires i < size().
  const double* trace(std::size_t i) const;

  /// Materializes trace i as an owned Trace (copies out of the mapping).
  core::Trace trace_copy(std::size_t i) const;

 private:
  void unmap() noexcept;

  void* mapping_ = nullptr;
  std::size_t mapping_bytes_ = 0;
  const double* samples_ = nullptr;  // payload start inside the mapping
  std::size_t trace_count_ = 0;
  std::size_t trace_length_ = 0;
  double sample_rate_ = 0.0;
};

}  // namespace emts::io
