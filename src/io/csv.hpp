// CSV export/import for traces and series, so bench output can be re-plotted
// outside the repo (gnuplot / python) and traces can be archived.
#pragma once

#include <string>
#include <vector>

namespace emts::io {

/// Writes columns as CSV. All columns must share one length.
/// Throws precondition_error on ragged input or file-open failure.
void write_csv(const std::string& path, const std::vector<std::string>& column_names,
               const std::vector<std::vector<double>>& columns);

/// Reads a CSV written by write_csv. Returns columns; fills `column_names`
/// if non-null.
std::vector<std::vector<double>> read_csv(const std::string& path,
                                          std::vector<std::string>* column_names = nullptr);

}  // namespace emts::io
