// Distribution-separation metrics. The paper's Fig. 6 argument is about
// whether golden and Trojan-active distance distributions are separable
// ("the peaks of distributions ... are separable" for the on-chip sensor but
// not the external probe); these metrics quantify that claim.
#pragma once

#include <vector>

namespace emts::stats {

/// Overlap coefficient of two empirical distributions, estimated on a shared
/// equal-width binning: sum over bins of min(p_a, p_b). 1 = identical,
/// 0 = disjoint.
double overlap_coefficient(const std::vector<double>& a, const std::vector<double>& b,
                           std::size_t bins = 64);

/// Welch's t statistic for a difference in means under unequal variances.
double welch_t_statistic(const std::vector<double>& a, const std::vector<double>& b);

/// Peak (mode) separation: |mode_a - mode_b| estimated on a shared binning,
/// normalized by the pooled standard deviation. The paper's on-chip-sensor
/// claim translates to this being clearly nonzero while the probe's is ~0.
double mode_separation(const std::vector<double>& a, const std::vector<double>& b,
                       std::size_t bins = 64);

/// Cohen's d effect size (difference of means over pooled stddev).
double cohens_d(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace emts::stats
