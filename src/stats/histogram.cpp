#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace emts::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  EMTS_REQUIRE(hi > lo, "histogram range must be non-empty");
  EMTS_REQUIRE(bins > 0, "histogram needs at least one bin");
}

std::size_t Histogram::bin_of(double value) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  const double pos = (value - lo_) / width;
  if (pos < 0.0) return 0;
  const auto idx = static_cast<std::size_t>(pos);
  return std::min(idx, counts_.size() - 1);
}

void Histogram::add(double value) {
  ++counts_[bin_of(value)];
  ++total_;
}

void Histogram::add_all(const std::vector<double>& values) {
  for (double v : values) add(v);
}

std::size_t Histogram::count(std::size_t bin) const {
  EMTS_ASSERT(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  EMTS_ASSERT(bin < counts_.size());
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return bin_lo(bin) + width;
}

double Histogram::bin_center(std::size_t bin) const {
  return 0.5 * (bin_lo(bin) + bin_hi(bin));
}

std::size_t Histogram::mode_bin() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string Histogram::render(std::size_t width) const {
  const std::size_t peak = counts_[mode_bin()];
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t len =
        peak == 0 ? 0 : (counts_[b] * width + peak / 2) / peak;
    out << "[" << bin_lo(b) << ", " << bin_hi(b) << ") "
        << std::string(len, '#') << " " << counts_[b] << "\n";
  }
  return out.str();
}

std::string Histogram::render_pair(const Histogram& red, const Histogram& blue,
                                   std::size_t width) {
  EMTS_REQUIRE(red.bin_count() == blue.bin_count() && red.lo_ == blue.lo_ &&
                   red.hi_ == blue.hi_,
               "render_pair requires identical binning");
  std::size_t peak = 1;
  for (std::size_t b = 0; b < red.bin_count(); ++b) {
    peak = std::max({peak, red.counts_[b], blue.counts_[b]});
  }
  std::ostringstream out;
  out << "    bin-center | golden (R) / trojan (B)\n";
  for (std::size_t b = 0; b < red.bin_count(); ++b) {
    const std::size_t rl = (red.counts_[b] * width + peak / 2) / peak;
    const std::size_t bl = (blue.counts_[b] * width + peak / 2) / peak;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%14.4f", red.bin_center(b));
    out << buf << " | R" << std::string(rl, '#') << "\n";
    out << std::string(14, ' ') << " | B" << std::string(bl, '*') << "\n";
  }
  return out.str();
}

}  // namespace emts::stats
