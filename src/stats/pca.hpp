// Principal Component Analysis. The paper's data-analysis module (Sec. III-D)
// uses PCA to "reduce the dimensionality of original data by replacing several
// correlated variables with a new set of independent variables" before
// computing Euclidean distances.
//
// The implementation picks between two exact paths:
//  * covariance path (d x d eigenproblem) when features <= samples,
//  * Gram path (n x n eigenproblem) when samples < features — the usual case
//    for a few hundred calibration traces of thousands of samples each.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "linalg/matrix.hpp"

namespace emts::stats {

/// Fitted PCA projection. Immutable after fit().
class PcaModel {
 public:
  /// Fits on `data` (rows = observations, columns = features), keeping up to
  /// `components` principal directions (clamped to the available rank).
  /// Requires at least 2 rows and 1 column.
  static PcaModel fit(const linalg::Matrix& data, std::size_t components);

  /// Projects one observation into PCA space; requires size == input_dim().
  std::vector<double> project(const std::vector<double>& sample) const;

  /// project() into a caller-owned vector: bit-identical results, zero
  /// allocations once the vector's capacity is warm. `out` must not alias
  /// `sample`.
  void project_into(const std::vector<double>& sample, std::vector<double>& out) const;

  /// Projects every row of `data`; result is rows x components().
  linalg::Matrix project_all(const linalg::Matrix& data) const;

  /// Reconstructs an observation from its projection (inverse transform).
  std::vector<double> reconstruct(const std::vector<double>& projected) const;

  /// reconstruct() into a caller-owned vector: bit-identical results, zero
  /// allocations once the vector's capacity is warm. `out` must not alias
  /// `projected`.
  void reconstruct_into(const std::vector<double>& projected, std::vector<double>& out) const;

  std::size_t components() const { return eigenvalues_.size(); }
  std::size_t input_dim() const { return mean_.size(); }

  /// Per-component variance (descending).
  const std::vector<double>& explained_variance() const { return eigenvalues_; }

  /// Fraction of total variance captured by the kept components, in [0, 1].
  double explained_variance_ratio() const;

  const std::vector<double>& feature_mean() const { return mean_; }

  /// Serializes the fitted model (mean, basis, eigenvalues) so a calibrated
  /// detector can ship without its training traces. load() restores a model
  /// whose project()/reconstruct() outputs are bit-identical to the saved one.
  void save(std::ostream& out) const;
  static PcaModel load(std::istream& in);

 private:
  PcaModel() = default;

  std::vector<double> mean_;         // feature means (input_dim)
  linalg::Matrix basis_;             // input_dim x components, orthonormal cols
  std::vector<double> eigenvalues_;  // component variances, descending
  double total_variance_ = 0.0;
};

}  // namespace emts::stats
