#include "stats/separation.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "util/assert.hpp"

namespace emts::stats {

namespace {

// Shared binning covering both samples with a small margin.
std::pair<double, double> shared_range(const std::vector<double>& a,
                                       const std::vector<double>& b) {
  const double lo = std::min(min_value(a), min_value(b));
  const double hi = std::max(max_value(a), max_value(b));
  const double pad = (hi > lo) ? 1e-9 * (hi - lo) : 1.0;
  return {lo, hi + pad};
}

}  // namespace

double overlap_coefficient(const std::vector<double>& a, const std::vector<double>& b,
                           std::size_t bins) {
  EMTS_REQUIRE(!a.empty() && !b.empty(), "overlap requires non-empty samples");
  const auto [lo, hi] = shared_range(a, b);
  Histogram ha{lo, hi, bins};
  Histogram hb{lo, hi, bins};
  ha.add_all(a);
  hb.add_all(b);
  double acc = 0.0;
  for (std::size_t k = 0; k < bins; ++k) {
    const double pa = static_cast<double>(ha.count(k)) / static_cast<double>(ha.total());
    const double pb = static_cast<double>(hb.count(k)) / static_cast<double>(hb.total());
    acc += std::min(pa, pb);
  }
  return acc;
}

double welch_t_statistic(const std::vector<double>& a, const std::vector<double>& b) {
  EMTS_REQUIRE(a.size() >= 2 && b.size() >= 2, "welch_t requires >= 2 samples each");
  const double va = variance(a) / static_cast<double>(a.size());
  const double vb = variance(b) / static_cast<double>(b.size());
  EMTS_REQUIRE(va + vb > 0.0, "welch_t undefined for two constant samples");
  return (mean(a) - mean(b)) / std::sqrt(va + vb);
}

double mode_separation(const std::vector<double>& a, const std::vector<double>& b,
                       std::size_t bins) {
  EMTS_REQUIRE(a.size() >= 2 && b.size() >= 2, "mode_separation requires >= 2 samples each");
  const auto [lo, hi] = shared_range(a, b);
  Histogram ha{lo, hi, bins};
  Histogram hb{lo, hi, bins};
  ha.add_all(a);
  hb.add_all(b);
  const double pooled = std::sqrt(0.5 * (variance(a) + variance(b)));
  if (pooled <= 0.0) return 0.0;
  return std::abs(ha.mode() - hb.mode()) / pooled;
}

double cohens_d(const std::vector<double>& a, const std::vector<double>& b) {
  EMTS_REQUIRE(a.size() >= 2 && b.size() >= 2, "cohens_d requires >= 2 samples each");
  const double pooled = std::sqrt(0.5 * (variance(a) + variance(b)));
  EMTS_REQUIRE(pooled > 0.0, "cohens_d undefined for constant samples");
  return (mean(a) - mean(b)) / pooled;
}

}  // namespace emts::stats
