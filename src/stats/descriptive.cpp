#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace emts::stats {

double mean(const std::vector<double>& v) {
  EMTS_REQUIRE(!v.empty(), "mean of an empty vector");
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  EMTS_REQUIRE(v.size() >= 2, "variance requires at least two samples");
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return acc / static_cast<double>(v.size() - 1);
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double rms(const std::vector<double>& v) {
  EMTS_REQUIRE(!v.empty(), "rms of an empty vector");
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc / static_cast<double>(v.size()));
}

double min_value(const std::vector<double>& v) {
  EMTS_REQUIRE(!v.empty(), "min of an empty vector");
  return *std::min_element(v.begin(), v.end());
}

double max_value(const std::vector<double>& v) {
  EMTS_REQUIRE(!v.empty(), "max of an empty vector");
  return *std::max_element(v.begin(), v.end());
}

double quantile_in_place(std::vector<double>& v, double p) {
  EMTS_REQUIRE(!v.empty(), "quantile of an empty vector");
  EMTS_REQUIRE(p >= 0.0 && p <= 1.0, "quantile p must be in [0, 1]");
  std::sort(v.begin(), v.end());
  const double pos = p * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double median_in_place(std::vector<double>& v) { return quantile_in_place(v, 0.5); }

double quantile(std::vector<double> v, double p) { return quantile_in_place(v, p); }

double median(std::vector<double> v) { return quantile_in_place(v, 0.5); }

double pearson_correlation(const std::vector<double>& a, const std::vector<double>& b) {
  EMTS_REQUIRE(a.size() == b.size() && a.size() >= 2, "correlation: need equal sizes >= 2");
  const double ma = mean(a);
  const double mb = mean(b);
  double sab = 0.0;
  double saa = 0.0;
  double sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  EMTS_REQUIRE(saa > 0.0 && sbb > 0.0, "correlation undefined for constant input");
  return sab / std::sqrt(saa * sbb);
}

}  // namespace emts::stats
