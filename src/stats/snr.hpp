// Signal-to-noise ratio, exactly as the paper measures it (Sec. IV-B and
// Sec. V-A): noise is recorded with the chip powered but idle, signal with
// the encryption running; SNR is the RMS ratio (Eq. 2), reported in dB
// (Eq. 3, 20*log10).
#pragma once

#include <vector>

namespace emts::stats {

/// Eq. 2: RMS(signal) / RMS(noise). Requires non-empty inputs and non-zero
/// noise RMS.
double snr_voltage(const std::vector<double>& signal, const std::vector<double>& noise);

/// Eq. 3: 20 * log10(snr_voltage). Requires positive ratio.
double snr_db_from_voltage_ratio(double snr_voltage_ratio);

/// Convenience composition of Eqs. 2 and 3.
double snr_db(const std::vector<double>& signal, const std::vector<double>& noise);

}  // namespace emts::stats
