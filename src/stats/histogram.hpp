// Fixed-bin histograms; the Fig. 6(a)-(h) reproduction plots Euclidean
// distance histograms for golden vs Trojan-active trace populations.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace emts::stats {

/// Histogram with `bins` equal-width bins over [lo, hi); values outside the
/// range are clamped into the edge bins so counts always sum to the input
/// size.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(const std::vector<double>& values);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const { return total_; }

  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  double bin_center(std::size_t bin) const;

  /// Index of the fullest bin (leftmost on ties).
  std::size_t mode_bin() const;

  /// Value at the center of the fullest bin.
  double mode() const { return bin_center(mode_bin()); }

  /// ASCII rendering: one row per bin, bar length proportional to count.
  /// Width is the bar length of the fullest bin.
  std::string render(std::size_t width = 50) const;

  /// Render two histograms side by side (they must share binning); used for
  /// the golden-vs-Trojan overlays of Fig. 6.
  static std::string render_pair(const Histogram& red, const Histogram& blue,
                                 std::size_t width = 40);

 private:
  std::size_t bin_of(double value) const;

  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace emts::stats
