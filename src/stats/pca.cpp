#include "stats/pca.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/eigen.hpp"
#include "util/assert.hpp"
#include "util/binio.hpp"

namespace emts::stats {

PcaModel PcaModel::fit(const linalg::Matrix& data, std::size_t components) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  EMTS_REQUIRE(n >= 2, "PCA requires at least two observations");
  EMTS_REQUIRE(d >= 1, "PCA requires at least one feature");
  EMTS_REQUIRE(components >= 1, "PCA requires at least one component");

  PcaModel model;
  model.mean_.assign(d, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = data.row_data(i);
    for (std::size_t j = 0; j < d; ++j) model.mean_[j] += row[j];
  }
  for (double& m : model.mean_) m /= static_cast<double>(n);

  linalg::Matrix centered{n, d};
  for (std::size_t i = 0; i < n; ++i) {
    const double* src = data.row_data(i);
    double* dst = centered.row_data(i);
    for (std::size_t j = 0; j < d; ++j) dst[j] = src[j] - model.mean_[j];
  }

  const double denom = static_cast<double>(n - 1);
  const std::size_t rank_cap = std::min(d, n - 1);
  const std::size_t keep = std::min(components, rank_cap);

  if (d <= n) {
    // Covariance path: C = X^T X / (n-1), eigenvectors are the basis directly.
    linalg::Matrix cov{d, d};
    for (std::size_t i = 0; i < n; ++i) {
      const double* row = centered.row_data(i);
      for (std::size_t a = 0; a < d; ++a) {
        const double va = row[a];
        if (va == 0.0) continue;
        double* crow = cov.row_data(a);
        for (std::size_t b = 0; b < d; ++b) crow[b] += va * row[b];
      }
    }
    cov *= 1.0 / denom;

    const auto eig = linalg::symmetric_eigen(cov);
    model.total_variance_ = 0.0;
    for (double v : eig.eigenvalues) model.total_variance_ += std::max(v, 0.0);

    model.basis_ = linalg::Matrix{d, keep};
    model.eigenvalues_.resize(keep);
    for (std::size_t c = 0; c < keep; ++c) {
      model.eigenvalues_[c] = std::max(eig.eigenvalues[c], 0.0);
      for (std::size_t j = 0; j < d; ++j) model.basis_(j, c) = eig.eigenvectors(j, c);
    }
  } else {
    // Gram path: G = X X^T / (n-1); if G u = λ u then v = X^T u / sqrt(λ(n-1))
    // is a unit eigenvector of the covariance with the same eigenvalue.
    linalg::Matrix gram{n, n};
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i; j < n; ++j) {
        const double* ri = centered.row_data(i);
        const double* rj = centered.row_data(j);
        double acc = 0.0;
        for (std::size_t k = 0; k < d; ++k) acc += ri[k] * rj[k];
        gram(i, j) = acc / denom;
        gram(j, i) = gram(i, j);
      }
    }

    const auto eig = linalg::symmetric_eigen(gram);
    model.total_variance_ = 0.0;
    for (double v : eig.eigenvalues) model.total_variance_ += std::max(v, 0.0);

    // Drop numerically null directions.
    std::size_t usable = 0;
    const double floor_eps = 1e-12 * std::max(model.total_variance_, 1e-300);
    while (usable < keep && eig.eigenvalues[usable] > floor_eps) ++usable;
    const std::size_t kept = std::max<std::size_t>(usable, 1);

    model.basis_ = linalg::Matrix{d, kept};
    model.eigenvalues_.resize(kept);
    for (std::size_t c = 0; c < kept; ++c) {
      const double lambda = std::max(eig.eigenvalues[c], floor_eps);
      model.eigenvalues_[c] = lambda;
      const double scale = 1.0 / std::sqrt(lambda * denom);
      for (std::size_t j = 0; j < d; ++j) {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) acc += centered(i, j) * eig.eigenvectors(i, c);
        model.basis_(j, c) = acc * scale;
      }
    }
  }

  return model;
}

std::vector<double> PcaModel::project(const std::vector<double>& sample) const {
  std::vector<double> out;
  project_into(sample, out);
  return out;
}

void PcaModel::project_into(const std::vector<double>& sample, std::vector<double>& out) const {
  EMTS_REQUIRE(sample.size() == input_dim(), "PCA project: dimension mismatch");
  out.assign(components(), 0.0);
  for (std::size_t c = 0; c < components(); ++c) {
    double acc = 0.0;
    for (std::size_t j = 0; j < input_dim(); ++j) {
      acc += (sample[j] - mean_[j]) * basis_(j, c);
    }
    out[c] = acc;
  }
}

linalg::Matrix PcaModel::project_all(const linalg::Matrix& data) const {
  EMTS_REQUIRE(data.cols() == input_dim(), "PCA project_all: dimension mismatch");
  linalg::Matrix out{data.rows(), components()};
  std::vector<double> sample(input_dim());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const double* row = data.row_data(i);
    sample.assign(row, row + input_dim());
    const auto proj = project(sample);
    for (std::size_t c = 0; c < components(); ++c) out(i, c) = proj[c];
  }
  return out;
}

std::vector<double> PcaModel::reconstruct(const std::vector<double>& projected) const {
  std::vector<double> out;
  reconstruct_into(projected, out);
  return out;
}

void PcaModel::reconstruct_into(const std::vector<double>& projected,
                                std::vector<double>& out) const {
  EMTS_REQUIRE(projected.size() == components(), "PCA reconstruct: dimension mismatch");
  out.assign(mean_.begin(), mean_.end());
  for (std::size_t j = 0; j < input_dim(); ++j) {
    double acc = 0.0;
    for (std::size_t c = 0; c < components(); ++c) acc += basis_(j, c) * projected[c];
    out[j] += acc;
  }
}

void PcaModel::save(std::ostream& out) const {
  util::write_u64(out, input_dim());
  util::write_u64(out, components());
  util::write_f64(out, total_variance_);
  util::write_f64_vec(out, mean_);
  util::write_f64_vec(out, eigenvalues_);
  for (std::size_t j = 0; j < input_dim(); ++j) {
    for (std::size_t c = 0; c < components(); ++c) util::write_f64(out, basis_(j, c));
  }
}

PcaModel PcaModel::load(std::istream& in) {
  const std::uint64_t d = util::read_u64(in);
  const std::uint64_t k = util::read_u64(in);
  EMTS_REQUIRE(d >= 1 && k >= 1, "PCA load: empty model");
  EMTS_REQUIRE(d < (1ull << 32) && k <= d, "PCA load: implausible dimensions");

  PcaModel model;
  model.total_variance_ = util::read_f64(in);
  model.mean_ = util::read_f64_vec(in);
  model.eigenvalues_ = util::read_f64_vec(in);
  EMTS_REQUIRE(model.mean_.size() == d, "PCA load: mean size mismatch");
  EMTS_REQUIRE(model.eigenvalues_.size() == k, "PCA load: eigenvalue count mismatch");
  model.basis_ = linalg::Matrix{d, k};
  for (std::size_t j = 0; j < d; ++j) {
    for (std::size_t c = 0; c < k; ++c) model.basis_(j, c) = util::read_f64(in);
  }
  return model;
}

double PcaModel::explained_variance_ratio() const {
  if (total_variance_ <= 0.0) return 0.0;
  double kept = 0.0;
  for (double v : eigenvalues_) kept += v;
  return std::min(kept / total_variance_, 1.0);
}

}  // namespace emts::stats
