#include "stats/snr.hpp"

#include <cmath>

#include "stats/descriptive.hpp"
#include "util/assert.hpp"

namespace emts::stats {

double snr_voltage(const std::vector<double>& signal, const std::vector<double>& noise) {
  const double noise_rms = rms(noise);
  EMTS_REQUIRE(noise_rms > 0.0, "SNR undefined: zero noise RMS");
  return rms(signal) / noise_rms;
}

double snr_db_from_voltage_ratio(double snr_voltage_ratio) {
  EMTS_REQUIRE(snr_voltage_ratio > 0.0, "SNR ratio must be positive");
  return 20.0 * std::log10(snr_voltage_ratio);
}

double snr_db(const std::vector<double>& signal, const std::vector<double>& noise) {
  return snr_db_from_voltage_ratio(snr_voltage(signal, noise));
}

}  // namespace emts::stats
