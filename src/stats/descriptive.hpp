// Descriptive statistics over sample vectors.
#pragma once

#include <cstddef>
#include <vector>

namespace emts::stats {

double mean(const std::vector<double>& v);

/// Unbiased sample variance (n-1 denominator); requires v.size() >= 2.
double variance(const std::vector<double>& v);

double stddev(const std::vector<double>& v);

/// Root mean square; the paper's SNR definition (Eq. 2) is an RMS ratio.
double rms(const std::vector<double>& v);

double min_value(const std::vector<double>& v);
double max_value(const std::vector<double>& v);

/// p-quantile via linear interpolation of the sorted order statistics,
/// p in [0, 1].
double quantile(std::vector<double> v, double p);

double median(std::vector<double> v);

/// In-place forms: sort the caller's buffer instead of copying it, so a hot
/// loop can reuse one scratch vector with zero allocations. Results are
/// bit-identical to quantile()/median() on the same values.
double quantile_in_place(std::vector<double>& v, double p);
double median_in_place(std::vector<double>& v);

/// Pearson correlation coefficient; requires equal sizes >= 2 and non-zero
/// variance in both inputs.
double pearson_correlation(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace emts::stats
