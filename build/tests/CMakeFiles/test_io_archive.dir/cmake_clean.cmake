file(REMOVE_RECURSE
  "CMakeFiles/test_io_archive.dir/test_trace_archive.cpp.o"
  "CMakeFiles/test_io_archive.dir/test_trace_archive.cpp.o.d"
  "test_io_archive"
  "test_io_archive.pdb"
  "test_io_archive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
