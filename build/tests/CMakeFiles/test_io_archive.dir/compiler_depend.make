# Empty compiler generated dependencies file for test_io_archive.
# This may be replaced when dependencies are built.
