
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_demod.cpp" "tests/CMakeFiles/test_dsp.dir/test_demod.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/test_demod.cpp.o.d"
  "/root/repo/tests/test_fft.cpp" "tests/CMakeFiles/test_dsp.dir/test_fft.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/test_fft.cpp.o.d"
  "/root/repo/tests/test_filter.cpp" "tests/CMakeFiles/test_dsp.dir/test_filter.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/test_filter.cpp.o.d"
  "/root/repo/tests/test_resample.cpp" "tests/CMakeFiles/test_dsp.dir/test_resample.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/test_resample.cpp.o.d"
  "/root/repo/tests/test_spectrum.cpp" "tests/CMakeFiles/test_dsp.dir/test_spectrum.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/test_spectrum.cpp.o.d"
  "/root/repo/tests/test_stft.cpp" "tests/CMakeFiles/test_dsp.dir/test_stft.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/test_stft.cpp.o.d"
  "/root/repo/tests/test_window.cpp" "tests/CMakeFiles/test_dsp.dir/test_window.cpp.o" "gcc" "tests/CMakeFiles/test_dsp.dir/test_window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsp/CMakeFiles/emsentry_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emsentry_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
