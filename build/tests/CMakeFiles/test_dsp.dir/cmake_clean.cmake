file(REMOVE_RECURSE
  "CMakeFiles/test_dsp.dir/test_demod.cpp.o"
  "CMakeFiles/test_dsp.dir/test_demod.cpp.o.d"
  "CMakeFiles/test_dsp.dir/test_fft.cpp.o"
  "CMakeFiles/test_dsp.dir/test_fft.cpp.o.d"
  "CMakeFiles/test_dsp.dir/test_filter.cpp.o"
  "CMakeFiles/test_dsp.dir/test_filter.cpp.o.d"
  "CMakeFiles/test_dsp.dir/test_resample.cpp.o"
  "CMakeFiles/test_dsp.dir/test_resample.cpp.o.d"
  "CMakeFiles/test_dsp.dir/test_spectrum.cpp.o"
  "CMakeFiles/test_dsp.dir/test_spectrum.cpp.o.d"
  "CMakeFiles/test_dsp.dir/test_stft.cpp.o"
  "CMakeFiles/test_dsp.dir/test_stft.cpp.o.d"
  "CMakeFiles/test_dsp.dir/test_window.cpp.o"
  "CMakeFiles/test_dsp.dir/test_window.cpp.o.d"
  "test_dsp"
  "test_dsp.pdb"
  "test_dsp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
