file(REMOVE_RECURSE
  "CMakeFiles/test_aes.dir/test_aes128.cpp.o"
  "CMakeFiles/test_aes.dir/test_aes128.cpp.o.d"
  "CMakeFiles/test_aes.dir/test_aes_activity.cpp.o"
  "CMakeFiles/test_aes.dir/test_aes_activity.cpp.o.d"
  "CMakeFiles/test_aes.dir/test_aes_core_netlist.cpp.o"
  "CMakeFiles/test_aes.dir/test_aes_core_netlist.cpp.o.d"
  "CMakeFiles/test_aes.dir/test_datapath_netlist.cpp.o"
  "CMakeFiles/test_aes.dir/test_datapath_netlist.cpp.o.d"
  "test_aes"
  "test_aes.pdb"
  "test_aes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
