file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/test_descriptive.cpp.o"
  "CMakeFiles/test_stats.dir/test_descriptive.cpp.o.d"
  "CMakeFiles/test_stats.dir/test_histogram.cpp.o"
  "CMakeFiles/test_stats.dir/test_histogram.cpp.o.d"
  "CMakeFiles/test_stats.dir/test_pca.cpp.o"
  "CMakeFiles/test_stats.dir/test_pca.cpp.o.d"
  "CMakeFiles/test_stats.dir/test_separation.cpp.o"
  "CMakeFiles/test_stats.dir/test_separation.cpp.o.d"
  "CMakeFiles/test_stats.dir/test_snr.cpp.o"
  "CMakeFiles/test_stats.dir/test_snr.cpp.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
