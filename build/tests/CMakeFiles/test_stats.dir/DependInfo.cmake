
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_descriptive.cpp" "tests/CMakeFiles/test_stats.dir/test_descriptive.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_descriptive.cpp.o.d"
  "/root/repo/tests/test_histogram.cpp" "tests/CMakeFiles/test_stats.dir/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_histogram.cpp.o.d"
  "/root/repo/tests/test_pca.cpp" "tests/CMakeFiles/test_stats.dir/test_pca.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_pca.cpp.o.d"
  "/root/repo/tests/test_separation.cpp" "tests/CMakeFiles/test_stats.dir/test_separation.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_separation.cpp.o.d"
  "/root/repo/tests/test_snr.cpp" "tests/CMakeFiles/test_stats.dir/test_snr.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/test_snr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/emsentry_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/emsentry_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emsentry_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
