file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_core_trace.cpp.o"
  "CMakeFiles/test_core.dir/test_core_trace.cpp.o.d"
  "CMakeFiles/test_core.dir/test_detector_options.cpp.o"
  "CMakeFiles/test_core.dir/test_detector_options.cpp.o.d"
  "CMakeFiles/test_core.dir/test_detectors.cpp.o"
  "CMakeFiles/test_core.dir/test_detectors.cpp.o.d"
  "CMakeFiles/test_core.dir/test_leakage.cpp.o"
  "CMakeFiles/test_core.dir/test_leakage.cpp.o.d"
  "CMakeFiles/test_core.dir/test_monitor.cpp.o"
  "CMakeFiles/test_core.dir/test_monitor.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
