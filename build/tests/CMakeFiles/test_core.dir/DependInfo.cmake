
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core_trace.cpp" "tests/CMakeFiles/test_core.dir/test_core_trace.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core_trace.cpp.o.d"
  "/root/repo/tests/test_detector_options.cpp" "tests/CMakeFiles/test_core.dir/test_detector_options.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_detector_options.cpp.o.d"
  "/root/repo/tests/test_detectors.cpp" "tests/CMakeFiles/test_core.dir/test_detectors.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_detectors.cpp.o.d"
  "/root/repo/tests/test_leakage.cpp" "tests/CMakeFiles/test_core.dir/test_leakage.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_leakage.cpp.o.d"
  "/root/repo/tests/test_monitor.cpp" "tests/CMakeFiles/test_core.dir/test_monitor.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/emsentry_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/emsentry_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/emsentry_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/emsentry_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emsentry_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
