# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_dsp[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_netlist[1]_include.cmake")
include("/root/repo/build/tests/test_timing[1]_include.cmake")
include("/root/repo/build/tests/test_aes[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_em[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_trojan[1]_include.cmake")
include("/root/repo/build/tests/test_sensor[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_io_archive[1]_include.cmake")
include("/root/repo/build/tests/test_attack[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
