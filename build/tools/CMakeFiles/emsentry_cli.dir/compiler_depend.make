# Empty compiler generated dependencies file for emsentry_cli.
# This may be replaced when dependencies are built.
