file(REMOVE_RECURSE
  "CMakeFiles/emsentry_cli.dir/emsentry_cli.cpp.o"
  "CMakeFiles/emsentry_cli.dir/emsentry_cli.cpp.o.d"
  "emsentry_cli"
  "emsentry_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsentry_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
