file(REMOVE_RECURSE
  "CMakeFiles/table1_trojan_sizes.dir/bench/table1_trojan_sizes.cpp.o"
  "CMakeFiles/table1_trojan_sizes.dir/bench/table1_trojan_sizes.cpp.o.d"
  "bench/table1_trojan_sizes"
  "bench/table1_trojan_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_trojan_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
