# Empty dependencies file for table1_trojan_sizes.
# This may be replaced when dependencies are built.
