# Empty compiler generated dependencies file for ext_sensor_tamper.
# This may be replaced when dependencies are built.
