file(REMOVE_RECURSE
  "CMakeFiles/ext_sensor_tamper.dir/bench/ext_sensor_tamper.cpp.o"
  "CMakeFiles/ext_sensor_tamper.dir/bench/ext_sensor_tamper.cpp.o.d"
  "bench/ext_sensor_tamper"
  "bench/ext_sensor_tamper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sensor_tamper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
