# Empty dependencies file for sec4c_euclidean_distances.
# This may be replaced when dependencies are built.
