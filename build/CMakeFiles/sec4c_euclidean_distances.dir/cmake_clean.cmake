file(REMOVE_RECURSE
  "CMakeFiles/sec4c_euclidean_distances.dir/bench/sec4c_euclidean_distances.cpp.o"
  "CMakeFiles/sec4c_euclidean_distances.dir/bench/sec4c_euclidean_distances.cpp.o.d"
  "bench/sec4c_euclidean_distances"
  "bench/sec4c_euclidean_distances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4c_euclidean_distances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
