file(REMOVE_RECURSE
  "CMakeFiles/ablation_threshold.dir/bench/ablation_threshold.cpp.o"
  "CMakeFiles/ablation_threshold.dir/bench/ablation_threshold.cpp.o.d"
  "bench/ablation_threshold"
  "bench/ablation_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
