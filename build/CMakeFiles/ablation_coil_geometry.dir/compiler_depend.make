# Empty compiler generated dependencies file for ablation_coil_geometry.
# This may be replaced when dependencies are built.
