file(REMOVE_RECURSE
  "CMakeFiles/ablation_coil_geometry.dir/bench/ablation_coil_geometry.cpp.o"
  "CMakeFiles/ablation_coil_geometry.dir/bench/ablation_coil_geometry.cpp.o.d"
  "bench/ablation_coil_geometry"
  "bench/ablation_coil_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coil_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
