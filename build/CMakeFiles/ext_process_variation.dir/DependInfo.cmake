
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_process_variation.cpp" "CMakeFiles/ext_process_variation.dir/bench/ext_process_variation.cpp.o" "gcc" "CMakeFiles/ext_process_variation.dir/bench/ext_process_variation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/emsentry_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/emsentry_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/emsentry_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/em/CMakeFiles/emsentry_em.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/emsentry_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/trojan/CMakeFiles/emsentry_trojan.dir/DependInfo.cmake"
  "/root/repo/build/src/aes/CMakeFiles/emsentry_aes.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/emsentry_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/emsentry_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sensor/CMakeFiles/emsentry_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/emsentry_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emsentry_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/emsentry_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/emsentry_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/emsentry_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/emsentry_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
