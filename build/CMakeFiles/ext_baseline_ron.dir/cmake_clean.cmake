file(REMOVE_RECURSE
  "CMakeFiles/ext_baseline_ron.dir/bench/ext_baseline_ron.cpp.o"
  "CMakeFiles/ext_baseline_ron.dir/bench/ext_baseline_ron.cpp.o.d"
  "bench/ext_baseline_ron"
  "bench/ext_baseline_ron.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_baseline_ron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
