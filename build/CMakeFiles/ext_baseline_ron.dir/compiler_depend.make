# Empty compiler generated dependencies file for ext_baseline_ron.
# This may be replaced when dependencies are built.
