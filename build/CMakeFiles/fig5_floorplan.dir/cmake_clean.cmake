file(REMOVE_RECURSE
  "CMakeFiles/fig5_floorplan.dir/bench/fig5_floorplan.cpp.o"
  "CMakeFiles/fig5_floorplan.dir/bench/fig5_floorplan.cpp.o.d"
  "bench/fig5_floorplan"
  "bench/fig5_floorplan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_floorplan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
