# Empty dependencies file for fig5_floorplan.
# This may be replaced when dependencies are built.
