# Empty dependencies file for sec5a_snr_measured.
# This may be replaced when dependencies are built.
