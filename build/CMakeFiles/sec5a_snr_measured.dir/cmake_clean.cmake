file(REMOVE_RECURSE
  "CMakeFiles/sec5a_snr_measured.dir/bench/sec5a_snr_measured.cpp.o"
  "CMakeFiles/sec5a_snr_measured.dir/bench/sec5a_snr_measured.cpp.o.d"
  "bench/sec5a_snr_measured"
  "bench/sec5a_snr_measured.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5a_snr_measured.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
