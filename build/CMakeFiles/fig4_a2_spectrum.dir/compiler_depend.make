# Empty compiler generated dependencies file for fig4_a2_spectrum.
# This may be replaced when dependencies are built.
