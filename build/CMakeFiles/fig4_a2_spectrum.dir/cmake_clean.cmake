file(REMOVE_RECURSE
  "CMakeFiles/fig4_a2_spectrum.dir/bench/fig4_a2_spectrum.cpp.o"
  "CMakeFiles/fig4_a2_spectrum.dir/bench/fig4_a2_spectrum.cpp.o.d"
  "bench/fig4_a2_spectrum"
  "bench/fig4_a2_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_a2_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
