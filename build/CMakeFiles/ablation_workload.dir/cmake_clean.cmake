file(REMOVE_RECURSE
  "CMakeFiles/ablation_workload.dir/bench/ablation_workload.cpp.o"
  "CMakeFiles/ablation_workload.dir/bench/ablation_workload.cpp.o.d"
  "bench/ablation_workload"
  "bench/ablation_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
