file(REMOVE_RECURSE
  "CMakeFiles/ext_roc_detection.dir/bench/ext_roc_detection.cpp.o"
  "CMakeFiles/ext_roc_detection.dir/bench/ext_roc_detection.cpp.o.d"
  "bench/ext_roc_detection"
  "bench/ext_roc_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_roc_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
