# Empty dependencies file for ext_roc_detection.
# This may be replaced when dependencies are built.
