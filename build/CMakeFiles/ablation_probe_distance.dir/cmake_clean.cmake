file(REMOVE_RECURSE
  "CMakeFiles/ablation_probe_distance.dir/bench/ablation_probe_distance.cpp.o"
  "CMakeFiles/ablation_probe_distance.dir/bench/ablation_probe_distance.cpp.o.d"
  "bench/ablation_probe_distance"
  "bench/ablation_probe_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_probe_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
