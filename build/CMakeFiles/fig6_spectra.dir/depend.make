# Empty dependencies file for fig6_spectra.
# This may be replaced when dependencies are built.
