file(REMOVE_RECURSE
  "CMakeFiles/fig6_spectra.dir/bench/fig6_spectra.cpp.o"
  "CMakeFiles/fig6_spectra.dir/bench/fig6_spectra.cpp.o.d"
  "bench/fig6_spectra"
  "bench/fig6_spectra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_spectra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
