file(REMOVE_RECURSE
  "CMakeFiles/ext_localization.dir/bench/ext_localization.cpp.o"
  "CMakeFiles/ext_localization.dir/bench/ext_localization.cpp.o.d"
  "bench/ext_localization"
  "bench/ext_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
