# Empty dependencies file for ablation_pca_dims.
# This may be replaced when dependencies are built.
