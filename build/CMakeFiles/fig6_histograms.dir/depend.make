# Empty dependencies file for fig6_histograms.
# This may be replaced when dependencies are built.
