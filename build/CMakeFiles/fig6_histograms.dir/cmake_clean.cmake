file(REMOVE_RECURSE
  "CMakeFiles/fig6_histograms.dir/bench/fig6_histograms.cpp.o"
  "CMakeFiles/fig6_histograms.dir/bench/fig6_histograms.cpp.o.d"
  "bench/fig6_histograms"
  "bench/fig6_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
