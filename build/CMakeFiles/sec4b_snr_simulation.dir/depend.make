# Empty dependencies file for sec4b_snr_simulation.
# This may be replaced when dependencies are built.
