file(REMOVE_RECURSE
  "CMakeFiles/sec4b_snr_simulation.dir/bench/sec4b_snr_simulation.cpp.o"
  "CMakeFiles/sec4b_snr_simulation.dir/bench/sec4b_snr_simulation.cpp.o.d"
  "bench/sec4b_snr_simulation"
  "bench/sec4b_snr_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4b_snr_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
