# Empty compiler generated dependencies file for leakage_assessment.
# This may be replaced when dependencies are built.
