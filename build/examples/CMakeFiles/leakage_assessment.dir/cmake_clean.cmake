file(REMOVE_RECURSE
  "CMakeFiles/leakage_assessment.dir/leakage_assessment.cpp.o"
  "CMakeFiles/leakage_assessment.dir/leakage_assessment.cpp.o.d"
  "leakage_assessment"
  "leakage_assessment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakage_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
