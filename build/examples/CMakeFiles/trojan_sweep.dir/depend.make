# Empty dependencies file for trojan_sweep.
# This may be replaced when dependencies are built.
