file(REMOVE_RECURSE
  "CMakeFiles/trojan_sweep.dir/trojan_sweep.cpp.o"
  "CMakeFiles/trojan_sweep.dir/trojan_sweep.cpp.o.d"
  "trojan_sweep"
  "trojan_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trojan_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
