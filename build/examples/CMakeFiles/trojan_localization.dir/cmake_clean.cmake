file(REMOVE_RECURSE
  "CMakeFiles/trojan_localization.dir/trojan_localization.cpp.o"
  "CMakeFiles/trojan_localization.dir/trojan_localization.cpp.o.d"
  "trojan_localization"
  "trojan_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trojan_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
