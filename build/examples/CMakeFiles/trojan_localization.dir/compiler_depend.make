# Empty compiler generated dependencies file for trojan_localization.
# This may be replaced when dependencies are built.
