# Empty dependencies file for activation_timing.
# This may be replaced when dependencies are built.
