file(REMOVE_RECURSE
  "CMakeFiles/activation_timing.dir/activation_timing.cpp.o"
  "CMakeFiles/activation_timing.dir/activation_timing.cpp.o.d"
  "activation_timing"
  "activation_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activation_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
