# Empty dependencies file for cpa_attack.
# This may be replaced when dependencies are built.
