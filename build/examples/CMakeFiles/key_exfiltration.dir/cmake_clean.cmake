file(REMOVE_RECURSE
  "CMakeFiles/key_exfiltration.dir/key_exfiltration.cpp.o"
  "CMakeFiles/key_exfiltration.dir/key_exfiltration.cpp.o.d"
  "key_exfiltration"
  "key_exfiltration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_exfiltration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
