# Empty dependencies file for key_exfiltration.
# This may be replaced when dependencies are built.
