file(REMOVE_RECURSE
  "CMakeFiles/sensor_design_space.dir/sensor_design_space.cpp.o"
  "CMakeFiles/sensor_design_space.dir/sensor_design_space.cpp.o.d"
  "sensor_design_space"
  "sensor_design_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
