# Empty compiler generated dependencies file for sensor_design_space.
# This may be replaced when dependencies are built.
