# Empty compiler generated dependencies file for emsentry_sensor.
# This may be replaced when dependencies are built.
