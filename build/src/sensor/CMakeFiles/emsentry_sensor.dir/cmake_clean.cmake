file(REMOVE_RECURSE
  "CMakeFiles/emsentry_sensor.dir/measurement.cpp.o"
  "CMakeFiles/emsentry_sensor.dir/measurement.cpp.o.d"
  "libemsentry_sensor.a"
  "libemsentry_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsentry_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
