file(REMOVE_RECURSE
  "libemsentry_sensor.a"
)
