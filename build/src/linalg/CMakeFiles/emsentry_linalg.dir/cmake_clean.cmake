file(REMOVE_RECURSE
  "CMakeFiles/emsentry_linalg.dir/eigen.cpp.o"
  "CMakeFiles/emsentry_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/emsentry_linalg.dir/matrix.cpp.o"
  "CMakeFiles/emsentry_linalg.dir/matrix.cpp.o.d"
  "libemsentry_linalg.a"
  "libemsentry_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsentry_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
