# Empty compiler generated dependencies file for emsentry_linalg.
# This may be replaced when dependencies are built.
