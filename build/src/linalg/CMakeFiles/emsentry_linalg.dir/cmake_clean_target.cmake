file(REMOVE_RECURSE
  "libemsentry_linalg.a"
)
