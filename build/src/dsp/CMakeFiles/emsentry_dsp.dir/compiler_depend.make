# Empty compiler generated dependencies file for emsentry_dsp.
# This may be replaced when dependencies are built.
