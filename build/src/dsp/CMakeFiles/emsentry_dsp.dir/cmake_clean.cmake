file(REMOVE_RECURSE
  "CMakeFiles/emsentry_dsp.dir/demod.cpp.o"
  "CMakeFiles/emsentry_dsp.dir/demod.cpp.o.d"
  "CMakeFiles/emsentry_dsp.dir/fft.cpp.o"
  "CMakeFiles/emsentry_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/emsentry_dsp.dir/filter.cpp.o"
  "CMakeFiles/emsentry_dsp.dir/filter.cpp.o.d"
  "CMakeFiles/emsentry_dsp.dir/resample.cpp.o"
  "CMakeFiles/emsentry_dsp.dir/resample.cpp.o.d"
  "CMakeFiles/emsentry_dsp.dir/spectrum.cpp.o"
  "CMakeFiles/emsentry_dsp.dir/spectrum.cpp.o.d"
  "CMakeFiles/emsentry_dsp.dir/stft.cpp.o"
  "CMakeFiles/emsentry_dsp.dir/stft.cpp.o.d"
  "CMakeFiles/emsentry_dsp.dir/window.cpp.o"
  "CMakeFiles/emsentry_dsp.dir/window.cpp.o.d"
  "libemsentry_dsp.a"
  "libemsentry_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsentry_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
