file(REMOVE_RECURSE
  "libemsentry_dsp.a"
)
