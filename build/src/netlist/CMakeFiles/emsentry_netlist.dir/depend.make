# Empty dependencies file for emsentry_netlist.
# This may be replaced when dependencies are built.
