
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/builders.cpp" "src/netlist/CMakeFiles/emsentry_netlist.dir/builders.cpp.o" "gcc" "src/netlist/CMakeFiles/emsentry_netlist.dir/builders.cpp.o.d"
  "/root/repo/src/netlist/cell.cpp" "src/netlist/CMakeFiles/emsentry_netlist.dir/cell.cpp.o" "gcc" "src/netlist/CMakeFiles/emsentry_netlist.dir/cell.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/emsentry_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/emsentry_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/netlist/simulator.cpp" "src/netlist/CMakeFiles/emsentry_netlist.dir/simulator.cpp.o" "gcc" "src/netlist/CMakeFiles/emsentry_netlist.dir/simulator.cpp.o.d"
  "/root/repo/src/netlist/synth.cpp" "src/netlist/CMakeFiles/emsentry_netlist.dir/synth.cpp.o" "gcc" "src/netlist/CMakeFiles/emsentry_netlist.dir/synth.cpp.o.d"
  "/root/repo/src/netlist/timing.cpp" "src/netlist/CMakeFiles/emsentry_netlist.dir/timing.cpp.o" "gcc" "src/netlist/CMakeFiles/emsentry_netlist.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/emsentry_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
