file(REMOVE_RECURSE
  "CMakeFiles/emsentry_netlist.dir/builders.cpp.o"
  "CMakeFiles/emsentry_netlist.dir/builders.cpp.o.d"
  "CMakeFiles/emsentry_netlist.dir/cell.cpp.o"
  "CMakeFiles/emsentry_netlist.dir/cell.cpp.o.d"
  "CMakeFiles/emsentry_netlist.dir/netlist.cpp.o"
  "CMakeFiles/emsentry_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/emsentry_netlist.dir/simulator.cpp.o"
  "CMakeFiles/emsentry_netlist.dir/simulator.cpp.o.d"
  "CMakeFiles/emsentry_netlist.dir/synth.cpp.o"
  "CMakeFiles/emsentry_netlist.dir/synth.cpp.o.d"
  "CMakeFiles/emsentry_netlist.dir/timing.cpp.o"
  "CMakeFiles/emsentry_netlist.dir/timing.cpp.o.d"
  "libemsentry_netlist.a"
  "libemsentry_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsentry_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
