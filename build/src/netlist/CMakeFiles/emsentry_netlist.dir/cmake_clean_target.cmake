file(REMOVE_RECURSE
  "libemsentry_netlist.a"
)
