file(REMOVE_RECURSE
  "libemsentry_core.a"
)
