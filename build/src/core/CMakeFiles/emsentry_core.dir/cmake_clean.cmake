file(REMOVE_RECURSE
  "CMakeFiles/emsentry_core.dir/euclidean.cpp.o"
  "CMakeFiles/emsentry_core.dir/euclidean.cpp.o.d"
  "CMakeFiles/emsentry_core.dir/evaluator.cpp.o"
  "CMakeFiles/emsentry_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/emsentry_core.dir/leakage.cpp.o"
  "CMakeFiles/emsentry_core.dir/leakage.cpp.o.d"
  "CMakeFiles/emsentry_core.dir/monitor.cpp.o"
  "CMakeFiles/emsentry_core.dir/monitor.cpp.o.d"
  "CMakeFiles/emsentry_core.dir/preprocess.cpp.o"
  "CMakeFiles/emsentry_core.dir/preprocess.cpp.o.d"
  "CMakeFiles/emsentry_core.dir/spectral.cpp.o"
  "CMakeFiles/emsentry_core.dir/spectral.cpp.o.d"
  "CMakeFiles/emsentry_core.dir/trace.cpp.o"
  "CMakeFiles/emsentry_core.dir/trace.cpp.o.d"
  "libemsentry_core.a"
  "libemsentry_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsentry_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
