# Empty dependencies file for emsentry_core.
# This may be replaced when dependencies are built.
