
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/euclidean.cpp" "src/core/CMakeFiles/emsentry_core.dir/euclidean.cpp.o" "gcc" "src/core/CMakeFiles/emsentry_core.dir/euclidean.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/core/CMakeFiles/emsentry_core.dir/evaluator.cpp.o" "gcc" "src/core/CMakeFiles/emsentry_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/core/leakage.cpp" "src/core/CMakeFiles/emsentry_core.dir/leakage.cpp.o" "gcc" "src/core/CMakeFiles/emsentry_core.dir/leakage.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/emsentry_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/emsentry_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/preprocess.cpp" "src/core/CMakeFiles/emsentry_core.dir/preprocess.cpp.o" "gcc" "src/core/CMakeFiles/emsentry_core.dir/preprocess.cpp.o.d"
  "/root/repo/src/core/spectral.cpp" "src/core/CMakeFiles/emsentry_core.dir/spectral.cpp.o" "gcc" "src/core/CMakeFiles/emsentry_core.dir/spectral.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/emsentry_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/emsentry_core.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/emsentry_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/emsentry_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/emsentry_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/emsentry_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
