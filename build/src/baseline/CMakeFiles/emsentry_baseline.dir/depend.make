# Empty dependencies file for emsentry_baseline.
# This may be replaced when dependencies are built.
