file(REMOVE_RECURSE
  "libemsentry_baseline.a"
)
