file(REMOVE_RECURSE
  "CMakeFiles/emsentry_baseline.dir/ron.cpp.o"
  "CMakeFiles/emsentry_baseline.dir/ron.cpp.o.d"
  "libemsentry_baseline.a"
  "libemsentry_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsentry_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
