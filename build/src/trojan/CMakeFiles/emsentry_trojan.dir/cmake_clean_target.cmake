file(REMOVE_RECURSE
  "libemsentry_trojan.a"
)
