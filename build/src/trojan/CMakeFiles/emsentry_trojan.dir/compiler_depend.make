# Empty compiler generated dependencies file for emsentry_trojan.
# This may be replaced when dependencies are built.
