
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trojan/a2_analog.cpp" "src/trojan/CMakeFiles/emsentry_trojan.dir/a2_analog.cpp.o" "gcc" "src/trojan/CMakeFiles/emsentry_trojan.dir/a2_analog.cpp.o.d"
  "/root/repo/src/trojan/t1_am_leak.cpp" "src/trojan/CMakeFiles/emsentry_trojan.dir/t1_am_leak.cpp.o" "gcc" "src/trojan/CMakeFiles/emsentry_trojan.dir/t1_am_leak.cpp.o.d"
  "/root/repo/src/trojan/t2_leakage.cpp" "src/trojan/CMakeFiles/emsentry_trojan.dir/t2_leakage.cpp.o" "gcc" "src/trojan/CMakeFiles/emsentry_trojan.dir/t2_leakage.cpp.o.d"
  "/root/repo/src/trojan/t3_cdma.cpp" "src/trojan/CMakeFiles/emsentry_trojan.dir/t3_cdma.cpp.o" "gcc" "src/trojan/CMakeFiles/emsentry_trojan.dir/t3_cdma.cpp.o.d"
  "/root/repo/src/trojan/t4_power_hog.cpp" "src/trojan/CMakeFiles/emsentry_trojan.dir/t4_power_hog.cpp.o" "gcc" "src/trojan/CMakeFiles/emsentry_trojan.dir/t4_power_hog.cpp.o.d"
  "/root/repo/src/trojan/trojan.cpp" "src/trojan/CMakeFiles/emsentry_trojan.dir/trojan.cpp.o" "gcc" "src/trojan/CMakeFiles/emsentry_trojan.dir/trojan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/emsentry_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/emsentry_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/aes/CMakeFiles/emsentry_aes.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/emsentry_power.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/emsentry_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
