file(REMOVE_RECURSE
  "CMakeFiles/emsentry_trojan.dir/a2_analog.cpp.o"
  "CMakeFiles/emsentry_trojan.dir/a2_analog.cpp.o.d"
  "CMakeFiles/emsentry_trojan.dir/t1_am_leak.cpp.o"
  "CMakeFiles/emsentry_trojan.dir/t1_am_leak.cpp.o.d"
  "CMakeFiles/emsentry_trojan.dir/t2_leakage.cpp.o"
  "CMakeFiles/emsentry_trojan.dir/t2_leakage.cpp.o.d"
  "CMakeFiles/emsentry_trojan.dir/t3_cdma.cpp.o"
  "CMakeFiles/emsentry_trojan.dir/t3_cdma.cpp.o.d"
  "CMakeFiles/emsentry_trojan.dir/t4_power_hog.cpp.o"
  "CMakeFiles/emsentry_trojan.dir/t4_power_hog.cpp.o.d"
  "CMakeFiles/emsentry_trojan.dir/trojan.cpp.o"
  "CMakeFiles/emsentry_trojan.dir/trojan.cpp.o.d"
  "libemsentry_trojan.a"
  "libemsentry_trojan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsentry_trojan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
