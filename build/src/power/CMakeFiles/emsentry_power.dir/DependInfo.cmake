
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/clock.cpp" "src/power/CMakeFiles/emsentry_power.dir/clock.cpp.o" "gcc" "src/power/CMakeFiles/emsentry_power.dir/clock.cpp.o.d"
  "/root/repo/src/power/current_trace.cpp" "src/power/CMakeFiles/emsentry_power.dir/current_trace.cpp.o" "gcc" "src/power/CMakeFiles/emsentry_power.dir/current_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/emsentry_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/emsentry_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
