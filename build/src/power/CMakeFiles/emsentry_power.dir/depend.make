# Empty dependencies file for emsentry_power.
# This may be replaced when dependencies are built.
