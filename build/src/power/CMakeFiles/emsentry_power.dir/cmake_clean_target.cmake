file(REMOVE_RECURSE
  "libemsentry_power.a"
)
