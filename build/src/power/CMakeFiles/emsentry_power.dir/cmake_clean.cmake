file(REMOVE_RECURSE
  "CMakeFiles/emsentry_power.dir/clock.cpp.o"
  "CMakeFiles/emsentry_power.dir/clock.cpp.o.d"
  "CMakeFiles/emsentry_power.dir/current_trace.cpp.o"
  "CMakeFiles/emsentry_power.dir/current_trace.cpp.o.d"
  "libemsentry_power.a"
  "libemsentry_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsentry_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
