file(REMOVE_RECURSE
  "CMakeFiles/emsentry_stats.dir/descriptive.cpp.o"
  "CMakeFiles/emsentry_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/emsentry_stats.dir/histogram.cpp.o"
  "CMakeFiles/emsentry_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/emsentry_stats.dir/pca.cpp.o"
  "CMakeFiles/emsentry_stats.dir/pca.cpp.o.d"
  "CMakeFiles/emsentry_stats.dir/separation.cpp.o"
  "CMakeFiles/emsentry_stats.dir/separation.cpp.o.d"
  "CMakeFiles/emsentry_stats.dir/snr.cpp.o"
  "CMakeFiles/emsentry_stats.dir/snr.cpp.o.d"
  "libemsentry_stats.a"
  "libemsentry_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsentry_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
