
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/emsentry_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/emsentry_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/emsentry_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/emsentry_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/pca.cpp" "src/stats/CMakeFiles/emsentry_stats.dir/pca.cpp.o" "gcc" "src/stats/CMakeFiles/emsentry_stats.dir/pca.cpp.o.d"
  "/root/repo/src/stats/separation.cpp" "src/stats/CMakeFiles/emsentry_stats.dir/separation.cpp.o" "gcc" "src/stats/CMakeFiles/emsentry_stats.dir/separation.cpp.o.d"
  "/root/repo/src/stats/snr.cpp" "src/stats/CMakeFiles/emsentry_stats.dir/snr.cpp.o" "gcc" "src/stats/CMakeFiles/emsentry_stats.dir/snr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/emsentry_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/emsentry_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
