file(REMOVE_RECURSE
  "libemsentry_stats.a"
)
