# Empty compiler generated dependencies file for emsentry_stats.
# This may be replaced when dependencies are built.
