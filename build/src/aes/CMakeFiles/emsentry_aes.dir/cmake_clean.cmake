file(REMOVE_RECURSE
  "CMakeFiles/emsentry_aes.dir/activity.cpp.o"
  "CMakeFiles/emsentry_aes.dir/activity.cpp.o.d"
  "CMakeFiles/emsentry_aes.dir/aes128.cpp.o"
  "CMakeFiles/emsentry_aes.dir/aes128.cpp.o.d"
  "CMakeFiles/emsentry_aes.dir/datapath_netlist.cpp.o"
  "CMakeFiles/emsentry_aes.dir/datapath_netlist.cpp.o.d"
  "CMakeFiles/emsentry_aes.dir/gate_model.cpp.o"
  "CMakeFiles/emsentry_aes.dir/gate_model.cpp.o.d"
  "libemsentry_aes.a"
  "libemsentry_aes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsentry_aes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
