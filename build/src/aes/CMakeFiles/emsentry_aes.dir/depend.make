# Empty dependencies file for emsentry_aes.
# This may be replaced when dependencies are built.
