file(REMOVE_RECURSE
  "libemsentry_aes.a"
)
