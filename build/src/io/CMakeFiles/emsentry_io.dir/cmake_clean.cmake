file(REMOVE_RECURSE
  "CMakeFiles/emsentry_io.dir/csv.cpp.o"
  "CMakeFiles/emsentry_io.dir/csv.cpp.o.d"
  "CMakeFiles/emsentry_io.dir/table.cpp.o"
  "CMakeFiles/emsentry_io.dir/table.cpp.o.d"
  "CMakeFiles/emsentry_io.dir/trace_archive.cpp.o"
  "CMakeFiles/emsentry_io.dir/trace_archive.cpp.o.d"
  "libemsentry_io.a"
  "libemsentry_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsentry_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
