
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/csv.cpp" "src/io/CMakeFiles/emsentry_io.dir/csv.cpp.o" "gcc" "src/io/CMakeFiles/emsentry_io.dir/csv.cpp.o.d"
  "/root/repo/src/io/table.cpp" "src/io/CMakeFiles/emsentry_io.dir/table.cpp.o" "gcc" "src/io/CMakeFiles/emsentry_io.dir/table.cpp.o.d"
  "/root/repo/src/io/trace_archive.cpp" "src/io/CMakeFiles/emsentry_io.dir/trace_archive.cpp.o" "gcc" "src/io/CMakeFiles/emsentry_io.dir/trace_archive.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/emsentry_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emsentry_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/emsentry_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/emsentry_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/emsentry_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
