file(REMOVE_RECURSE
  "libemsentry_io.a"
)
