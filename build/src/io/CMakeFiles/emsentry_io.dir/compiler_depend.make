# Empty compiler generated dependencies file for emsentry_io.
# This may be replaced when dependencies are built.
