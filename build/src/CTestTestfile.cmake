# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("linalg")
subdirs("dsp")
subdirs("stats")
subdirs("netlist")
subdirs("aes")
subdirs("layout")
subdirs("power")
subdirs("em")
subdirs("trojan")
subdirs("sensor")
subdirs("sim")
subdirs("core")
subdirs("attack")
subdirs("baseline")
subdirs("io")
