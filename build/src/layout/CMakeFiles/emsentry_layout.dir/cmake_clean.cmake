file(REMOVE_RECURSE
  "CMakeFiles/emsentry_layout.dir/floorplan.cpp.o"
  "CMakeFiles/emsentry_layout.dir/floorplan.cpp.o.d"
  "CMakeFiles/emsentry_layout.dir/geometry.cpp.o"
  "CMakeFiles/emsentry_layout.dir/geometry.cpp.o.d"
  "CMakeFiles/emsentry_layout.dir/power_grid.cpp.o"
  "CMakeFiles/emsentry_layout.dir/power_grid.cpp.o.d"
  "libemsentry_layout.a"
  "libemsentry_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsentry_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
