# Empty compiler generated dependencies file for emsentry_layout.
# This may be replaced when dependencies are built.
