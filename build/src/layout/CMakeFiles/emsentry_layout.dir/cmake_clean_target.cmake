file(REMOVE_RECURSE
  "libemsentry_layout.a"
)
