file(REMOVE_RECURSE
  "libemsentry_util.a"
)
