# Empty compiler generated dependencies file for emsentry_util.
# This may be replaced when dependencies are built.
