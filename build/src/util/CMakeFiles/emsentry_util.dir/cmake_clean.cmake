file(REMOVE_RECURSE
  "CMakeFiles/emsentry_util.dir/assert.cpp.o"
  "CMakeFiles/emsentry_util.dir/assert.cpp.o.d"
  "CMakeFiles/emsentry_util.dir/rng.cpp.o"
  "CMakeFiles/emsentry_util.dir/rng.cpp.o.d"
  "libemsentry_util.a"
  "libemsentry_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsentry_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
