file(REMOVE_RECURSE
  "CMakeFiles/emsentry_em.dir/biot_savart.cpp.o"
  "CMakeFiles/emsentry_em.dir/biot_savart.cpp.o.d"
  "CMakeFiles/emsentry_em.dir/coil.cpp.o"
  "CMakeFiles/emsentry_em.dir/coil.cpp.o.d"
  "CMakeFiles/emsentry_em.dir/field_map.cpp.o"
  "CMakeFiles/emsentry_em.dir/field_map.cpp.o.d"
  "CMakeFiles/emsentry_em.dir/mutual.cpp.o"
  "CMakeFiles/emsentry_em.dir/mutual.cpp.o.d"
  "libemsentry_em.a"
  "libemsentry_em.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsentry_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
