
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/em/biot_savart.cpp" "src/em/CMakeFiles/emsentry_em.dir/biot_savart.cpp.o" "gcc" "src/em/CMakeFiles/emsentry_em.dir/biot_savart.cpp.o.d"
  "/root/repo/src/em/coil.cpp" "src/em/CMakeFiles/emsentry_em.dir/coil.cpp.o" "gcc" "src/em/CMakeFiles/emsentry_em.dir/coil.cpp.o.d"
  "/root/repo/src/em/field_map.cpp" "src/em/CMakeFiles/emsentry_em.dir/field_map.cpp.o" "gcc" "src/em/CMakeFiles/emsentry_em.dir/field_map.cpp.o.d"
  "/root/repo/src/em/mutual.cpp" "src/em/CMakeFiles/emsentry_em.dir/mutual.cpp.o" "gcc" "src/em/CMakeFiles/emsentry_em.dir/mutual.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/emsentry_util.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/emsentry_layout.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
