# Empty dependencies file for emsentry_em.
# This may be replaced when dependencies are built.
