file(REMOVE_RECURSE
  "libemsentry_em.a"
)
