file(REMOVE_RECURSE
  "libemsentry_attack.a"
)
