# Empty dependencies file for emsentry_attack.
# This may be replaced when dependencies are built.
