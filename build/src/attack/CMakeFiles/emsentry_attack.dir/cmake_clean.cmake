file(REMOVE_RECURSE
  "CMakeFiles/emsentry_attack.dir/cpa.cpp.o"
  "CMakeFiles/emsentry_attack.dir/cpa.cpp.o.d"
  "libemsentry_attack.a"
  "libemsentry_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsentry_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
