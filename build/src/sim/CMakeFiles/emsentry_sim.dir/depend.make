# Empty dependencies file for emsentry_sim.
# This may be replaced when dependencies are built.
