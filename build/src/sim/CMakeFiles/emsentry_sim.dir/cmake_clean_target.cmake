file(REMOVE_RECURSE
  "libemsentry_sim.a"
)
