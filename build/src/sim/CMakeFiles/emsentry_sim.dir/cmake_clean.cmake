file(REMOVE_RECURSE
  "CMakeFiles/emsentry_sim.dir/chip.cpp.o"
  "CMakeFiles/emsentry_sim.dir/chip.cpp.o.d"
  "CMakeFiles/emsentry_sim.dir/scan.cpp.o"
  "CMakeFiles/emsentry_sim.dir/scan.cpp.o.d"
  "CMakeFiles/emsentry_sim.dir/silicon.cpp.o"
  "CMakeFiles/emsentry_sim.dir/silicon.cpp.o.d"
  "libemsentry_sim.a"
  "libemsentry_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emsentry_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
