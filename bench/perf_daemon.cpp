// Sustained-ingest benchmark of the daemon stack: synthetic captures encoded
// as EMWF wire frames, pushed through the FrameDecoder into
// FleetMonitor::submit_frame — the exact per-byte path `emsentry_cli serve`
// runs, minus the kernel socket hop. Measures:
//   * sustained ingest rate (traces/sec) under the kBlock policy,
//   * end-to-end frame latency (encode -> decode -> scored), p50/p99,
//   * snapshot pause (fleet quiesce + EMFS serialization) and restore cost.
// Results land in BENCH_daemon.json; hardware_threads is recorded up front
// because every rate here is meaningless without it, and a shard count above
// the core count is flagged the same way the JSON records it.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "core/monitor.hpp"
#include "fleet/fleet.hpp"
#include "io/snapshot.hpp"
#include "io/wire.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

using namespace emts;

namespace {

constexpr double kFs = 384e6;
constexpr std::size_t kLen = 2048;

core::Trace golden_trace(Rng& rng) {
  core::Trace t(kLen);
  for (std::size_t i = 0; i < kLen; ++i) {
    t[i] = std::sin(2.0 * units::pi * 48e6 * static_cast<double>(i) / kFs) +
           rng.gaussian(0.0, 0.08);
  }
  return t;
}

core::TraceSet make_set(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  core::TraceSet set;
  set.sample_rate = kFs;
  for (std::size_t i = 0; i < n; ++i) set.add(golden_trace(rng));
  return set;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// Encoded frames for `devices` interleaved streams, round-robin — the
/// arrival order a shared capture front-end produces.
std::vector<std::string> encode_streams(std::size_t devices, std::size_t traces_per_device) {
  std::vector<std::string> frames;
  frames.reserve(devices * traces_per_device);
  Rng rng{99};
  std::string buffer;
  for (std::size_t t = 0; t < traces_per_device; ++t) {
    for (std::size_t d = 0; d < devices; ++d) {
      const core::Trace trace = golden_trace(rng);
      buffer.clear();
      io::wire::encode_trace_frame("chip-" + std::to_string(d), kFs, trace.data(),
                                   trace.size(), buffer);
      frames.push_back(buffer);
    }
  }
  return frames;
}

fleet::FleetOptions daemon_options(std::size_t shards) {
  fleet::FleetOptions options;
  options.shards = shards;
  options.queue_capacity = 64;
  options.backpressure = fleet::BackpressurePolicy::kBlock;
  return options;
}

void add_devices(fleet::FleetMonitor& fleet, const core::TrustEvaluator& evaluator,
                 std::size_t devices) {
  for (std::size_t d = 0; d < devices; ++d) {
    fleet.add_device("chip-" + std::to_string(d), evaluator);
  }
}

/// Feeds pre-encoded frames through decode + submit_frame; returns traces/sec.
double measure_ingest_rate(const core::TrustEvaluator& evaluator, std::size_t shards,
                           std::size_t devices, const std::vector<std::string>& frames) {
  fleet::FleetMonitor fleet{daemon_options(shards)};
  add_devices(fleet, evaluator, devices);
  io::wire::FrameDecoder decoder;
  const auto t0 = std::chrono::steady_clock::now();
  io::wire::TraceFrame frame;
  for (const std::string& bytes : frames) {
    decoder.feed(bytes.data(), bytes.size());
    while (decoder.next(frame)) fleet.submit_frame(std::move(frame));
  }
  fleet.flush();
  return static_cast<double>(frames.size()) / seconds_since(t0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_daemon.json";
  const unsigned hardware_threads = std::thread::hardware_concurrency();

  std::printf("perf_daemon: %u hardware threads\n", hardware_threads);
  const core::TrustEvaluator evaluator = core::TrustEvaluator::calibrate(make_set(30, 1));

  // --- sustained ingest, shards x devices ---
  struct RatePoint {
    std::size_t shards, devices;
    double traces_per_sec;
    bool oversubscribed;
  };
  std::vector<RatePoint> rates;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    for (const std::size_t devices : {std::size_t{1}, std::size_t{8}}) {
      const auto frames = encode_streams(devices, 512 / devices);
      const double rate = measure_ingest_rate(evaluator, shards, devices, frames);
      const bool oversubscribed = hardware_threads > 0 && shards > hardware_threads;
      if (oversubscribed) {
        std::fprintf(stderr,
                     "warning: %zu shards exceed %u hardware threads — rate below is"
                     " a contention measurement, not a capacity\n",
                     shards, hardware_threads);
      }
      std::printf("  shards %zu devices %zu: %.0f traces/s%s\n", shards, devices, rate,
                  oversubscribed ? " (oversubscribed)" : "");
      rates.push_back(RatePoint{shards, devices, rate, oversubscribed});
    }
  }

  // --- end-to-end frame latency: one frame in an idle fleet, spin until the
  // worker has scored it ---
  std::vector<double> latencies_us;
  {
    fleet::FleetMonitor fleet{daemon_options(2)};
    add_devices(fleet, evaluator, 1);
    Rng rng{7};
    std::string buffer;
    io::wire::FrameDecoder decoder;
    io::wire::TraceFrame frame;
    for (int i = 0; i < 200; ++i) {
      const core::Trace trace = golden_trace(rng);
      const auto t0 = std::chrono::steady_clock::now();
      buffer.clear();
      io::wire::encode_trace_frame("chip-0", kFs, trace.data(), trace.size(), buffer);
      decoder.feed(buffer.data(), buffer.size());
      while (decoder.next(frame)) fleet.submit_frame(std::move(frame));
      const std::uint64_t target = static_cast<std::uint64_t>(i + 1);
      while (fleet.stats().traces_processed < target) {
      }
      latencies_us.push_back(seconds_since(t0) * 1e6);
    }
    std::sort(latencies_us.begin(), latencies_us.end());
  }
  const double lat_p50 = latencies_us[latencies_us.size() / 2];
  const double lat_p99 = latencies_us[latencies_us.size() * 99 / 100];
  std::printf("  frame latency: p50 %.1f us, p99 %.1f us\n", lat_p50, lat_p99);

  // --- snapshot pause and restore cost, against a warmed 8-device fleet ---
  double snapshot_pause_ms = 0.0;
  double snapshot_save_ms = 0.0;
  double restore_ms = 0.0;
  std::size_t snapshot_bytes = 0;
  {
    const std::filesystem::path tmp =
        std::filesystem::temp_directory_path() / "perf_daemon_snapshot.emfs";
    fleet::FleetMonitor fleet{daemon_options(2)};
    add_devices(fleet, evaluator, 8);
    const auto warm = encode_streams(8, 32);
    io::wire::FrameDecoder decoder;
    io::wire::TraceFrame frame;
    for (const std::string& bytes : warm) {
      decoder.feed(bytes.data(), bytes.size());
      while (decoder.next(frame)) fleet.submit_frame(std::move(frame));
    }

    auto t0 = std::chrono::steady_clock::now();
    const io::FleetSnapshot snapshot = fleet.snapshot();
    snapshot_pause_ms = seconds_since(t0) * 1e3;

    t0 = std::chrono::steady_clock::now();
    io::save_fleet_snapshot(tmp.string(), snapshot);
    snapshot_save_ms = seconds_since(t0) * 1e3;
    snapshot_bytes = static_cast<std::size_t>(std::filesystem::file_size(tmp));

    t0 = std::chrono::steady_clock::now();
    const io::FleetSnapshot loaded = io::load_fleet_snapshot(tmp.string());
    fleet::FleetMonitor reborn{daemon_options(2)};
    reborn.restore(loaded);
    restore_ms = seconds_since(t0) * 1e3;
    std::filesystem::remove(tmp);
  }
  std::printf("  snapshot: pause %.2f ms, save %.2f ms (%zu bytes), restore %.2f ms\n",
              snapshot_pause_ms, snapshot_save_ms, snapshot_bytes, restore_ms);

  // --- incremental snapshot cut: 64 devices, 1 moved since the last cut.
  // The interesting number is how far the pause+save drops when the cut
  // scales with dirty devices instead of fleet size. ---
  constexpr std::size_t kIncDevices = 64;
  double inc_full_pause_ms = 0.0;
  double inc_full_save_ms = 0.0;
  double inc_pause_ms = 0.0;
  double inc_save_ms = 0.0;
  std::size_t inc_bytes = 0;
  io::SnapshotSaveStats inc_stats;
  {
    const std::filesystem::path tmp =
        std::filesystem::temp_directory_path() / "perf_daemon_incremental.emfs";
    fleet::FleetMonitor fleet{daemon_options(2)};
    add_devices(fleet, evaluator, kIncDevices);
    const auto warm = encode_streams(kIncDevices, 8);
    io::wire::FrameDecoder decoder;
    io::wire::TraceFrame frame;
    for (const std::string& bytes : warm) {
      decoder.feed(bytes.data(), bytes.size());
      while (decoder.next(frame)) fleet.submit_frame(std::move(frame));
    }
    fleet.flush();

    // Priming cut: cold cache, everything is dirty — a full rewrite.
    io::FleetSnapshotRecordCache cache;
    auto t0 = std::chrono::steady_clock::now();
    const io::FleetSnapshot full = fleet.snapshot(fleet::SnapshotMode::kFull);
    inc_full_pause_ms = seconds_since(t0) * 1e3;
    t0 = std::chrono::steady_clock::now();
    io::save_fleet_snapshot(tmp.string(), full, cache);
    inc_full_save_ms = seconds_since(t0) * 1e3;

    // Move exactly one device, then cut incrementally off the warm cache.
    Rng rng{123};
    const core::Trace moved = golden_trace(rng);
    std::string buffer;
    io::wire::encode_trace_frame("chip-0", kFs, moved.data(), moved.size(), buffer);
    decoder.feed(buffer.data(), buffer.size());
    while (decoder.next(frame)) fleet.submit_frame(std::move(frame));
    fleet.flush();

    t0 = std::chrono::steady_clock::now();
    const io::FleetSnapshot partial = fleet.snapshot(fleet::SnapshotMode::kIncremental);
    inc_pause_ms = seconds_since(t0) * 1e3;
    t0 = std::chrono::steady_clock::now();
    io::save_fleet_snapshot(tmp.string(), partial, cache, &inc_stats);
    inc_save_ms = seconds_since(t0) * 1e3;
    inc_bytes = static_cast<std::size_t>(std::filesystem::file_size(tmp));
    std::filesystem::remove(tmp);
  }
  std::printf(
      "  incremental snapshot (%zu devices, 1 dirty): full pause %.2f ms + save %.2f ms,"
      " incremental pause %.2f ms + save %.2f ms (%llu reused / %llu rewritten, %zu bytes)\n",
      kIncDevices, inc_full_pause_ms, inc_full_save_ms, inc_pause_ms, inc_save_ms,
      static_cast<unsigned long long>(inc_stats.records_reused),
      static_cast<unsigned long long>(inc_stats.records_rewritten), inc_bytes);

  std::ofstream out{out_path};
  out << "{\n";
  out << "  \"hardware_threads\": " << hardware_threads << ",\n";
  out << "  \"trace_samples\": " << kLen << ",\n";
  out << "  \"queue_capacity\": 64,\n";
  out << "  \"policy\": \"BLOCK\",\n";
  out << "  \"sustained_ingest\": [\n";
  for (std::size_t i = 0; i < rates.size(); ++i) {
    out << "    {\"shards\": " << rates[i].shards << ", \"devices\": " << rates[i].devices
        << ", \"traces_per_sec\": " << rates[i].traces_per_sec
        << ", \"oversubscribed\": " << (rates[i].oversubscribed ? "true" : "false") << "}"
        << (i + 1 < rates.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"frame_latency_us\": {\"p50\": " << lat_p50 << ", \"p99\": " << lat_p99
      << "},\n";
  out << "  \"snapshot\": {\"pause_ms\": " << snapshot_pause_ms
      << ", \"save_ms\": " << snapshot_save_ms << ", \"bytes\": " << snapshot_bytes
      << ", \"restore_ms\": " << restore_ms << "},\n";
  out << "  \"incremental_snapshot\": {\"devices\": " << kIncDevices
      << ", \"dirty_devices\": 1, \"full_pause_ms\": " << inc_full_pause_ms
      << ", \"full_save_ms\": " << inc_full_save_ms
      << ", \"incremental_pause_ms\": " << inc_pause_ms
      << ", \"incremental_save_ms\": " << inc_save_ms
      << ", \"records_reused\": " << inc_stats.records_reused
      << ", \"records_rewritten\": " << inc_stats.records_rewritten
      << ", \"bytes\": " << inc_bytes << "}\n";
  out << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
