// Multicore fleet-scaling rig: a load generator that drives FleetMonitor
// from N producer threads and sweeps shards x devices x backpressure policy
// x batch size, measuring sustained scored-traces/sec per configuration.
// This is the harness behind the "near-linear traces/sec up to shards ~=
// cores under BLOCK" target: run it on real multicore hardware and read the
// speedup keys. Every row records whether the run was oversubscribed
// (producers + shard workers > hardware threads) — on a one-core host the
// numbers are contention measurements, not capacities, and the JSON says so
// (hardware_threads is the first key for exactly that reason, matching
// BENCH_daemon.json).
//
// The rig also re-proves the fleet's core guarantee on the batched path: a
// bit-identity pass compares per-device results (last score, counters,
// state) against standalone RuntimeMonitors and the process exits non-zero
// on any mismatch, so a recorded BENCH_fleet_scale.json implies the exact-EQ
// guarantee held on that machine.
//
// Usage: perf_fleet_scale [out.json] [--smoke]
//   --smoke: one small configuration, 3 repeats per row (best-of, stable on
//   noisy single-core CI). The CI step reads the emitted JSON and asserts
//   the batched row's rate >= the per-trace row's.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluator.hpp"
#include "core/monitor.hpp"
#include "fleet/fleet.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

using namespace emts;

namespace {

constexpr double kFs = 384e6;
constexpr std::size_t kLen = 2048;
constexpr std::size_t kQueueCapacity = 64;

core::Trace golden_trace(Rng& rng) {
  core::Trace t(kLen);
  for (std::size_t i = 0; i < kLen; ++i) {
    t[i] = std::sin(2.0 * units::pi * 48e6 * static_cast<double>(i) / kFs) +
           rng.gaussian(0.0, 0.08);
  }
  return t;
}

core::TraceSet make_set(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  core::TraceSet set;
  set.sample_rate = kFs;
  for (std::size_t i = 0; i < n; ++i) set.add(golden_trace(rng));
  return set;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::string device_id(std::size_t d) { return "chip-" + std::to_string(d); }

struct Row {
  std::size_t shards = 0;
  std::size_t devices = 0;
  const char* policy = "BLOCK";
  std::size_t batch_size = 1;
  std::size_t producers = 0;
  double traces_per_sec = 0.0;
  std::uint64_t processed = 0;
  bool oversubscribed = false;
  bool pinned = false;
};

/// One measured configuration: `producers` threads partition the devices and
/// push `traces_per_device` each, as per-trace submits (batch_size 1) or
/// submit_batch chunks. The per-device chunk TraceSets are pre-built outside
/// the timed region so both paths pay identical trace-copy cost inside it.
Row run_row(const core::TrustEvaluator& evaluator, std::size_t shards,
            std::size_t devices, fleet::BackpressurePolicy policy,
            std::size_t batch_size, std::size_t traces_per_device,
            unsigned hardware_threads, std::size_t repeats) {
  Row row;
  row.shards = shards;
  row.devices = devices;
  row.policy = fleet::backpressure_label(policy);
  row.batch_size = batch_size;
  row.producers = std::min<std::size_t>(devices, 4);
  row.pinned = hardware_threads > 1 && shards <= hardware_threads;
  row.oversubscribed =
      hardware_threads > 0 && row.producers + shards > hardware_threads;

  // Pre-build every producer's submission plan: per device, a list of
  // batch_size-trace chunks (the same synthetic stream for every device).
  const core::TraceSet stream = make_set(traces_per_device, 42);
  std::vector<core::TraceSet> chunks;
  for (std::size_t start = 0; start < traces_per_device; start += batch_size) {
    core::TraceSet chunk;
    chunk.sample_rate = kFs;
    const std::size_t end = std::min(traces_per_device, start + batch_size);
    for (std::size_t t = start; t < end; ++t) chunk.add(core::Trace{stream.traces[t]});
    chunks.push_back(std::move(chunk));
  }

  for (std::size_t rep = 0; rep < repeats; ++rep) {
    fleet::FleetOptions options;
    options.shards = shards;
    options.queue_capacity = kQueueCapacity;
    options.backpressure = policy;
    options.pin_workers = row.pinned;
    fleet::FleetMonitor fleet{options};
    for (std::size_t d = 0; d < devices; ++d) fleet.add_device(device_id(d), evaluator);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> producers;
    for (std::size_t p = 0; p < row.producers; ++p) {
      producers.emplace_back([&, p] {
        // Chunk-major, device-minor: interleaved arrival across this
        // producer's devices, the shape a shared capture front-end produces.
        for (const core::TraceSet& chunk : chunks) {
          for (std::size_t d = p; d < devices; d += row.producers) {
            if (batch_size == 1) {
              (void)fleet.submit(device_id(d), core::Trace{chunk.traces[0]});
            } else {
              (void)fleet.submit_batch(device_id(d), chunk);
            }
          }
        }
      });
    }
    for (std::thread& t : producers) t.join();
    fleet.flush();
    const double elapsed = seconds_since(t0);

    // Scored traces per second: under REJECT the queue sheds load, so the
    // processed count (not the offered count) is the honest numerator.
    const fleet::FleetStats stats = fleet.stats();
    const double rate = static_cast<double>(stats.traces_processed) / elapsed;
    if (rate > row.traces_per_sec) {
      row.traces_per_sec = rate;
      row.processed = stats.traces_processed;
    }
  }
  return row;
}

/// Bit-identity pass on the batched path: every device's stream through
/// submit_batch must leave the exact per-device results a standalone
/// RuntimeMonitor produces. Returns false (and prints the offender) on any
/// mismatch.
bool verify_bit_identity(const core::TrustEvaluator& evaluator) {
  constexpr std::size_t kDevices = 4;
  constexpr std::size_t kPerDevice = 24;
  constexpr std::size_t kBatch = 8;

  fleet::FleetOptions options;
  options.shards = 2;
  options.queue_capacity = kQueueCapacity;
  options.backpressure = fleet::BackpressurePolicy::kBlock;
  fleet::FleetMonitor fleet{options};

  std::vector<core::RuntimeMonitor> standalone;
  std::vector<core::TraceSet> streams;
  for (std::size_t d = 0; d < kDevices; ++d) {
    fleet.add_device(device_id(d), evaluator);
    standalone.emplace_back(kFs, core::TrustEvaluator{evaluator},
                            core::RuntimeMonitor::Options{});
    streams.push_back(make_set(kPerDevice, 500 + d));
  }

  for (std::size_t start = 0; start < kPerDevice; start += kBatch) {
    for (std::size_t d = 0; d < kDevices; ++d) {
      core::TraceSet chunk;
      chunk.sample_rate = kFs;
      for (std::size_t t = start; t < std::min(kPerDevice, start + kBatch); ++t) {
        chunk.add(core::Trace{streams[d].traces[t]});
      }
      fleet.submit_batch(device_id(d), chunk);
    }
  }
  fleet.flush();
  for (std::size_t d = 0; d < kDevices; ++d) {
    for (const core::Trace& trace : streams[d].traces) standalone[d].push(trace);
  }

  const fleet::FleetStats stats = fleet.stats();
  for (std::size_t d = 0; d < kDevices; ++d) {
    const fleet::SessionStats& session = stats.sessions[d];
    const core::MonitorStats& expect = standalone[d].stats();
    const bool score_ok =
        session.last_score.has_value() == standalone[d].last_score().has_value() &&
        (!session.last_score.has_value() ||
         *session.last_score == *standalone[d].last_score());  // exact EQ
    if (!score_ok || session.state != standalone[d].state() ||
        session.monitor.scored_captures != expect.scored_captures ||
        session.monitor.per_trace_anomalies != expect.per_trace_anomalies ||
        session.monitor.alarms_latched != expect.alarms_latched) {
      std::fprintf(stderr, "BIT-IDENTITY MISMATCH on %s\n", session.device_id.c_str());
      return false;
    }
  }
  return true;
}

double find_rate(const std::vector<Row>& rows, std::size_t shards, std::size_t devices,
                 const char* policy, std::size_t batch_size) {
  for (const Row& row : rows) {
    if (row.shards == shards && row.devices == devices && row.batch_size == batch_size &&
        std::strcmp(row.policy, policy) == 0) {
      return row.traces_per_sec;
    }
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_fleet_scale.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const unsigned hardware_threads = std::thread::hardware_concurrency();
  std::printf("perf_fleet_scale: %u hardware threads%s\n", hardware_threads,
              smoke ? " (smoke)" : "");
  const core::TrustEvaluator evaluator = core::TrustEvaluator::calibrate(make_set(30, 1));

  const bool bit_identical = verify_bit_identity(evaluator);
  std::printf("  bit-identity vs standalone monitors: %s\n",
              bit_identical ? "PASS" : "FAIL");

  std::vector<Row> rows;
  const auto sweep = [&](std::size_t shards, std::size_t devices,
                         fleet::BackpressurePolicy policy, std::size_t batch_size,
                         std::size_t traces_per_device, std::size_t repeats) {
    Row row = run_row(evaluator, shards, devices, policy, batch_size, traces_per_device,
                      hardware_threads, repeats);
    std::printf("  shards %zu devices %2zu %-11s batch %2zu: %7.0f traces/s%s\n",
                row.shards, row.devices, row.policy, row.batch_size, row.traces_per_sec,
                row.oversubscribed ? " (oversubscribed)" : "");
    if (row.oversubscribed) {
      std::fprintf(stderr,
                   "warning: %zu producers + %zu shards exceed %u hardware threads —"
                   " this row measures contention, not capacity\n",
                   row.producers, row.shards, hardware_threads);
    }
    rows.push_back(row);
  };

  if (smoke) {
    // CI configuration: one shard count, per-trace vs batched, best-of-3.
    for (const std::size_t batch : {std::size_t{1}, std::size_t{16}}) {
      sweep(2, 8, fleet::BackpressurePolicy::kBlock, batch, 48, 3);
    }
  } else {
    // The scaling story: shards sweep under BLOCK, per-trace vs batched.
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      for (const std::size_t devices : {std::size_t{4}, std::size_t{16}}) {
        for (const std::size_t batch : {std::size_t{1}, std::size_t{16}}) {
          sweep(shards, devices, fleet::BackpressurePolicy::kBlock, batch, 64, 1);
        }
      }
    }
    // Policy behavior at the largest configuration.
    for (const fleet::BackpressurePolicy policy :
         {fleet::BackpressurePolicy::kDropOldest, fleet::BackpressurePolicy::kReject}) {
      for (const std::size_t batch : {std::size_t{1}, std::size_t{16}}) {
        sweep(4, 16, policy, batch, 64, 1);
      }
    }
  }

  // Summary ratios (0 when the sweep didn't include the rows — smoke mode).
  const std::size_t top_shards = smoke ? 2 : 4;
  const std::size_t top_devices = smoke ? 8 : 16;
  const double batched = find_rate(rows, top_shards, top_devices, "BLOCK", 16);
  const double per_trace = find_rate(rows, top_shards, top_devices, "BLOCK", 1);
  const double batched_over_per_trace = per_trace > 0.0 ? batched / per_trace : 0.0;
  const double scale_batched = find_rate(rows, 1, 16, "BLOCK", 16) > 0.0
                                   ? find_rate(rows, 4, 16, "BLOCK", 16) /
                                         find_rate(rows, 1, 16, "BLOCK", 16)
                                   : 0.0;
  const double scale_per_trace = find_rate(rows, 1, 16, "BLOCK", 1) > 0.0
                                     ? find_rate(rows, 4, 16, "BLOCK", 1) /
                                           find_rate(rows, 1, 16, "BLOCK", 1)
                                     : 0.0;
  if (!smoke) {
    std::printf("  1->4 shard speedup at 16 devices (BLOCK): batched %.2fx, per-trace %.2fx\n",
                scale_batched, scale_per_trace);
  }
  std::printf("  batched over per-trace at %zu shards / %zu devices: %.2fx\n", top_shards,
              top_devices, batched_over_per_trace);

  std::ofstream out{out_path};
  out << "{\n";
  out << "  \"hardware_threads\": " << hardware_threads << ",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"trace_samples\": " << kLen << ",\n";
  out << "  \"queue_capacity\": " << kQueueCapacity << ",\n";
  out << "  \"bit_identical_to_standalone\": " << (bit_identical ? "true" : "false")
      << ",\n";
  out << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"shards\": " << row.shards << ", \"devices\": " << row.devices
        << ", \"policy\": \"" << row.policy << "\", \"batch_size\": " << row.batch_size
        << ", \"producers\": " << row.producers
        << ", \"traces_per_sec\": " << row.traces_per_sec
        << ", \"processed\": " << row.processed
        << ", \"oversubscribed\": " << (row.oversubscribed ? "true" : "false")
        << ", \"pinned\": " << (row.pinned ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"speedup_1_to_4_shards_at_16_devices_block_batched\": " << scale_batched
      << ",\n";
  out << "  \"speedup_1_to_4_shards_at_16_devices_block_per_trace\": " << scale_per_trace
      << ",\n";
  out << "  \"batched_over_per_trace\": " << batched_over_per_trace << "\n";
  out << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return bit_identical ? 0 : 1;
}
