// Reproduces Table I: "Trojan sizes compared to the whole AES design".
// Paper row:  AES 33083 | T1 1657 (5.01%) | T2 2793 (8.44%) | T3 250 (0.76%)
//             | T4 2793 (8.44%) | A2 N/A (0.087% by area).
// Our numbers come from the actual built netlists (T1-T4), the calibrated
// AES synthesis model, and the A2 analog-block area model.
#include <cstdio>

#include "aes/gate_model.hpp"
#include "bench_util.hpp"
#include "io/table.hpp"
#include "trojan/trojan.hpp"

using namespace emts;

int main() {
  std::printf("=== Table I: Trojan sizes compared to the whole AES design ===\n\n");

  const auto aes_model = aes::default_aes_gate_model();
  const double aes_cells = static_cast<double>(aes_model.total_cells);

  struct PaperRow {
    trojan::TrojanKind kind;
    std::size_t paper_cells;
    double paper_percent;
  };
  const PaperRow rows[] = {
      {trojan::TrojanKind::kT1AmLeak, 1657, 5.01},
      {trojan::TrojanKind::kT2Leakage, 2793, 8.44},
      {trojan::TrojanKind::kT3Cdma, 250, 0.76},
      {trojan::TrojanKind::kT4PowerHog, 2793, 8.44},
  };

  io::Table table{{"circuit", "gate count (ours)", "gate count (paper)", "percent (ours)",
                   "percent (paper)"}};
  table.add_row({"AES", std::to_string(aes_model.total_cells), "33083", "100%", "100%"});

  bench::ShapeChecks checks;
  for (const PaperRow& row : rows) {
    const auto t = trojan::make_trojan(row.kind);
    const double percent = 100.0 * static_cast<double>(t->cell_count()) / aes_cells;
    table.add_row({trojan::kind_label(row.kind), std::to_string(t->cell_count()),
                   std::to_string(row.paper_cells), io::Table::num(percent, 3) + "%",
                   io::Table::num(row.paper_percent, 3) + "%"});
  }

  // A2 has no standard cells; Table I reports it by area.
  const auto a2 = trojan::make_trojan(trojan::TrojanKind::kA2Analog);
  const double a2_percent = 100.0 * a2->area_um2() / aes_model.total_area_um2;
  table.add_row({"A2", "N/A", "N/A", io::Table::num(a2_percent, 2) + "% (area)",
                 "0.087% (area)"});

  std::printf("%s\n", table.render().c_str());

  std::printf("shape checks:\n");
  checks.expect(aes_model.total_cells == 33083, "AES synthesis model totals 33,083 cells");
  for (const PaperRow& row : rows) {
    const auto t = trojan::make_trojan(row.kind);
    checks.expect(t->cell_count() == row.paper_cells,
                  std::string(trojan::kind_label(row.kind)) + " netlist cell count matches paper");
  }
  checks.expect(trojan::make_trojan(trojan::TrojanKind::kT2Leakage)->cell_count() ==
                    trojan::make_trojan(trojan::TrojanKind::kT4PowerHog)->cell_count(),
                "T2 and T4 are the same size (as in the paper)");
  checks.expect(a2_percent > 0.05 && a2_percent < 0.15,
                "A2 area fraction ~0.087% of the AES");
  return checks.exit_code();
}
