// Extension bench: the EM-sensor framework vs the ring-oscillator-network
// baseline (paper ref. [10]) — quantifying Sec. I's criticism that prior
// on-chip structures "share a common problem of low coverage rates". Each
// Trojan is scored by both detectors under identical conditions; the RON
// catches what moves average current near an oscillator and misses the
// rest, while the EM framework's distance + spectral stack covers all five.
#include <cstdio>
#include <string>

#include "baseline/ron.hpp"
#include "bench_util.hpp"
#include "core/euclidean.hpp"
#include "core/spectral.hpp"
#include "io/table.hpp"

using namespace emts;

int main() {
  std::printf("=== Extension: EM framework vs ring-oscillator-network baseline ===\n\n");

  sim::Chip chip{sim::make_default_config()};

  // EM framework: distance + spectral detectors on the on-chip sensor.
  const auto golden_traces = bench::capture_set(chip, sim::Pickup::kOnChipSensor, 48, 0);
  const auto euclid = core::EuclideanDetector::calibrate(golden_traces);
  const auto spectral = core::SpectralDetector::calibrate(golden_traces);

  // RON baseline: 4x4 oscillators, golden-calibrated z-test.
  const baseline::RonNetwork ron{baseline::RonSpec{}, chip.config().die};
  Rng rng{0x30a};
  std::vector<baseline::RonReading> golden_readings;
  for (std::uint64_t t = 0; t < 24; ++t) {
    golden_readings.push_back(ron.measure(chip, true, t, rng));
  }
  const baseline::RonDetector ron_detector{golden_readings};

  io::Table table{{"trojan", "EM distance margin", "EM spectral", "EM verdict", "RON max |z|",
                   "RON verdict"}};
  bench::ShapeChecks checks;
  std::size_t em_caught = 0;
  std::size_t ron_caught = 0;
  bool ron_missed_a2 = false;

  for (trojan::TrojanKind kind : trojan::kAllTrojanKinds) {
    chip.arm(kind);
    const auto suspect = bench::capture_set(chip, sim::Pickup::kOnChipSensor, 16, 7000);
    const double margin = euclid.population_distance(suspect) / euclid.threshold();
    const bool spectral_hit = spectral.analyze(suspect).anomalous();

    // Median RON z over a few readings (one reading can jitter).
    double z_sum = 0.0;
    for (std::uint64_t t = 0; t < 5; ++t) {
      z_sum += ron_detector.max_z(ron.measure(chip, true, 7000 + t, rng));
    }
    const double ron_z = z_sum / 5.0;
    chip.disarm_all();

    const bool em_hit = margin > 1.0 || spectral_hit;
    const bool ron_hit = ron_z > ron_detector.threshold();
    em_caught += em_hit;
    ron_caught += ron_hit;
    if (kind == trojan::TrojanKind::kA2Analog && !ron_hit) ron_missed_a2 = true;

    table.add_row({trojan::kind_label(kind), io::Table::num(margin, 3),
                   spectral_hit ? "anomaly" : "-", em_hit ? "DETECTED" : "missed",
                   io::Table::num(ron_z, 3), ron_hit ? "DETECTED" : "missed"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("EM framework coverage: %zu/5    RON coverage: %zu/5\n\n", em_caught, ron_caught);

  checks.expect(em_caught == 5, "EM framework covers all five Trojans");
  checks.expect(ron_caught < 5, "RON's coverage is partial (the paper's Sec. I argument)");
  checks.expect(ron_missed_a2, "RON misses the A2 analog Trojan");
  checks.expect(em_caught > ron_caught, "the on-chip EM sensor out-covers the RON baseline");
  return checks.exit_code();
}
