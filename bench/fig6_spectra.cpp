// Reproduces Fig. 6(i)-(l): sensor spectra on the fabricated chip (silicon
// mode), golden vs Trojan-activated. Paper findings, checked below:
//   (i)  T1 introduces extra energy at a lower frequency range (750 kHz);
//   (j)  T2 significantly amplifies a number of frequency spots;
//   (k)  T3's spots are NOT clearly distinguishable (extreme low overhead);
//   (l)  T4 amplifies spots too, with higher energy peaks than T2.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "core/spectral.hpp"
#include "io/table.hpp"
#include "sim/silicon.hpp"

using namespace emts;

int main() {
  std::printf("=== Fig. 6(i)-(l): sensor spectra, golden vs Trojan (silicon mode) ===\n\n");

  sim::Chip chip{sim::make_silicon_config(sim::SiliconOptions{})};
  const auto golden = bench::capture_set(chip, sim::Pickup::kOnChipSensor, 32, 0);
  const auto detector = core::SpectralDetector::calibrate(golden);
  std::printf("golden reference: %zu spots above the noise floor (clock 48 MHz + harmonics)\n\n",
              detector.golden_spots().size());

  const trojan::TrojanKind kinds[] = {
      trojan::TrojanKind::kT1AmLeak, trojan::TrojanKind::kT2Leakage,
      trojan::TrojanKind::kT3Cdma, trojan::TrojanKind::kT4PowerHog};

  core::SpectralReport reports[4];
  double max_amp_ratio[4] = {};
  for (int i = 0; i < 4; ++i) {
    chip.arm(kinds[i]);
    reports[i] = detector.analyze(bench::capture_set(
        chip, sim::Pickup::kOnChipSensor, 32, static_cast<std::uint64_t>(40000 + 10000 * i)));
    chip.disarm_all();
    for (const auto& a : reports[i].anomalies) {
      if (a.kind == core::SpectralAnomalyKind::kAmplifiedSpot) {
        max_amp_ratio[i] = std::max(max_amp_ratio[i], a.ratio);
      }
    }
  }

  io::Table table{{"panel", "trojan", "anomalies", "new spots", "amplified spots",
                   "strongest", "paper finding"}};
  const char* findings[] = {"extra low-frequency energy", "amplified spots",
                            "not distinguishable", "amplified spots, > T2"};
  for (int i = 0; i < 4; ++i) {
    std::size_t new_spots = 0;
    std::size_t amplified = 0;
    for (const auto& a : reports[i].anomalies) {
      (a.kind == core::SpectralAnomalyKind::kNewSpot ? new_spots : amplified) += 1;
    }
    std::string strongest = "-";
    if (!reports[i].anomalies.empty()) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.3f MHz x%.1f",
                    reports[i].anomalies.front().frequency_hz / 1e6,
                    reports[i].anomalies.front().ratio);
      strongest = buf;
    }
    char panel[8];
    std::snprintf(panel, sizeof panel, "6(%c)", 'i' + i);
    table.add_row({panel, trojan::kind_label(kinds[i]), std::to_string(reports[i].anomalies.size()),
                   std::to_string(new_spots), std::to_string(amplified), strongest, findings[i]});
  }
  std::printf("%s\n", table.render().c_str());

  bench::ShapeChecks checks;
  bool t1_low = false;
  for (const auto& a : reports[0].anomalies) t1_low |= (a.frequency_hz < 5e6);
  checks.expect(reports[0].anomalous() && t1_low,
                "T1 adds extra energy at a lower frequency range (Fig. 6(i))");
  checks.expect(max_amp_ratio[1] > 1.6, "T2 amplifies existing spots (Fig. 6(j))");
  checks.expect(!reports[2].anomalous(), "T3 produces no distinguishable spots (Fig. 6(k))");
  checks.expect(max_amp_ratio[3] > 1.6, "T4 amplifies existing spots (Fig. 6(l))");
  checks.expect(max_amp_ratio[3] > max_amp_ratio[1],
                "T4's energy peaks are higher than T2's (paper: both use registers, T4 more)");
  return checks.exit_code();
}
