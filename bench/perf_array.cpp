// Sensor-array capture + monitoring throughput: grid size x window count
// sweep over the full array pipeline (one physics evaluation per window,
// fanned out to N coils, scored by N detector stacks, localized on demand).
// The question the sweep answers: how does the per-window cost grow with the
// coil count, and how far from real time does the array monitor run?
//
// Writes BENCH_array.json. Following BENCH_daemon.json / BENCH_fleet_scale:
// hardware_threads is the *first* key — on a one-core host the capture rates
// are contention measurements, not capacities — and every row records
// whether the run was oversubscribed (engine workers > hardware threads).
//
// The bench also re-proves the subsystem's gate on every run: the golden
// replay must not alarm any coil, and the process exits non-zero if it does,
// so a recorded BENCH_array.json implies the no-false-alarm guarantee held.
//
// Usage: perf_array [out.json] [--smoke]
//   --smoke: 3x3 grid, one window count — the CI configuration.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "array/calibration.hpp"
#include "array/capture.hpp"
#include "array/grid.hpp"
#include "array/localizer.hpp"
#include "array/monitor.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"

using namespace emts;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

struct Row {
  std::size_t nx = 0;
  std::size_t ny = 0;
  std::size_t windows = 0;
  double calibrate_s = 0.0;
  double capture_bundles_per_sec = 0.0;
  double push_bundles_per_sec = 0.0;
  double localize_us = 0.0;
  std::size_t engine_threads = 0;
  bool oversubscribed = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_array.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  const unsigned hardware_threads = std::thread::hardware_concurrency();
  const sim::CaptureEngine& engine = sim::CaptureEngine::shared();
  const sim::Chip chip{sim::make_default_config()};

  const std::vector<std::pair<std::size_t, std::size_t>> grids =
      smoke ? std::vector<std::pair<std::size_t, std::size_t>>{{3, 3}}
            : std::vector<std::pair<std::size_t, std::size_t>>{{3, 3}, {4, 4}, {5, 5}};
  const std::vector<std::size_t> window_counts =
      smoke ? std::vector<std::size_t>{8} : std::vector<std::size_t>{16, 64};

  std::vector<Row> rows;
  bool golden_alarm_free = true;
  for (const auto& [nx, ny] : grids) {
    array::GridSpec spec;
    spec.nx = nx;
    spec.ny = ny;
    const array::SensorGrid grid{chip.floorplan(), spec};
    const array::ArrayCapture capture{grid};

    array::ArrayCalibrationOptions calibration_options;
    calibration_options.windows = smoke ? 16 : 64;
    const auto t_calibrate = std::chrono::steady_clock::now();
    const array::ArrayCalibration calibration =
        array::calibrate_array(capture, engine, chip, calibration_options);
    const double calibrate_s = seconds_since(t_calibrate);

    const array::Localizer localizer{grid};
    for (const std::size_t windows : window_counts) {
      Row row;
      row.nx = nx;
      row.ny = ny;
      row.windows = windows;
      row.calibrate_s = calibrate_s;
      row.engine_threads = engine.thread_count();
      row.oversubscribed =
          hardware_threads > 0 && engine.thread_count() > hardware_threads;

      const auto t_capture = std::chrono::steady_clock::now();
      const array::BundleSet bundles =
          capture.capture_batch(engine, chip, windows, 100000);
      const double capture_s = seconds_since(t_capture);
      row.capture_bundles_per_sec = static_cast<double>(windows) / capture_s;

      array::ArrayMonitor monitor{grid, calibration};
      const auto t_push = std::chrono::steady_clock::now();
      monitor.push_bundles(bundles);
      const double push_s = seconds_since(t_push);
      row.push_bundles_per_sec = static_cast<double>(windows) / push_s;
      if (monitor.any_alarm()) {
        std::fprintf(stderr, "perf_array: golden replay alarmed at %zux%zu/%zu windows\n",
                     nx, ny, windows);
        golden_alarm_free = false;
      }

      const auto t_localize = std::chrono::steady_clock::now();
      const array::LocalizationReport report = localizer.localize(monitor.anomaly_energy());
      row.localize_us = seconds_since(t_localize) * 1e6;
      (void)report;

      std::printf("%zux%zu  %3zu windows: capture %8.1f bundles/s, push %8.1f bundles/s,"
                  " localize %6.1f us (calibrate %.2f s)\n",
                  nx, ny, windows, row.capture_bundles_per_sec, row.push_bundles_per_sec,
                  row.localize_us, calibrate_s);
      rows.push_back(row);
    }
  }

  std::ofstream out(out_path);
  out << "{\n";
  out << "  \"hardware_threads\": " << hardware_threads << ",\n";
  out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  out << "  \"trace_samples\": " << chip.samples_per_trace() << ",\n";
  out << "  \"golden_alarm_free\": " << (golden_alarm_free ? "true" : "false") << ",\n";
  out << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char line[512];
    std::snprintf(line, sizeof line,
                  "    {\"grid\": \"%zux%zu\", \"sensors\": %zu, \"windows\": %zu,"
                  " \"calibrate_s\": %.3f, \"capture_bundles_per_sec\": %.2f,"
                  " \"push_bundles_per_sec\": %.2f, \"localize_us\": %.2f,"
                  " \"engine_threads\": %zu, \"oversubscribed\": %s}%s\n",
                  r.nx, r.ny, r.nx * r.ny, r.windows, r.calibrate_s,
                  r.capture_bundles_per_sec, r.push_bundles_per_sec, r.localize_us,
                  r.engine_threads, r.oversubscribed ? "true" : "false",
                  i + 1 < rows.size() ? "," : "");
    out << line;
  }
  out << "  ]\n";
  out << "}\n";
  std::printf("wrote %s\n", out_path.c_str());
  return golden_alarm_free ? 0 : 1;
}
