// Ablation: PCA dimensionality and the residual term (DESIGN.md §3).
// Paper Sec. III-D motivates PCA as dimensionality reduction before the
// Euclidean distance; this bench quantifies two design choices our
// implementation makes explicit:
//   * how many principal components to keep,
//   * whether to include the out-of-model residual (Q-statistic) in the
//     score — without it, a Trojan signature orthogonal to the golden
//     variation subspace is invisible.
#include <cstdio>

#include "bench_util.hpp"
#include "core/euclidean.hpp"
#include "io/table.hpp"

using namespace emts;

namespace {

double t2_margin(const core::TraceSet& golden, const core::TraceSet& suspect,
                 std::size_t components, bool residual) {
  core::EuclideanDetector::Options options;
  options.pca_components = components;
  options.include_residual = residual;
  const auto det = core::EuclideanDetector::calibrate(golden, options);
  return det.population_distance(suspect) / det.threshold();
}

}  // namespace

int main() {
  std::printf("=== Ablation: PCA components x residual term (T2 detection margin) ===\n\n");

  sim::Chip chip{sim::make_default_config()};
  const auto golden = bench::capture_set(chip, sim::Pickup::kOnChipSensor, 48, 0);
  chip.arm(trojan::TrojanKind::kT2Leakage);
  const auto suspect = bench::capture_set(chip, sim::Pickup::kOnChipSensor, 16, 5000);
  chip.disarm_all();

  io::Table table{{"PCA components", "margin (proj only)", "margin (proj + residual)"}};
  double best_projection_only = 0.0;
  double worst_with_residual = 1e18;
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const double proj = t2_margin(golden, suspect, k, false);
    const double with_residual = t2_margin(golden, suspect, k, true);
    table.add_row({std::to_string(k), io::Table::num(proj, 3),
                   io::Table::num(with_residual, 3)});
    best_projection_only = std::max(best_projection_only, proj);
    worst_with_residual = std::min(worst_with_residual, with_residual);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("margin = population distance / EDth; > 1 means detected.\n\n");

  bench::ShapeChecks checks;
  checks.expect(worst_with_residual > 1.0,
                "with the residual term, detection is robust across all k");
  checks.expect(worst_with_residual > best_projection_only,
                "the residual term dominates any pure-projection configuration");
  return checks.exit_code();
}
