// Ablation: challenge workload vs random traffic. The framework calibrates
// on a *known* workload (paper Sec. III-B: "the users know how the circuit
// will operate"). This bench measures what that assumption is worth — and
// finds a robustness result: with the default mean-pooling preprocessing,
// the data-dependent activity variation averages out below the noise floor,
// so EDth and the detection margins barely move under random traffic. The
// known-workload assumption buys repeatability (and matters for TVLA-style
// per-sample analyses, see examples/leakage_assessment), but the Eq. 1
// detector does not depend on it.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "core/euclidean.hpp"
#include "io/table.hpp"

using namespace emts;

namespace {

struct Row {
  double edth = 0.0;
  double margin_t3 = 0.0;
  double margin_t4 = 0.0;
};

Row evaluate(bool fixed_workload) {
  sim::ChipConfig config = sim::make_default_config();
  config.fixed_challenge_workload = fixed_workload;
  sim::Chip chip{config};

  const auto det = core::EuclideanDetector::calibrate(
      bench::capture_set(chip, sim::Pickup::kOnChipSensor, 48, 0));

  Row row;
  row.edth = det.threshold();
  chip.arm(trojan::TrojanKind::kT3Cdma);
  row.margin_t3 = det.population_distance(
                      bench::capture_set(chip, sim::Pickup::kOnChipSensor, 16, 5000)) /
                  det.threshold();
  chip.arm(trojan::TrojanKind::kT4PowerHog);
  row.margin_t4 = det.population_distance(
                      bench::capture_set(chip, sim::Pickup::kOnChipSensor, 16, 6000)) /
                  det.threshold();
  chip.disarm_all();
  return row;
}

}  // namespace

int main() {
  std::printf("=== Ablation: fixed challenge workload vs random traffic ===\n\n");

  const Row fixed = evaluate(true);
  const Row random = evaluate(false);

  io::Table table{{"workload", "EDth", "T3 margin", "T4 margin"}};
  table.add_row({"fixed challenge (default)", io::Table::num(fixed.edth, 3),
                 io::Table::num(fixed.margin_t3, 3), io::Table::num(fixed.margin_t4, 3)});
  table.add_row({"random traffic", io::Table::num(random.edth, 3),
                 io::Table::num(random.margin_t3, 3), io::Table::num(random.margin_t4, 3)});
  std::printf("%s\n", table.render().c_str());
  std::printf("margin = population distance / EDth; > 1 means detected.\n\n");

  bench::ShapeChecks checks;
  checks.expect(std::abs(random.edth - fixed.edth) < 0.3 * fixed.edth,
                "EDth is workload-insensitive (mean pooling averages data variation out)");
  checks.expect(fixed.margin_t3 > 1.0, "T3 detected under the challenge workload");
  checks.expect(random.margin_t3 > 1.0, "T3 stays detectable under random traffic");
  checks.expect(random.margin_t4 > 1.0, "T4 stays detectable under random traffic");
  return checks.exit_code();
}
