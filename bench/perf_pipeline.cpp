// Performance microbenchmarks (google-benchmark): the computational cost of
// each pipeline stage — FFT, PCA fit, coupling solve, capture synthesis,
// per-trace scoring — so a deployment can budget its analysis module.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/euclidean.hpp"
#include "core/evaluator.hpp"
#include "core/monitor.hpp"
#include "core/spectral.hpp"
#include "fleet/fleet.hpp"
#include "io/calibration.hpp"
#include "dsp/fft.hpp"
#include "em/mutual.hpp"
#include "layout/power_grid.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"
#include "stats/pca.hpp"
#include "util/alloc_counter.hpp"
#include "util/rng.hpp"

using namespace emts;

namespace {

sim::Chip& shared_chip() {
  static sim::Chip chip{sim::make_default_config()};
  return chip;
}

core::TraceSet shared_golden() {
  return sim::CaptureEngine::shared().capture_batch(shared_chip(),
                                                    sim::Pickup::kOnChipSensor, 48, 0);
}

void BM_FftForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng{1};
  std::vector<dsp::cplx> data(n);
  for (auto& x : data) x = dsp::cplx{rng.gaussian(), 0.0};
  for (auto _ : state) {
    auto work = data;
    dsp::fft_in_place(work);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftForward)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_PcaFit(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  Rng rng{2};
  linalg::Matrix data{rows, 256};
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < 256; ++c) data(r, c) = rng.gaussian();
  }
  for (auto _ : state) {
    auto model = stats::PcaModel::fit(data, 8);
    benchmark::DoNotOptimize(&model);
  }
}
BENCHMARK(BM_PcaFit)->Arg(32)->Arg(64)->Arg(128);

void BM_CouplingSolve(benchmark::State& state) {
  const layout::DieSpec die{};
  const auto fp = layout::reference_floorplan(die);
  const auto loops = layout::supply_loops(fp, layout::PadRing::for_die(die));
  const auto coil = em::make_onchip_spiral(die, em::OnChipSpiralSpec{});
  for (auto _ : state) {
    const auto m = em::couplings(loops, coil);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_CouplingSolve);

void BM_ChipCapture(benchmark::State& state) {
  sim::Chip& chip = shared_chip();
  std::uint64_t index = 1000000;
  for (auto _ : state) {
    const auto acq = chip.capture(true, index++);
    benchmark::DoNotOptimize(acq.onchip_v.data());
  }
}
BENCHMARK(BM_ChipCapture);

// Acquisition throughput, serial vs. parallel: items_per_second is
// traces/sec, so BENCH_*.json tracks the CaptureEngine speedup directly.
// Arg = worker threads (1 = the serial inline path).
void BM_CaptureBatch(benchmark::State& state) {
  sim::EngineOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  sim::CaptureEngine engine{options};
  const sim::Chip& chip = shared_chip();
  constexpr std::size_t kBatch = 16;
  std::uint64_t index = 2000000;
  for (auto _ : state) {
    const auto set =
        engine.capture_batch(chip, sim::Pickup::kOnChipSensor, kBatch, index);
    index += kBatch;
    benchmark::DoNotOptimize(set.traces.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_CaptureBatch)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Both pickups of the same windows in one pass (the Fig. 6 campaign shape).
void BM_CapturePairBatch(benchmark::State& state) {
  sim::EngineOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  sim::CaptureEngine engine{options};
  const sim::Chip& chip = shared_chip();
  constexpr std::size_t kBatch = 16;
  std::uint64_t index = 3000000;
  for (auto _ : state) {
    const auto pair = engine.capture_pair_batch(chip, kBatch, index);
    index += kBatch;
    benchmark::DoNotOptimize(pair.onchip.traces.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_CapturePairBatch)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_DetectorCalibrate(benchmark::State& state) {
  const auto golden = shared_golden();
  for (auto _ : state) {
    auto det = core::EuclideanDetector::calibrate(golden);
    benchmark::DoNotOptimize(&det);
  }
}
BENCHMARK(BM_DetectorCalibrate);

void BM_DetectorScore(benchmark::State& state) {
  const auto golden = shared_golden();
  const auto det = core::EuclideanDetector::calibrate(golden);
  const auto trace = shared_chip().capture(true, 777).onchip_v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.score(trace));
  }
}
BENCHMARK(BM_DetectorScore);

// Cold-start comparison: what a deployment pays to reach kMonitoring.
// Calibrating from golden captures fits PCA + spectra from scratch;
// loading an EMCA artifact is pure deserialization.
void BM_ColdStartCalibrate(benchmark::State& state) {
  const auto golden = shared_golden();
  for (auto _ : state) {
    auto evaluator = core::TrustEvaluator::calibrate(golden);
    benchmark::DoNotOptimize(&evaluator);
  }
}
BENCHMARK(BM_ColdStartCalibrate)->Unit(benchmark::kMillisecond);

void BM_CalibrateAndSave(benchmark::State& state) {
  const auto golden = shared_golden();
  const auto path =
      (std::filesystem::temp_directory_path() / "emts_bench_model.emca").string();
  for (auto _ : state) {
    const auto evaluator = core::TrustEvaluator::calibrate(golden);
    io::save_calibration(path, evaluator);
    benchmark::DoNotOptimize(&evaluator);
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_CalibrateAndSave)->Unit(benchmark::kMillisecond);

void BM_ColdStartLoadArtifact(benchmark::State& state) {
  const auto path =
      (std::filesystem::temp_directory_path() / "emts_bench_model.emca").string();
  io::save_calibration(path, core::TrustEvaluator::calibrate(shared_golden()));
  for (auto _ : state) {
    auto evaluator = io::load_calibration(path);
    benchmark::DoNotOptimize(&evaluator);
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_ColdStartLoadArtifact)->Unit(benchmark::kMillisecond);

void BM_SpectralAnalyze(benchmark::State& state) {
  const auto golden = shared_golden();
  const auto det = core::SpectralDetector::calibrate(golden);
  const auto trace = shared_chip().capture(true, 778).onchip_v;
  for (auto _ : state) {
    const auto report = det.analyze(trace);
    benchmark::DoNotOptimize(&report);
  }
}
BENCHMARK(BM_SpectralAnalyze);

// ---------------------------------------------------------------------------
// Streaming monitor hot path: the pre-ring per-push loop vs RuntimeMonitor.
// ---------------------------------------------------------------------------

constexpr std::size_t kMonitorWindow = 64;

/// The monitoring loop as it existed before the streaming rework, preserved
/// verbatim for comparison: every score allocates fresh feature buffers, the
/// spectral window is an accumulated TraceSet copy, and each windowed pass
/// rebuilds the FFT window/twiddles from scratch.
class SeedStyleMonitor {
 public:
  explicit SeedStyleMonitor(const core::TrustEvaluator& evaluator)
      : evaluator_{evaluator} {
    window_.sample_rate = evaluator.sample_rate();
  }

  void push(const core::Trace& trace) {
    for (const auto& detector : evaluator_.detectors()) {
      if (detector->windowed()) continue;
      benchmark::DoNotOptimize(detector->score(trace));
    }
    window_.add(trace);
    if (window_.size() >= kMonitorWindow) {
      if (const auto* sd = evaluator_.try_spectral()) {
        const auto report = sd->analyze(window_);
        benchmark::DoNotOptimize(&report);
      }
      window_.traces.clear();
    }
  }

 private:
  const core::TrustEvaluator& evaluator_;
  core::TraceSet window_;
};

const core::TrustEvaluator& shared_evaluator() {
  static const core::TrustEvaluator evaluator = core::TrustEvaluator::calibrate(shared_golden());
  return evaluator;
}

const core::TraceSet& shared_stream() {
  static const core::TraceSet stream = sim::CaptureEngine::shared().capture_batch(
      shared_chip(), sim::Pickup::kOnChipSensor, 4 * kMonitorWindow, 5000000);
  return stream;
}

core::RuntimeMonitor::Options monitor_options() {
  core::RuntimeMonitor::Options options;
  options.spectral_window = kMonitorWindow;
  return options;
}

void BM_MonitorSeedStylePush(benchmark::State& state) {
  const auto& stream = shared_stream();
  SeedStyleMonitor monitor{shared_evaluator()};
  for (auto _ : state) {
    for (const auto& trace : stream.traces) monitor.push(trace);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_MonitorSeedStylePush)->Unit(benchmark::kMillisecond);

void BM_MonitorStreamPush(benchmark::State& state) {
  const auto& stream = shared_stream();
  core::RuntimeMonitor monitor{shared_chip().sample_rate(), shared_evaluator(),
                               monitor_options()};
  // Warm-up outside the measured region: size every scratch, slot and plan.
  for (const auto& trace : stream.traces) monitor.push(trace);
  for (auto _ : state) {
    for (const auto& trace : stream.traces) monitor.push(trace);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_MonitorStreamPush)->Unit(benchmark::kMillisecond);

void BM_MonitorStreamBatch(benchmark::State& state) {
  const auto& stream = shared_stream();
  core::RuntimeMonitor monitor{shared_chip().sample_rate(), shared_evaluator(),
                               monitor_options()};
  monitor.push_batch(stream);  // warm-up
  for (auto _ : state) {
    monitor.push_batch(stream);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_MonitorStreamBatch)->Unit(benchmark::kMillisecond);

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Fleet monitor: shard scaling and queue saturation.
// ---------------------------------------------------------------------------

std::vector<std::string> fleet_device_ids(std::size_t devices) {
  std::vector<std::string> ids;
  ids.reserve(devices);
  for (std::size_t d = 0; d < devices; ++d) ids.push_back("chip-" + std::to_string(d));
  return ids;
}

fleet::FleetOptions fleet_options(std::size_t shards, fleet::BackpressurePolicy policy,
                                  std::size_t queue_capacity) {
  fleet::FleetOptions options;
  options.shards = shards;
  options.queue_capacity = queue_capacity;
  options.backpressure = policy;
  options.monitor.spectral_window = kMonitorWindow;
  return options;
}

/// One producer feeding a device fleet round-robin, as a shared capture
/// front-end would. Scoring dominates (a submit is a 32 KiB copy plus a
/// queue push; a push through the detector stack is ~100x that), so
/// traces/sec tracks how many shard workers the machine keeps busy.
double fleet_rate(std::size_t shards, std::size_t devices, std::size_t per_device) {
  const auto& stream = shared_stream();
  fleet::FleetMonitor monitor{
      fleet_options(shards, fleet::BackpressurePolicy::kBlock, 64)};
  const std::vector<std::string> ids = fleet_device_ids(devices);
  for (const std::string& id : ids) {
    monitor.add_device(id, core::TrustEvaluator{shared_evaluator()});
  }
  // Warm-up round: size every session's scratches and plans.
  for (const std::string& id : ids) {
    monitor.submit(id, core::Trace{stream.traces[0]});
  }
  monitor.flush();

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < per_device; ++t) {
    const core::Trace& trace = stream.traces[t % stream.size()];
    for (const std::string& id : ids) monitor.submit(id, core::Trace{trace});
  }
  monitor.flush();
  const double elapsed = seconds_since(t0);
  return static_cast<double>(devices) * static_cast<double>(per_device) / elapsed;
}

void BM_FleetSubmit(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto devices = static_cast<std::size_t>(state.range(1));
  const auto& stream = shared_stream();
  fleet::FleetMonitor monitor{
      fleet_options(shards, fleet::BackpressurePolicy::kBlock, 64)};
  const std::vector<std::string> ids = fleet_device_ids(devices);
  for (const std::string& id : ids) {
    monitor.add_device(id, core::TrustEvaluator{shared_evaluator()});
  }
  constexpr std::size_t kRound = 8;
  std::size_t t = 0;
  for (auto _ : state) {
    for (std::size_t r = 0; r < kRound; ++r) {
      const core::Trace& trace = stream.traces[t++ % stream.size()];
      for (const std::string& id : ids) monitor.submit(id, core::Trace{trace});
    }
    monitor.flush();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kRound * devices));
}
BENCHMARK(BM_FleetSubmit)
    ->ArgNames({"shards", "devices"})
    ->Args({1, 16})
    ->Args({2, 16})
    ->Args({4, 16})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

struct FleetSaturationResult {
  std::uint64_t submitted = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t rejected = 0;
  std::size_t queue_high_water = 0;
  double wall_seconds = 0.0;
};

/// Slams one shard with a burst far beyond its queue capacity: the producer
/// outruns the scorer by ~100x, so the queue saturates immediately and the
/// policy decides what gives — the producer (BLOCK), completeness
/// (DROP_OLDEST) or admission (REJECT).
FleetSaturationResult fleet_saturation(fleet::BackpressurePolicy policy, std::size_t burst) {
  const auto& stream = shared_stream();
  constexpr std::size_t kQueue = 8;
  fleet::FleetMonitor monitor{fleet_options(1, policy, kQueue)};
  monitor.add_device("chip-0", core::TrustEvaluator{shared_evaluator()});
  monitor.submit("chip-0", core::Trace{stream.traces[0]});  // warm-up
  monitor.flush();

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < burst; ++t) {
    monitor.submit("chip-0", core::Trace{stream.traces[t % stream.size()]});
  }
  monitor.flush();
  const double elapsed = seconds_since(t0);

  const fleet::FleetStats stats = monitor.stats();
  FleetSaturationResult result;
  result.submitted = stats.shards[0].submitted;
  result.processed = stats.shards[0].processed;
  result.dropped = stats.shards[0].dropped_oldest;
  result.rejected = stats.shards[0].rejected_full;
  result.queue_high_water = stats.shards[0].queue_high_water;
  result.wall_seconds = elapsed;
  return result;
}

/// Fleet measurements serialized to BENCH_fleet.json: traces/sec against
/// shard count at 1/4/16/64 devices, the 1->4 shard speedup at 16 devices,
/// and the per-policy queue-saturation accounting. Shard scaling needs
/// hardware parallelism — on a single-core host every curve is flat, so the
/// file records hardware_threads alongside the rates.
void write_fleet_bench_json(const char* path) {
  const std::size_t shard_counts[] = {1, 2, 4};
  const std::size_t device_counts[] = {1, 4, 16, 64};

  const unsigned hardware_threads = std::thread::hardware_concurrency();
  std::ofstream out{path};
  // hardware_threads leads (BENCH_daemon.json convention): every rate below
  // is meaningless without it, and rows flag oversubscription explicitly.
  out << "{\n"
      << "  \"hardware_threads\": " << hardware_threads << ",\n"
      << "  \"trace_samples\": " << shared_stream().trace_length() << ",\n"
      << "  \"queue_capacity\": 64,\n"
      << "  \"scaling\": [\n";
  double rate_1_shard_16_dev = 0.0;
  double rate_4_shards_16_dev = 0.0;
  bool first = true;
  for (const std::size_t devices : device_counts) {
    // Every device streams exactly one spectral window, so each row carries
    // the same per-trace work mix and rates compare across device counts.
    const std::size_t per_device = kMonitorWindow;
    for (const std::size_t shards : shard_counts) {
      const double rate = fleet_rate(shards, devices, per_device);
      const bool oversubscribed = hardware_threads > 0 && shards > hardware_threads;
      if (oversubscribed) {
        std::fprintf(stderr,
                     "warning: %zu shards exceed %u hardware threads — fleet rate is"
                     " a contention measurement, not a capacity\n",
                     shards, hardware_threads);
      }
      if (devices == 16 && shards == 1) rate_1_shard_16_dev = rate;
      if (devices == 16 && shards == 4) rate_4_shards_16_dev = rate;
      if (!first) out << ",\n";
      first = false;
      out << "    {\"shards\": " << shards << ", \"devices\": " << devices
          << ", \"traces_per_sec\": " << rate
          << ", \"oversubscribed\": " << (oversubscribed ? "true" : "false") << "}";
    }
  }
  const double speedup = rate_4_shards_16_dev / rate_1_shard_16_dev;
  out << "\n  ],\n"
      << "  \"speedup_1_to_4_shards_at_16_devices\": " << speedup << ",\n"
      << "  \"saturation\": [\n";

  const fleet::BackpressurePolicy policies[] = {fleet::BackpressurePolicy::kBlock,
                                                fleet::BackpressurePolicy::kDropOldest,
                                                fleet::BackpressurePolicy::kReject};
  constexpr std::size_t kBurst = 256;
  for (std::size_t p = 0; p < 3; ++p) {
    const FleetSaturationResult r = fleet_saturation(policies[p], kBurst);
    out << "    {\"policy\": \"" << fleet::backpressure_label(policies[p]) << "\""
        << ", \"burst\": " << kBurst << ", \"queue_capacity\": 8"
        << ", \"submitted\": " << r.submitted << ", \"processed\": " << r.processed
        << ", \"dropped_oldest\": " << r.dropped << ", \"rejected\": " << r.rejected
        << ", \"queue_high_water\": " << r.queue_high_water
        << ", \"wall_seconds\": " << r.wall_seconds << "}" << (p + 1 < 3 ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  std::printf("fleet: 1->4 shards at 16 devices %.2fx (%u hardware threads) -> %s\n",
              speedup, std::thread::hardware_concurrency(), path);
}

/// One streamed-monitor measurement: rate, steady-state allocations, and the
/// monitor's own push/spectral latency histograms.
struct MonitorRunResult {
  double traces_per_sec = 0.0;
  std::uint64_t allocations = 0;
  std::uint64_t allocated_bytes = 0;
  double push_p50_ns = 0.0;
  double push_p99_ns = 0.0;
  std::uint64_t push_max_ns = 0;
  double spectral_p50_ns = 0.0;
  double spectral_p99_ns = 0.0;
};

MonitorRunResult run_streamed_monitor(bool incremental_spectral, int repeats) {
  const auto& stream = shared_stream();
  core::RuntimeMonitor::Options options = monitor_options();
  options.incremental_spectral = incremental_spectral;
  core::RuntimeMonitor monitor{shared_chip().sample_rate(), shared_evaluator(), options};
  for (const auto& trace : stream.traces) monitor.push(trace);  // warm-up
  const auto alloc0 = util::alloc::thread_counts();
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) monitor.push_batch(stream);
  const double elapsed = seconds_since(t0);
  const auto alloc1 = util::alloc::thread_counts();

  MonitorRunResult result;
  result.traces_per_sec = static_cast<double>(repeats) *
                          static_cast<double>(stream.size()) / elapsed;
  result.allocations = alloc1.allocations - alloc0.allocations;
  result.allocated_bytes = alloc1.bytes - alloc0.bytes;
  result.push_p50_ns = monitor.stats().push_latency.p50_ns();
  result.push_p99_ns = monitor.stats().push_latency.p99_ns();
  result.push_max_ns = monitor.stats().push_latency.max_ns();
  result.spectral_p50_ns = monitor.stats().spectral_latency.p50_ns();
  result.spectral_p99_ns = monitor.stats().spectral_latency.p99_ns();
  return result;
}

void write_monitor_run_json(std::ofstream& out, const MonitorRunResult& r) {
  out << "    \"traces_per_sec\": " << r.traces_per_sec << ",\n"
      << "    \"allocations\": " << r.allocations << ",\n"
      << "    \"allocated_bytes\": " << r.allocated_bytes << ",\n"
      << "    \"push_p50_ns\": " << r.push_p50_ns << ",\n"
      << "    \"push_p99_ns\": " << r.push_p99_ns << ",\n"
      << "    \"push_max_ns\": " << r.push_max_ns << ",\n"
      << "    \"push_p99_over_p50\": "
      << (r.push_p50_ns > 0.0 ? r.push_p99_ns / r.push_p50_ns : 0.0) << ",\n"
      << "    \"spectral_p50_ns\": " << r.spectral_p50_ns << ",\n"
      << "    \"spectral_p99_ns\": " << r.spectral_p99_ns << "\n";
}

/// Direct head-to-head measurement serialized to BENCH_monitor.json: streamed
/// (incremental spectral, the default) vs batch-recompute vs seed-style
/// traces/sec on a 64-trace window, steady-state allocation counts, and the
/// monitor's own p50/p99 push latency with the tail ratio tracked directly
/// as push_p99_over_p50 (CI asserts it stays within ~10x).
void write_monitor_bench_json(const char* path) {
  const auto& stream = shared_stream();
  const auto& evaluator = shared_evaluator();
  constexpr int kRepeats = 4;

  SeedStyleMonitor seed{evaluator};
  for (const auto& trace : stream.traces) seed.push(trace);  // equal-footing warm-up
  auto seed_alloc0 = util::alloc::thread_counts();
  const auto seed_t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < kRepeats; ++r) {
    for (const auto& trace : stream.traces) seed.push(trace);
  }
  const double seed_elapsed = seconds_since(seed_t0);
  const auto seed_alloc1 = util::alloc::thread_counts();

  const MonitorRunResult incremental =
      run_streamed_monitor(/*incremental_spectral=*/true, kRepeats);
  const MonitorRunResult batch =
      run_streamed_monitor(/*incremental_spectral=*/false, kRepeats);

  const double pushes = static_cast<double>(kRepeats) * static_cast<double>(stream.size());
  const double seed_rate = pushes / seed_elapsed;

  std::ofstream out{path};
  out << "{\n"
      << "  \"window_traces\": " << kMonitorWindow << ",\n"
      << "  \"trace_samples\": " << stream.trace_length() << ",\n"
      << "  \"measured_pushes\": " << static_cast<std::uint64_t>(pushes) << ",\n"
      << "  \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"alloc_counting_active\": "
      << (util::alloc::counting_active() ? "true" : "false") << ",\n"
      << "  \"seed_style\": {\n"
      << "    \"traces_per_sec\": " << seed_rate << ",\n"
      << "    \"allocations\": " << (seed_alloc1.allocations - seed_alloc0.allocations)
      << ",\n"
      << "    \"allocated_bytes\": " << (seed_alloc1.bytes - seed_alloc0.bytes) << "\n"
      << "  },\n"
      << "  \"streamed\": {\n";
  write_monitor_run_json(out, incremental);
  out << "  },\n"
      << "  \"streamed_batch_recompute\": {\n";
  write_monitor_run_json(out, batch);
  out << "  },\n"
      << "  \"speedup\": " << (incremental.traces_per_sec / seed_rate) << "\n"
      << "}\n";
  std::printf("monitor hot path: seed %.0f traces/s, streamed %.0f traces/s (%.2fx), "
              "batch-recompute %.0f traces/s, push p99/p50 %.2f -> %s\n",
              seed_rate, incremental.traces_per_sec,
              incremental.traces_per_sec / seed_rate, batch.traces_per_sec,
              incremental.push_p50_ns > 0.0
                  ? incremental.push_p99_ns / incremental.push_p50_ns
                  : 0.0,
              path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_monitor_bench_json("BENCH_monitor.json");
  write_fleet_bench_json("BENCH_fleet.json");
  return 0;
}
