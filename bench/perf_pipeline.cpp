// Performance microbenchmarks (google-benchmark): the computational cost of
// each pipeline stage — FFT, PCA fit, coupling solve, capture synthesis,
// per-trace scoring — so a deployment can budget its analysis module.
#include <benchmark/benchmark.h>

#include <filesystem>

#include "core/euclidean.hpp"
#include "core/evaluator.hpp"
#include "core/spectral.hpp"
#include "io/calibration.hpp"
#include "dsp/fft.hpp"
#include "em/mutual.hpp"
#include "layout/power_grid.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"
#include "stats/pca.hpp"
#include "util/rng.hpp"

using namespace emts;

namespace {

sim::Chip& shared_chip() {
  static sim::Chip chip{sim::make_default_config()};
  return chip;
}

core::TraceSet shared_golden() {
  return sim::CaptureEngine::shared().capture_batch(shared_chip(),
                                                    sim::Pickup::kOnChipSensor, 48, 0);
}

void BM_FftForward(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng{1};
  std::vector<dsp::cplx> data(n);
  for (auto& x : data) x = dsp::cplx{rng.gaussian(), 0.0};
  for (auto _ : state) {
    auto work = data;
    dsp::fft_in_place(work);
    benchmark::DoNotOptimize(work.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FftForward)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_PcaFit(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  Rng rng{2};
  linalg::Matrix data{rows, 256};
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < 256; ++c) data(r, c) = rng.gaussian();
  }
  for (auto _ : state) {
    auto model = stats::PcaModel::fit(data, 8);
    benchmark::DoNotOptimize(&model);
  }
}
BENCHMARK(BM_PcaFit)->Arg(32)->Arg(64)->Arg(128);

void BM_CouplingSolve(benchmark::State& state) {
  const layout::DieSpec die{};
  const auto fp = layout::reference_floorplan(die);
  const auto loops = layout::supply_loops(fp, layout::PadRing::for_die(die));
  const auto coil = em::make_onchip_spiral(die, em::OnChipSpiralSpec{});
  for (auto _ : state) {
    const auto m = em::couplings(loops, coil);
    benchmark::DoNotOptimize(m.data());
  }
}
BENCHMARK(BM_CouplingSolve);

void BM_ChipCapture(benchmark::State& state) {
  sim::Chip& chip = shared_chip();
  std::uint64_t index = 1000000;
  for (auto _ : state) {
    const auto acq = chip.capture(true, index++);
    benchmark::DoNotOptimize(acq.onchip_v.data());
  }
}
BENCHMARK(BM_ChipCapture);

// Acquisition throughput, serial vs. parallel: items_per_second is
// traces/sec, so BENCH_*.json tracks the CaptureEngine speedup directly.
// Arg = worker threads (1 = the serial inline path).
void BM_CaptureBatch(benchmark::State& state) {
  sim::EngineOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  sim::CaptureEngine engine{options};
  const sim::Chip& chip = shared_chip();
  constexpr std::size_t kBatch = 16;
  std::uint64_t index = 2000000;
  for (auto _ : state) {
    const auto set =
        engine.capture_batch(chip, sim::Pickup::kOnChipSensor, kBatch, index);
    index += kBatch;
    benchmark::DoNotOptimize(set.traces.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_CaptureBatch)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Both pickups of the same windows in one pass (the Fig. 6 campaign shape).
void BM_CapturePairBatch(benchmark::State& state) {
  sim::EngineOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  sim::CaptureEngine engine{options};
  const sim::Chip& chip = shared_chip();
  constexpr std::size_t kBatch = 16;
  std::uint64_t index = 3000000;
  for (auto _ : state) {
    const auto pair = engine.capture_pair_batch(chip, kBatch, index);
    index += kBatch;
    benchmark::DoNotOptimize(pair.onchip.traces.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_CapturePairBatch)
    ->ArgName("threads")
    ->Arg(1)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_DetectorCalibrate(benchmark::State& state) {
  const auto golden = shared_golden();
  for (auto _ : state) {
    auto det = core::EuclideanDetector::calibrate(golden);
    benchmark::DoNotOptimize(&det);
  }
}
BENCHMARK(BM_DetectorCalibrate);

void BM_DetectorScore(benchmark::State& state) {
  const auto golden = shared_golden();
  const auto det = core::EuclideanDetector::calibrate(golden);
  const auto trace = shared_chip().capture(true, 777).onchip_v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.score(trace));
  }
}
BENCHMARK(BM_DetectorScore);

// Cold-start comparison: what a deployment pays to reach kMonitoring.
// Calibrating from golden captures fits PCA + spectra from scratch;
// loading an EMCA artifact is pure deserialization.
void BM_ColdStartCalibrate(benchmark::State& state) {
  const auto golden = shared_golden();
  for (auto _ : state) {
    auto evaluator = core::TrustEvaluator::calibrate(golden);
    benchmark::DoNotOptimize(&evaluator);
  }
}
BENCHMARK(BM_ColdStartCalibrate)->Unit(benchmark::kMillisecond);

void BM_CalibrateAndSave(benchmark::State& state) {
  const auto golden = shared_golden();
  const auto path =
      (std::filesystem::temp_directory_path() / "emts_bench_model.emca").string();
  for (auto _ : state) {
    const auto evaluator = core::TrustEvaluator::calibrate(golden);
    io::save_calibration(path, evaluator);
    benchmark::DoNotOptimize(&evaluator);
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_CalibrateAndSave)->Unit(benchmark::kMillisecond);

void BM_ColdStartLoadArtifact(benchmark::State& state) {
  const auto path =
      (std::filesystem::temp_directory_path() / "emts_bench_model.emca").string();
  io::save_calibration(path, core::TrustEvaluator::calibrate(shared_golden()));
  for (auto _ : state) {
    auto evaluator = io::load_calibration(path);
    benchmark::DoNotOptimize(&evaluator);
  }
  std::filesystem::remove(path);
}
BENCHMARK(BM_ColdStartLoadArtifact)->Unit(benchmark::kMillisecond);

void BM_SpectralAnalyze(benchmark::State& state) {
  const auto golden = shared_golden();
  const auto det = core::SpectralDetector::calibrate(golden);
  const auto trace = shared_chip().capture(true, 778).onchip_v;
  for (auto _ : state) {
    const auto report = det.analyze(trace);
    benchmark::DoNotOptimize(&report);
  }
}
BENCHMARK(BM_SpectralAnalyze);

}  // namespace

BENCHMARK_MAIN();
