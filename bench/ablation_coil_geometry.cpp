// Ablation: on-chip spiral geometry (DESIGN.md §3). Paper Sec. III-C argues
// the sensor's sensitivity "equals the accumulation of all the coils with
// gradually increasing diameters" — i.e. more turns -> more accumulated flux
// -> higher SNR -> larger detection margin. This bench sweeps the turn count
// and reports SNR plus the margin on the hardest Trojan (T3).
#include <cstdio>

#include "bench_util.hpp"
#include "core/euclidean.hpp"
#include "io/table.hpp"

using namespace emts;

int main() {
  std::printf("=== Ablation: spiral turn count vs SNR and T3 detection margin ===\n\n");

  io::Table table{{"turns", "turn area mm^2", "SNR dB", "EDth", "T3 distance", "T3 margin"}};
  double snr_prev = -1e9;
  bool snr_monotone = true;
  double margin_default = 0.0;
  double margin_min = 1e9;

  for (std::size_t turns : {2u, 4u, 8u, 12u, 16u, 20u}) {
    sim::ChipConfig config = sim::make_default_config();
    config.spiral.turns = turns;
    sim::Chip chip{config};

    const double snr = bench::measured_snr_db(chip, sim::Pickup::kOnChipSensor);
    const auto det = core::EuclideanDetector::calibrate(
        bench::capture_set(chip, sim::Pickup::kOnChipSensor, 40, 0));
    chip.arm(trojan::TrojanKind::kT3Cdma);
    const double d3 =
        det.population_distance(bench::capture_set(chip, sim::Pickup::kOnChipSensor, 16, 5000));
    chip.disarm_all();
    const double margin = d3 / det.threshold();

    table.add_row({std::to_string(turns),
                   io::Table::num(1e6 * chip.onchip_coil().total_turn_area(), 3),
                   io::Table::num(snr, 4), io::Table::num(det.threshold(), 3),
                   io::Table::num(d3, 3), io::Table::num(margin, 3)});

    if (snr < snr_prev - 0.5) snr_monotone = false;
    snr_prev = snr;
    if (turns == 12) margin_default = margin;
    margin_min = std::min(margin_min, margin);
  }
  std::printf("%s\n", table.render().c_str());

  bench::ShapeChecks checks;
  checks.expect(snr_monotone, "SNR grows (weakly) with turn count");
  checks.expect(margin_default > 1.0, "the shipped 12-turn sensor detects T3");
  checks.expect(margin_min < margin_default,
                "fewer turns shrink the margin — the accumulation argument holds");
  return checks.exit_code();
}
