// Extension bench: sensor tamper detection. Paper Sec. III-C: "The overall
// EM sensor structure is simple enough that any tampering of the sensor can
// be easily identified through basic measurements." An attacker who wants
// to blind the framework might cut or shorten the spiral (fewer turns =
// less coverage). Two basic measurements expose it:
//   1. the coil's DC resistance (proportional to wire length) changes;
//   2. the captured signal level collapses: the coil gathers ~30% less
//      flux, so the encrypting-capture RMS falls far outside the golden
//      spread. (The Euclidean fingerprint itself is deliberately
//      gain-insensitive — see ext_process_variation — which is exactly why
//      a deployment must also watch these two cheap health indicators.)
#include <cstdio>

#include "bench_util.hpp"
#include "io/table.hpp"
#include "stats/descriptive.hpp"

using namespace emts;

namespace {

// Sheet resistance proxy: ohms per meter of minimum-thickness top metal.
constexpr double kOhmsPerMeter = 900.0;

double coil_resistance(const em::Coil& coil) { return coil.total_length() * kOhmsPerMeter; }

}  // namespace

int main() {
  std::printf("=== Extension: tampered-sensor detection (paper Sec. III-C claim) ===\n\n");

  // Intact chip: the bring-up calibration records the healthy capture RMS.
  sim::ChipConfig intact_config = sim::make_default_config();
  sim::Chip intact{intact_config};
  std::vector<double> golden_rms;
  for (const auto& trace :
       bench::capture_set(intact, sim::Pickup::kOnChipSensor, 48, 0).traces) {
    golden_rms.push_back(stats::rms(trace));
  }
  const double rms_mean = stats::mean(golden_rms);
  const double rms_sd = stats::stddev(golden_rms);

  // Tampered chip: same die, same key, same seed — but the spiral lost its
  // outer turns (cut and re-bonded by the attacker).
  sim::ChipConfig tampered_config = intact_config;
  tampered_config.spiral.turns = 8;
  sim::Chip tampered{tampered_config};

  const double r_intact = coil_resistance(intact.onchip_coil());
  const double r_tampered = coil_resistance(tampered.onchip_coil());

  io::Table table{{"measurement", "intact sensor", "tampered (8 turns)", "change"}};
  table.add_row({"coil wire length (mm)",
                 io::Table::num(1e3 * intact.onchip_coil().total_length(), 4),
                 io::Table::num(1e3 * tampered.onchip_coil().total_length(), 4), ""});
  table.add_row({"coil DC resistance (ohm)", io::Table::num(r_intact, 4),
                 io::Table::num(r_tampered, 4),
                 io::Table::num(100.0 * (r_tampered - r_intact) / r_intact, 3) + "%"});

  // RMS health check on fresh traffic through both sensors.
  const auto clean_set = bench::capture_set(intact, sim::Pickup::kOnChipSensor, 16, 5000);
  const auto tampered_set = bench::capture_set(tampered, sim::Pickup::kOnChipSensor, 16, 5000);
  std::vector<double> clean_z;
  std::vector<double> tampered_z;
  for (std::size_t t = 0; t < 16; ++t) {
    clean_z.push_back((stats::rms(clean_set.traces[t]) - rms_mean) / rms_sd);
    tampered_z.push_back((stats::rms(tampered_set.traces[t]) - rms_mean) / rms_sd);
  }
  const double clean_worst = std::max(std::abs(stats::min_value(clean_z)),
                                      std::abs(stats::max_value(clean_z)));
  const double tampered_best = std::min(std::abs(stats::min_value(tampered_z)),
                                        std::abs(stats::max_value(tampered_z)));

  table.add_row({"capture RMS |z| (worst/best)", io::Table::num(clean_worst, 3),
                 io::Table::num(tampered_best, 3), "alarm at |z| > 6"});
  std::printf("%s\n", table.render().c_str());

  bench::ShapeChecks checks;
  checks.expect(std::abs(r_tampered - r_intact) > 0.1 * r_intact,
                "coil resistance shifts by >10% — caught by a basic DC measurement");
  checks.expect(clean_worst < 6.0, "the intact sensor's RMS stays within its spread");
  checks.expect(tampered_best > 6.0,
                "every capture through the tampered sensor fails the RMS health check");
  return checks.exit_code();
}
