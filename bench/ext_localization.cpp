// Extension bench: Trojan localization accuracy (sim/scan.hpp). For each
// digital Trojan and the A2 cell, a near-field scan difference map is
// matched against every module's supply-loop pattern; the bench reports
// which module wins and the score margin. Builds on the paper's "location
// awareness" advantage of the EM side channel (Sec. III-A).
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "io/table.hpp"
#include "sim/scan.hpp"

using namespace emts;

int main() {
  std::printf("=== Extension: Trojan localization by near-field scan matching ===\n\n");

  sim::Chip chip{sim::make_default_config()};
  sim::ScanSpec spec;
  spec.nx = 20;
  spec.ny = 20;
  const auto golden = sim::near_field_scan(chip, spec, true, 0);

  const struct {
    trojan::TrojanKind kind;
    const char* expected;
  } cases[] = {
      {trojan::TrojanKind::kT1AmLeak, layout::module_names::kTrojan1},
      {trojan::TrojanKind::kT2Leakage, layout::module_names::kTrojan2},
      {trojan::TrojanKind::kT3Cdma, layout::module_names::kTrojan3},
      {trojan::TrojanKind::kT4PowerHog, layout::module_names::kTrojan4},
      {trojan::TrojanKind::kA2Analog, layout::module_names::kTrojanA2},
  };

  io::Table table{{"trojan", "matched module", "correct", "score margin", "peak (um, um)",
                   "contrast"}};
  bench::ShapeChecks checks;
  int correct_count = 0;
  for (const auto& c : cases) {
    chip.arm(c.kind);
    const auto suspect = sim::near_field_scan(chip, spec, true, 0);
    chip.disarm_all();
    const auto result =
        sim::localize_anomaly(golden, suspect, chip.floorplan(), chip.config().die);

    const bool correct = result.module_name == c.expected;
    correct_count += correct;
    char peak[48];
    std::snprintf(peak, sizeof peak, "(%.0f, %.0f)", 1e6 * result.peak_x, 1e6 * result.peak_y);
    const double margin = result.runner_up_score > 0.0
                              ? result.match_score / result.runner_up_score
                              : 0.0;
    table.add_row({trojan::kind_label(c.kind), result.module_name, correct ? "yes" : "no",
                   io::Table::num(margin, 3), peak, io::Table::num(result.contrast, 3)});
  }
  std::printf("%s\n", table.render().c_str());

  checks.expect(correct_count >= 4, "at least 4 of 5 Trojans localized to their own module");
  return checks.exit_code();
}
