// Extension bench: the golden-chip question. Side-channel fingerprinting
// classically worries that process variation between dies shifts the
// fingerprint and masquerades as tampering. This bench measures it on the
// silicon model: a detector calibrated on die #1 scores the clean traces of
// sibling dies (whose stack heights and per-module couplings all vary).
//
// Finding: with the default mean-pooling preprocessing the cross-die margins
// stay as low as the self-calibrated ones — amplitude-scale and per-module
// coupling variation largely cancel in the features, so a factory golden
// reference generalizes *within this model*. Real silicon adds timing-level
// variation (Vth/RC skew reshaping edges) that this substrate does not
// capture, which is why the framework still defaults to per-die calibration
// on the trusted bring-up window (Fig. 1); this bench bounds which variation
// sources the pipeline is already immune to.
#include <cstdio>

#include "bench_util.hpp"
#include "core/euclidean.hpp"
#include "io/table.hpp"
#include "sim/silicon.hpp"

using namespace emts;

namespace {

sim::Chip make_die(std::uint64_t serial) {
  sim::SiliconOptions options;
  options.chip_serial = serial;
  return sim::Chip{sim::make_silicon_config(options)};
}

}  // namespace

int main() {
  std::printf("=== Extension: process variation and the golden-chip problem ===\n\n");

  // Factory reference: detector calibrated on die #1.
  sim::Chip die1 = make_die(1);
  const auto factory_detector = core::EuclideanDetector::calibrate(
      bench::capture_set(die1, sim::Pickup::kOnChipSensor, 48, 0));

  io::Table table{{"die", "cross-die golden margin", "self-calibrated golden margin",
                   "self-calibrated T4 margin"}};
  bench::ShapeChecks checks;
  double worst_cross = 0.0;
  double worst_self = 0.0;
  double min_t4 = 1e18;

  for (std::uint64_t serial = 2; serial <= 5; ++serial) {
    sim::Chip die = make_die(serial);
    const auto own_golden = bench::capture_set(die, sim::Pickup::kOnChipSensor, 48, 0);
    const auto fresh = bench::capture_set(die, sim::Pickup::kOnChipSensor, 16, 9000);

    // Cross-die: factory detector scores this die's clean traces.
    const double cross_margin =
        factory_detector.population_distance(fresh) / factory_detector.threshold();

    // Self-calibrated: this die's own trusted bring-up window.
    const auto own_detector = core::EuclideanDetector::calibrate(own_golden);
    const double self_margin =
        own_detector.population_distance(fresh) / own_detector.threshold();
    die.arm(trojan::TrojanKind::kT4PowerHog);
    const double t4_margin =
        own_detector.population_distance(
            bench::capture_set(die, sim::Pickup::kOnChipSensor, 16, 9500)) /
        own_detector.threshold();
    die.disarm_all();

    worst_cross = std::max(worst_cross, cross_margin);
    worst_self = std::max(worst_self, self_margin);
    min_t4 = std::min(min_t4, t4_margin);
    table.add_row({std::to_string(serial), io::Table::num(cross_margin, 3),
                   io::Table::num(self_margin, 3), io::Table::num(t4_margin, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("margin = population distance / EDth; > 1 reads as \"tampered\".\n\n");

  checks.expect(worst_cross < 1.0,
                "cross-die golden margins stay below threshold: the preprocessing is immune "
                "to coupling-scale and per-module mismatch variation");
  checks.expect(worst_self < 1.0, "per-die calibration keeps clean dies clean");
  checks.expect(min_t4 > 1.0, "per-die calibration still catches T4 on every die");
  checks.expect(worst_cross < 3.0 * worst_self + 1.0,
                "cross-die margins are comparable to self-calibrated ones (no hidden drift)");
  return checks.exit_code();
}
