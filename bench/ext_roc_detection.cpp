// Extension bench: per-trace detection quality as ROC statistics. Fig. 6
// argues separability visually; this bench quantifies it with the
// Mann-Whitney AUC (probability a Trojan trace outscores a golden trace)
// and the true-positive rate at 1% false positives, per Trojan and pickup,
// in silicon mode. Expected shape: sensor AUC ~1.0 for every Trojan, probe
// AUC far lower — the paper's headline, in one number.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/euclidean.hpp"
#include "io/table.hpp"
#include "sim/silicon.hpp"
#include "stats/descriptive.hpp"

using namespace emts;

namespace {

// Mann-Whitney AUC: fraction of (trojan, golden) pairs the trojan wins.
double auc(const std::vector<double>& golden, const std::vector<double>& trojan) {
  std::vector<double> sorted_golden = golden;
  std::sort(sorted_golden.begin(), sorted_golden.end());
  double wins = 0.0;
  for (double t : trojan) {
    const auto it = std::lower_bound(sorted_golden.begin(), sorted_golden.end(), t);
    wins += static_cast<double>(it - sorted_golden.begin());
  }
  return wins / (static_cast<double>(golden.size()) * static_cast<double>(trojan.size()));
}

// TPR at the threshold that keeps FPR at `fpr` on the golden scores.
double tpr_at_fpr(const std::vector<double>& golden, const std::vector<double>& trojan,
                  double fpr) {
  const double threshold = stats::quantile(golden, 1.0 - fpr);
  std::size_t detected = 0;
  for (double t : trojan) detected += (t > threshold);
  return static_cast<double>(detected) / static_cast<double>(trojan.size());
}

}  // namespace

int main() {
  std::printf("=== Extension: ROC statistics per Trojan and pickup (silicon mode) ===\n\n");

  sim::Chip chip{sim::make_silicon_config(sim::SiliconOptions{})};
  constexpr std::size_t kTraces = 150;

  const auto calib = bench::capture_pair_set(chip, 60, 0);
  const auto det_sensor = core::EuclideanDetector::calibrate(calib.onchip);
  const auto det_probe = core::EuclideanDetector::calibrate(calib.external);

  const auto golden = bench::capture_pair_set(chip, kTraces, 3000);
  const auto golden_sensor = det_sensor.score_all(golden.onchip);
  const auto golden_probe = det_probe.score_all(golden.external);

  io::Table table{{"trojan", "sensor AUC", "sensor TPR@1%FPR", "probe AUC", "probe TPR@1%FPR"}};
  bench::ShapeChecks checks;
  double min_sensor_auc = 1.0;
  for (trojan::TrojanKind kind :
       {trojan::TrojanKind::kT1AmLeak, trojan::TrojanKind::kT2Leakage,
        trojan::TrojanKind::kT3Cdma, trojan::TrojanKind::kT4PowerHog}) {
    chip.arm(kind);
    const auto base = 10000 + 1000 * static_cast<std::uint64_t>(kind);
    const auto infected = bench::capture_pair_set(chip, kTraces, base);
    chip.disarm_all();
    const auto t_sensor = det_sensor.score_all(infected.onchip);
    const auto t_probe = det_probe.score_all(infected.external);

    const double auc_sensor = auc(golden_sensor, t_sensor);
    const double auc_probe = auc(golden_probe, t_probe);
    min_sensor_auc = std::min(min_sensor_auc, auc_sensor);
    table.add_row({trojan::kind_label(kind), io::Table::num(auc_sensor, 4),
                   io::Table::num(tpr_at_fpr(golden_sensor, t_sensor, 0.01), 3),
                   io::Table::num(auc_probe, 4),
                   io::Table::num(tpr_at_fpr(golden_probe, t_probe, 0.01), 3)});

    checks.expect(auc_sensor >= auc_probe,
                  std::string("sensor AUC >= probe AUC for ") + trojan::kind_label(kind));
  }
  std::printf("%s\n", table.render().c_str());

  checks.expect(min_sensor_auc > 0.95, "sensor AUC > 0.95 for every Trojan (incl. T3)");
  return checks.exit_code();
}
