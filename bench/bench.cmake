# Bench binaries land in ${CMAKE_BINARY_DIR}/bench so that
#   for b in build/bench/*; do $b; done
# iterates over executables only. Reproduction benches print the paper's
# tables/figures; perf benches use google-benchmark.

function(emsentry_bench NAME)
  add_executable(${NAME} ${PROJECT_SOURCE_DIR}/bench/${NAME}.cpp)
  target_link_libraries(${NAME} PRIVATE emsentry::emsentry emsentry_warnings)
  set_target_properties(${NAME} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

function(emsentry_perf_bench NAME)
  emsentry_bench(${NAME})
  target_link_libraries(${NAME} PRIVATE benchmark::benchmark)
endfunction()

emsentry_bench(table1_trojan_sizes)
emsentry_bench(sec4b_snr_simulation)
emsentry_bench(sec4c_euclidean_distances)
emsentry_bench(fig4_a2_spectrum)
emsentry_bench(fig5_floorplan)
emsentry_bench(sec5a_snr_measured)
emsentry_bench(fig6_histograms)
emsentry_bench(fig6_spectra)
emsentry_bench(ablation_coil_geometry)
emsentry_bench(ablation_probe_distance)
emsentry_bench(ablation_pca_dims)
emsentry_bench(ablation_noise_sweep)
emsentry_bench(ablation_threshold)
emsentry_perf_bench(perf_pipeline)
emsentry_bench(perf_daemon)
emsentry_bench(perf_fleet_scale)
emsentry_bench(perf_array)
emsentry_bench(ablation_workload)
emsentry_bench(ext_localization)
emsentry_bench(ext_roc_detection)
emsentry_bench(ext_baseline_ron)
emsentry_bench(ext_process_variation)
emsentry_bench(ext_sensor_tamper)
