// Substitute for Fig. 5 (die photograph + PCB): the fabricated chip cannot
// be reproduced in software, so this bench prints the simulated die's
// floorplan inventory and an ASCII map of the layout the photo shows —
// AES on the left, the Trojan column on the right, the spiral sensor
// covering everything on M6 (cf. Fig. 3). Documented in DESIGN.md §1.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "io/table.hpp"

using namespace emts;

int main() {
  std::printf("=== Fig. 5 substitute: simulated die floorplan and sensor inventory ===\n\n");

  sim::Chip chip{sim::make_default_config()};
  const auto& fp = chip.floorplan();
  const auto& die = chip.config().die;

  io::Table table{{"module", "x0 um", "y0 um", "x1 um", "y1 um", "cell area um^2",
                   "M(sensor) nH", "M(probe) nH"}};
  for (const auto& m : fp.modules()) {
    table.add_row({m.name, io::Table::num(1e6 * m.region.x0, 4),
                   io::Table::num(1e6 * m.region.y0, 4), io::Table::num(1e6 * m.region.x1, 4),
                   io::Table::num(1e6 * m.region.y1, 4), io::Table::num(m.area_um2, 5),
                   io::Table::num(1e9 * chip.coupling(m.name, sim::Pickup::kOnChipSensor), 3),
                   io::Table::num(1e9 * chip.coupling(m.name, sim::Pickup::kExternalProbe), 3)});
  }
  std::printf("%s\n", table.render().c_str());

  // ASCII die map: 64 x 24 characters over the core.
  constexpr int kW = 64;
  constexpr int kH = 24;
  std::vector<std::string> canvas(kH, std::string(kW, '.'));
  const auto put = [&](const layout::Rect& r, char c) {
    for (int y = 0; y < kH; ++y) {
      for (int x = 0; x < kW; ++x) {
        const double px = (static_cast<double>(x) + 0.5) / kW * die.core_width;
        const double py = (1.0 - (static_cast<double>(y) + 0.5) / kH) * die.core_height;
        if (r.contains(px, py)) canvas[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = c;
      }
    }
  };
  namespace mn = layout::module_names;
  put(fp.module(mn::kAesSbox).region, 'S');
  put(fp.module(mn::kAesKeySchedule).region, 'K');
  put(fp.module(mn::kAesState).region, 'R');
  put(fp.module(mn::kAesKeyRegs).region, 'k');
  put(fp.module(mn::kAesMixColumns).region, 'M');
  put(fp.module(mn::kAesControl).region, 'C');
  put(fp.module(mn::kTrojan1).region, '1');
  put(fp.module(mn::kTrojan2).region, '2');
  put(fp.module(mn::kTrojan3).region, '3');
  put(fp.module(mn::kTrojan4).region, '4');
  put(fp.module(mn::kTrojanA2).region, 'A');

  std::printf("die map (2.0 x 2.0 mm core; S=sbox K=keysched R=state k=keyregs M=mixcol\n"
              "C=control 1-4=Trojans A=A2; the spiral sensor covers the whole map on M6):\n\n");
  for (const auto& row : canvas) std::printf("  %s\n", row.c_str());
  std::printf("\nsensor: %zu turns, %.1f mm wire, %.2f mm^2 accumulated turn area\n"
              "probe : %zu turns at %.0f um above the die\n\n",
              chip.onchip_coil().turns.size(), 1e3 * chip.onchip_coil().total_length(),
              1e6 * chip.onchip_coil().total_turn_area(), chip.external_coil().turns.size(),
              1e6 * die.package_top);

  bench::ShapeChecks checks;
  checks.expect(fp.modules().size() == 11, "11 modules placed (6 AES units + 5 Trojans)");
  checks.expect(chip.onchip_coil().total_turn_area() > 1e-6,
                "sensor accumulates > 1 mm^2 of turn area");
  return checks.exit_code();
}
