// Shared helpers for the reproduction benches: batch capture, SNR per the
// paper's recipe, and a tiny PASS/FAIL shape-checker so each bench verifies
// its table's qualitative claims programmatically.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "sim/chip.hpp"
#include "stats/snr.hpp"

namespace emts::bench {

inline core::TraceSet capture_set(sim::Chip& chip, sim::Pickup pickup, std::size_t count,
                                  std::uint64_t first_index, bool encrypting = true) {
  core::TraceSet set;
  set.sample_rate = chip.sample_rate();
  for (std::uint64_t t = 0; t < count; ++t) {
    set.add(chip.capture(encrypting, first_index + t).of(pickup));
  }
  return set;
}

/// SNR exactly as the paper measures it (Sec. V-A): signal captured while
/// encrypting, noise captured while the chip idles, RMS ratio in dB.
inline double measured_snr_db(sim::Chip& chip, sim::Pickup pickup, std::size_t windows = 8,
                              std::uint64_t base = 100) {
  std::vector<double> signal;
  std::vector<double> noise;
  for (std::uint64_t t = 0; t < windows; ++t) {
    const auto s = chip.capture(true, base + t).of(pickup);
    const auto n = chip.capture(false, base + windows + t).of(pickup);
    signal.insert(signal.end(), s.begin(), s.end());
    noise.insert(noise.end(), n.begin(), n.end());
  }
  return stats::snr_db(signal, noise);
}

/// Records one shape assertion; prints PASS/FAIL and tracks the exit code.
class ShapeChecks {
 public:
  void expect(bool condition, const std::string& claim) {
    std::printf("  [%s] %s\n", condition ? "PASS" : "FAIL", claim.c_str());
    if (!condition) failed_ = true;
  }

  int exit_code() const { return failed_ ? 1 : 0; }

 private:
  bool failed_ = false;
};

}  // namespace emts::bench
