// Shared helpers for the reproduction benches: batch capture and SNR via the
// parallel CaptureEngine, and a tiny PASS/FAIL shape-checker so each bench
// verifies its table's qualitative claims programmatically.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"

namespace emts::bench {

/// Batch capture through the shared worker pool (EMTS_THREADS knob). Output
/// is byte-identical to the serial capture loop for every thread count.
inline core::TraceSet capture_set(const sim::Chip& chip, sim::Pickup pickup, std::size_t count,
                                  std::uint64_t first_index, bool encrypting = true) {
  return sim::CaptureEngine::shared().capture_batch(chip, pickup, count, first_index,
                                                    encrypting);
}

/// Both pickups of the same physical windows in one pass — half the physics
/// work of two capture_set calls for sensor-vs-probe comparisons.
inline sim::PairBatch capture_pair_set(const sim::Chip& chip, std::size_t count,
                                       std::uint64_t first_index, bool encrypting = true) {
  return sim::CaptureEngine::shared().capture_pair_batch(chip, count, first_index, encrypting);
}

/// SNR exactly as the paper measures it (Sec. V-A): signal captured while
/// encrypting, noise captured while the chip idles, RMS ratio in dB.
inline double measured_snr_db(const sim::Chip& chip, sim::Pickup pickup,
                              std::size_t windows = 8, std::uint64_t base = 100) {
  return sim::CaptureEngine::shared().snr_batch(chip, pickup, windows, base);
}

/// Records one shape assertion; prints PASS/FAIL and tracks the exit code.
class ShapeChecks {
 public:
  void expect(bool condition, const std::string& claim) {
    std::printf("  [%s] %s\n", condition ? "PASS" : "FAIL", claim.c_str());
    if (!condition) failed_ = true;
  }

  int exit_code() const { return failed_ ? 1 : 0; }

 private:
  bool failed_ = false;
};

}  // namespace emts::bench
