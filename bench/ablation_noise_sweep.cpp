// Ablation: noise robustness. How much ambient noise can each pickup absorb
// before the hardest Trojan (T3) slips below the Eq. 1 threshold? This
// formalizes the paper's core claim — SNR headroom is detection headroom.
#include <cstdio>

#include "bench_util.hpp"
#include "core/euclidean.hpp"
#include "io/table.hpp"

using namespace emts;

namespace {

struct Point {
  double snr_db = 0.0;
  double margin = 0.0;
};

Point evaluate(double noise_scale, sim::Pickup pickup) {
  sim::ChipConfig config = sim::make_default_config();
  config.onchip_noise.environment_rms_v *= noise_scale;
  config.external_noise.environment_rms_v *= noise_scale;
  sim::Chip chip{config};

  Point point;
  point.snr_db = bench::measured_snr_db(chip, pickup);
  const auto det = core::EuclideanDetector::calibrate(bench::capture_set(chip, pickup, 40, 0));
  chip.arm(trojan::TrojanKind::kT3Cdma);
  point.margin =
      det.population_distance(bench::capture_set(chip, pickup, 16, 5000)) / det.threshold();
  chip.disarm_all();
  return point;
}

}  // namespace

int main() {
  std::printf("=== Ablation: ambient noise scale vs T3 detection margin ===\n\n");

  io::Table table{{"noise x", "sensor SNR dB", "sensor T3 margin", "probe SNR dB",
                   "probe T3 margin"}};
  double sensor_margin_1x = 0.0;
  double sensor_margin_4x = 0.0;
  double probe_margin_1x = 0.0;
  for (double scale : {0.5, 1.0, 2.0, 4.0}) {
    const Point sensor = evaluate(scale, sim::Pickup::kOnChipSensor);
    const Point probe = evaluate(scale, sim::Pickup::kExternalProbe);
    table.add_row({io::Table::num(scale, 2), io::Table::num(sensor.snr_db, 4),
                   io::Table::num(sensor.margin, 3), io::Table::num(probe.snr_db, 4),
                   io::Table::num(probe.margin, 3)});
    if (scale == 1.0) {
      sensor_margin_1x = sensor.margin;
      probe_margin_1x = probe.margin;
    }
    if (scale == 4.0) sensor_margin_4x = sensor.margin;
  }
  std::printf("%s\n", table.render().c_str());

  bench::ShapeChecks checks;
  checks.expect(sensor_margin_1x > 1.0, "sensor detects T3 at nominal noise");
  checks.expect(sensor_margin_1x > probe_margin_1x,
                "sensor margin beats probe margin at nominal noise");
  checks.expect(sensor_margin_4x < sensor_margin_1x,
                "margin shrinks as noise grows (SNR headroom = detection headroom)");
  return checks.exit_code();
}
