// Reproduces Fig. 6(a)-(h): Euclidean-distance histograms on the fabricated
// chip (silicon mode), golden (red, '#') vs Trojan-activated (blue, '*'),
// for the external probe (paper top row) and the on-chip sensor (middle
// row). The paper's finding, checked programmatically below:
//   * probe: distributions overlap, peaks NOT separable (T3 fully overlaps);
//   * sensor: bodies overlap but the distribution peaks separate, so runtime
//     peak-shift monitoring detects every Trojan.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/euclidean.hpp"
#include "io/table.hpp"
#include "sim/silicon.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "stats/separation.hpp"

using namespace emts;

namespace {

constexpr std::size_t kCalib = 80;
constexpr std::size_t kPerCondition = 160;

struct Panel {
  std::vector<double> golden;
  std::vector<double> trojan;
  double overlap = 0.0;
  double mode_sep = 0.0;
};

Panel finish_panel(const core::EuclideanDetector& det, const core::TraceSet& golden,
                   const core::TraceSet& trojan) {
  Panel panel;
  panel.golden = det.score_all(golden);
  panel.trojan = det.score_all(trojan);
  panel.overlap = stats::overlap_coefficient(panel.golden, panel.trojan);
  panel.mode_sep = stats::mode_separation(panel.golden, panel.trojan);
  return panel;
}

// Probe (top row) and sensor (middle row) panels of one Trojan come from the
// same physical windows: one pair batch per condition feeds both.
void make_panels(sim::Chip& chip, const core::EuclideanDetector& det_probe,
                 const core::EuclideanDetector& det_sensor, trojan::TrojanKind kind,
                 std::uint64_t base, Panel* probe_panel, Panel* sensor_panel) {
  const auto golden = bench::capture_pair_set(chip, kPerCondition, base);
  chip.arm(kind);
  const auto trojan = bench::capture_pair_set(chip, kPerCondition, base + 5000);
  chip.disarm_all();
  *probe_panel = finish_panel(det_probe, golden.external, trojan.external);
  *sensor_panel = finish_panel(det_sensor, golden.onchip, trojan.onchip);
}

void print_panel(const char* label, const Panel& panel) {
  const double hi =
      std::max(stats::max_value(panel.golden), stats::max_value(panel.trojan)) * 1.05;
  stats::Histogram red{0.0, hi, 12};
  stats::Histogram blue{0.0, hi, 12};
  red.add_all(panel.golden);
  blue.add_all(panel.trojan);
  std::printf("--- %s  (overlap %.2f, peak separation %.2f sd) ---\n%s\n", label, panel.overlap,
              panel.mode_sep, stats::Histogram::render_pair(red, blue, 36).c_str());
}

}  // namespace

int main() {
  std::printf("=== Fig. 6(a)-(h): distance histograms, golden (#) vs Trojan (*) ===\n");
  std::printf("silicon mode, %zu traces per condition (paper: ~2e4; scale with kPerCondition)\n\n",
              kPerCondition);

  sim::Chip chip{sim::make_silicon_config(sim::SiliconOptions{})};
  const auto calib = bench::capture_pair_set(chip, kCalib, 0);
  const auto det_probe = core::EuclideanDetector::calibrate(calib.external);
  const auto det_sensor = core::EuclideanDetector::calibrate(calib.onchip);

  const trojan::TrojanKind kinds[] = {
      trojan::TrojanKind::kT1AmLeak, trojan::TrojanKind::kT2Leakage,
      trojan::TrojanKind::kT3Cdma, trojan::TrojanKind::kT4PowerHog};

  Panel probe_panels[4];
  Panel sensor_panels[4];
  for (int i = 0; i < 4; ++i) {
    const auto base = static_cast<std::uint64_t>(20000 + 10000 * i);
    make_panels(chip, det_probe, det_sensor, kinds[i], base, &probe_panels[i],
                &sensor_panels[i]);
  }

  for (int i = 0; i < 4; ++i) {
    char label[64];
    std::snprintf(label, sizeof label, "Fig. 6(%c): probe data of %s", 'a' + i,
                  trojan::kind_label(kinds[i]));
    print_panel(label, probe_panels[i]);
  }
  for (int i = 0; i < 4; ++i) {
    char label[64];
    std::snprintf(label, sizeof label, "Fig. 6(%c): sensor data of %s", 'e' + i,
                  trojan::kind_label(kinds[i]));
    print_panel(label, sensor_panels[i]);
  }

  io::Table summary{{"trojan", "probe overlap", "probe peak-sep", "sensor overlap",
                     "sensor peak-sep"}};
  for (int i = 0; i < 4; ++i) {
    summary.add_row({trojan::kind_label(kinds[i]), io::Table::num(probe_panels[i].overlap, 3),
                     io::Table::num(probe_panels[i].mode_sep, 3),
                     io::Table::num(sensor_panels[i].overlap, 3),
                     io::Table::num(sensor_panels[i].mode_sep, 3)});
  }
  std::printf("%s\n", summary.render().c_str());

  bench::ShapeChecks checks;
  for (int i = 0; i < 4; ++i) {
    checks.expect(sensor_panels[i].mode_sep > 1.0,
                  std::string("sensor separates ") + trojan::kind_label(kinds[i]) +
                      " (peaks shift by > 1 sd)");
    checks.expect(sensor_panels[i].mode_sep > probe_panels[i].mode_sep,
                  std::string("sensor peak separation beats the probe for ") +
                      trojan::kind_label(kinds[i]));
  }
  checks.expect(probe_panels[2].overlap > 0.6,
                "T3 probe distributions almost completely overlap (Fig. 6(c))");
  int probe_separable = 0;
  for (const Panel& p : probe_panels) probe_separable += (p.mode_sep > 1.0);
  checks.expect(probe_separable <= 2,
                "probe peaks are mostly NOT separable (paper: none separable)");
  return checks.exit_code();
}
