// Ablation: external-probe standoff. Paper Sec. III-A: "The signal intensity
// of direct EM radiation is closely related to the distance between the chip
// and the probe. Therefore, the hardware Trojan detection will be more
// accurate and sensitive via an on-chip EM radiation measurement." This
// bench sweeps the probe height above the package and shows SNR falling
// with distance while the on-chip sensor (fixed, microns away) stays put.
#include <cstdio>

#include "bench_util.hpp"
#include "io/table.hpp"

using namespace emts;

int main() {
  std::printf("=== Ablation: external probe standoff vs SNR ===\n\n");

  sim::Chip reference{sim::make_default_config()};
  const double snr_onchip = bench::measured_snr_db(reference, sim::Pickup::kOnChipSensor);
  std::printf("on-chip sensor (fixed at %.1f um above the cells): %.3f dB\n\n",
              1e6 * (reference.config().die.sensor_z - reference.config().die.cell_z),
              snr_onchip);

  io::Table table{{"probe height um", "SNR dB", "deficit vs on-chip dB"}};
  double snr_at_100 = 0.0;
  double snr_at_800 = 0.0;
  double prev = 1e9;
  bool decreasing = true;
  for (double extra : {0.0, 100e-6, 300e-6, 700e-6}) {
    sim::ChipConfig config = sim::make_default_config();
    config.probe.standoff = extra;
    sim::Chip chip{config};
    const double height = config.die.package_top + extra;
    const double snr = bench::measured_snr_db(chip, sim::Pickup::kExternalProbe);
    table.add_row({io::Table::num(1e6 * height, 4), io::Table::num(snr, 4),
                   io::Table::num(snr_onchip - snr, 3)});
    if (extra == 0.0) snr_at_100 = snr;
    if (extra == 700e-6) snr_at_800 = snr;
    if (snr > prev + 0.3) decreasing = false;
    prev = snr;
  }
  std::printf("%s\n", table.render().c_str());

  bench::ShapeChecks checks;
  checks.expect(decreasing, "probe SNR decreases with standoff");
  checks.expect(snr_at_100 - snr_at_800 > 3.0, "backing off to ~0.8 mm costs > 3 dB");
  checks.expect(snr_onchip > snr_at_100 + 8.0,
                "even at the paper's 100 um the probe trails the sensor by > 8 dB");
  return checks.exit_code();
}
