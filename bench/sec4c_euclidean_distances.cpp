// Reproduces Sec. IV-C: Euclidean distances between the reference (golden)
// circuit and each Trojan-activated circuit, measured by the on-chip sensor
// in simulation. Paper: T1 0.27, T2 0.25, T3 0.05, T4 0.28 — "highly
// distinguishable", all four detected.
//
// Absolute distances depend on acquisition scale (the paper's units come
// from its oscilloscope setup), so the table also reports distances
// normalized to T2 — the scale-free shape the reproduction must match.
#include <cstdio>

#include "bench_util.hpp"
#include "core/euclidean.hpp"
#include "io/table.hpp"

using namespace emts;

int main() {
  std::printf("=== Sec. IV-C: Euclidean distances, on-chip sensor (simulation) ===\n\n");

  sim::Chip chip{sim::make_default_config()};
  const auto golden = bench::capture_set(chip, sim::Pickup::kOnChipSensor, 60, 0);
  const auto detector = core::EuclideanDetector::calibrate(golden);
  std::printf("EDth (Eq. 1, max pairwise golden distance) = %.4f\n\n", detector.threshold());

  const struct {
    trojan::TrojanKind kind;
    double paper;
  } rows[] = {
      {trojan::TrojanKind::kT1AmLeak, 0.27},
      {trojan::TrojanKind::kT2Leakage, 0.25},
      {trojan::TrojanKind::kT3Cdma, 0.05},
      {trojan::TrojanKind::kT4PowerHog, 0.28},
  };

  double ours[4] = {};
  double ref_ours = 0.0;
  constexpr double kPaperT2 = 0.25;
  for (int i = 0; i < 4; ++i) {
    chip.arm(rows[i].kind);
    ours[i] = detector.population_distance(
        bench::capture_set(chip, sim::Pickup::kOnChipSensor, 24, 5000));
    chip.disarm_all();
    if (rows[i].kind == trojan::TrojanKind::kT2Leakage) ref_ours = ours[i];
  }

  io::Table table{{"trojan", "distance (ours)", "distance (paper)", "norm/T2 (ours)",
                   "norm/T2 (paper)", "detected"}};
  for (int i = 0; i < 4; ++i) {
    table.add_row({trojan::kind_label(rows[i].kind), io::Table::num(ours[i], 3),
                   io::Table::num(rows[i].paper, 3), io::Table::num(ours[i] / ref_ours, 3),
                   io::Table::num(rows[i].paper / kPaperT2, 3),
                   ours[i] > detector.threshold() ? "yes" : "no"});
  }
  std::printf("%s\n", table.render().c_str());

  bench::ShapeChecks checks;
  for (int i = 0; i < 4; ++i) {
    checks.expect(ours[i] > detector.threshold(),
                  std::string(trojan::kind_label(rows[i].kind)) +
                      " exceeds the Eq. 1 threshold (paper: all four detected)");
  }
  const double d1 = ours[0];
  const double d2 = ours[1];
  const double d3 = ours[2];
  const double d4 = ours[3];
  checks.expect(d3 < 0.4 * d1 && d3 < 0.4 * d2 && d3 < 0.4 * d4,
                "T3 is by far the smallest distance (paper: 0.05 vs 0.25+)");
  checks.expect(d1 > 0.8 * d2 && d4 > 0.8 * d2,
                "T1 and T4 sit at or above T2 (paper: 0.27/0.28 vs 0.25)");
  return checks.exit_code();
}
