// Reproduces Sec. IV-B: simulated SNR of the on-chip sensor vs the external
// probe. Paper: on-chip 29.976 dB, external 17.483 dB. SNR follows the
// paper's recipe exactly — noise recorded with the chip powered but idle,
// signal while encrypting, RMS ratio, Eq. 2/3.
#include <cstdio>

#include "bench_util.hpp"
#include "io/table.hpp"

using namespace emts;

int main() {
  std::printf("=== Sec. IV-B: simulated SNR, on-chip sensor vs external probe ===\n\n");

  sim::Chip chip{sim::make_default_config()};
  const double snr_onchip = bench::measured_snr_db(chip, sim::Pickup::kOnChipSensor);
  const double snr_external = bench::measured_snr_db(chip, sim::Pickup::kExternalProbe);

  io::Table table{{"pickup", "SNR dB (ours)", "SNR dB (paper)"}};
  table.add_row({"on-chip sensor", io::Table::num(snr_onchip, 5), "29.976"});
  table.add_row({"external probe", io::Table::num(snr_external, 5), "17.483"});
  std::printf("%s\n", table.render().c_str());

  std::printf("context: probe %g um above the die surface (paper: 100 um); both\n"
              "pickups record the same currents through their mutual couplings.\n\n",
              1e6 * chip.config().die.package_top);

  bench::ShapeChecks checks;
  checks.expect(snr_onchip > 26.0 && snr_onchip < 34.0, "on-chip SNR near the paper's ~30 dB");
  checks.expect(snr_external > 14.0 && snr_external < 21.0,
                "external SNR near the paper's ~17.5 dB");
  checks.expect(snr_onchip - snr_external > 8.0,
                "on-chip sensor wins by >8 dB (paper: 12.5 dB)");
  return checks.exit_code();
}
