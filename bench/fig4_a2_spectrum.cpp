// Reproduces Fig. 4: A2 Trojan detection in the frequency domain. The paper
// plots the sensor spectrum with the A2-style Trojan in its triggering state
// (red) against the clean circuit (blue): the clock spot, its second
// harmonic, and a new "Trojan Activation Peak" between them.
//
// Output: the spectrum series around the clock (so it can be re-plotted),
// and the detector's verdict.
#include <cstdio>

#include "bench_util.hpp"
#include "core/spectral.hpp"
#include "dsp/spectrum.hpp"
#include "io/table.hpp"

using namespace emts;

int main() {
  std::printf("=== Fig. 4: A2 Trojan detection in the frequency domain ===\n\n");

  sim::Chip chip{sim::make_default_config()};
  const auto golden = bench::capture_set(chip, sim::Pickup::kOnChipSensor, 16, 0);
  chip.arm(trojan::TrojanKind::kA2Analog);
  const auto triggering = bench::capture_set(chip, sim::Pickup::kOnChipSensor, 16, 1000);
  chip.disarm_all();

  const auto spec_golden = dsp::mean_spectrum(golden.traces, golden.sample_rate);
  const auto spec_a2 = dsp::mean_spectrum(triggering.traces, triggering.sample_rate);

  // Series: 30..110 MHz in 3 MHz steps, plus the exact spot frequencies.
  std::printf("spectrum series (re-plot of Fig. 4; amplitudes in volts):\n\n");
  io::Table table{{"freq MHz", "golden (blue)", "A2 triggering (red)", "note"}};
  for (double f : {30e6, 36e6, 42e6, 48e6, 54e6, 60e6, 66e6, 72e6, 78e6, 84e6, 90e6, 96e6,
                   102e6, 108e6}) {
    const std::size_t k = spec_golden.bin_of(f);
    std::string note;
    if (f == 48e6) note = "clock";
    if (f == 96e6) note = "2nd harmonic";
    if (f == 72e6) note = "<- Trojan activation peak";
    table.add_row({io::Table::num(f / 1e6, 4), io::Table::num(spec_golden.amplitude[k], 3),
                   io::Table::num(spec_a2.amplitude[k], 3), note});
  }
  std::printf("%s\n", table.render().c_str());

  const auto detector = core::SpectralDetector::calibrate(golden);
  const auto report = detector.analyze(triggering);
  std::printf("spectral detector verdict: %zu anomalies\n", report.anomalies.size());
  for (const auto& a : report.anomalies) {
    std::printf("  %s at %.3f MHz, amplitude %.3e vs golden %.3e (ratio %.1f)\n",
                a.kind == core::SpectralAnomalyKind::kNewSpot ? "new spot" : "amplified spot",
                a.frequency_hz / 1e6, a.suspect_amplitude, a.golden_amplitude, a.ratio);
  }
  std::printf("\n");

  const std::size_t clock_bin = spec_golden.bin_of(48e6);
  const std::size_t harm_bin = spec_golden.bin_of(96e6);
  const std::size_t peak_bin = spec_golden.bin_of(72e6);

  bench::ShapeChecks checks;
  checks.expect(spec_golden.amplitude[clock_bin] > 10.0 * spec_golden.amplitude[peak_bin],
                "golden spectrum concentrates at the clock, quiet at 72 MHz");
  checks.expect(spec_a2.amplitude[peak_bin] > 5.0 * spec_golden.amplitude[peak_bin],
                "A2 triggering adds a strong peak between clock and 2nd harmonic");
  checks.expect(spec_a2.amplitude[clock_bin] < 1.3 * spec_golden.amplitude[clock_bin],
                "the clock spot itself is unchanged (trigger, not payload, radiates)");
  checks.expect(report.anomalous(), "spectral detector flags the triggering state");
  bool peak_between = false;
  for (const auto& a : report.anomalies) {
    peak_between |= (a.frequency_hz > 48e6 && a.frequency_hz < 96e6);
  }
  checks.expect(peak_between, "reported anomaly lies between the clock spots (Fig. 4)");
  (void)harm_bin;
  return checks.exit_code();
}
