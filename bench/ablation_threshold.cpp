// Ablation: the Eq. 1 threshold rule. The paper sets EDth to the *maximum*
// pairwise distance among golden traces — a conservative rule with (near)
// zero false positives by construction. This bench compares it against
// quantile rules on held-out golden traces (false-positive rate) and
// T3-activated traces (false-negative rate on the hardest Trojan).
#include <cstdio>

#include "bench_util.hpp"
#include "core/euclidean.hpp"
#include "io/table.hpp"
#include "stats/descriptive.hpp"

using namespace emts;

int main() {
  std::printf("=== Ablation: Eq. 1 max-rule vs quantile thresholds ===\n\n");

  sim::Chip chip{sim::make_default_config()};
  const auto golden = bench::capture_set(chip, sim::Pickup::kOnChipSensor, 60, 0);
  const auto det = core::EuclideanDetector::calibrate(golden);

  // Held-out populations: a validation set to *derive* quantile thresholds,
  // a fresh set to *evaluate* false positives (deriving thresholds from the
  // calibration scores would be optimistic — the PCA basis is fitted to
  // exactly those traces), and a T3-activated set for false negatives.
  const auto validation =
      det.score_all(bench::capture_set(chip, sim::Pickup::kOnChipSensor, 120, 9000));
  const auto fresh =
      det.score_all(bench::capture_set(chip, sim::Pickup::kOnChipSensor, 120, 15000));
  chip.arm(trojan::TrojanKind::kT3Cdma);
  const auto infected =
      det.score_all(bench::capture_set(chip, sim::Pickup::kOnChipSensor, 120, 20000));
  chip.disarm_all();

  struct Rule {
    const char* name;
    double threshold;
  };
  const Rule rules[] = {
      {"median of validation", stats::quantile(validation, 0.5)},
      {"P90 of validation", stats::quantile(validation, 0.9)},
      {"P99 of validation", stats::quantile(validation, 0.99)},
      {"Eq. 1 (max pairwise)", det.threshold()},
  };

  const auto rate_beyond = [](const std::vector<double>& scores, double threshold) {
    std::size_t n = 0;
    for (double s : scores) n += (s > threshold);
    return static_cast<double>(n) / static_cast<double>(scores.size());
  };

  io::Table table{{"rule", "threshold", "false-positive rate", "T3 false-negative rate"}};
  double eq1_fpr = 1.0;
  double eq1_fnr = 1.0;
  double p50_fpr = 0.0;
  for (const Rule& rule : rules) {
    const double fpr = rate_beyond(fresh, rule.threshold);
    const double fnr = 1.0 - rate_beyond(infected, rule.threshold);
    table.add_row({rule.name, io::Table::num(rule.threshold, 3), io::Table::num(fpr, 3),
                   io::Table::num(fnr, 3)});
    if (std::string(rule.name).find("Eq. 1") != std::string::npos) {
      eq1_fpr = fpr;
      eq1_fnr = fnr;
    }
    if (std::string(rule.name).find("median") != std::string::npos) p50_fpr = fpr;
    (void)rule;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("note: per-trace rates; the framework's population/debounce logic sits on top.\n\n");

  bench::ShapeChecks checks;
  checks.expect(eq1_fpr < 0.05, "Eq. 1 rule keeps per-trace false positives < 5%");
  checks.expect(eq1_fnr < 0.5, "Eq. 1 rule still catches most T3 traces");
  checks.expect(p50_fpr > 0.3, "aggressive (median) threshold drowns in false positives");
  return checks.exit_code();
}
