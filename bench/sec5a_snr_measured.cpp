// Reproduces Sec. V-A: measurement accuracy of the fabricated chip's on-chip
// EM sensor. Paper: measured on-chip SNR 30.5489 dB vs external probe
// 13.8684 dB — and the key observation that the *external* probe does worse
// than its own simulation (17.48 dB) "because there are more unintended
// influences", while the on-chip sensor holds its simulated performance.
//
// We run the same comparison in silicon mode (lab interferers, drift, gain
// jitter, process variation — DESIGN.md §1) against the clean Sec. IV
// simulation conditions, averaged over several chip serials.
#include <cstdio>

#include "bench_util.hpp"
#include "io/table.hpp"
#include "sim/silicon.hpp"

using namespace emts;

int main() {
  std::printf("=== Sec. V-A: measured SNR on the fabricated chip (silicon mode) ===\n\n");

  // Clean simulation baseline (Sec. IV-B conditions).
  sim::Chip clean_chip{sim::make_default_config()};
  const double sim_onchip = bench::measured_snr_db(clean_chip, sim::Pickup::kOnChipSensor);
  const double sim_external = bench::measured_snr_db(clean_chip, sim::Pickup::kExternalProbe);

  // Silicon mode, averaged over 3 dies from the lot.
  double meas_onchip = 0.0;
  double meas_external = 0.0;
  constexpr int kChips = 3;
  for (int serial = 1; serial <= kChips; ++serial) {
    sim::SiliconOptions options;
    options.chip_serial = static_cast<std::uint64_t>(serial);
    sim::Chip chip{sim::make_silicon_config(options)};
    meas_onchip += bench::measured_snr_db(chip, sim::Pickup::kOnChipSensor);
    meas_external += bench::measured_snr_db(chip, sim::Pickup::kExternalProbe);
  }
  meas_onchip /= kChips;
  meas_external /= kChips;

  io::Table table{{"pickup", "simulated dB", "measured dB (ours)", "measured dB (paper)"}};
  table.add_row({"on-chip sensor", io::Table::num(sim_onchip, 5),
                 io::Table::num(meas_onchip, 5), "30.5489"});
  table.add_row({"external probe", io::Table::num(sim_external, 5),
                 io::Table::num(meas_external, 5), "13.8684"});
  std::printf("%s\n", table.render().c_str());

  bench::ShapeChecks checks;
  checks.expect(meas_onchip > 25.0 && meas_onchip < 35.0,
                "measured on-chip SNR near the paper's ~30.5 dB");
  checks.expect(meas_external > 10.0 && meas_external < 17.0,
                "measured external SNR near the paper's ~13.9 dB");
  checks.expect(meas_external < sim_external - 1.0,
                "external probe degrades vs its simulation (paper: 17.5 -> 13.9 dB)");
  checks.expect(meas_onchip > sim_onchip - 3.0,
                "on-chip sensor holds its simulated performance (paper: 30.0 -> 30.5 dB)");
  checks.expect(meas_onchip - meas_external > 13.0,
                "the measured gap widens beyond the simulated gap (paper: 16.7 vs 12.5 dB)");
  return checks.exit_code();
}
