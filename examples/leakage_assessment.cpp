// Security self-assessment with TVLA: before trusting the trust framework,
// check that the sensor actually observes the die. The fixed-vs-random
// Welch t-test is the standard side-channel leakage assessment: if the
// sensor's traces carry the AES data dependence, |t| blows through 4.5 at
// the round samples. This also quantifies the paper's claim that EM traces
// are "rich in information" — and shows the on-chip sensor is *more*
// informative than the external probe (a double-edged sword: the same
// richness that catches Trojans also helps side-channel attackers, which is
// why the sensor output must stay on-device).
#include <cstdio>

#include "core/leakage.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"

using namespace emts;

namespace {

core::TraceSet collect(const sim::Chip& chip, sim::Pickup pickup, std::size_t n,
                       std::uint64_t base) {
  return sim::CaptureEngine::shared().capture_batch(chip, pickup, n, base);
}

}  // namespace

int main() {
  constexpr std::size_t kTraces = 150;

  // Fixed population: the default chip replays one challenge workload.
  sim::ChipConfig fixed_config = sim::make_default_config();
  sim::Chip fixed_chip{fixed_config};

  // Random population: same die, random traffic.
  sim::ChipConfig random_config = sim::make_default_config();
  random_config.fixed_challenge_workload = false;
  sim::Chip random_chip{random_config};

  std::printf("TVLA fixed-vs-random, %zu traces per population\n\n", kTraces);
  bool sensor_leaks = false;
  double sensor_t = 0.0;
  double probe_t = 0.0;
  for (sim::Pickup pickup : {sim::Pickup::kOnChipSensor, sim::Pickup::kExternalProbe}) {
    const auto fixed_set = collect(fixed_chip, pickup, kTraces, 0);
    const auto random_set = collect(random_chip, pickup, kTraces, 100000);
    const auto report = core::tvla(fixed_set, random_set);

    const char* name =
        pickup == sim::Pickup::kOnChipSensor ? "on-chip sensor" : "external probe";
    std::printf("%-15s max |t| = %7.2f at sample %zu (cycle %zu), %zu/%zu samples leak\n",
                name, report.max_abs_t, report.max_abs_t_sample,
                report.max_abs_t_sample / 8, report.leaky_samples,
                report.t_statistic.size());
    if (pickup == sim::Pickup::kOnChipSensor) {
      sensor_leaks = report.leaks();
      sensor_t = report.max_abs_t;
    } else {
      probe_t = report.max_abs_t;
    }
  }

  std::printf("\n%s; the sensor sees %s data dependence than the probe.\n",
              sensor_leaks ? "the sensor demonstrably observes the die"
                           : "UNEXPECTED: no leakage visible",
              sensor_t > probe_t ? "stronger" : "weaker");
  return sensor_leaks ? 0 : 1;
}
