// Runtime monitoring: the deployment of Fig. 1. The on-chip sensor streams
// captures into the RuntimeMonitor, which self-calibrates on the trusted
// start-up window and then scores every capture. Mid-stream, the attacker
// triggers the T2 leakage Trojan; the monitor raises a debounced alarm and
// prints what its detector saw.
#include <cstdio>
#include <filesystem>

#include "core/monitor.hpp"
#include "io/calibration.hpp"
#include "io/table.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"

using namespace emts;

int main() {
  sim::Chip chip{sim::make_default_config()};
  const auto& engine = sim::CaptureEngine::shared();

  core::RuntimeMonitor::Options options;
  options.calibration_traces = 32;
  options.alarm_debounce = 3;
  core::RuntimeMonitor monitor{chip.sample_rate(), options};

  monitor.on_alarm([](const core::TrustReport& report) {
    std::printf(">>> ALARM: %s\n", report.summary().c_str());
  });

  std::printf("runtime monitor demo — T2 activates at capture 60\n");
  std::printf("%-8s %-12s %-10s %s\n", "capture", "state", "score", "note");

  // The sensor hardware records windows continuously; the engine drains each
  // phase's windows as one parallel batch and the monitor consumes them in
  // stream order (its scoring is strictly per-trace, so batching the
  // acquisition changes nothing downstream).
  std::uint64_t index = 0;
  const auto step = [&](const core::Trace& trace, const char* note) {
    const auto state = monitor.push(trace);
    if (index % 10 == 0 || state == core::MonitorState::kAlarm) {
      std::printf("%-8llu %-12s %-10s %s\n", static_cast<unsigned long long>(index),
                  core::monitor_state_label(state),
                  monitor.last_score().has_value()
                      ? io::Table::num(*monitor.last_score(), 3).c_str()
                      : "-",
                  note);
    }
    ++index;
    return state;
  };

  // Phase 1: trusted bring-up (calibration) and normal operation.
  const auto bring_up = engine.capture_batch(chip, sim::Pickup::kOnChipSensor, 60, 0);
  for (const auto& trace : bring_up.traces) {
    step(trace, index < 32 ? "calibrating" : "normal operation");
  }

  // Phase 2: the Trojan activates in the field.
  chip.arm(trojan::TrojanKind::kT2Leakage);
  const auto infected = engine.capture_batch(chip, sim::Pickup::kOnChipSensor, 20, 60);
  for (const auto& trace : infected.traces) {
    if (monitor.state() == core::MonitorState::kAlarm) break;
    step(trace, "T2 active");
  }

  if (monitor.state() != core::MonitorState::kAlarm) {
    std::printf("UNEXPECTED: no alarm raised\n");
    return 1;
  }

  // Phase 3: the operator investigates, removes the trigger, resumes.
  chip.disarm_all();
  monitor.acknowledge_alarm();
  std::printf("alarm acknowledged; resuming monitoring\n");
  const auto resumed = engine.capture_batch(chip, sim::Pickup::kOnChipSensor, 20, 80);
  for (const auto& trace : resumed.traces) step(trace, "back to normal");

  const bool calm = monitor.state() == core::MonitorState::kMonitoring;
  std::printf("\nfinal state: %s\n", core::monitor_state_label(monitor.state()));
  if (!calm) return 1;

  // Phase 4: warm redeploy — "calibrate once, monitor many". The fitted
  // detector stack is saved as an EMCA artifact; a second monitor (a reboot,
  // or another unit of the same design) cold-starts from it and is scoring
  // from its very first capture, zero calibration captures spent.
  const auto model_path =
      (std::filesystem::temp_directory_path() / "emts_runtime_monitor.emca").string();
  io::save_calibration(model_path, *monitor.evaluator());
  auto evaluator = io::load_calibration(model_path);
  std::filesystem::remove(model_path);

  core::RuntimeMonitor redeployed{evaluator.sample_rate(), std::move(evaluator), options};
  std::printf("\nwarm redeploy from %s: state %s after %zu captures\n", model_path.c_str(),
              core::monitor_state_label(redeployed.state()), redeployed.traces_seen());

  // push_batch: same hot path and identical transitions as trace-by-trace
  // push, one call per acquisition batch.
  const auto fresh = engine.capture_batch(chip, sim::Pickup::kOnChipSensor, 20, 100);
  redeployed.push_batch(fresh);
  std::printf("redeployed monitor after 20 captures: %s\n",
              core::monitor_state_label(redeployed.state()));

  // What the first monitor's loop did, without ever perturbing it: lifetime
  // counters, push/spectral latency quantiles, and the structured event log.
  const core::MonitorStats& stats = monitor.stats();
  std::printf("\nmonitor stats: ingested %llu (calibration %llu, scored %llu)\n",
              static_cast<unsigned long long>(stats.traces_ingested),
              static_cast<unsigned long long>(stats.calibration_captures),
              static_cast<unsigned long long>(stats.scored_captures));
  std::printf("  per-trace anomalies %llu, windowed %llu/%llu passes, alarms %llu "
              "latched / %llu acked\n",
              static_cast<unsigned long long>(stats.per_trace_anomalies),
              static_cast<unsigned long long>(stats.windowed_anomalies),
              static_cast<unsigned long long>(stats.spectral_passes),
              static_cast<unsigned long long>(stats.alarms_latched),
              static_cast<unsigned long long>(stats.alarms_acknowledged));
  std::printf("  push latency p50 %.1f us, p99 %.1f us; spectral pass p50 %.1f us\n",
              stats.push_latency.p50_ns() / 1e3, stats.push_latency.p99_ns() / 1e3,
              stats.spectral_latency.p50_ns() / 1e3);
  for (const auto& event : monitor.drain_events()) {
    std::printf("  event #%-4llu %-18s %.6g\n",
                static_cast<unsigned long long>(event.trace_index),
                core::monitor_event_label(event.kind), event.value);
  }
  return redeployed.state() == core::MonitorState::kMonitoring ? 0 : 1;
}
