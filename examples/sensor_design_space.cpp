// Sensor design space: how the on-chip spiral's geometry drives its SNR.
//
// Paper Sec. III-C: "The sensitivity of the EM sensor highly depends on the
// magnetic flux passing to the coil so the effectiveness of the detection
// ... equals to the accumulation of all the coils with gradually increasing
// diameters." This example sweeps the two design knobs a sensor designer
// controls — turn count and wire width (DRC floor) — and prints the SNR each
// variant achieves, plus the field map the coil integrates.
#include <cstdio>

#include "io/table.hpp"
#include "util/assert.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"

using namespace emts;

namespace {

double snr_of(const sim::Chip& chip, sim::Pickup pickup) {
  // 6 encrypting + 6 idle windows through the shared pool, paper recipe.
  return sim::CaptureEngine::shared().snr_batch(chip, pickup, 6, 100);
}

}  // namespace

int main() {
  std::printf("on-chip sensor design space (defaults: 12 turns, 2.0 um wire)\n\n");

  io::Table table{{"turns", "wire um", "coil mm", "turn area mm^2", "SNR dB"}};
  for (std::size_t turns : {4u, 8u, 12u, 20u}) {
    sim::ChipConfig config = sim::make_default_config();
    config.spiral.turns = turns;
    sim::Chip chip{config};
    table.add_row({std::to_string(turns), io::Table::num(1e6 * config.spiral.wire_width, 2),
                   io::Table::num(1e3 * chip.onchip_coil().total_length(), 3),
                   io::Table::num(1e6 * chip.onchip_coil().total_turn_area(), 3),
                   io::Table::num(snr_of(chip, sim::Pickup::kOnChipSensor), 4)});
  }
  std::printf("%s\n", table.render().c_str());

  // DRC guardrail: the library refuses spirals the process cannot build.
  sim::ChipConfig bad = sim::make_default_config();
  bad.spiral.wire_width = 0.1e-6;  // below the 180 nm M6 minimum width
  try {
    sim::Chip chip{bad};
    std::printf("UNEXPECTED: DRC violation accepted\n");
    return 1;
  } catch (const emts::precondition_error& e) {
    std::printf("DRC check works: %s\n\n", e.what());
  }

  std::printf("More turns accumulate more flux (larger summed turn area) and raise\n"
              "SNR — until the pitch hits the spacing rule. The shipped default\n"
              "(12 turns) sits near the knee.\n");
  return 0;
}
