// Quickstart: the complete EMSentry flow in ~60 lines.
//
//  1. Build the simulated security-enhanced AES chip (on-chip spiral EM
//     sensor on the top metal layer + external probe baseline).
//  2. Calibrate the trust evaluator on golden (Trojan-free) captures.
//  3. Check a clean batch -> TRUSTED.
//  4. Activate the T4 power-hog Trojan and check again -> flagged.
#include <cstdio>

#include "core/evaluator.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"

using namespace emts;

namespace {

// Each capture records one 4096-sample window from the on-chip sensor while
// the AES core encrypts the challenge workload; the shared engine spreads
// the windows over a worker pool (EMTS_THREADS controls the width).
core::TraceSet capture_batch(const sim::Chip& chip, std::size_t count,
                             std::uint64_t first_index) {
  return sim::CaptureEngine::shared().capture_batch(chip, sim::Pickup::kOnChipSensor, count,
                                                    first_index);
}

}  // namespace

int main() {
  std::printf("EMSentry quickstart\n===================\n\n");

  // 1. The chip: 48 MHz AES-128, four digital Trojans + A2 (all dormant),
  //    12-turn spiral sensor on M6, defaults from DESIGN.md.
  sim::Chip chip{sim::make_default_config()};
  std::printf("chip ready: %zu modules placed, sensor coil %.1f mm of wire, %zu turns\n",
              chip.floorplan().modules().size(), 1e3 * chip.onchip_coil().total_length(),
              chip.onchip_coil().turns.size());

  // 2. Calibration: 48 golden captures fit the PCA model, the Eq. 1 distance
  //    threshold, and the reference spectrum.
  const auto evaluator = core::TrustEvaluator::calibrate(capture_batch(chip, 48, 0));
  std::printf("calibrated: EDth = %.4f (eq. 1), %zu golden spectral spots\n\n",
              evaluator.euclidean().threshold(), evaluator.spectral().golden_spots().size());

  // 3. A clean runtime batch.
  const auto clean = evaluator.evaluate(capture_batch(chip, 16, 1000));
  std::printf("clean batch   : %s\n", clean.summary().c_str());

  // 4. The attacker triggers the T4 payload in the field.
  chip.arm(trojan::TrojanKind::kT4PowerHog);
  const auto infected = evaluator.evaluate(capture_batch(chip, 16, 2000));
  std::printf("T4 activated  : %s\n", infected.summary().c_str());

  const bool caught = infected.verdict != core::Verdict::kTrusted &&
                      clean.verdict == core::Verdict::kTrusted;
  std::printf("\n%s\n", caught ? "Trojan detected at runtime — framework works."
                               : "UNEXPECTED: detection failed");
  return caught ? 0 : 1;
}
