// Fleet monitoring: the paper's deployment story at rack scale. One golden
// calibration campaign fits the detector stack ("calibrate once"); a
// FleetMonitor then hosts one monitoring session per deployed chip and
// routes every (device, capture) pair through sharded workers ("monitor
// many"). One chip in the fleet carries the T2 leakage Trojan — its session
// alarms; its neighbours keep monitoring undisturbed. The demo closes by
// replaying one device's stream through a standalone RuntimeMonitor and
// checking the fleet scored it bit-identically.
#include <cstdio>
#include <string>
#include <vector>

#include "core/monitor.hpp"
#include "fleet/fleet.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"

using namespace emts;

int main() {
  const auto& engine = sim::CaptureEngine::shared();

  // Calibrate once on the golden reference chip.
  sim::Chip golden_chip{sim::make_default_config()};
  const auto golden = engine.capture_batch(golden_chip, sim::Pickup::kOnChipSensor, 48, 0);
  const auto evaluator = core::TrustEvaluator::calibrate(golden);
  std::printf("calibrated %zu-stage stack on %zu golden captures\n\n",
              evaluator.detectors().size(), golden.size());

  // Deploy a four-chip fleet over two worker shards; chip-02 is infected.
  fleet::FleetOptions options;
  options.shards = 2;
  options.queue_capacity = 16;
  options.backpressure = fleet::BackpressurePolicy::kBlock;
  options.monitor.alarm_debounce = 3;
  fleet::FleetMonitor fleet_monitor{options};

  const std::vector<std::string> ids = {"chip-00", "chip-01", "chip-02", "chip-03"};
  for (const std::string& id : ids) {
    fleet_monitor.add_device(id, core::TrustEvaluator{evaluator});
    std::printf("  %s -> shard %zu\n", id.c_str(), fleet_monitor.shard_of(id));
  }

  // Each chip streams its own captures; the infected one diverges. Distinct
  // --first offsets keep the four streams statistically independent.
  constexpr std::size_t kCaptures = 24;
  std::vector<core::TraceSet> streams;
  for (std::size_t d = 0; d < ids.size(); ++d) {
    sim::Chip chip{sim::make_default_config()};
    if (ids[d] == "chip-02") chip.arm(trojan::TrojanKind::kT2Leakage);
    streams.push_back(engine.capture_batch(chip, sim::Pickup::kOnChipSensor, kCaptures,
                                           1000 * (d + 1)));
  }

  // Interleave submissions round-robin — the arrival order a shared capture
  // front-end produces. The fleet untangles it back into per-device streams.
  for (std::size_t t = 0; t < kCaptures; ++t) {
    for (std::size_t d = 0; d < ids.size(); ++d) {
      fleet_monitor.submit(ids[d], core::Trace{streams[d].traces[t]});
    }
  }
  fleet_monitor.flush();

  const fleet::FleetStats stats = fleet_monitor.stats();
  std::printf("\nreplayed %llu captures, %llu scored\n",
              static_cast<unsigned long long>(stats.traces_submitted),
              static_cast<unsigned long long>(stats.traces_processed));
  for (const fleet::SessionStats& session : stats.sessions) {
    std::printf("  %-8s %-10s scored %-4llu per-trace anomalies %-4llu alarms %llu\n",
                session.device_id.c_str(), core::monitor_state_label(session.state),
                static_cast<unsigned long long>(session.monitor.scored_captures),
                static_cast<unsigned long long>(session.monitor.per_trace_anomalies),
                static_cast<unsigned long long>(session.monitor.alarms_latched));
  }
  std::printf("fleet verdict: %zu alarmed / %zu monitoring\n", stats.devices_alarm,
              stats.devices_monitoring);

  std::printf("\ndevice-tagged events:\n");
  for (const fleet::FleetEvent& event : fleet_monitor.drain_events()) {
    if (event.event.kind == core::MonitorEventKind::kAlarmLatched ||
        event.event.kind == core::MonitorEventKind::kWindowedAnomaly) {
      std::printf("  %-8s #%-4llu %-18s %.4g\n", event.device_id.c_str(),
                  static_cast<unsigned long long>(event.event.trace_index),
                  core::monitor_event_label(event.event.kind), event.event.value);
    }
  }

  // The fleet guarantee: per-device results are bit-identical to a
  // standalone monitor fed the same stream.
  core::RuntimeMonitor standalone{golden.sample_rate, core::TrustEvaluator{evaluator},
                                  options.monitor};
  for (const auto& trace : streams[2].traces) standalone.push(trace);
  const fleet::SessionStats& infected = stats.sessions[2];  // sorted: chip-02
  const bool identical =
      infected.state == standalone.state() &&
      infected.last_score == standalone.last_score() &&
      infected.monitor.per_trace_anomalies == standalone.stats().per_trace_anomalies;
  std::printf("\nchip-02 fleet vs standalone: %s\n",
              identical ? "bit-identical" : "MISMATCH (bug!)");

  // Snapshot/restore: the daemon's crash-recovery story in miniature. Cut
  // the fleet's state, rebuild a fresh fleet from the cut, and check the
  // latched alarm and every counter came through exactly.
  const io::FleetSnapshot cut = fleet_monitor.snapshot();
  fleet::FleetMonitor reborn{options};
  reborn.restore(cut);
  const fleet::FleetStats after = reborn.stats();
  const bool survived =
      after.devices_alarm == stats.devices_alarm &&
      after.sessions[2].state == core::MonitorState::kAlarm &&
      after.sessions[2].monitor.per_trace_anomalies ==
          stats.sessions[2].monitor.per_trace_anomalies;
  std::printf("restored fleet from snapshot: %zu devices, alarm %s\n",
              reborn.device_count(), survived ? "still latched" : "LOST (bug!)");
  return identical && survived ? 0 : 1;
}
