// Forensics: WHEN did the Trojan wake up? The runtime monitor raises an
// alarm; the spectrogram of the recorded stream pins the activation moment.
// Here Trojan T1 starts broadcasting mid-stream; the 750 kHz band lights up
// in the time-frequency map at exactly that capture.
#include <cstdio>
#include <vector>

#include "dsp/stft.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"

using namespace emts;

int main() {
  sim::Chip chip{sim::make_default_config()};
  const auto& engine = sim::CaptureEngine::shared();

  constexpr std::size_t kWindows = 24;
  constexpr std::size_t kActivateAt = 14;  // T1 armed from this window on

  std::printf("recording %zu consecutive windows; T1 activates at window %zu\n\n", kWindows,
              kActivateAt);
  // One batch per armed state (the engine captures under a fixed condition),
  // concatenated in window order into the recorded stream.
  const auto clean = engine.capture_batch(chip, sim::Pickup::kOnChipSensor, kActivateAt, 0);
  chip.arm(trojan::TrojanKind::kT1AmLeak);
  const auto active = engine.capture_batch(chip, sim::Pickup::kOnChipSensor,
                                           kWindows - kActivateAt, kActivateAt);
  chip.disarm_all();
  std::vector<double> stream;
  stream.reserve(kWindows * chip.samples_per_trace());
  for (const auto& set : {&clean, &active}) {
    for (const auto& trace : set->traces) {
      stream.insert(stream.end(), trace.begin(), trace.end());
    }
  }

  dsp::StftOptions options;
  options.window_length = 4096;  // one capture window per frame column
  options.hop = 2048;
  const auto spec = dsp::stft(stream, chip.sample_rate(), options);

  // The carrier band around 750 kHz.
  const double f_lo = 0.6e6;
  const double f_hi = 0.9e6;
  std::printf("750 kHz band power per frame ('#' per 10%% of peak):\n");
  double peak = 1e-300;
  std::vector<double> band(spec.frames());
  for (std::size_t f = 0; f < spec.frames(); ++f) {
    band[f] = spec.band_power(f, f_lo, f_hi);
    peak = std::max(peak, band[f]);
  }
  const std::size_t samples_per_window = chip.samples_per_trace();
  for (std::size_t f = 0; f < spec.frames(); ++f) {
    const double window_index =
        static_cast<double>(f * options.hop) / static_cast<double>(samples_per_window);
    std::printf("  t=%6.2f us (window %4.1f) |%-10s| %.3e\n", 1e6 * spec.frame_time(f),
                window_index,
                std::string(static_cast<std::size_t>(10.0 * band[f] / peak), '#').c_str(),
                band[f]);
  }

  const std::size_t frame = dsp::find_band_activation(spec, f_lo, f_hi);
  if (frame >= spec.frames()) {
    std::printf("\nUNEXPECTED: no activation found\n");
    return 1;
  }
  const double estimated_window = static_cast<double>(frame * options.hop) /
                                  static_cast<double>(samples_per_window);
  std::printf("\nestimated activation: frame %zu = t %.2f us = window %.1f (truth: %zu)\n",
              frame, 1e6 * spec.frame_time(frame), estimated_window, kActivateAt);

  const bool close = std::abs(estimated_window - static_cast<double>(kActivateAt)) <= 1.0;
  std::printf("%s\n", close ? "activation localized to within one capture window"
                            : "UNEXPECTED: estimate off by more than one window");
  return close ? 0 : 1;
}
