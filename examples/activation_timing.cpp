// Forensics: WHEN did the Trojan wake up? The runtime monitor raises an
// alarm; the spectrogram of the recorded stream pins the activation moment.
// Here Trojan T1 starts broadcasting mid-stream; the 750 kHz band lights up
// in the time-frequency map at exactly that capture.
#include <cstdio>
#include <vector>

#include "dsp/stft.hpp"
#include "sim/chip.hpp"

using namespace emts;

int main() {
  sim::Chip chip{sim::make_default_config()};

  constexpr std::size_t kWindows = 24;
  constexpr std::size_t kActivateAt = 14;  // T1 armed from this window on

  std::printf("recording %zu consecutive windows; T1 activates at window %zu\n\n", kWindows,
              kActivateAt);
  std::vector<double> stream;
  for (std::uint64_t w = 0; w < kWindows; ++w) {
    if (w == kActivateAt) chip.arm(trojan::TrojanKind::kT1AmLeak);
    const auto capture = chip.capture(true, w).onchip_v;
    stream.insert(stream.end(), capture.begin(), capture.end());
  }
  chip.disarm_all();

  dsp::StftOptions options;
  options.window_length = 4096;  // one capture window per frame column
  options.hop = 2048;
  const auto spec = dsp::stft(stream, chip.sample_rate(), options);

  // The carrier band around 750 kHz.
  const double f_lo = 0.6e6;
  const double f_hi = 0.9e6;
  std::printf("750 kHz band power per frame ('#' per 10%% of peak):\n");
  double peak = 1e-300;
  std::vector<double> band(spec.frames());
  for (std::size_t f = 0; f < spec.frames(); ++f) {
    band[f] = spec.band_power(f, f_lo, f_hi);
    peak = std::max(peak, band[f]);
  }
  const std::size_t samples_per_window = chip.samples_per_trace();
  for (std::size_t f = 0; f < spec.frames(); ++f) {
    const double window_index =
        static_cast<double>(f * options.hop) / static_cast<double>(samples_per_window);
    std::printf("  t=%6.2f us (window %4.1f) |%-10s| %.3e\n", 1e6 * spec.frame_time(f),
                window_index,
                std::string(static_cast<std::size_t>(10.0 * band[f] / peak), '#').c_str(),
                band[f]);
  }

  const std::size_t frame = dsp::find_band_activation(spec, f_lo, f_hi);
  if (frame >= spec.frames()) {
    std::printf("\nUNEXPECTED: no activation found\n");
    return 1;
  }
  const double estimated_window = static_cast<double>(frame * options.hop) /
                                  static_cast<double>(samples_per_window);
  std::printf("\nestimated activation: frame %zu = t %.2f us = window %.1f (truth: %zu)\n",
              frame, 1e6 * spec.frame_time(frame), estimated_window, kActivateAt);

  const bool close = std::abs(estimated_window - static_cast<double>(kActivateAt)) <= 1.0;
  std::printf("%s\n", close ? "activation localized to within one capture window"
                            : "UNEXPECTED: estimate off by more than one window");
  return close ? 0 : 1;
}
