// The attacker's view of Trojan T1: "leaks the secret information through
// the AM radio carrier at a 750 KHz frequency and the leaked information can
// be demodulated with a wireless radio receiver" (paper Sec. IV-A).
//
// This example plays both sides:
//   * the attacker's receiver demodulates consecutive sensor windows and
//     recovers actual AES key bits from the OOK carrier;
//   * the defender's spectral detector flags the same carrier as a new
//     low-frequency spot.
// Seeing the leak really carry the key is what makes T1 a *Trojan* rather
// than a power bug — and what the on-chip sensor is protecting against.
#include <cstdio>
#include <vector>

#include "core/spectral.hpp"
#include "dsp/demod.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"
#include "trojan/t1_am_leak.hpp"

using namespace emts;

int main() {
  sim::Chip chip{sim::make_default_config()};
  const auto& engine = sim::CaptureEngine::shared();
  const auto& key = chip.config().key;

  // ---- defender: calibrate the spectral detector on the clean chip ----
  const auto golden = engine.capture_batch(chip, sim::Pickup::kOnChipSensor, 16, 0);
  const auto spectral = core::SpectralDetector::calibrate(golden);

  // ---- attacker: activate T1 and record a long contiguous stream ----
  chip.arm(trojan::TrojanKind::kT1AmLeak);
  const std::size_t windows = 24;  // 24 x 10.67 us = 4 key bits per window
  const auto infected =
      engine.capture_batch(chip, sim::Pickup::kOnChipSensor, windows, 1000);
  std::vector<double> stream;
  stream.reserve(windows * chip.samples_per_trace());
  for (const auto& v : infected.traces) {
    stream.insert(stream.end(), v.begin(), v.end());
  }

  // Radio receiver: coherent AM demodulation at 750 kHz, then bit slicing at
  // the Trojan's broadcast rate (1 bit per 2 carrier periods).
  dsp::AmDemodOptions rx;
  rx.carrier_hz = 750e3;
  rx.sample_rate = chip.sample_rate();
  const auto envelope = dsp::am_demodulate(stream, rx);
  const double bit_rate = 750e3 / static_cast<double>(trojan::T1AmLeak::kCarrierPeriodsPerBit);
  const auto bits = dsp::slice_bits(envelope, chip.sample_rate(), bit_rate);

  // Ground truth: which key bits were on the air (bit index advances with
  // the absolute cycle counter, starting at window 1000).
  std::size_t correct = 0;
  std::size_t checked = 0;
  std::printf("recovered vs actual key bits (first 32):\n  ");
  for (std::size_t b = 0; b < bits.size(); ++b) {
    const std::size_t cycle = b * 128;  // 128 cycles per broadcast bit
    const std::size_t window = 1000 + cycle / chip.config().trace_cycles;
    const std::size_t in_window = cycle % chip.config().trace_cycles;
    const std::size_t key_index =
        trojan::T1AmLeak::key_bit_index(window, in_window, chip.config().trace_cycles);
    const int actual = (key[key_index / 8] >> (key_index % 8)) & 1;
    // Skip the first demodulated bit (filter settling).
    if (b == 0) continue;
    if (checked < 32) std::printf("%d", bits[b]);
    correct += (bits[b] == actual);
    ++checked;
  }
  std::printf("\n");
  const double accuracy = static_cast<double>(correct) / static_cast<double>(checked);
  std::printf("attacker: %zu/%zu broadcast bits recovered (%.0f%%)\n", correct, checked,
              100.0 * accuracy);

  // ---- defender: the same emission is a glaring spectral anomaly ----
  const auto report = spectral.analyze(infected);
  std::printf("defender: %zu spectral anomalies; strongest at %.3f MHz (ratio %.1f)\n",
              report.anomalies.size(),
              report.anomalies.empty() ? 0.0 : report.anomalies.front().frequency_hz / 1e6,
              report.anomalies.empty() ? 0.0 : report.anomalies.front().ratio);

  const bool leak_works = accuracy > 0.9;
  const bool leak_caught = report.anomalous();
  std::printf("\n%s / %s\n", leak_works ? "leak carries the key" : "LEAK BROKEN",
              leak_caught ? "and the sensor catches it" : "SENSOR MISSED IT");
  return (leak_works && leak_caught) ? 0 : 1;
}
