// Trojan sweep: arms each of the paper's five Trojans in turn and shows how
// the two detectors and the two pickups see it — the whole evaluation story
// of the paper in one table:
//   * Euclidean distance (Sec. III-D) per pickup, against the Eq. 1 threshold
//   * spectral anomalies (Sec. III-E) from the on-chip sensor
// Expected shape: the on-chip sensor detects all four digital Trojans by
// distance; the spectral stage catches T1/T2/T4 and A2 but misses T3.
#include <cstdio>
#include <string>

#include "core/euclidean.hpp"
#include "core/spectral.hpp"
#include "io/table.hpp"
#include "sim/chip.hpp"
#include "sim/engine.hpp"

using namespace emts;

int main() {
  sim::Chip chip{sim::make_default_config()};
  const auto& engine = sim::CaptureEngine::shared();

  // Calibrate one detector stack per pickup on golden traces; both pickups
  // record the same physical windows, so one pair batch feeds both.
  const auto golden = engine.capture_pair_batch(chip, 48, 0);
  const auto det_sensor = core::EuclideanDetector::calibrate(golden.onchip);
  const auto det_probe = core::EuclideanDetector::calibrate(golden.external);
  const auto spectral = core::SpectralDetector::calibrate(golden.onchip);

  std::printf("Trojan sweep — EDth(sensor) = %.4f, EDth(probe) = %.4f\n\n",
              det_sensor.threshold(), det_probe.threshold());

  io::Table table{{"trojan", "cells", "area%", "d(sensor)", "detected", "d(probe)",
                   "spectral anomalies", "strongest spot"}};

  const double aes_area = 33083.0 * 18.0;  // gate model: cells x avg cell area
  for (trojan::TrojanKind kind : trojan::kAllTrojanKinds) {
    chip.arm(kind);
    const auto suspect = engine.capture_pair_batch(chip, 16, 5000);
    chip.disarm_all();
    const auto report = spectral.analyze(suspect.onchip);

    const auto& model = chip.trojan_model(kind);
    const double d_sensor = det_sensor.population_distance(suspect.onchip);
    const double d_probe = det_probe.population_distance(suspect.external);

    std::string spot = "-";
    if (!report.anomalies.empty()) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%s %.3f MHz",
                    report.anomalies.front().kind == core::SpectralAnomalyKind::kNewSpot
                        ? "new"
                        : "amplified",
                    report.anomalies.front().frequency_hz / 1e6);
      spot = buf;
    }

    table.add_row({trojan::kind_label(kind), std::to_string(model.cell_count()),
                   io::Table::num(100.0 * model.area_um2() / aes_area, 3),
                   io::Table::num(d_sensor, 3),
                   d_sensor > det_sensor.threshold() ? "yes" : "no",
                   io::Table::num(d_probe, 3), std::to_string(report.anomalies.size()), spot});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Reading the table: every digital Trojan clears the sensor's Eq. 1\n"
              "threshold; T3's spread-spectrum leak produces no spectral anomaly\n"
              "(Fig. 6(k)) while T1's 750 kHz carrier and A2's fast-toggling\n"
              "trigger appear as new spots (Fig. 6(i), Fig. 4).\n");
  return 0;
}
